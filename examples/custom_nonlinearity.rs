//! "Any kind of nonlinearity": the paper's headline generality claim.
//!
//! This example analyzes three oscillators the tool was never specialized
//! for — a van der Pol cubic, an arbitrary closure, and a tabulated curve —
//! and pre-characterizes an *arbitrary tank topology* numerically from the
//! circuit simulator's AC analysis instead of using the analytic RLC model.
//!
//! Run with: `cargo run --release --example custom_nonlinearity`

use shil::circuit::analysis::{ac_impedance, AcOptions};
use shil::circuit::Circuit;
use shil::core::describing::{natural_oscillation, NaturalOptions};
use shil::core::nonlinearity::{FnNonlinearity, Polynomial, Tabulated};
use shil::core::shil::{ShilAnalysis, ShilOptions};
use shil::core::tank::{ParallelRlc, TabulatedTank, Tank};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tank = ParallelRlc::new(1000.0, 10e-6, 10e-9)?;

    // 1. A van der Pol cubic.
    let vdp = Polynomial::van_der_pol(3e-3, 1.2e-3)?;
    report("van der Pol cubic", &vdp, &tank)?;

    // 2. An arbitrary closure: a soft-clipping arctangent element.
    let atan =
        FnNonlinearity::new(|v: f64| -1.2e-3 * (18.0 * v).atan() * 2.0 / std::f64::consts::PI);
    report("arctangent closure", &atan, &tank)?;

    // 3. Tabulated measurement data (here synthesized, in practice a DC
    //    sweep export from any simulator or a curve tracer).
    let vs: Vec<f64> = (0..301).map(|k| -1.5 + 0.01 * k as f64).collect();
    let is: Vec<f64> = vs
        .iter()
        .map(|&v| -1e-3 * (15.0 * v).tanh() + 2e-4 * v)
        .collect();
    let table = Tabulated::new(vs, is)?;
    report("tabulated data", &table, &tank)?;

    // 4. An arbitrary tank, pre-characterized numerically: a tapped-
    //    capacitor network the analytic ParallelRlc cannot describe.
    let mut ckt = Circuit::new();
    let top = ckt.node("top");
    let mid = ckt.node("mid");
    ckt.inductor(top, Circuit::GROUND, 10e-6);
    ckt.resistor(top, Circuit::GROUND, 2000.0);
    ckt.capacitor(top, mid, 20e-9);
    ckt.capacitor(mid, Circuit::GROUND, 20e-9); // series pair: 10 nF net
    ckt.resistor(mid, Circuit::GROUND, 10e3); // tap loss
    let fc_guess = 1.0 / (std::f64::consts::TAU * (10e-6f64 * 10e-9).sqrt());
    let freqs: Vec<f64> = (0..601)
        .map(|k| fc_guess * (0.6 + 0.8 * k as f64 / 600.0))
        .collect();
    let z = ac_impedance(&ckt, top, Circuit::GROUND, &freqs, &AcOptions::default())?;
    let tapped = TabulatedTank::from_samples(freqs, z)?;
    println!(
        "tapped-capacitor tank (from AC analysis): f_c = {:.2} kHz, R_peak = {:.1} Ohm",
        tapped.center_frequency_hz() / 1e3,
        tapped.peak_resistance()
    );
    report("van der Pol on the tapped tank", &vdp, &tapped)?;
    Ok(())
}

fn report<N, T>(name: &str, f: &N, tank: &T) -> Result<(), Box<dyn std::error::Error>>
where
    N: shil::core::Nonlinearity + Sync,
    T: Tank + Sync,
{
    match natural_oscillation(f, tank, &NaturalOptions::default()) {
        Ok(nat) => {
            let lock = ShilAnalysis::new(f, tank, 3, 0.03, ShilOptions::default())
                .and_then(|a| a.lock_range());
            match lock {
                Ok(lr) => println!(
                    "{name}: A = {:.4} V at {:.1} kHz; n=3 lock span = {:.3} kHz",
                    nat.amplitude,
                    nat.frequency_hz / 1e3,
                    lr.injection_span_hz / 1e3
                ),
                Err(e) => println!(
                    "{name}: A = {:.4} V at {:.1} kHz; no n=3 lock ({e})",
                    nat.amplitude,
                    nat.frequency_hz / 1e3
                ),
            }
        }
        Err(e) => println!("{name}: does not oscillate ({e})"),
    }
    Ok(())
}
