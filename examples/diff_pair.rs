//! The full §IV-A workflow on the cross-coupled BJT differential pair:
//! extract `i = f(v)` from the circuit by DC sweep, predict the natural
//! oscillation and the 3rd-sub-harmonic lock range, then cross-check both
//! against transient simulation of the very same netlist.
//!
//! Run with: `cargo run --release --example diff_pair`

use shil::core::describing::{natural_oscillation, NaturalOptions};
use shil::core::shil::{ShilAnalysis, ShilOptions};
use shil::core::tank::Tank;
use shil::repro::diff_pair::{DiffPairOscillator, DiffPairParams};
use shil::repro::simlock::{measure_natural, probe_lock, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Component values with the tank R calibrated so the predicted natural
    // amplitude matches the paper's 0.505 V.
    let params = DiffPairParams::calibrated(0.505)?;
    println!(
        "diff pair: VCC = {} V, tail = {} mA, tank R = {:.1} Ohm, f_c = {:.1} kHz",
        params.vcc,
        params.i_tail * 1e3,
        params.r_tank,
        params.center_frequency_hz() / 1e3
    );

    // --- Analysis side -----------------------------------------------------
    let f = params.extract_iv_curve()?; // Fig. 11b -> Fig. 12a
    let tank = params.tank()?;
    let natural = natural_oscillation(&f, &tank, &NaturalOptions::default())?;
    println!(
        "predicted: A = {:.4} V at {:.2} kHz",
        natural.amplitude,
        natural.frequency_hz / 1e3
    );
    let analysis = ShilAnalysis::new(&f, &tank, 3, 0.03, ShilOptions::default())?;
    let lock = analysis.lock_range()?;
    println!(
        "predicted 3rd-SHIL lock range: [{:.4}, {:.4}] MHz",
        lock.lower_injection_hz / 1e6,
        lock.upper_injection_hz / 1e6
    );

    // --- Simulation side ---------------------------------------------------
    let opts = SimOptions::default();
    let osc = DiffPairOscillator::build(params);
    let ic = [(osc.ncl, params.vcc + 0.05)];
    let sim_nat = measure_natural(
        &osc.circuit,
        osc.ncl,
        osc.ncr,
        natural.frequency_hz,
        &opts,
        &ic,
    )?;
    println!(
        "simulated: A = {:.4} V at {:.2} kHz",
        sim_nat.amplitude,
        sim_nat.frequency_hz / 1e3
    );

    // Probe lock just inside and just outside the predicted range.
    let fc = tank.center_frequency_hz();
    for (label, f_inj) in [
        ("center        ", 3.0 * fc),
        (
            "inside  upper ",
            lock.upper_injection_hz - 0.2 * lock.injection_span_hz,
        ),
        (
            "outside upper ",
            lock.upper_injection_hz + 0.5 * lock.injection_span_hz,
        ),
    ] {
        let mut o = DiffPairOscillator::build(params);
        o.set_injection(DiffPairOscillator::injection_wave(0.03, f_inj, 0.0))?;
        let locked = probe_lock(&o.circuit, o.ncl, o.ncr, f_inj, 3, &opts, &ic)?;
        println!(
            "  {label} f_inj = {:.4} MHz -> {}",
            f_inj / 1e6,
            if locked { "LOCKED" } else { "not locked" }
        );
    }
    println!("simulation confirms the predicted boundary.");
    Ok(())
}
