//! Quickstart: analyze sub-harmonic injection locking of a textbook
//! negative-resistance LC oscillator in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use shil::core::nonlinearity::NegativeTanh;
use shil::core::oscillator::Oscillator;
use shil::core::tank::{ParallelRlc, Tank};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The oscillator: i = -1 mA * tanh(20 v) across a parallel RLC tank.
    let osc = Oscillator::new(
        NegativeTanh::new(1e-3, 20.0),
        ParallelRlc::new(1000.0, 10e-6, 10e-9)?,
    );
    println!(
        "tank: f_c = {:.2} kHz, Q = {:.1}, small-signal loop gain = {:.1}",
        osc.tank().center_frequency_hz() / 1e3,
        osc.tank().q(),
        osc.small_signal_loop_gain()
    );

    // 1. Does it oscillate, and at what amplitude? (paper §II, Fig. 3)
    let natural = osc.natural_oscillation()?;
    println!(
        "natural oscillation: A = {:.4} V at {:.2} kHz ({})",
        natural.amplitude,
        natural.frequency_hz / 1e3,
        if natural.stable { "stable" } else { "unstable" }
    );

    // 2. Inject at ~3x the oscillation frequency: where does it lock?
    //    (paper §III-C, Figs. 7-10)
    let analysis = osc.shil(3, 0.03)?; // n = 3, |V_i| = 30 mV
    let lock = analysis.lock_range()?;
    println!(
        "3rd-sub-harmonic lock range: injection in [{:.4}, {:.4}] MHz (span {:.2} kHz)",
        lock.lower_injection_hz / 1e6,
        lock.upper_injection_hz / 1e6,
        lock.injection_span_hz / 1e3
    );

    // 3. Inspect the lock solutions at the center frequency.
    let solutions = analysis.solutions_at_phase(0.0)?;
    for s in &solutions {
        println!(
            "  solution: phi = {:+.3} rad, A = {:.4} V -> {}",
            s.phase,
            s.amplitude,
            if s.stable { "stable lock" } else { "unstable" }
        );
    }

    // 4. The n distinct states a locked oscillator can sit in (Fig. 9).
    let stable = solutions.iter().find(|s| s.stable).expect("stable lock");
    println!(
        "the n = 3 lock states sit at {:?} rad relative to the reference",
        analysis
            .state_phases(stable)
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
