//! The §IV-B workflow on the tunnel-diode UHF oscillator: the appendix
//! §VI-C device model, biased into its negative-resistance valley, with
//! natural-oscillation and lock-range prediction validated by simulation —
//! plus a look at how the lock state responds to a phase kick.
//!
//! Run with: `cargo run --release --example tunnel_diode`

use shil::circuit::analysis::{transient, TranOptions};
use shil::circuit::SourceWave;
use shil::core::describing::{natural_oscillation, NaturalOptions};
use shil::core::nonlinearity::Nonlinearity;
use shil::core::shil::{ShilAnalysis, ShilOptions};
use shil::core::tank::Tank;
use shil::repro::tunnel_diode::{TunnelDiodeOscillator, TunnelDiodeParams};
use shil::waveform::states::classify_states;
use shil::waveform::Sampled;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = TunnelDiodeParams::calibrated(0.199)?;
    let diode = params.biased_nonlinearity();
    println!(
        "tunnel diode biased at {} V: f'(0) = {:.3e} S (negative resistance)",
        params.v_bias,
        diode.conductance(0.0)
    );
    println!(
        "tank: R = {:.0} Ohm, f_c = {:.4} GHz",
        params.r_tank,
        params.center_frequency_hz() / 1e9
    );

    let tank = params.tank()?;
    let natural = natural_oscillation(&diode, &tank, &NaturalOptions::default())?;
    println!(
        "predicted natural oscillation: A = {:.4} V at {:.4} GHz",
        natural.amplitude,
        natural.frequency_hz / 1e9
    );

    let analysis = ShilAnalysis::new(&diode, &tank, 3, 0.03, ShilOptions::default())?;
    let lock = analysis.lock_range()?;
    println!(
        "predicted 3rd-SHIL lock range: [{:.5}, {:.5}] GHz (span {:.3} MHz)",
        lock.lower_injection_hz / 1e9,
        lock.upper_injection_hz / 1e9,
        lock.injection_span_hz / 1e6
    );

    // Lock the simulated oscillator at center frequency and kick it once:
    // it must hop to another of the three states and re-lock.
    let fc = tank.center_frequency_hz();
    let f_inj = 3.0 * fc;
    let mut osc = TunnelDiodeOscillator::build(params);
    osc.set_injection(TunnelDiodeOscillator::injection_wave(0.03, f_inj, 0.0))?;
    osc.set_kick(SourceWave::Pulse {
        v1: 0.0,
        v2: 30e-3,
        delay: 2e-6,
        rise: 1e-11,
        fall: 1e-11,
        width: 1.2e-9,
        period: f64::INFINITY,
    })?;
    let dt = 1.0 / fc / 128.0;
    let tran = TranOptions::new(dt, 3.8e-6)
        .with_ic(osc.n_tank, params.v_bias + 0.02)
        .with_ic(osc.n_diode, params.v_bias + 0.02)
        .record_after(0.3e-6);
    let res = transient(&osc.circuit, &tran)?;
    let trace = res.voltage_between(osc.n_diode, 0)?;
    let s = Sampled::from_time_series(&trace.time, &trace.values)?;
    let traj = classify_states(&s, f_inj, 3, 40)?;
    println!(
        "simulated lock states over time: visited {:?}, transition(s) at {:?} s",
        traj.visited_states(),
        traj.transition_times()
    );
    println!("the kick at 2 us hops the oscillator between the n = 3 states (Fig. 19).");
    Ok(())
}
