//! Design-space exploration: an RFIC designer sizing the injection for an
//! injection-locked frequency divider wants to know how the lock range
//! scales with injection strength and sub-harmonic order — exactly the
//! "design insight" use-case the paper motivates — then validates the
//! chosen design point with a short transient sweep.
//!
//! Run with: `cargo run --release --example lock_range_design`
//!
//! Flags:
//!
//! - `--metrics-out [path]` — enable the process-wide metric registry and
//!   write a run manifest (default `results/manifest_lock_range_design.json`)
//!   capturing cache hits, factorization reuses, Newton iterations and
//!   span timings for the whole exploration.
//! - `--quiet` — suppress the stdout report (the CSV and manifest still
//!   land on disk).

use shil::circuit::analysis::{SweepEngine, TranOptions};
use shil::circuit::{Circuit, IvCurve};
use shil::core::cache::PrecharCache;
use shil::core::nonlinearity::NegativeTanh;
use shil::core::oscillator::Oscillator;
use shil::core::tank::{ParallelRlc, Tank};
use shil::observe::{self, RunManifest};
use shil::plot::{Figure, Series};

/// `--flag` alone → `Some(default)`, `--flag path` → `Some(path)`,
/// absent → `None`.
fn optional_path(args: &[String], flag: &str, default: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => Some(default.to_string()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let metrics_out = optional_path(
        &args,
        "--metrics-out",
        "results/manifest_lock_range_design.json",
    );
    if metrics_out.is_some() {
        observe::set_enabled(true);
    }
    macro_rules! say {
        ($($arg:tt)*) => { if !quiet { println!($($arg)*); } };
    }

    let (r, l, c) = (1000.0, 10e-6, 10e-9);
    let osc = Oscillator::new(NegativeTanh::new(1e-3, 20.0), ParallelRlc::new(r, l, c)?);
    let fc = osc.tank().center_frequency_hz();
    say!(
        "oscillator: f_c = {:.1} kHz, Q = {:.1}",
        fc / 1e3,
        osc.tank().q()
    );
    let mut manifest = RunManifest::start("lock_range_design");
    manifest.push_config("f_c_hz", fc);
    manifest.push_config("tank_q", osc.tank().q());

    // Every point of a design sweep is an independent analysis, so fan
    // them out across the validation-sweep engine (deterministic,
    // input-ordered results at any thread count). One pre-characterization
    // cache is shared by the whole exploration: the natural solve runs
    // once, and revisited (n, V_i) points reuse their grids outright.
    let engine = SweepEngine::default();
    let cache = PrecharCache::new();
    say!("sweeping on {} thread(s)", engine.threads());
    manifest.push_config("threads", engine.threads() as u64);

    // Sweep injection strength at n = 3 (divider-by-3 sizing curve).
    say!("\nlock range vs injection strength (n = 3):");
    say!("  V_i (mV) | span (kHz) | span/V_i (kHz/V)");
    let vis = [0.005, 0.01, 0.02, 0.04, 0.08];
    let mut spans = Vec::new();
    for (&vi, lr) in vis.iter().zip(engine.map(&vis, |_, &vi| {
        osc.shil_cached(3, vi, &cache)
            .and_then(|an| an.lock_range())
    })) {
        match lr {
            Ok(lr) => {
                say!(
                    "  {:>8} | {:>10.3} | {:>8.1}",
                    vi * 1e3,
                    lr.injection_span_hz / 1e3,
                    lr.injection_span_hz / 1e3 / vi
                );
                spans.push((vi, lr.injection_span_hz));
            }
            Err(e) => say!("  {:>8} | no lock ({e})", vi * 1e3),
        }
    }

    // Sweep sub-harmonic order at fixed injection.
    say!("\nlock range vs sub-harmonic order (V_i = 30 mV):");
    say!("  n | injection near (MHz) | span (kHz)");
    let orders = [1u32, 2, 3, 4, 5];
    for (&n, lr) in orders.iter().zip(engine.map(&orders, |_, &n| {
        osc.shil_cached(n, 0.03, &cache)
            .and_then(|an| an.lock_range())
    })) {
        match lr {
            Ok(lr) => say!(
                "  {n} | {:>19.3} | {:>9.4}",
                n as f64 * fc / 1e6,
                lr.injection_span_hz / 1e3
            ),
            Err(e) => say!("  {n} | {:>19.3} | no lock ({e})", n as f64 * fc / 1e6),
        }
    }
    say!("\nnote the collapse at even n: an odd nonlinearity barely mixes");
    say!("even harmonics down to the fundamental — the standard reason");
    say!("divide-by-2 injection dividers add intentional asymmetry.");

    // Validate the chosen design point (n = 3, V_i = 30 mV) the way §IV
    // does: short transients of the physical oscillator across the
    // predicted band. The analysis itself is a cache *hit* — the order
    // sweep already built this grid — and the transient sweep exercises
    // the factorization-bypass path of the MNA solver.
    let design = osc.shil_cached(3, 0.03, &cache)?;
    let lock = design.lock_range()?;
    say!(
        "\ndesign point n = 3, V_i = 30 mV: lock span {:.3} kHz, validating with transients…",
        lock.injection_span_hz / 1e3
    );
    let f0 = 1.0 / (std::f64::consts::TAU * (l * c).sqrt());
    let period = 1.0 / f0;
    let scales = [0.9f64, 0.95, 1.0, 1.05];
    let sweep = engine.transient_sweep(&scales, |_, &s| {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.resistor(top, 0, r);
        ckt.inductor(top, 0, l * s);
        ckt.capacitor(top, 0, c);
        ckt.nonlinear(top, 0, IvCurve::tanh(-1e-3, 2.0 / (r * 1e-3)));
        let opts = TranOptions::new(period / 100.0, 6.0 * period)
            .use_ic()
            .with_ic(top, 1e-3);
        (ckt, opts)
    });
    say!(
        "validation transients: {} runs, {} steps, {} factorizations / {} reuses ({:.1}% reused)",
        sweep.ok_count(),
        sweep.aggregate.attempts,
        sweep.aggregate.factorizations,
        sweep.aggregate.reuses,
        1e2 * sweep.aggregate.reuse_rate()
    );
    manifest.push_config("validation_runs", sweep.ok_count() as u64);

    // Save the sizing curve.
    let fig = Figure::new("3rd-sub-harmonic lock range vs injection strength")
        .with_axis_labels("V_i (V)", "lock span (Hz)")
        .with_series(Series::line(
            "span(V_i)",
            spans.iter().map(|p| p.0).collect(),
            spans.iter().map(|p| p.1).collect(),
        ));
    std::fs::create_dir_all("results")?;
    fig.save_csv("results/lock_range_design.csv")?;
    say!("\nwrote results/lock_range_design.csv");

    if let Some(path) = &metrics_out {
        let manifest = manifest.finish(observe::global());
        manifest.write(path.as_ref())?;
        say!("wrote {path}");
    }
    Ok(())
}
