//! Design-space exploration: an RFIC designer sizing the injection for an
//! injection-locked frequency divider wants to know how the lock range
//! scales with injection strength and sub-harmonic order — exactly the
//! "design insight" use-case the paper motivates.
//!
//! Run with: `cargo run --release --example lock_range_design`

use shil::circuit::analysis::SweepEngine;
use shil::core::nonlinearity::NegativeTanh;
use shil::core::oscillator::Oscillator;
use shil::core::tank::{ParallelRlc, Tank};
use shil::plot::{Figure, Series};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let osc = Oscillator::new(
        NegativeTanh::new(1e-3, 20.0),
        ParallelRlc::new(1000.0, 10e-6, 10e-9)?,
    );
    let fc = osc.tank().center_frequency_hz();
    println!(
        "oscillator: f_c = {:.1} kHz, Q = {:.1}",
        fc / 1e3,
        osc.tank().q()
    );

    // Every point of a design sweep is an independent analysis, so fan
    // them out across the validation-sweep engine (deterministic,
    // input-ordered results at any thread count).
    let engine = SweepEngine::default();
    println!("sweeping on {} thread(s)", engine.threads());

    // Sweep injection strength at n = 3 (divider-by-3 sizing curve).
    println!("\nlock range vs injection strength (n = 3):");
    println!("  V_i (mV) | span (kHz) | span/V_i (kHz/V)");
    let vis = [0.005, 0.01, 0.02, 0.04, 0.08];
    let mut spans = Vec::new();
    for (&vi, lr) in vis
        .iter()
        .zip(engine.map(&vis, |_, &vi| osc.shil_lock_range(3, vi)))
    {
        match lr {
            Ok(lr) => {
                println!(
                    "  {:>8} | {:>10.3} | {:>8.1}",
                    vi * 1e3,
                    lr.injection_span_hz / 1e3,
                    lr.injection_span_hz / 1e3 / vi
                );
                spans.push((vi, lr.injection_span_hz));
            }
            Err(e) => println!("  {:>8} | no lock ({e})", vi * 1e3),
        }
    }

    // Sweep sub-harmonic order at fixed injection.
    println!("\nlock range vs sub-harmonic order (V_i = 30 mV):");
    println!("  n | injection near (MHz) | span (kHz)");
    let orders = [1u32, 2, 3, 4, 5];
    for (&n, lr) in orders
        .iter()
        .zip(engine.map(&orders, |_, &n| osc.shil_lock_range(n, 0.03)))
    {
        match lr {
            Ok(lr) => println!(
                "  {n} | {:>19.3} | {:>9.4}",
                n as f64 * fc / 1e6,
                lr.injection_span_hz / 1e3
            ),
            Err(e) => println!("  {n} | {:>19.3} | no lock ({e})", n as f64 * fc / 1e6),
        }
    }
    println!("\nnote the collapse at even n: an odd nonlinearity barely mixes");
    println!("even harmonics down to the fundamental — the standard reason");
    println!("divide-by-2 injection dividers add intentional asymmetry.");

    // Save the sizing curve.
    let fig = Figure::new("3rd-sub-harmonic lock range vs injection strength")
        .with_axis_labels("V_i (V)", "lock span (Hz)")
        .with_series(Series::line(
            "span(V_i)",
            spans.iter().map(|p| p.0).collect(),
            spans.iter().map(|p| p.1).collect(),
        ));
    fig.save_csv("lock_range_design.csv")?;
    println!("\nwrote lock_range_design.csv");
    Ok(())
}
