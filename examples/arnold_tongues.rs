//! Arnold-tongue atlas of the paper's tanh LC oscillator under n = 3
//! sub-harmonic injection, cross-checked against the describing-function
//! lock-range prediction.
//!
//! The adaptive atlas engine maps the (injection frequency × amplitude)
//! plane by simulation: coarse tiles first, then quadtree refinement of
//! the lock/unlock boundary only, with warm-started and early-exiting
//! interior cells. The graphical technique predicts the same boundary
//! analytically — `lock_range()` per amplitude row. The two must agree to
//! within the grid's frequency resolution wherever the paper's
//! weak-injection assumptions hold, and this example prints the
//! row-by-row comparison and saves the overlay figure the README points
//! at.
//!
//! Run with: `cargo run --release --example arnold_tongues`
//!
//! Flags:
//!
//! - `--quick` — smaller map (32×16 instead of 48×32) for a faster look.
//! - `--threads <n>` — sweep parallelism (defaults to the core count).
//! - `--quiet` — suppress the stdout report (artifacts still land).
//!
//! Writes `results/arnold_tongues.csv` and `results/arnold_tongues.svg`.

use shil::circuit::analysis::{AtlasSpec, SweepEngine};
use shil::core::cache::PrecharCache;
use shil::core::nonlinearity::NegativeTanh;
use shil::core::oscillator::Oscillator;
use shil::core::tank::{ParallelRlc, Tank};
use shil::plot::{Figure, Marker, Series};
use shil::runtime::{Budget, SweepPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    macro_rules! say {
        ($($arg:tt)*) => { if !quiet { println!($($arg)*); } };
    }

    // The validation oscillator the whole repo is calibrated on: fc ≈
    // 503 kHz, Q ≈ 31.6, third sub-harmonic injection.
    let (nx, ny, coarse) = if quick { (32, 16, 4) } else { (48, 32, 4) };
    let mut spec = AtlasSpec::paper_oscillator(nx, ny, coarse);
    // Engine-test fidelity: enough periods for the lock detector's coprime
    // windows plus confirmation streaks, seconds instead of minutes.
    spec.steps_per_period = 48;
    spec.horizon_periods = 240;
    let compiled = spec.compile()?;

    let osc = Oscillator::new(
        NegativeTanh::new(spec.i0, spec.gain),
        ParallelRlc::new(spec.r, spec.l, spec.c)?,
    );
    let fc = osc.tank().center_frequency_hz();
    say!(
        "oscillator: f_c = {:.3} kHz, Q = {:.1}; mapping {}×{} pixels around {:.3} kHz",
        fc / 1e3,
        osc.tank().q(),
        nx,
        ny,
        3.0 * fc / 1e3
    );

    let engine = SweepEngine::new(threads);
    let map = compiled.run(
        &engine,
        &SweepPolicy::default(),
        &Budget::unlimited(),
        None,
        None,
    );
    assert!(!map.cancelled, "atlas run was cancelled");
    assert_eq!(map.stats.errors, 0, "atlas run had failing cells");
    say!(
        "atlas: {} of {} pixels simulated over {} passes ({} early exits, {} warm starts)",
        map.stats.items_simulated,
        compiled.pixels(),
        map.stats.passes,
        map.stats.early_exits,
        map.stats.warm_starts
    );

    // Per amplitude row: the measured tongue edges are the outermost
    // locked pixels; the prediction is the describing-function lock range
    // at that injection amplitude. One pre-characterization cache serves
    // every row (the natural-oscillation solve runs once).
    //
    // The cross-check compares tongue *widths*: simulated edges carry a
    // common-mode frequency shift from the trapezoidal rule's dispersion
    // (Δω/ω ≈ (ω·dt)²/12 — about 0.14% at 48 steps/period, i.e. ≈2 kHz on
    // the 1.51 MHz injection carrier), which moves the whole tongue
    // without changing its span. The span must agree with the prediction
    // to within edge quantization plus the weak-injection model error,
    // and the per-row center offset must match the dispersion estimate.
    let cache = PrecharCache::new();
    let df_px = (spec.f_stop - spec.f_start) / (nx - 1) as f64;
    let warp_hz = {
        let w_dt = std::f64::consts::TAU / spec.steps_per_period as f64;
        3.0 * fc * w_dt * w_dt / 12.0
    };
    say!("\n  V_i (mV) | simulated span (kHz) | predicted span (kHz) | span err (px) | center offset (kHz)");
    let (mut vi_m, mut lo_m, mut hi_m) = (Vec::new(), Vec::new(), Vec::new());
    let (mut vi_p, mut lo_p, mut hi_p) = (Vec::new(), Vec::new(), Vec::new());
    let mut offsets = Vec::new();
    let mut compared = 0usize;
    for iy in 0..ny {
        let vi = map.amps[iy];
        let row = &map.verdicts[iy * nx..(iy + 1) * nx];
        let first = row.iter().position(|v| v.is_locked());
        let last = row.iter().rposition(|v| v.is_locked());
        if let (Some(a), Some(b)) = (first, last) {
            vi_m.push(vi);
            lo_m.push((map.freqs[a] - 3.0 * fc) / 1e3);
            hi_m.push((map.freqs[b] - 3.0 * fc) / 1e3);
        }
        let predicted = osc
            .shil_cached(spec.n, vi, &cache)
            .and_then(|an| an.lock_range());
        let Ok(lr) = predicted else { continue };
        vi_p.push(vi);
        lo_p.push((lr.lower_injection_hz - 3.0 * fc) / 1e3);
        hi_p.push((lr.upper_injection_hz - 3.0 * fc) / 1e3);
        // Compare rows where the simulated tongue sits fully inside the
        // frame (edge pixels mean the real tongue is clipped) and the
        // prediction spans more than a few pixels (below that,
        // quantization dominates).
        let (Some(a), Some(b)) = (first, last) else {
            continue;
        };
        if a == 0 || b == nx - 1 || lr.injection_span_hz < 4.0 * df_px {
            continue;
        }
        let span_m = map.freqs[b] - map.freqs[a];
        let span_err_px = (span_m - lr.injection_span_hz) / df_px;
        let center_m = 0.5 * (map.freqs[a] + map.freqs[b]);
        let center_p = 0.5 * (lr.lower_injection_hz + lr.upper_injection_hz);
        offsets.push(center_m - center_p);
        compared += 1;
        say!(
            "  {:>8.1} | {:>20.3} | {:>20.3} | {:>+13.2} | {:>+19.3}",
            vi * 1e3,
            span_m / 1e3,
            lr.injection_span_hz / 1e3,
            span_err_px,
            (center_m - center_p) / 1e3
        );
        // Edge quantization contributes up to ±1 pixel per edge; grant the
        // weak-injection formula 20% on top before calling it a failure.
        assert!(
            span_err_px.abs() <= 2.0 + 0.2 * lr.injection_span_hz / df_px,
            "V_i = {vi}: simulated span {span_m:.0} Hz vs predicted {:.0} Hz",
            lr.injection_span_hz
        );
    }
    assert!(compared > 0, "no rows wide enough to cross-check");
    let mean_offset = offsets.iter().sum::<f64>() / offsets.len() as f64;
    say!(
        "\ncross-checked {compared} rows ({:.0} Hz/pixel): spans agree; mean center \
         offset {:+.3} kHz vs {:+.3} kHz trapezoidal-dispersion estimate",
        df_px,
        mean_offset / 1e3,
        -warp_hz / 1e3
    );

    // The overlay the README points at: simulated tongue edges (markers)
    // against the predicted lock-range boundary (lines), both as offsets
    // from the n·f_c injection carrier.
    let fig = Figure::new("Arnold tongue: simulated atlas vs describing-function prediction")
        .with_axis_labels("V_i (V)", "f_inj − 3·f_c (kHz)")
        .with_series(Series::line("predicted lower", vi_p.clone(), lo_p))
        .with_series(Series::line("predicted upper", vi_p, hi_p))
        .with_series(Series::scatter(
            "simulated lower",
            vi_m.clone(),
            lo_m,
            Marker::Circle,
        ))
        .with_series(Series::scatter(
            "simulated upper",
            vi_m,
            hi_m,
            Marker::Cross,
        ));
    std::fs::create_dir_all("results")?;
    fig.save_csv("results/arnold_tongues.csv")?;
    fig.save_svg("results/arnold_tongues.svg", 900, 560)?;
    say!("\nwrote results/arnold_tongues.csv and results/arnold_tongues.svg");
    Ok(())
}
