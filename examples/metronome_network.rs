//! Metronomes on a table: mutual sub-harmonic injection locking in a ring
//! of detuned tanh LC oscillators.
//!
//! Eight oscillators with natural frequencies spread over ±0.4% are
//! coupled around a ring through resistors. Each oscillator injects into
//! its neighbours through the coupling element, so the network is the
//! many-body version of the paper's single-oscillator injection-locking
//! experiment: weak coupling (large resistance) leaves every tank at its
//! own detuned frequency, strong coupling (small resistance) pulls the
//! whole ring onto one consensus frequency with frozen pairwise phase
//! offsets — the metronome synchronization everyone has seen on a shaky
//! table.
//!
//! The example sweeps the coupling resistance across the transition,
//! classifies every point with the network lock analyzer
//! (`probe_network_lock`: per-oscillator windowed phase drift against the
//! consensus frequency, then pairwise relative-phase drift), and asserts
//! both verdicts appear. It then repeats representative points — including
//! a ring large enough that the MNA system exceeds the GMRES tier's
//! direct-solve floor — under `SolverKind::Iterative` (GMRES + ILU(0))
//! and `SolverKind::Sparse` (sparse LU) and asserts the two solver tiers
//! produce *zero* lock-verdict differences: same mutual verdict, same
//! locked fraction, same per-pair classification at every point.
//!
//! Run with: `cargo run --release --example metronome_network`
//!
//! Flags:
//!
//! - `--quick` — shorter transients and a smaller cross-check ring.
//! - `--threads <n>` — sweep parallelism (defaults to the core count).
//! - `--quiet` — suppress the stdout report (artifacts still land).
//!
//! Writes `results/metronome_network.csv`.

use shil::circuit::analysis::{SolverKind, SweepEngine};
use shil::circuit::mna::MnaStructure;
use shil::circuit::network::{
    coupling_strength_sweep, Coupling, NetworkLockOptions, NetworkLockReport, NetworkSpec, Topology,
};
use shil::numerics::iterative::GmresSolver;
use shil::waveform::lock::LockOptions;

/// Lock options sized so the analysis windows fit the recorded tail even
/// when consensus settles below the nominal mean frequency (detuned rings
/// drag the consensus down, stretching the real period past the one the
/// recording was sized with).
fn lock_options(record_periods: f64) -> NetworkLockOptions {
    let ppw = ((0.9 * record_periods / 6.0).floor() as usize).max(2);
    NetworkLockOptions {
        lock: LockOptions {
            windows: 6,
            periods_per_window: ppw,
            ..LockOptions::default()
        },
        ..NetworkLockOptions::default()
    }
}

/// Transient window shared by both solver tiers in a cross-check.
struct TranWindow {
    settle: f64,
    record: f64,
    ppp: usize,
}

/// Runs the coupling sweep with an explicit solver tier; the library
/// helper `coupling_strength_sweep` covers the default (`Auto`) path.
fn sweep_with_solver(
    base: &NetworkSpec,
    strengths: &[f64],
    engine: &SweepEngine,
    solver: SolverKind,
    window: &TranWindow,
    lock_opts: &NetworkLockOptions,
) -> Vec<NetworkLockReport> {
    engine.map(strengths, |_, &strength| {
        let mut spec = base.clone();
        spec.coupling =
            Coupling::parse(base.coupling.kind(), strength).expect("kind strings re-parse");
        let net = spec.build().expect("network build");
        let mut opts = net.transient_options(window.settle, window.record, window.ppp);
        opts.solver = solver;
        let result = net.simulate(&opts).expect("transient");
        net.probe_lock(&result, lock_opts).expect("lock analysis")
    })
}

/// Asserts two lock reports carry identical verdicts at every level.
fn assert_same_verdicts(tag: &str, a: &NetworkLockReport, b: &NetworkLockReport) {
    assert_eq!(
        a.mutual_lock, b.mutual_lock,
        "{tag}: mutual verdict differs"
    );
    assert_eq!(
        a.locked_fraction, b.locked_fraction,
        "{tag}: locked fraction differs"
    );
    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!(
            (pa.a, pa.b, pa.locked),
            (pb.a, pb.b, pb.locked),
            "{tag}: pair ({},{}) verdict differs",
            pa.a,
            pa.b
        );
    }
    for (oa, ob) in a.oscillators.iter().zip(&b.oscillators) {
        assert_eq!(
            oa.locked, ob.locked,
            "{tag}: oscillator {} verdict differs",
            oa.index
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    macro_rules! say {
        ($($arg:tt)*) => { if !quiet { println!($($arg)*); } };
    }

    // Eight metronomes around a ring, natural frequencies fanned over
    // ±0.4% — close enough to lock under strong coupling, far enough
    // apart to free-run under weak coupling.
    let n = 8;
    let detuning: Vec<f64> = (0..n)
        .map(|i| -0.004 + 0.008 * i as f64 / (n - 1) as f64)
        .collect();
    let base = NetworkSpec::new(n, Topology::Ring, Coupling::Resistive { ohms: 1e3 })
        .with_detuning(detuning);
    let net = base.build()?;
    say!(
        "ring of {} oscillators: f_natural {:.3}–{:.3} kHz (mean {:.3} kHz), {} coupled pairs",
        n,
        net.f_natural.iter().cloned().fold(f64::INFINITY, f64::min) / 1e3,
        net.f_natural.iter().cloned().fold(0.0f64, f64::max) / 1e3,
        net.f_mean() / 1e3,
        net.pairs.len()
    );

    // Strong → weak coupling across the lock transition. Resistive
    // coupling strength is the resistance: small ohms = strong coupling.
    let strengths = [5e2, 1e3, 2e3, 5e3, 1e4, 3e4, 1e5, 3e5];
    let (settle, record) = if quick { (120.0, 60.0) } else { (200.0, 120.0) };
    let ppp = 64;
    let lock_opts = lock_options(record);
    let engine = SweepEngine::new(threads);

    let swept =
        coupling_strength_sweep(&base, &strengths, &engine, settle, record, ppp, &lock_opts);
    say!("\n  R_c (ohm) | mutual | locked osc | locked pairs | consensus (kHz)");
    let mut rows = Vec::new();
    let (mut saw_locked, mut saw_unlocked) = (false, false);
    for (strength, outcome) in &swept {
        let report = outcome
            .as_ref()
            .map_err(|e| format!("R_c = {strength}: {e}"))?;
        saw_locked |= report.mutual_lock;
        saw_unlocked |= !report.mutual_lock;
        let locked_pairs = report.pairs.iter().filter(|p| p.locked).count();
        say!(
            "  {:>9.0} | {:>6} | {:>6.0}/{:<3} | {:>8}/{:<3} | {:>15.3}",
            strength,
            if report.mutual_lock { "LOCK" } else { "--" },
            report.locked_fraction * n as f64,
            n,
            locked_pairs,
            report.pairs.len(),
            report.consensus_frequency_hz / 1e3
        );
        rows.push(format!(
            "{:e},{},{:.6},{},{},{:.6e}",
            strength,
            report.mutual_lock as u8,
            report.locked_fraction,
            locked_pairs,
            report.pairs.len(),
            report.consensus_frequency_hz
        ));
    }
    assert!(
        saw_locked && saw_unlocked,
        "the swept strengths must straddle the lock transition"
    );
    say!(
        "\nthe ring locks under strong coupling and free-runs under weak coupling — \
         the metronome transition"
    );

    // Solver-tier cross-check on the 8-ring: GMRES+ILU(0) vs sparse LU
    // must agree on every verdict at every swept strength. At this size
    // the iterative tier serves the solves through its small-system
    // direct path, so agreement is exact by construction — the check
    // pins the dispatch plumbing.
    let window = TranWindow {
        settle,
        record,
        ppp,
    };
    let sparse = sweep_with_solver(
        &base,
        &strengths,
        &engine,
        SolverKind::Sparse,
        &window,
        &lock_opts,
    );
    let iterative = sweep_with_solver(
        &base,
        &strengths,
        &engine,
        SolverKind::Iterative,
        &window,
        &lock_opts,
    );
    for ((strength, sp), it) in strengths.iter().zip(&sparse).zip(&iterative) {
        assert_same_verdicts(&format!("8-ring, R_c = {strength}"), sp, it);
    }
    say!(
        "solver cross-check (N = {n}): zero lock-verdict differences between \
         GMRES+ILU(0) and sparse LU across {} strengths",
        strengths.len()
    );

    // The same cross-check on a ring big enough that the MNA system
    // clears the GMRES tier's direct-solve floor, so true restarted
    // GMRES iterations decide every Newton step. One strength on each
    // side of the transition keeps the runtime honest.
    let big_n = if quick { 36 } else { 48 };
    let big_detuning: Vec<f64> = (0..big_n)
        .map(|i| -0.003 + 0.006 * i as f64 / (big_n - 1) as f64)
        .collect();
    let big = NetworkSpec::new(big_n, Topology::Ring, Coupling::Resistive { ohms: 1e3 })
        .with_detuning(big_detuning);
    let unknowns = MnaStructure::new(&big.build()?.circuit).size();
    assert!(
        unknowns >= GmresSolver::DIRECT_BELOW_DIM,
        "cross-check ring too small to exercise GMRES ({unknowns} unknowns)"
    );
    let big_strengths = [5e2, 2e5];
    let (big_settle, big_record) = if quick { (80.0, 48.0) } else { (120.0, 60.0) };
    let big_lock = lock_options(big_record);
    let big_window = TranWindow {
        settle: big_settle,
        record: big_record,
        ppp,
    };
    let sparse = sweep_with_solver(
        &big,
        &big_strengths,
        &engine,
        SolverKind::Sparse,
        &big_window,
        &big_lock,
    );
    let iterative = sweep_with_solver(
        &big,
        &big_strengths,
        &engine,
        SolverKind::Iterative,
        &big_window,
        &big_lock,
    );
    for ((strength, sp), it) in big_strengths.iter().zip(&sparse).zip(&iterative) {
        assert_same_verdicts(&format!("{big_n}-ring, R_c = {strength}"), sp, it);
    }
    say!(
        "solver cross-check (N = {big_n}, {unknowns} unknowns — above the GMRES \
         direct-solve floor of {}): zero lock-verdict differences at R_c = {:?}",
        GmresSolver::DIRECT_BELOW_DIM,
        big_strengths
    );

    std::fs::create_dir_all("results")?;
    let csv = format!(
        "strength_ohm,mutual_lock,locked_fraction,locked_pairs,total_pairs,consensus_hz\n{}\n",
        rows.join("\n")
    );
    std::fs::write("results/metronome_network.csv", csv)?;
    say!("\nwrote results/metronome_network.csv");
    Ok(())
}
