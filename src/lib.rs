//! Umbrella crate for the `shil` workspace — a Rust reproduction of
//! *"A Rigorous Graphical Technique for Predicting Sub-harmonic Injection
//! Locking in LC Oscillators"* (DAC 2014).
//!
//! This crate re-exports the workspace members under stable module names so
//! that examples and downstream users need a single dependency:
//!
//! - [`core`] — the analysis engine (describing functions, SHIL solver,
//!   lock-range prediction). This is the paper's contribution.
//! - [`circuit`] — a SPICE-like MNA transient/DC/AC simulator used as the
//!   validation substrate (the paper used NGSPICE).
//! - [`waveform`] — post-processing of transient waveforms (amplitude,
//!   frequency, lock detection, SHIL state classification).
//! - [`numerics`] — the shared numerical kernel.
//! - [`observe`] — zero-dependency metrics, span timers, structured events
//!   and run manifests, wired through every layer above.
//! - [`runtime`] — execution control: deadlines and cooperative cancellation
//!   ([`runtime::Budget`]), panic isolation, sweep retry policy, and durable
//!   checkpoint/resume for long-running sweeps.
//! - [`serve`] — a crash-tolerant HTTP job service over the stack:
//!   bounded admission, per-job deadlines, graceful drain, and
//!   checkpoint-backed restart recovery (`shil-cli serve`).
//! - [`plot`] — ASCII/SVG/CSV rendering of the graphical procedure.
//!
//! # Quickstart
//!
//! Predict the natural oscillation amplitude and the 3rd-subharmonic lock
//! range of a `−tanh` negative-resistance LC oscillator:
//!
//! ```
//! use shil::core::nonlinearity::NegativeTanh;
//! use shil::core::tank::ParallelRlc;
//! use shil::core::oscillator::Oscillator;
//!
//! # fn main() -> Result<(), shil::core::ShilError> {
//! let tank = ParallelRlc::new(1000.0, 10e-6, 10e-9)?; // R = 1 kΩ, L = 10 µH, C = 10 nF
//! let osc = Oscillator::new(NegativeTanh::new(1e-3, 20.0), tank);
//!
//! let natural = osc.natural_oscillation()?;
//! assert!(natural.amplitude > 0.0);
//!
//! let lock = osc.shil_lock_range(3, 0.03)?; // n = 3, |V_i| = 30 mV
//! assert!(lock.upper_injection_hz > lock.lower_injection_hz);
//! # Ok(())
//! # }
//! ```

pub mod repro;

pub use shil_circuit as circuit;
pub use shil_core as core;
pub use shil_numerics as numerics;
pub use shil_observe as observe;
pub use shil_plot as plot;
pub use shil_runtime as runtime;
pub use shil_serve as serve;
pub use shil_waveform as waveform;
