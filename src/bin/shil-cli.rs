//! `shil-cli` — run circuit analyses on SPICE-flavoured netlist files.
//!
//! ```text
//! shil-cli op <file.cir>
//! shil-cli tran <file.cir> --dt 2e-8 --stop 2e-4 --probe <node> [--probe <node>]
//!          [--timeout <s>] [--csv out.csv]
//! shil-cli ac <file.cir> --port <node-a> <node-b> --from 1e5 --to 1e6 --points 200 [--csv out.csv]
//! shil-cli sweep <file.cir> --dt 2e-8 --stop 2e-4 --probe <node> --scale 0.5,1,2
//!          [--backend scalar|batched|auto] [--threads <n>] [--timeout <s>]
//!          [--item-timeout <s>] [--retries <n>]
//!          [--checkpoint [path]] [--resume] [--csv out.csv]
//! ```
//!
//! `sweep` re-runs the transient once per `--scale` factor, with every
//! independent source scaled by that factor, and reports each probe's final
//! voltage plus a deterministic whole-sweep aggregate. Execution is
//! policy-driven (`shil_runtime`): `--timeout` bounds the whole sweep,
//! `--item-timeout` each run, `--retries` grants extra attempts, and
//! `--checkpoint`/`--resume` make the sweep durable — a killed run resumes
//! where it stopped with bit-identical results. `--backend` picks the sweep
//! execution backend: `scalar` runs one transient per thread, `batched`
//! advances lanes of scale variants in lock-step through the shared sparse
//! structure, and `auto` (the default) chooses from the point count. All
//! backends produce bit-identical results.
//!
//! `sweep` exits with the worst per-item outcome's code from the
//! six-way `shil_runtime::ItemOutcome` taxonomy: `0` ok, `10` degraded,
//! `11` failed, `12` timed out, `13` panicked, `14` cancelled (`1` and `2`
//! stay reserved for I/O errors and usage errors respectively).
//!
//! ```text
//! shil-cli atlas [--nx <n>] [--ny <n>] [--coarse <n>] [--spp <n>] [--horizon <periods>]
//!          [--n <order>] [--no-early-exit] [--no-warm-start] [--threads <n>]
//!          [--timeout <s>] [--item-timeout <s>] [--retries <n>]
//!          [--checkpoint [path]] [--resume] [--csv out.csv] [--progress]
//! ```
//!
//! `atlas` maps the Arnold tongue of the paper's tanh LC oscillator under
//! sub-harmonic injection: an adaptive (amplitude × frequency) lock map
//! that refines only the lock/unlock boundary, warm-starts refined cells
//! from their parents, and cuts each transient short once its verdict is
//! confirmed (`shil_circuit::analysis::AtlasSpec`). Output is one CSV row
//! per pixel plus a deterministic aggregate footer. Exit codes follow the
//! sweep taxonomy (`14` if the deadline cancelled refinement, `11` if any
//! cell failed outright).
//!
//! `--progress` (also on `sweep`) publishes items-done/ETA as the
//! `shil_sweep_eta_s` gauge and prints progress lines to stderr; the lines
//! are suppressed under `--quiet` and default off in JSONL (`--events-out`)
//! mode, where the event stream itself carries progress.
//!
//! ```text
//! shil-cli network [--n <count>] [--topology chain|ring|star|all-to-all]
//!          [--coupling resistive|capacitive|mutual] --strength <v[,v...]>
//!          [--detune <d[,d...]>] [--settle <periods>] [--record <periods>]
//!          [--ppp <samples>] [--solver auto|dense|sparse|iterative]
//!          [--threads <n>] [--csv out.csv]
//! ```
//!
//! `network` builds a coupled-oscillator network
//! (`shil_circuit::network`): `--n` tanh LC oscillators wired by
//! `--topology`, coupled by the `--coupling` element at each swept
//! `--strength` (ohms, farads, or coupling coefficient `k`), optionally
//! detuned per oscillator by the cyclic `--detune` list. Each strength
//! runs one transient (`--settle` mean periods discarded, `--record`
//! analyzed at `--ppp` samples per period) and reports the network lock
//! classification: per-oscillator lock against the consensus frequency,
//! pairwise relative-phase stationarity, and the mutual-lock verdict.
//! `--solver` forces the transient's linear-solver tier (the three-tier
//! `auto` ladder is the default) — CI uses this to check that the
//! iterative GMRES+ILU tier produces the same verdicts as sparse LU.
//!
//! ```text
//! shil-cli serve [--addr <ip:port>] [--data-dir <dir>] [--queue <n>]
//!          [--workers <n>] [--http-threads <n>] [--cache <entries>]
//!          [--max-body <bytes>] [--grace <s>] [--sweep-threads <n>]
//! ```
//!
//! `serve` runs the crash-tolerant HTTP job service (`shil_serve`): it
//! prints `listening <addr>` on stdout (and persists it to
//! `<data-dir>/addr.txt`), then serves until `SIGTERM`/`SIGINT`, at which
//! point it drains gracefully — running jobs get `--grace` seconds to
//! finish, stragglers park back to the queue with their checkpoints and
//! resume bit-identically on the next start.
//!
//! Global flags (any subcommand):
//!
//! - `--quiet` — suppress progress events on stderr (errors still show;
//!   data output on stdout is unaffected).
//! - `--metrics-out [path]` — enable the process-wide metric registry and
//!   write a run manifest (default `results/manifest_shil_cli.json`).
//! - `--events-out [path]` — additionally mirror every progress event to a
//!   JSONL file (default `results/events_shil_cli.jsonl`).
//!
//! See `shil_circuit::netlist` for the accepted netlist cards.

use std::process::ExitCode;
use std::time::Duration;

use shil::circuit::analysis::{
    ac_impedance, operating_point, transient, AcOptions, AtlasMap, AtlasSpec, BackendChoice,
    NetlistSweepSpec, OpOptions, SolverKind, SweepEngine, TranOptions,
};
use shil::circuit::network::{Coupling, NetworkLockOptions, NetworkSpec, Topology};
use shil::circuit::{netlist, Circuit, SolveReport};
use shil::observe::{self, EventLog, RunManifest};
use shil::runtime::shutdown::{install_shutdown_handler, shutdown_requested};
use shil::runtime::{Budget, CheckpointFile, ItemOutcome, SweepPolicy};
use shil::serve::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  shil-cli op <file.cir>\n  shil-cli tran <file.cir> --dt <s> --stop <s> \
         --probe <node> [--probe <node>] [--timeout <s>] [--csv <out>]\n  shil-cli ac <file.cir> \
         --port <a> <b> --from <hz> --to <hz> [--points <n>] [--csv <out>]\n  shil-cli sweep \
         <file.cir> --dt <s> --stop <s> --probe <node> [--probe <node>] --scale <k[,k...]> \
         [--backend scalar|batched|auto] [--threads <n>] [--timeout <s>] [--item-timeout <s>] \
         [--retries <n>] [--checkpoint [path]] [--resume] [--csv <out>] [--progress]\n  \
         shil-cli atlas [--nx <n>] [--ny <n>] [--coarse <n>] [--spp <n>] \
         [--horizon <periods>] [--n <order>] [--no-early-exit] [--no-warm-start] \
         [--threads <n>] [--timeout <s>] [--item-timeout <s>] [--retries <n>] \
         [--checkpoint [path]] [--resume] [--csv <out>] [--progress]\n  shil-cli network \
         [--n <count>] [--topology chain|ring|star|all-to-all] \
         [--coupling resistive|capacitive|mutual] --strength <v[,v...]> [--detune <d[,d...]>] \
         [--settle <periods>] [--record <periods>] [--ppp <samples>] \
         [--solver auto|dense|sparse|iterative] [--threads <n>] [--csv <out>]\n  shil-cli serve \
         [--addr <ip:port>] [--data-dir <dir>] [--queue <n>] [--workers <n>] \
         [--http-threads <n>] [--cache <entries>] [--max-body <bytes>] [--grace <s>] \
         [--sweep-threads <n>] [--quarantine-after <n>] [--allow-chaos] \
         [--chaos-storage <rate>:<seed>]\n\
         global flags: [--quiet] [--metrics-out [path]] [--events-out [path]]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
        }
    }
    out
}

/// A flag whose value is optional: absent → `None`, `--flag` alone →
/// `Some(default)`, `--flag path` → `Some(path)`. A following token that
/// looks like another flag does not count as the value.
fn optional_path(args: &[String], flag: &str, default: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => Some(default.to_string()),
    }
}

/// `--progress` lines go to stderr only when a human is plausibly watching
/// it: `--quiet` silences them like every other progress event, and in
/// JSONL (`--events-out`) mode the event stream itself carries progress, so
/// the stderr ticker defaults off. The `shil_sweep_eta_s` gauge is
/// published either way.
fn progress_silent(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quiet" || a == "--events-out")
}

/// Items-done/ETA watcher behind `--progress`: samples the process-wide
/// metric registry for a per-item counter, publishes the remaining-time
/// estimate as the `shil_sweep_eta_s` gauge, and (unless silenced) prints
/// progress lines to stderr.
struct Progress {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Progress {
    /// `total` is the item count the run converges to — for adaptive runs
    /// an upper bound, which makes the ETA conservative.
    fn spawn(counter: &'static str, total: usize, silent: bool) -> Progress {
        // The watcher reads the same registry the engines write to, so
        // metrics must be on even without `--metrics-out`.
        observe::set_enabled(true);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        // Counters are process-cumulative; progress is relative to the
        // count at spawn time.
        let base = observe::snapshot().counter(counter);
        let started = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            let mut last = u64::MAX;
            while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(200));
                let done = observe::snapshot().counter(counter).saturating_sub(base);
                let eta = if done == 0 || done as usize >= total {
                    0.0
                } else {
                    let remaining = (total - done as usize) as f64;
                    started.elapsed().as_secs_f64() * remaining / done as f64
                };
                observe::gauge_set("shil_sweep_eta_s", eta);
                if !silent && done != last {
                    eprintln!("progress {done}/{total} items, eta {eta:.1}s");
                    last = done;
                }
            }
            observe::gauge_set("shil_sweep_eta_s", 0.0);
        });
        Progress {
            stop,
            handle: Some(handle),
        }
    }

    fn finish(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn load(path: &str, log: &EventLog) -> Result<Circuit, ()> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        log.error(
            "netlist_read_failed",
            &[("path", path.into()), ("error", e.to_string().into())],
        );
    })?;
    netlist::parse(&text).map_err(|e| {
        log.error(
            "netlist_parse_failed",
            &[("path", path.into()), ("error", e.to_string().into())],
        );
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let metrics_out = optional_path(&args, "--metrics-out", "results/manifest_shil_cli.json");
    let events_out = optional_path(&args, "--events-out", "results/events_shil_cli.jsonl");
    if metrics_out.is_some() {
        observe::set_enabled(true);
    }
    let log = match &events_out {
        Some(path) => match EventLog::to_path(path.as_ref(), quiet) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("cannot open event log {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => EventLog::terminal(quiet),
    };

    let mut manifest = RunManifest::start("shil-cli");
    manifest.push_config("quiet", quiet);
    if let Some(cmd) = args.first() {
        manifest.push_config("command", cmd.as_str());
    }
    if let Some(file) = args.get(1) {
        manifest.push_config("netlist", file.as_str());
    }

    let code = run(&args, &log);

    if let Some(path) = &metrics_out {
        let manifest = manifest.finish(observe::global());
        match manifest.write(path.as_ref()) {
            Ok(()) => log.info("manifest_written", &[("path", path.as_str().into())]),
            Err(e) => {
                log.error(
                    "manifest_write_failed",
                    &[
                        ("path", path.as_str().into()),
                        ("error", e.to_string().into()),
                    ],
                );
                return ExitCode::FAILURE;
            }
        }
    }
    code
}

fn run(args: &[String], log: &EventLog) -> ExitCode {
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "serve" {
        return serve_cmd(&args[1..], log);
    }
    // `atlas` synthesises the paper oscillator itself, so like `serve` it
    // takes no netlist file.
    if cmd == "atlas" {
        return atlas_cmd(&args[1..], log, progress_silent(args));
    }
    // `network` synthesises its coupled-oscillator circuit too.
    if cmd == "network" {
        return network_cmd(&args[1..], log);
    }
    let Some(file) = args.get(1) else {
        return usage();
    };
    let Ok(ckt) = load(file, log) else {
        return ExitCode::FAILURE;
    };
    log.info(
        "netlist_loaded",
        &[
            ("path", file.as_str().into()),
            ("nodes", (ckt.num_nodes() as u64).into()),
        ],
    );
    let rest = &args[2..];
    match cmd.as_str() {
        "op" => {
            let op = match operating_point(&ckt, &OpOptions::default()) {
                Ok(op) => op,
                Err(e) => {
                    log.error("op_failed", &[("error", e.to_string().into())]);
                    return ExitCode::FAILURE;
                }
            };
            log.info(
                "op_solved",
                &[("attempts", (op.report.attempts as u64).into())],
            );
            println!("node voltages:");
            for id in 1..ckt.num_nodes() {
                println!(
                    "  {:>12} = {:.9e} V",
                    ckt.node_name(id),
                    op.node_voltage(id)
                );
            }
            ExitCode::SUCCESS
        }
        "tran" => {
            let (Some(dt), Some(stop)) = (
                flag_value(rest, "--dt").and_then(|v| v.parse::<f64>().ok()),
                flag_value(rest, "--stop").and_then(|v| v.parse::<f64>().ok()),
            ) else {
                return usage();
            };
            let probes: Vec<String> = flag_values(rest, "--probe");
            if probes.is_empty() {
                log.error("tran_needs_probe", &[]);
                return ExitCode::from(2);
            }
            let mut probe_ids = Vec::new();
            for p in &probes {
                match ckt.find_node(p) {
                    Some(id) => probe_ids.push(id),
                    None => {
                        log.error("unknown_probe_node", &[("node", p.as_str().into())]);
                        return ExitCode::FAILURE;
                    }
                }
            }
            log.info(
                "tran_started",
                &[("dt_s", dt.into()), ("stop_s", stop.into())],
            );
            let mut opts = TranOptions::new(dt, stop);
            if let Some(t) = flag_value(rest, "--timeout").and_then(|v| v.parse::<f64>().ok()) {
                opts = opts.with_budget(Budget::with_deadline(Duration::from_secs_f64(t)));
            }
            let res = match transient(&ckt, &opts) {
                Ok(r) => r,
                Err(e) => {
                    log.error("tran_failed", &[("error", e.to_string().into())]);
                    return ExitCode::FAILURE;
                }
            };
            log.info(
                "tran_finished",
                &[
                    ("steps", (res.time.len() as u64).into()),
                    ("attempts", (res.report.attempts as u64).into()),
                    ("reuses", (res.report.reuses as u64).into()),
                ],
            );
            let mut out = String::from("t");
            for p in &probes {
                out.push(',');
                out.push_str(p);
            }
            out.push('\n');
            for k in 0..res.time.len() {
                out.push_str(&format!("{:e}", res.time[k]));
                for &id in &probe_ids {
                    let v = res.node_voltage(id).expect("probed node");
                    out.push_str(&format!(",{:e}", v[k]));
                }
                out.push('\n');
            }
            emit(rest, &out, log)
        }
        "sweep" => {
            let (Some(dt), Some(stop)) = (
                flag_value(rest, "--dt").and_then(|v| v.parse::<f64>().ok()),
                flag_value(rest, "--stop").and_then(|v| v.parse::<f64>().ok()),
            ) else {
                return usage();
            };
            let probes: Vec<String> = flag_values(rest, "--probe");
            if probes.is_empty() {
                log.error("sweep_needs_probe", &[]);
                return ExitCode::from(2);
            }
            let scales: Vec<f64> = flag_values(rest, "--scale")
                .iter()
                .flat_map(|v| v.split(','))
                .filter_map(|v| v.trim().parse::<f64>().ok())
                .collect();
            if scales.is_empty() {
                log.error("sweep_needs_scale", &[]);
                return ExitCode::from(2);
            }
            let threads = flag_value(rest, "--threads").and_then(|v| v.parse::<usize>().ok());
            let backend = match flag_value(rest, "--backend").as_deref() {
                None | Some("auto") => BackendChoice::Auto,
                Some("scalar") => BackendChoice::Scalar,
                Some("batched") => BackendChoice::Batched {
                    lanes: BackendChoice::AUTO_LANES,
                },
                Some(other) => {
                    log.error("unknown_backend", &[("backend", other.into())]);
                    return ExitCode::from(2);
                }
            };
            let secs = |flag: &str| {
                flag_value(rest, flag)
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(Duration::from_secs_f64)
            };
            let policy = SweepPolicy {
                deadline: secs("--timeout"),
                item_timeout: secs("--item-timeout"),
                max_retries: flag_value(rest, "--retries")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(0),
                ..SweepPolicy::default()
            };
            // The declarative spec is the same validated path `shil-cli
            // serve` jobs run through; compiling it front-loads netlist,
            // probe and grid errors.
            let Ok(text) = std::fs::read_to_string(file) else {
                return ExitCode::FAILURE;
            };
            let spec = NetlistSweepSpec {
                netlist: text,
                dt,
                stop,
                probes: probes.clone(),
                scales: scales.clone(),
            };
            let compiled = match spec.compile() {
                Ok(c) => c,
                Err(e) => {
                    log.error("sweep_spec_invalid", &[("error", e.to_string().into())]);
                    return ExitCode::FAILURE;
                }
            };
            let resume = rest.iter().any(|a| a == "--resume");
            let checkpoint_path = optional_path(
                rest,
                "--checkpoint",
                "results/checkpoint_shil_cli_sweep.jsonl",
            );
            let checkpoint_file = match &checkpoint_path {
                Some(path) => {
                    if !resume {
                        // A fresh (non-resume) run must not inherit records.
                        let _ = std::fs::remove_file(path);
                    }
                    // The checkpoint is bound to the sweep's exact inputs:
                    // netlist text, time grid and scale factors.
                    let fp = compiled.fingerprint();
                    match CheckpointFile::open(path.as_ref(), &fp, scales.len()) {
                        Ok(cp) => Some(cp),
                        Err(e) => {
                            log.error(
                                "checkpoint_open_failed",
                                &[
                                    ("path", path.as_str().into()),
                                    ("error", e.to_string().into()),
                                ],
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => None,
            };
            log.info(
                "sweep_started",
                &[
                    ("points", (scales.len() as u64).into()),
                    ("backend", format!("{backend:?}").into()),
                    (
                        "restored",
                        (checkpoint_file.as_ref().map_or(0, |cp| cp.restored().len()) as u64)
                            .into(),
                    ),
                ],
            );
            let engine = SweepEngine::new(threads).with_backend(backend);
            let watcher = rest.iter().any(|a| a == "--progress").then(|| {
                Progress::spawn(
                    "shil_sweep_items_total",
                    scales.len(),
                    progress_silent(args),
                )
            });
            let sweep = compiled.run(
                &engine,
                &policy,
                &Budget::unlimited(),
                checkpoint_file.as_ref(),
            );
            if let Some(w) = watcher {
                w.finish();
            }
            log.info(
                "sweep_finished",
                &[
                    ("ok", (sweep.ok_count() as u64).into()),
                    ("cancelled", sweep.cancelled.into()),
                ],
            );
            let mut out = String::from("scale,outcome,tries,restored");
            for p in &probes {
                out.push_str(&format!(",v({p})"));
            }
            out.push('\n');
            for (scale, item) in scales.iter().zip(&sweep.items) {
                out.push_str(&format!(
                    "{:e},{},{},{}",
                    scale,
                    item.outcome,
                    item.tries,
                    u8::from(item.restored)
                ));
                match &item.value {
                    Some(finals) => {
                        for v in finals {
                            out.push_str(&format!(",{v:e}"));
                        }
                    }
                    None => {
                        for _ in &probes {
                            out.push(',');
                        }
                    }
                }
                out.push('\n');
            }
            out.push_str(&aggregate_line(&sweep.aggregate, sweep.ok_count()));
            // Exit with the worst item's outcome from the six-way taxonomy
            // (0 ok, 10 degraded, 11 failed, 12 timed out, 13 panicked,
            // 14 cancelled); emit failures keep their own code.
            let worst = ItemOutcome::worst(sweep.items.iter().map(|i| i.outcome));
            let emitted = emit(rest, &out, log);
            match worst {
                ItemOutcome::Ok => emitted,
                other => ExitCode::from(other.exit_code()),
            }
        }
        "ac" => {
            let ports = flag_values(rest, "--port");
            let port_b = rest
                .iter()
                .position(|a| a == "--port")
                .and_then(|i| rest.get(i + 2))
                .cloned();
            let (Some(pa), Some(pb)) = (ports.first().cloned(), port_b) else {
                log.error("ac_needs_port_pair", &[]);
                return ExitCode::from(2);
            };
            let (Some(from), Some(to)) = (
                flag_value(rest, "--from").and_then(|v| v.parse::<f64>().ok()),
                flag_value(rest, "--to").and_then(|v| v.parse::<f64>().ok()),
            ) else {
                return usage();
            };
            let points = flag_value(rest, "--points")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(100)
                .max(2);
            let node = |name: &str| {
                if name == "0" {
                    Some(Circuit::GROUND)
                } else {
                    ckt.find_node(name)
                }
            };
            let (Some(a), Some(b)) = (node(&pa), node(&pb)) else {
                log.error("unknown_port_node", &[]);
                return ExitCode::FAILURE;
            };
            let freqs: Vec<f64> = (0..points)
                .map(|k| from * (to / from).powf(k as f64 / (points - 1) as f64))
                .collect();
            log.info(
                "ac_started",
                &[
                    ("from_hz", from.into()),
                    ("to_hz", to.into()),
                    ("points", (points as u64).into()),
                ],
            );
            let z = match ac_impedance(&ckt, a, b, &freqs, &AcOptions::default()) {
                Ok(z) => z,
                Err(e) => {
                    log.error("ac_failed", &[("error", e.to_string().into())]);
                    return ExitCode::FAILURE;
                }
            };
            let mut out = String::from("f_hz,mag_ohm,phase_rad\n");
            for (f, zk) in freqs.iter().zip(&z) {
                out.push_str(&format!("{:e},{:e},{:e}\n", f, zk.abs(), zk.arg()));
            }
            emit(rest, &out, log)
        }
        _ => usage(),
    }
}

/// Maps the paper oscillator's Arnold tongue with the adaptive atlas
/// engine (`shil_circuit::analysis::AtlasSpec`): coarse lock/unlock grid,
/// boundary-only refinement, warm-started and early-exiting interior
/// cells, with the finest two levels run at full fidelity so boundary
/// pixels match a dense cold-start sweep exactly.
fn atlas_cmd(rest: &[String], log: &EventLog, silent_progress: bool) -> ExitCode {
    let num = |flag: &str, default: usize| {
        flag_value(rest, flag)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
    };
    let nx = num("--nx", 64);
    let ny = num("--ny", 64);
    // Default coarse tile: the largest power of two ≤ 8 that divides both
    // axes while leaving at least two tiles per axis, so the coarse pass
    // can actually bracket the tongue.
    let default_coarse = {
        let mut c = 1;
        while c < 8
            && nx.is_multiple_of(2 * c)
            && ny.is_multiple_of(2 * c)
            && 2 * (2 * c) <= nx.min(ny)
        {
            c *= 2;
        }
        c
    };
    let mut spec = AtlasSpec::paper_oscillator(nx, ny, num("--coarse", default_coarse));
    spec.steps_per_period = num("--spp", spec.steps_per_period);
    spec.horizon_periods = num("--horizon", spec.horizon_periods);
    spec.n = flag_value(rest, "--n")
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(spec.n);
    if rest.iter().any(|a| a == "--no-early-exit") {
        spec.early_exit = false;
    }
    if rest.iter().any(|a| a == "--no-warm-start") {
        spec.warm_start = false;
    }
    let compiled = match spec.compile() {
        Ok(c) => c,
        Err(e) => {
            log.error("atlas_spec_invalid", &[("error", e.to_string().into())]);
            return ExitCode::from(2);
        }
    };
    let resume = rest.iter().any(|a| a == "--resume");
    let checkpoint_path = optional_path(
        rest,
        "--checkpoint",
        "results/checkpoint_shil_cli_atlas.jsonl",
    );
    let checkpoint_file = match &checkpoint_path {
        Some(path) => {
            if !resume {
                // A fresh (non-resume) run must not inherit records.
                let _ = std::fs::remove_file(path);
            }
            match CheckpointFile::open(
                path.as_ref(),
                &compiled.fingerprint(),
                compiled.checkpoint_slots(),
            ) {
                Ok(cp) => Some(cp),
                Err(e) => {
                    log.error(
                        "checkpoint_open_failed",
                        &[
                            ("path", path.as_str().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let secs = |flag: &str| {
        flag_value(rest, flag)
            .and_then(|v| v.parse::<f64>().ok())
            .map(Duration::from_secs_f64)
    };
    let policy = SweepPolicy {
        deadline: secs("--timeout"),
        item_timeout: secs("--item-timeout"),
        max_retries: flag_value(rest, "--retries")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0),
        ..SweepPolicy::default()
    };
    let threads = flag_value(rest, "--threads").and_then(|v| v.parse::<usize>().ok());
    let engine = SweepEngine::new(threads);
    log.info(
        "atlas_started",
        &[
            ("pixels", (compiled.pixels() as u64).into()),
            ("coarse", (spec.coarse as u64).into()),
            (
                "restored",
                (checkpoint_file.as_ref().map_or(0, |cp| cp.restored().len()) as u64).into(),
            ),
        ],
    );
    let watcher = rest.iter().any(|a| a == "--progress").then(|| {
        Progress::spawn(
            "shil_atlas_cells_simulated_total",
            compiled.pixels(),
            silent_progress,
        )
    });
    let mut on_pass = |map: &AtlasMap| {
        log.info(
            "atlas_pass",
            &[
                ("passes", (map.stats.passes as u64).into()),
                ("simulated", (map.stats.items_simulated as u64).into()),
                ("locked", (map.locked_count() as u64).into()),
            ],
        );
    };
    let map = compiled.run(
        &engine,
        &policy,
        &Budget::unlimited(),
        checkpoint_file.as_ref(),
        Some(&mut on_pass),
    );
    if let Some(w) = watcher {
        w.finish();
    }
    let st = &map.stats;
    log.info(
        "atlas_finished",
        &[
            ("simulated", (st.items_simulated as u64).into()),
            ("naive_items", (st.naive_items as u64).into()),
            ("steps_run", (st.steps_run as u64).into()),
            ("naive_steps", (st.naive_steps as u64).into()),
            ("locked", (map.locked_count() as u64).into()),
            ("errors", (st.errors as u64).into()),
            ("cancelled", map.cancelled.into()),
        ],
    );
    let mut out = String::from("ix,iy,f_hz,vi,verdict,simulated,cell_size\n");
    for iy in 0..map.ny {
        for ix in 0..map.nx {
            let i = iy * map.nx + ix;
            out.push_str(&format!(
                "{},{},{:e},{:e},{},{},{}\n",
                ix,
                iy,
                map.freqs[ix],
                map.amps[iy],
                map.verdicts[i].name(),
                u8::from(map.simulated[i]),
                map.cell_size[i],
            ));
        }
    }
    // Deterministic footer, mirroring the sweep aggregate: effort counters
    // identical at any thread count and across kill/resume (`restored` and
    // wall time are deliberately excluded).
    out.push_str(&format!(
        "# aggregate locked={} passes={} simulated={}/{} steps={}/{} early_exits={} \
         warm_starts={} warm_start_hits={} cold_fallbacks={} errors={}\n",
        map.locked_count(),
        st.passes,
        st.items_simulated,
        st.naive_items,
        st.steps_run,
        st.naive_steps,
        st.early_exits,
        st.warm_starts,
        st.warm_start_hits,
        st.cold_fallbacks,
        st.errors,
    ));
    let emitted = emit(rest, &out, log);
    if map.cancelled {
        return ExitCode::from(ItemOutcome::Cancelled.exit_code());
    }
    if st.errors > 0 {
        return ExitCode::from(ItemOutcome::Failed.exit_code());
    }
    emitted
}

/// Builds and classifies a coupled-oscillator network
/// (`shil_circuit::network`): one transient + network lock analysis per
/// swept coupling strength, fanned out through the sweep engine, with the
/// per-oscillator / pairwise / mutual verdicts reported as CSV.
fn network_cmd(rest: &[String], log: &EventLog) -> ExitCode {
    let count = flag_value(rest, "--n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8);
    let topology_name = flag_value(rest, "--topology").unwrap_or_else(|| "ring".into());
    let Some(topology) = Topology::parse(&topology_name) else {
        log.error(
            "unknown_topology",
            &[("topology", topology_name.as_str().into())],
        );
        return ExitCode::from(2);
    };
    let coupling_name = flag_value(rest, "--coupling").unwrap_or_else(|| "resistive".into());
    let strengths: Vec<f64> = flag_values(rest, "--strength")
        .iter()
        .flat_map(|v| v.split(','))
        .filter_map(|v| v.trim().parse::<f64>().ok())
        .collect();
    if strengths.is_empty() {
        log.error("network_needs_strength", &[]);
        return ExitCode::from(2);
    }
    let Some(coupling) = Coupling::parse(&coupling_name, strengths[0]) else {
        log.error(
            "unknown_coupling",
            &[("coupling", coupling_name.as_str().into())],
        );
        return ExitCode::from(2);
    };
    let detuning: Vec<f64> = flag_values(rest, "--detune")
        .iter()
        .flat_map(|v| v.split(','))
        .filter_map(|v| v.trim().parse::<f64>().ok())
        .collect();
    let fnum = |flag: &str, default: f64| {
        flag_value(rest, flag)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(default)
    };
    let settle = fnum("--settle", 60.0);
    let record = fnum("--record", 60.0);
    let ppp = flag_value(rest, "--ppp")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(64);
    let solver = match flag_value(rest, "--solver").as_deref() {
        None | Some("auto") => SolverKind::Auto,
        Some("dense") => SolverKind::Dense,
        Some("sparse") => SolverKind::Sparse,
        Some("iterative") => SolverKind::Iterative,
        Some(other) => {
            log.error("unknown_solver", &[("solver", other.into())]);
            return ExitCode::from(2);
        }
    };
    let base = NetworkSpec::new(count, topology, coupling).with_detuning(detuning);
    // Front-load build errors (n, detuning, coupling range) before the fan-out.
    if let Err(e) = base.build() {
        log.error("network_spec_invalid", &[("error", e.to_string().into())]);
        return ExitCode::from(2);
    }
    // Lock windows sized to ~90 % of the recorded tail (6 windows, ≥ 2
    // periods each): the slack absorbs detuned consensus frequencies whose
    // periods run longer than the nominal mean the recording was sized on.
    let mut lock_opts = NetworkLockOptions::default();
    lock_opts.lock.windows = 6;
    lock_opts.lock.periods_per_window = ((0.9 * record / 6.0).floor() as usize).max(2);
    log.info(
        "network_started",
        &[
            ("oscillators", (count as u64).into()),
            ("topology", topology.name().into()),
            ("coupling", coupling.kind().into()),
            ("points", (strengths.len() as u64).into()),
        ],
    );
    let threads = flag_value(rest, "--threads").and_then(|v| v.parse::<usize>().ok());
    let engine = SweepEngine::new(threads);
    let runs = engine.map(&strengths, |_, &strength| {
        let mut spec = base.clone();
        spec.coupling = Coupling::parse(coupling.kind(), strength).expect("kind re-parses");
        let net = spec.build()?;
        let mut opts = net.transient_options(settle, record, ppp);
        opts.solver = solver;
        let result = net.simulate(&opts)?;
        let report = net.probe_lock(&result, &lock_opts)?;
        Ok::<_, shil::circuit::CircuitError>((net, report))
    });
    let mut out =
        String::from("strength,mutual,locked_fraction,consensus_hz,locked_pairs,total_pairs\n");
    let mut failures = 0usize;
    for (strength, run) in strengths.iter().zip(&runs) {
        match run {
            Ok((net, report)) => {
                log.info(
                    "network_point",
                    &[
                        ("strength", (*strength).into()),
                        ("mutual", report.mutual_lock.into()),
                        ("locked_fraction", report.locked_fraction.into()),
                        ("oscillators", (net.probes.len() as u64).into()),
                    ],
                );
                out.push_str(&format!(
                    "{:e},{},{:e},{:e},{},{}\n",
                    strength,
                    u8::from(report.mutual_lock),
                    report.locked_fraction,
                    report.consensus_frequency_hz,
                    report.pairs.iter().filter(|p| p.locked).count(),
                    report.pairs.len(),
                ));
            }
            Err(e) => {
                failures += 1;
                log.error(
                    "network_point_failed",
                    &[
                        ("strength", (*strength).into()),
                        ("error", e.to_string().into()),
                    ],
                );
                out.push_str(&format!("{strength:e},,,,,\n"));
            }
        }
    }
    let emitted = emit(rest, &out, log);
    if failures > 0 {
        return ExitCode::from(ItemOutcome::Failed.exit_code());
    }
    emitted
}

/// Runs the HTTP job service until a shutdown signal arrives, then drains
/// gracefully (running jobs get `--grace` seconds, stragglers park back to
/// the queue with their checkpoints for the next start to resume).
fn serve_cmd(rest: &[String], log: &EventLog) -> ExitCode {
    let num = |flag: &str, default: usize| {
        flag_value(rest, flag)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
    };
    let defaults = ServerConfig::default();
    // `--chaos-storage <rate>:<seed>` routes every durable write through the
    // deterministic fault injector — a test-harness hook for out-of-process
    // chaos runs (injected I/O faults + kill -9) against the real binary.
    let storage: std::sync::Arc<dyn shil::runtime::Storage> =
        match flag_value(rest, "--chaos-storage") {
            None => shil::runtime::FsStorage::shared(),
            Some(v) => {
                let (rate, seed) = match v.split_once(':') {
                    Some((r, s)) => match (r.parse::<f64>(), s.parse::<u64>()) {
                        (Ok(r), Ok(s)) if (0.0..=1.0).contains(&r) => (r, s),
                        _ => {
                            eprintln!(
                                "error: --chaos-storage wants <rate>:<seed> \
                                 (rate in [0,1]), got {v:?}"
                            );
                            return ExitCode::from(2);
                        }
                    },
                    None => {
                        eprintln!("error: --chaos-storage wants <rate>:<seed>, got {v:?}");
                        return ExitCode::from(2);
                    }
                };
                std::sync::Arc::new(shil_fault::FaultyStorage::over_fs(
                    shil_fault::StorageFaultSpec::new(rate, seed),
                ))
            }
        };
    let config = ServerConfig {
        addr: flag_value(rest, "--addr").unwrap_or(defaults.addr),
        data_dir: flag_value(rest, "--data-dir")
            .map_or(defaults.data_dir, std::path::PathBuf::from),
        queue_capacity: num("--queue", defaults.queue_capacity),
        workers: num("--workers", defaults.workers),
        http_threads: num("--http-threads", defaults.http_threads),
        cache_entries: num("--cache", defaults.cache_entries),
        max_body_bytes: num("--max-body", defaults.max_body_bytes),
        drain_grace: flag_value(rest, "--grace")
            .and_then(|v| v.parse::<f64>().ok())
            .map_or(defaults.drain_grace, Duration::from_secs_f64),
        sweep_threads: flag_value(rest, "--sweep-threads").and_then(|v| v.parse::<usize>().ok()),
        quarantine_after: num("--quarantine-after", defaults.quarantine_after),
        allow_chaos: rest.iter().any(|a| a == "--allow-chaos"),
        storage,
    };
    // Fail fast on an unusable data directory: a serve process that cannot
    // persist jobs would otherwise limp along 500-ing every submission. The
    // probe creates the directory, round-trips a marker file through the
    // configured storage, and deletes it.
    if let Err(e) =
        shil::runtime::storage::probe_writable(&*config.storage, &config.data_dir.join("jobs"))
    {
        eprintln!(
            "error: data dir {} is not writable: {e}",
            config.data_dir.display()
        );
        log.error(
            "serve_data_dir_unwritable",
            &[
                ("data_dir", config.data_dir.display().to_string().into()),
                ("error", e.to_string().into()),
            ],
        );
        return ExitCode::FAILURE;
    }
    install_shutdown_handler();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            log.error("serve_start_failed", &[("error", e.to_string().into())]);
            return ExitCode::FAILURE;
        }
    };
    // Out-of-process clients discover a port-0 bind from this line (and
    // from <data-dir>/addr.txt).
    println!("listening {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    log.info(
        "serve_started",
        &[("addr", server.addr().to_string().into())],
    );
    while !shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    log.info("serve_draining", &[]);
    server.shutdown();
    log.info("serve_stopped", &[]);
    ExitCode::SUCCESS
}

/// The deterministic whole-sweep footer: solver-effort counters that are
/// identical at any thread count and across kill/resume (wall time is
/// deliberately excluded). CI diffs this line between a clean run and a
/// killed-and-resumed one.
fn aggregate_line(report: &SolveReport, ok: usize) -> String {
    let fallbacks: Vec<String> = report.fallbacks.iter().map(|f| f.to_string()).collect();
    format!(
        "# aggregate ok={} attempts={} halvings={} factorizations={} reuses={} fallbacks=[{}]\n",
        ok,
        report.attempts,
        report.halvings,
        report.factorizations,
        report.reuses,
        fallbacks.join("; ")
    )
}

fn emit(rest: &[String], content: &str, log: &EventLog) -> ExitCode {
    match flag_value(rest, "--csv") {
        Some(path) => match std::fs::write(&path, content) {
            Ok(()) => {
                log.info("csv_written", &[("path", path.as_str().into())]);
                ExitCode::SUCCESS
            }
            Err(e) => {
                log.error(
                    "csv_write_failed",
                    &[
                        ("path", path.as_str().into()),
                        ("error", e.to_string().into()),
                    ],
                );
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{content}");
            ExitCode::SUCCESS
        }
    }
}
