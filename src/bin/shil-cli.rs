//! `shil-cli` — run circuit analyses on SPICE-flavoured netlist files.
//!
//! ```text
//! shil-cli op <file.cir>
//! shil-cli tran <file.cir> --dt 2e-8 --stop 2e-4 --probe <node> [--probe <node>] [--csv out.csv]
//! shil-cli ac <file.cir> --port <node-a> <node-b> --from 1e5 --to 1e6 --points 200 [--csv out.csv]
//! ```
//!
//! See `shil_circuit::netlist` for the accepted netlist cards.

use std::process::ExitCode;

use shil::circuit::analysis::{
    ac_impedance, operating_point, transient, AcOptions, OpOptions, TranOptions,
};
use shil::circuit::{netlist, Circuit};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  shil-cli op <file.cir>\n  shil-cli tran <file.cir> --dt <s> --stop <s> \
         --probe <node> [--probe <node>] [--csv <out>]\n  shil-cli ac <file.cir> --port <a> <b> \
         --from <hz> --to <hz> [--points <n>] [--csv <out>]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
        }
    }
    out
}

fn load(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    netlist::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(file)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let ckt = match load(file) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let rest = &args[2..];
    match cmd.as_str() {
        "op" => {
            let op = match operating_point(&ckt, &OpOptions::default()) {
                Ok(op) => op,
                Err(e) => {
                    eprintln!("operating point failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("node voltages:");
            for id in 1..ckt.num_nodes() {
                println!(
                    "  {:>12} = {:.9e} V",
                    ckt.node_name(id),
                    op.node_voltage(id)
                );
            }
            ExitCode::SUCCESS
        }
        "tran" => {
            let (Some(dt), Some(stop)) = (
                flag_value(rest, "--dt").and_then(|v| v.parse::<f64>().ok()),
                flag_value(rest, "--stop").and_then(|v| v.parse::<f64>().ok()),
            ) else {
                return usage();
            };
            let probes: Vec<String> = flag_values(rest, "--probe");
            if probes.is_empty() {
                eprintln!("tran needs at least one --probe <node>");
                return ExitCode::from(2);
            }
            let mut probe_ids = Vec::new();
            for p in &probes {
                match ckt.find_node(p) {
                    Some(id) => probe_ids.push(id),
                    None => {
                        eprintln!("unknown probe node `{p}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let res = match transient(&ckt, &TranOptions::new(dt, stop)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("transient failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut out = String::from("t");
            for p in &probes {
                out.push(',');
                out.push_str(p);
            }
            out.push('\n');
            for k in 0..res.time.len() {
                out.push_str(&format!("{:e}", res.time[k]));
                for &id in &probe_ids {
                    let v = res.node_voltage(id).expect("probed node");
                    out.push_str(&format!(",{:e}", v[k]));
                }
                out.push('\n');
            }
            emit(rest, &out)
        }
        "ac" => {
            let ports = flag_values(rest, "--port");
            let port_b = rest
                .iter()
                .position(|a| a == "--port")
                .and_then(|i| rest.get(i + 2))
                .cloned();
            let (Some(pa), Some(pb)) = (ports.first().cloned(), port_b) else {
                eprintln!("ac needs --port <node-a> <node-b>");
                return ExitCode::from(2);
            };
            let (Some(from), Some(to)) = (
                flag_value(rest, "--from").and_then(|v| v.parse::<f64>().ok()),
                flag_value(rest, "--to").and_then(|v| v.parse::<f64>().ok()),
            ) else {
                return usage();
            };
            let points = flag_value(rest, "--points")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(100)
                .max(2);
            let node = |name: &str| {
                if name == "0" {
                    Some(Circuit::GROUND)
                } else {
                    ckt.find_node(name)
                }
            };
            let (Some(a), Some(b)) = (node(&pa), node(&pb)) else {
                eprintln!("unknown port node");
                return ExitCode::FAILURE;
            };
            let freqs: Vec<f64> = (0..points)
                .map(|k| from * (to / from).powf(k as f64 / (points - 1) as f64))
                .collect();
            let z = match ac_impedance(&ckt, a, b, &freqs, &AcOptions::default()) {
                Ok(z) => z,
                Err(e) => {
                    eprintln!("ac analysis failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut out = String::from("f_hz,mag_ohm,phase_rad\n");
            for (f, zk) in freqs.iter().zip(&z) {
                out.push_str(&format!("{:e},{:e},{:e}\n", f, zk.abs(), zk.arg()));
            }
            emit(rest, &out)
        }
        _ => usage(),
    }
}

fn emit(rest: &[String], content: &str) -> ExitCode {
    match flag_value(rest, "--csv") {
        Some(path) => match std::fs::write(&path, content) {
            Ok(()) => {
                println!("wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{content}");
            ExitCode::SUCCESS
        }
    }
}
