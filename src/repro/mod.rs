//! The paper's two validation oscillators and the simulation-side
//! measurement pipeline.
//!
//! §IV of the paper validates the graphical predictions on a cross-coupled
//! BJT differential-pair oscillator (~0.5 MHz) and a tunnel-diode
//! oscillator (~0.5 GHz). This module builds those circuits for
//! [`shil_circuit`], extracts their `i = f(v)` curves by DC sweep
//! (Fig. 11b → 12a), calibrates the unspecified tank resistance so the
//! predicted natural amplitudes match the paper's 0.505 V / 0.199 V, and
//! provides the brute-force simulated lock-range search the paper uses as
//! its baseline.

pub mod cmos_vco;
pub mod diff_pair;
pub mod simlock;
pub mod tunnel_diode;

use shil_core::describing::{natural_oscillation, NaturalOptions};
use shil_core::nonlinearity::Nonlinearity;
use shil_core::tank::ParallelRlc;
use shil_core::ShilError;
use shil_numerics::roots::brent;

/// Calibrates the parallel tank resistance so the describing-function
/// prediction of the natural amplitude hits `target_amplitude`.
///
/// The paper omits component values; this is the substitution documented in
/// DESIGN.md — with `R` chosen this way, the reproduction's natural
/// amplitudes match the paper's reported 0.505 V (diff pair) and 0.199 V
/// (tunnel diode), and the same `R` is used on both the prediction and
/// simulation sides.
///
/// # Errors
///
/// Returns [`ShilError::InvalidParameter`] if no `R` in
/// `[r_min, r_max]` produces the target amplitude.
pub fn calibrate_tank_resistance<N: Nonlinearity>(
    nonlinearity: &N,
    l: f64,
    c: f64,
    target_amplitude: f64,
    r_min: f64,
    r_max: f64,
) -> Result<f64, ShilError> {
    let amplitude_for = |r: f64| -> f64 {
        let tank = match ParallelRlc::new(r, l, c) {
            Ok(t) => t,
            Err(_) => return f64::NAN,
        };
        match natural_oscillation(nonlinearity, &tank, &NaturalOptions::default()) {
            Ok(nat) => nat.amplitude,
            Err(_) => 0.0,
        }
    };
    let f = |r: f64| amplitude_for(r) - target_amplitude;
    let (flo, fhi) = (f(r_min), f(r_max));
    if !(flo < 0.0 && fhi > 0.0) {
        return Err(ShilError::InvalidParameter(format!(
            "target amplitude {target_amplitude} V not bracketed by R in [{r_min}, {r_max}] \
             (A({r_min}) − target = {flo:.3e}, A({r_max}) − target = {fhi:.3e})"
        )));
    }
    brent(f, r_min, r_max, 1e-6 * r_max, 200).map_err(ShilError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shil_core::nonlinearity::NegativeTanh;

    #[test]
    fn calibration_hits_target_amplitude() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let (l, c) = (10e-6, 10e-9);
        let r = calibrate_tank_resistance(&f, l, c, 0.8, 100.0, 5000.0).unwrap();
        let tank = ParallelRlc::new(r, l, c).unwrap();
        let nat = natural_oscillation(&f, &tank, &NaturalOptions::default()).unwrap();
        assert!((nat.amplitude - 0.8).abs() < 1e-4, "A = {}", nat.amplitude);
    }

    #[test]
    fn calibration_rejects_unreachable_target() {
        let f = NegativeTanh::new(1e-3, 20.0);
        // 100 V is far beyond what R ≤ 5 kΩ can sustain with a 1 mA element.
        assert!(calibrate_tank_resistance(&f, 10e-6, 10e-9, 100.0, 100.0, 5000.0).is_err());
    }
}
