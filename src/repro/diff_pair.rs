//! The cross-coupled BJT differential-pair oscillator of §IV-A.
//!
//! Topology (Fig. 11a): two NPNs cross-coupled (each base at the other's
//! collector), a tail current source, and a differential tank between the
//! collector nodes `n_CL` / `n_CR`. The tank inductor is center-tapped to
//! `V_CC` to give the collectors their DC path; the explicit tank resistor
//! sets the loaded Q. Injection enters in series with the tank — precisely
//! the `g(t) = v_out(t) + v_i(t)` summing junction of the paper's block
//! diagram.

use shil_circuit::analysis::{operating_point, operating_point_with_guess, OpOptions};
use shil_circuit::device::BjtModel;
use shil_circuit::{Circuit, CircuitError, DeviceId, NodeId, SourceWave};
use shil_core::tank::ParallelRlc;
use shil_core::ShilError;

/// Component values of the differential-pair oscillator.
///
/// `L` and `C` are fixed so `f_c = 1/(2π√(LC)) = 503.29 kHz` (the paper's
/// 0.5033 MHz); `r_tank` defaults to the value calibrated so that the
/// predicted natural amplitude is the paper's 0.505 V (see
/// [`DiffPairParams::calibrated`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffPairParams {
    /// Supply voltage (V).
    pub vcc: f64,
    /// Tail current (A).
    pub i_tail: f64,
    /// Differential tank resistance (Ω).
    pub r_tank: f64,
    /// Total differential tank inductance (H); realized as two `L/2`
    /// halves center-tapped at `V_CC`.
    pub l_tank: f64,
    /// Tank capacitance (F).
    pub c_tank: f64,
    /// BJT model (paper: NGSPICE default NPN with `I_s = 1e−12 A`).
    pub bjt: BjtModel,
}

impl Default for DiffPairParams {
    fn default() -> Self {
        DiffPairParams {
            vcc: 5.0,
            i_tail: 1e-3,
            r_tank: 800.0, // placeholder; see `calibrated`
            l_tank: 10e-6,
            c_tank: 10e-9,
            bjt: BjtModel::default(),
        }
    }
}

impl DiffPairParams {
    /// Parameters with `r_tank` calibrated so the describing-function
    /// prediction of the natural amplitude equals `target_amplitude`
    /// (0.505 V reproduces the paper).
    ///
    /// # Errors
    ///
    /// Propagates extraction or calibration failures.
    pub fn calibrated(target_amplitude: f64) -> Result<Self, ShilError> {
        let mut p = DiffPairParams::default();
        let f = p
            .extract_iv_curve()
            .map_err(|e| ShilError::InvalidParameter(format!("extraction failed: {e}")))?;
        p.r_tank = crate::repro::calibrate_tank_resistance(
            &f,
            p.l_tank,
            p.c_tank,
            target_amplitude,
            50.0,
            20_000.0,
        )?;
        Ok(p)
    }

    /// The analysis-side tank model (differential parallel RLC).
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] for non-physical values.
    pub fn tank(&self) -> Result<ParallelRlc, ShilError> {
        ParallelRlc::new(self.r_tank, self.l_tank, self.c_tank)
    }

    /// The tank center frequency (hertz).
    pub fn center_frequency_hz(&self) -> f64 {
        1.0 / (std::f64::consts::TAU * (self.l_tank * self.c_tank).sqrt())
    }

    /// Builds the Fig. 11b extraction circuit: the tank is removed and the
    /// two collector nodes are driven to `V_CC ± v_x/2` by ideal sources.
    ///
    /// Returns the circuit and the two probe sources (left, right).
    pub fn extraction_circuit(&self) -> (Circuit, DeviceId, DeviceId) {
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc");
        let ncl = ckt.node("ncl");
        let ncr = ckt.node("ncr");
        let ne = ckt.node("ne");
        ckt.vsource(vcc, Circuit::GROUND, SourceWave::Dc(self.vcc));
        // Cross-coupled pair: Q1 (c = ncl, b = ncr), Q2 (c = ncr, b = ncl).
        ckt.npn(ncl, ncr, ne, self.bjt);
        ckt.npn(ncr, ncl, ne, self.bjt);
        ckt.isource(ne, Circuit::GROUND, SourceWave::Dc(self.i_tail));
        let vs_l = ckt.vsource(ncl, Circuit::GROUND, SourceWave::Dc(self.vcc));
        let vs_r = ckt.vsource(ncr, Circuit::GROUND, SourceWave::Dc(self.vcc));
        (ckt, vs_l, vs_r)
    }

    /// DC-sweeps the extraction circuit and returns the differential
    /// `i = f(v)` characteristic (Fig. 12a): `v = v_CL − v_CR` over
    /// `±v_span`, `i` the differential current the devices draw from the
    /// tank port.
    ///
    /// # Errors
    ///
    /// Propagates operating-point convergence failures.
    pub fn extract_iv(
        &self,
        v_span: f64,
        points: usize,
    ) -> Result<(Vec<f64>, Vec<f64>), CircuitError> {
        let (ckt, vs_l, vs_r) = self.extraction_circuit();
        let vs: Vec<f64> = (0..points)
            .map(|k| -v_span + 2.0 * v_span * k as f64 / (points - 1) as f64)
            .collect();
        let opts = OpOptions {
            max_iter: 300,
            ..OpOptions::default()
        };
        // Solve the easy symmetric point first, then continue outward in
        // both directions, warm-starting each point from its neighbour —
        // the BJTs saturate hard at large |v| and cold Newton starves there.
        let mut work = ckt;
        let solve_at = |work: &mut Circuit, v: f64, guess: Option<&[f64]>| {
            work.set_source_wave(vs_l, SourceWave::Dc(self.vcc + v / 2.0))?;
            work.set_source_wave(vs_r, SourceWave::Dc(self.vcc - v / 2.0))?;
            let op = match guess {
                Some(g) => operating_point_with_guess(work, g, &opts)?,
                None => operating_point(work, &opts)?,
            };
            // Probe currents flow a→b inside each source; the current the
            // devices draw *from* the left port is −i(vs_l). The equivalent
            // two-terminal differential element carries half the difference.
            let il = -op.branch_current(vs_l)?;
            let ir = -op.branch_current(vs_r)?;
            Ok::<(f64, Vec<f64>), CircuitError>((0.5 * (il - ir), op.x))
        };
        let center = solve_at(&mut work, 0.0, None)?;
        let mut currents = vec![0.0; points];
        // Upward continuation.
        let mut guess = center.1.clone();
        for (k, &v) in vs.iter().enumerate() {
            if v < 0.0 {
                continue;
            }
            let (i, x) = solve_at(&mut work, v, Some(&guess))?;
            currents[k] = i;
            guess = x;
        }
        // Downward continuation.
        let mut guess = center.1;
        for (k, &v) in vs.iter().enumerate().rev() {
            if v >= 0.0 {
                continue;
            }
            let (i, x) = solve_at(&mut work, v, Some(&guess))?;
            currents[k] = i;
            guess = x;
        }
        Ok((vs, currents))
    }

    /// Extracts the `i = f(v)` curve as an analysis-ready
    /// [`shil_core::nonlinearity::Tabulated`].
    ///
    /// The sweep covers ±0.8 V. Beyond ~±0.5 V the cross-coupled pair
    /// saturates (the reverse-conducting base-collector junctions swamp the
    /// −tanh core — this upturn is what clamps the oscillation amplitude
    /// near 0.5 V), and past ±0.8 V the ideal-source probes would drive
    /// exponentially growing currents that bury the KCL residual in
    /// round-off. The analysis never queries beyond
    /// `A_max + 2V_i ≈ 0.75 V`.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn extract_iv_curve(&self) -> Result<shil_core::nonlinearity::Tabulated, CircuitError> {
        let (v, i) = self.extract_iv(0.8, 321)?;
        shil_core::nonlinearity::Tabulated::new(v, i)
            .map_err(|e| CircuitError::InvalidParameter(format!("bad extracted table: {e}")))
    }
}

/// A built differential-pair oscillator ready for transient analysis.
#[derive(Debug, Clone)]
pub struct DiffPairOscillator {
    /// The netlist.
    pub circuit: Circuit,
    /// Left collector node (`n_CL`).
    pub ncl: NodeId,
    /// Right collector node (`n_CR`).
    pub ncr: NodeId,
    /// The series injection source (always present; defaults to 0 V).
    pub injection: DeviceId,
    /// The state-kick current source (always present; defaults to 0 A).
    pub kick: DeviceId,
    /// The parameters used.
    pub params: DiffPairParams,
}

impl DiffPairOscillator {
    /// Builds the oscillator (Fig. 11a plus the series injection source and
    /// a kick source for the Fig. 15 state-change experiment).
    pub fn build(params: DiffPairParams) -> Self {
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc");
        let ncl = ckt.node("ncl");
        let ncr = ckt.node("ncr");
        let ne = ckt.node("ne");
        let tb = ckt.node("tank_b");
        ckt.vsource(vcc, Circuit::GROUND, SourceWave::Dc(params.vcc));
        ckt.npn(ncl, ncr, ne, params.bjt);
        ckt.npn(ncr, ncl, ne, params.bjt);
        ckt.isource(ne, Circuit::GROUND, SourceWave::Dc(params.i_tail));
        // Center-tapped inductor: two halves to VCC (differential L total).
        ckt.inductor(ncl, vcc, params.l_tank / 2.0);
        ckt.inductor(tb, vcc, params.l_tank / 2.0);
        // Differential tank R and C between ncl and the tank-side node.
        ckt.resistor(ncl, tb, params.r_tank);
        ckt.capacitor(ncl, tb, params.c_tank);
        // Series injection: v(tank_b) − v(ncr) = v_inj(t), so the
        // nonlinearity sees v_tank + v_inj exactly as in Fig. 8a.
        let injection = ckt.vsource(tb, ncr, SourceWave::Dc(0.0));
        // Kick source for state changes (Fig. 15); idle by default.
        let kick = ckt.isource(Circuit::GROUND, ncl, SourceWave::Dc(0.0));
        DiffPairOscillator {
            circuit: ckt,
            ncl,
            ncr,
            injection,
            kick,
            params,
        }
    }

    /// Sets the injection waveform (e.g. the SHIL drive
    /// `2·V_i·cos(2π n f_i t)`).
    ///
    /// # Errors
    ///
    /// Never fails for a circuit built by [`Self::build`]; propagates
    /// device-kind validation otherwise.
    pub fn set_injection(&mut self, wave: SourceWave) -> Result<(), CircuitError> {
        self.circuit.set_source_wave(self.injection, wave)
    }

    /// Sets the kick waveform (current pulses into `n_CL`).
    ///
    /// # Errors
    ///
    /// Same as [`Self::set_injection`].
    pub fn set_kick(&mut self, wave: SourceWave) -> Result<(), CircuitError> {
        self.circuit.set_source_wave(self.kick, wave)
    }

    /// The paper's injection waveform for `n`-th sub-harmonic locking:
    /// peak amplitude `2·vi` at `f_injection`, switched on at `delay`.
    pub fn injection_wave(vi: f64, f_injection: f64, delay: f64) -> SourceWave {
        SourceWave::sine(2.0 * vi, f_injection, delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shil_core::{Nonlinearity, Tank as _};

    #[test]
    fn extracted_curve_is_odd_negative_resistance() {
        let p = DiffPairParams::default();
        let (v, i) = p.extract_iv(0.8, 81).unwrap();
        let mid = v.len() / 2;
        assert!(v[mid].abs() < 1e-9);
        assert!(i[mid].abs() < 1e-7, "f(0) = {}", i[mid]);
        // Odd symmetry within extraction tolerance.
        for k in 0..v.len() {
            let mirror = v.len() - 1 - k;
            assert!(
                (i[k] + i[mirror]).abs() < 1e-6,
                "odd symmetry broken at v = {}",
                v[k]
            );
        }
        // Negative slope at the origin.
        let g0 = (i[mid + 1] - i[mid - 1]) / (v[mid + 1] - v[mid - 1]);
        assert!(g0 < 0.0, "g(0) = {g0}");
        // Mid-range plateau at ±i_tail/2 (devices fully switched)...
        let k_plateau = v.iter().position(|&x| x >= -0.3).expect("in range");
        assert!(
            (i[k_plateau] - p.i_tail / 2.0).abs() < 0.05 * p.i_tail,
            "plateau {}",
            i[k_plateau]
        );
        // ...and the saturation upturn that clamps the oscillation: at
        // −0.8 V the reverse-conducting junctions dominate.
        assert!(i[0] < -10.0 * p.i_tail, "no saturation upturn: {}", i[0]);
    }

    #[test]
    fn extracted_curve_matches_tanh_theory_in_the_core_region() {
        // The ideal diff pair gives i = −(I_EE/2)·tanh(v/(2V_T)); base
        // current (β = 100) perturbs this by ~1 %.
        let p = DiffPairParams::default();
        let f = p.extract_iv_curve().unwrap();
        for &v in &[-0.1, -0.05, -0.01, 0.02, 0.08] {
            let ideal = -(p.i_tail / 2.0) * (v / (2.0f64 * 0.025)).tanh();
            let got = f.current(v);
            assert!(
                (got - ideal).abs() < 0.05 * p.i_tail / 2.0,
                "v = {v}: {got} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn oscillator_netlist_shape() {
        let osc = DiffPairOscillator::build(DiffPairParams::default());
        // vcc source, 2 BJTs, tail, 2 inductors, R, C, injection, kick.
        assert_eq!(osc.circuit.devices().len(), 10);
        assert_ne!(osc.ncl, osc.ncr);
        let mut osc = osc;
        assert!(osc
            .set_injection(DiffPairOscillator::injection_wave(0.03, 1.5e6, 0.0))
            .is_ok());
        assert!(osc.set_kick(SourceWave::Dc(0.0)).is_ok());
    }

    #[test]
    fn tank_center_frequency_matches_paper() {
        let p = DiffPairParams::default();
        assert!((p.center_frequency_hz() - 503_292.0).abs() < 1.0);
        let tank = p.tank().unwrap();
        assert!((tank.center_frequency_hz() - p.center_frequency_hz()).abs() < 1e-6);
    }
}
