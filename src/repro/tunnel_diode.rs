//! The tunnel-diode oscillator of §IV-B.
//!
//! Topology (Fig. 16a): the tunnel diode of appendix §VI-C biased at
//! 0.25 V (the center of its negative-resistance valley) through the tank
//! inductor, with the tank R and C across the diode. At DC the inductor
//! shorts the bias source onto the diode; at RF the bias source is ground,
//! so the diode sees a parallel RLC tank — the exact structure the analysis
//! assumes after the Fig. 16 bias-shift normalization.

use shil_circuit::iv::TunnelDiodeModel;
use shil_circuit::{Circuit, CircuitError, DeviceId, IvCurve, NodeId, SourceWave};
use shil_core::nonlinearity::{Biased, TunnelDiode};
use shil_core::tank::ParallelRlc;
use shil_core::ShilError;

/// Component values of the tunnel-diode oscillator.
///
/// `L` and `C` give `f_c = 503.29 MHz` (the paper's 0.5033 GHz); `r_tank`
/// defaults to the value calibrated for the paper's 0.199 V natural
/// amplitude (see [`TunnelDiodeParams::calibrated`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunnelDiodeParams {
    /// Bias voltage (paper: 0.25 V).
    pub v_bias: f64,
    /// Tank resistance (Ω).
    pub r_tank: f64,
    /// Tank inductance (H).
    pub l_tank: f64,
    /// Tank capacitance (F).
    pub c_tank: f64,
    /// Diode model (paper appendix §VI-C defaults).
    pub model: TunnelDiodeModel,
}

impl Default for TunnelDiodeParams {
    fn default() -> Self {
        TunnelDiodeParams {
            v_bias: 0.25,
            r_tank: 4000.0, // placeholder; see `calibrated`
            l_tank: 10e-9,
            c_tank: 10e-12,
            model: TunnelDiodeModel::default(),
        }
    }
}

impl TunnelDiodeParams {
    /// Parameters with `r_tank` calibrated so the predicted natural
    /// amplitude equals `target_amplitude` (0.199 V reproduces the paper).
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn calibrated(target_amplitude: f64) -> Result<Self, ShilError> {
        let mut p = TunnelDiodeParams::default();
        let f = p.biased_nonlinearity();
        p.r_tank = crate::repro::calibrate_tank_resistance(
            &f,
            p.l_tank,
            p.c_tank,
            target_amplitude,
            1000.0,
            100_000.0,
        )?;
        Ok(p)
    }

    /// The analysis-side nonlinearity: the §VI-C diode re-centered at the
    /// bias point (the Fig. 16 shift).
    pub fn biased_nonlinearity(&self) -> Biased<TunnelDiode> {
        TunnelDiode { model: self.model }.biased_at(self.v_bias)
    }

    /// The analysis-side tank.
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] for non-physical values.
    pub fn tank(&self) -> Result<ParallelRlc, ShilError> {
        ParallelRlc::new(self.r_tank, self.l_tank, self.c_tank)
    }

    /// The tank center frequency (hertz).
    pub fn center_frequency_hz(&self) -> f64 {
        1.0 / (std::f64::consts::TAU * (self.l_tank * self.c_tank).sqrt())
    }
}

/// A built tunnel-diode oscillator ready for transient analysis.
#[derive(Debug, Clone)]
pub struct TunnelDiodeOscillator {
    /// The netlist.
    pub circuit: Circuit,
    /// The diode node (oscillation observed here, around the bias).
    pub n_diode: NodeId,
    /// The tank node (before the series injection source).
    pub n_tank: NodeId,
    /// The series injection source.
    pub injection: DeviceId,
    /// The state-kick current source.
    pub kick: DeviceId,
    /// The parameters used.
    pub params: TunnelDiodeParams,
}

impl TunnelDiodeOscillator {
    /// Builds the oscillator (Fig. 16a plus series injection and kick
    /// sources).
    pub fn build(params: TunnelDiodeParams) -> Self {
        let mut ckt = Circuit::new();
        let nb = ckt.node("bias");
        let nt = ckt.node("tank");
        let nd = ckt.node("diode");
        ckt.vsource(nb, Circuit::GROUND, SourceWave::Dc(params.v_bias));
        // Bias feed / tank inductor.
        ckt.inductor(nb, nt, params.l_tank);
        // Tank R and C across the diode side.
        ckt.resistor(nt, Circuit::GROUND, params.r_tank);
        ckt.capacitor(nt, Circuit::GROUND, params.c_tank);
        // Series injection between the tank and the diode: the diode sees
        // v_tank + v_inj, the Fig. 8a summing junction.
        let injection = ckt.vsource(nt, nd, SourceWave::Dc(0.0));
        ckt.nonlinear(nd, Circuit::GROUND, IvCurve::TunnelDiode(params.model));
        // Kick source for the Fig. 19 state changes.
        let kick = ckt.isource(Circuit::GROUND, nt, SourceWave::Dc(0.0));
        TunnelDiodeOscillator {
            circuit: ckt,
            n_diode: nd,
            n_tank: nt,
            injection,
            kick,
            params,
        }
    }

    /// Sets the injection waveform.
    ///
    /// # Errors
    ///
    /// Never fails for a circuit built by [`Self::build`].
    pub fn set_injection(&mut self, wave: SourceWave) -> Result<(), CircuitError> {
        self.circuit.set_source_wave(self.injection, wave)
    }

    /// Sets the kick waveform.
    ///
    /// # Errors
    ///
    /// Never fails for a circuit built by [`Self::build`].
    pub fn set_kick(&mut self, wave: SourceWave) -> Result<(), CircuitError> {
        self.circuit.set_source_wave(self.kick, wave)
    }

    /// The paper's injection waveform (peak `2·vi` at `f_injection`,
    /// enabled at `delay`).
    pub fn injection_wave(vi: f64, f_injection: f64, delay: f64) -> SourceWave {
        SourceWave::sine(2.0 * vi, f_injection, delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shil_circuit::analysis::{operating_point, OpOptions};
    use shil_core::Nonlinearity;

    #[test]
    fn center_frequency_matches_paper() {
        let p = TunnelDiodeParams::default();
        assert!((p.center_frequency_hz() - 503.292e6).abs() < 1e3);
    }

    #[test]
    fn biased_nonlinearity_is_negative_resistance_at_origin() {
        let p = TunnelDiodeParams::default();
        let f = p.biased_nonlinearity();
        assert!(f.current(0.0).abs() < 1e-18);
        assert!(f.conductance(0.0) < 0.0);
    }

    #[test]
    fn operating_point_sits_at_bias() {
        let osc = TunnelDiodeOscillator::build(TunnelDiodeParams::default());
        let op = operating_point(&osc.circuit, &OpOptions::default()).unwrap();
        // The inductor shorts the bias onto the tank at DC; the tank R to
        // ground draws current through the inductor... the diode node sees
        // the bias minus nothing (series source is 0 V).
        let vd = op.node_voltage(osc.n_diode);
        assert!(
            (vd - 0.25).abs() < 1e-6,
            "diode DC voltage {vd} (expected 0.25)"
        );
    }

    #[test]
    fn netlist_shape_and_wave_setters() {
        let mut osc = TunnelDiodeOscillator::build(TunnelDiodeParams::default());
        assert_eq!(osc.circuit.devices().len(), 7);
        assert!(osc
            .set_injection(TunnelDiodeOscillator::injection_wave(0.03, 1.51e9, 0.0))
            .is_ok());
        assert!(osc.set_kick(SourceWave::Dc(0.0)).is_ok());
    }
}
