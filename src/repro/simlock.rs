//! Brute-force (simulation-side) measurements: natural-oscillation
//! amplitude/frequency and lock-range binary search.
//!
//! This is the baseline the paper compares against: "a 'binary search'
//! needs to be done over different frequencies to find the lock range"
//! (§III-C). Each probe is a full transient simulation followed by a
//! phase-drift lock test, so it is orders of magnitude slower than the
//! describing-function prediction — which is exactly the speedup the
//! benchmark harness measures.

use shil_circuit::analysis::{transient, BackendChoice, PolicySweep, SweepEngine, TranOptions};
use shil_circuit::{Circuit, CircuitError, NodeId, SolveReport};
use shil_runtime::{Budget, CheckpointFile, SweepPolicy};
use shil_waveform::lock::{is_subharmonic_locked, LockOptions};
use shil_waveform::measure::{estimate_frequency, peak_amplitude};
use shil_waveform::{Sampled, WaveformError};

/// Errors from the simulation-side measurement pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The transient simulation failed.
    Circuit(CircuitError),
    /// Waveform post-processing failed.
    Waveform(WaveformError),
    /// The oscillator was not locked even at the search center frequency.
    NotLockedAtCenter {
        /// The injection frequency probed.
        f_injection_hz: f64,
    },
    /// The expanding search never left the lock range.
    BoundaryNotFound {
        /// Where the expansion stopped.
        last_frequency_hz: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Circuit(e) => write!(f, "simulation failed: {e}"),
            SimError::Waveform(e) => write!(f, "measurement failed: {e}"),
            SimError::NotLockedAtCenter { f_injection_hz } => {
                write!(f, "not locked at center frequency {f_injection_hz:.6e} Hz")
            }
            SimError::BoundaryNotFound { last_frequency_hz } => write!(
                f,
                "lock boundary not found (still locked at {last_frequency_hz:.6e} Hz)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Circuit(e) => Some(e),
            SimError::Waveform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SimError {
    fn from(e: CircuitError) -> Self {
        SimError::Circuit(e)
    }
}

impl From<WaveformError> for SimError {
    fn from(e: WaveformError) -> Self {
        SimError::Waveform(e)
    }
}

/// Options for transient-based measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Time steps per oscillator period.
    pub steps_per_period: usize,
    /// Oscillator periods to discard before measuring (startup + capture).
    pub settle_periods: f64,
    /// Lock-detection options (windows are in oscillator periods).
    pub lock: LockOptions,
    /// Differential startup kick applied as an initial condition (volts).
    pub startup_kick: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            steps_per_period: 96,
            settle_periods: 300.0,
            lock: LockOptions::default(),
            startup_kick: 0.1,
        }
    }
}

impl SimOptions {
    /// Total simulated periods (settle + measurement windows).
    pub fn total_periods(&self) -> f64 {
        self.settle_periods + (self.lock.windows * self.lock.periods_per_window) as f64 + 2.0
    }
}

/// A natural-oscillation measurement from transient simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaturalMeasurement {
    /// Steady-state peak amplitude (volts).
    pub amplitude: f64,
    /// Oscillation frequency (hertz).
    pub frequency_hz: f64,
}

/// Runs a transient and returns the differential trace `v_a − v_b` after
/// the settle interval.
///
/// `ic` is a list of initial-condition node overrides used to kick the
/// oscillator off its unstable equilibrium.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn settled_trace(
    circuit: &Circuit,
    a: NodeId,
    b: NodeId,
    f_osc_guess: f64,
    opts: &SimOptions,
    ic: &[(NodeId, f64)],
) -> Result<(Vec<f64>, Vec<f64>), SimError> {
    let period = 1.0 / f_osc_guess;
    let dt = period / opts.steps_per_period as f64;
    let t_stop = opts.total_periods() * period;
    let t_record = opts.settle_periods * period;
    let mut tran = TranOptions::new(dt, t_stop).record_after(t_record);
    for &(node, v) in ic {
        tran = tran.with_ic(node, v);
    }
    let res = transient(circuit, &tran)?;
    let trace = res.voltage_between(a, b)?;
    Ok((trace.time, trace.values))
}

/// Measures the natural oscillation of a circuit by transient simulation.
///
/// # Errors
///
/// Propagates simulation and measurement failures.
pub fn measure_natural(
    circuit: &Circuit,
    a: NodeId,
    b: NodeId,
    f_osc_guess: f64,
    opts: &SimOptions,
    ic: &[(NodeId, f64)],
) -> Result<NaturalMeasurement, SimError> {
    let (time, values) = settled_trace(circuit, a, b, f_osc_guess, opts, ic)?;
    let s = Sampled::from_time_series(&time, &values)?;
    Ok(NaturalMeasurement {
        amplitude: peak_amplitude(&s),
        frequency_hz: estimate_frequency(&s)?,
    })
}

/// Probes whether a circuit (already carrying its injection waveform) locks
/// to the `n`-th sub-harmonic of `f_injection`.
///
/// # Errors
///
/// Propagates simulation and measurement failures.
pub fn probe_lock(
    circuit: &Circuit,
    a: NodeId,
    b: NodeId,
    f_injection: f64,
    n: u32,
    opts: &SimOptions,
    ic: &[(NodeId, f64)],
) -> Result<bool, SimError> {
    let f_osc = f_injection / n as f64;
    let (time, values) = settled_trace(circuit, a, b, f_osc, opts, ic)?;
    let s = Sampled::from_time_series(&time, &values)?;
    Ok(is_subharmonic_locked(&s, f_injection, n, &opts.lock)?)
}

/// Verdicts from a parallel lock sweep: one lock/no-lock answer per probed
/// injection frequency, plus the aggregated transient solver effort.
#[derive(Debug, Clone)]
pub struct LockSweep {
    /// The injection frequencies probed, in input order.
    pub frequencies_hz: Vec<f64>,
    /// `locked[i]` is the verdict at `frequencies_hz[i]`.
    pub locked: Vec<bool>,
    /// All per-run transient reports folded together.
    pub report: SolveReport,
}

impl LockSweep {
    /// Number of probed frequencies that locked.
    pub fn locked_count(&self) -> usize {
        self.locked.iter().filter(|&&l| l).count()
    }
}

/// Probes lock at every frequency of a grid, fanning the transient runs
/// across `parallelism` threads (`None` → available cores) with
/// deterministic, input-ordered verdicts.
///
/// `build(f)` must construct the circuit already carrying its injection
/// waveform at frequency `f` — each worker gets its own circuit, so the
/// closure only needs `Sync` captures. This is the paper's §III-C
/// brute-force validation scan as a single fan-out instead of a serial
/// binary search: all probes are independent, so wall clock scales with
/// the slowest run rather than the sum.
///
/// `backend` selects the sweep execution backend ([`BackendChoice::Scalar`]
/// preserves the historical one-transient-per-thread path; every choice is
/// bit-identical). Note that this sweep derives its time step from each
/// probed frequency, so lanes rarely share a step schedule — a batched
/// backend transparently degrades to per-item scalar runs here and pays off
/// only for fixed-grid sweeps.
///
/// # Errors
///
/// Propagates the first simulation or measurement failure (all runs are
/// still executed; verdicts before the failure are discarded).
#[allow(clippy::too_many_arguments)]
pub fn probe_lock_sweep<F>(
    build: F,
    a: NodeId,
    b: NodeId,
    frequencies: &[f64],
    n: u32,
    opts: &SimOptions,
    ic: &[(NodeId, f64)],
    parallelism: Option<usize>,
    backend: BackendChoice,
) -> Result<LockSweep, SimError>
where
    F: Fn(f64) -> Circuit + Sync,
{
    let engine = SweepEngine::new(parallelism).with_backend(backend);
    let sweep = engine.transient_sweep(frequencies, |_, &f_inj| {
        let period = n as f64 / f_inj;
        let dt = period / opts.steps_per_period as f64;
        let t_stop = opts.total_periods() * period;
        let t_record = opts.settle_periods * period;
        let mut tran = TranOptions::new(dt, t_stop).record_after(t_record);
        for &(node, v) in ic {
            tran = tran.with_ic(node, v);
        }
        (build(f_inj), tran)
    });
    let report = sweep.aggregate.clone();
    let mut locked = Vec::with_capacity(frequencies.len());
    for (res, &f_inj) in sweep.runs.into_iter().zip(frequencies) {
        let trace = res?.voltage_between(a, b)?;
        let s = Sampled::from_time_series(&trace.time, &trace.values)?;
        locked.push(is_subharmonic_locked(&s, f_inj, n, &opts.lock)?);
    }
    Ok(LockSweep {
        frequencies_hz: frequencies.to_vec(),
        locked,
        report,
    })
}

/// A policy-driven, resumable lock sweep: one classified outcome per probed
/// injection frequency.
#[derive(Debug)]
pub struct PolicyLockSweep {
    /// The injection frequencies probed, in input order.
    pub frequencies_hz: Vec<f64>,
    /// Per-frequency outcomes, verdicts, and the deterministic aggregate.
    pub sweep: PolicySweep<bool>,
}

impl PolicyLockSweep {
    /// Number of probed frequencies with a positive lock verdict.
    pub fn locked_count(&self) -> usize {
        self.sweep
            .items
            .iter()
            .filter(|item| item.value == Some(true))
            .count()
    }

    /// The lock verdict at input index `i` (`None` if the probe did not
    /// produce one — failed, timed out, panicked, or cancelled).
    pub fn verdict(&self, i: usize) -> Option<bool> {
        self.sweep.items.get(i).and_then(|item| item.value)
    }
}

/// The checkpoint fingerprint binding a lock-sweep checkpoint file to its
/// frequency grid and sub-harmonic order.
pub fn lock_sweep_fingerprint(frequencies: &[f64], n: u32) -> String {
    shil_runtime::checkpoint::fingerprint(&format!("simlock/lock-sweep/n{n}"), frequencies)
}

fn measure_err(e: WaveformError) -> CircuitError {
    CircuitError::InvalidRequest(format!("lock measurement failed: {e}"))
}

/// [`probe_lock_sweep`] under execution control: per-item deadlines, retry
/// with backoff, panic isolation, and durable checkpoint/resume.
///
/// Unlike [`probe_lock_sweep`], a failed probe does not fail the sweep —
/// every frequency gets a classified [`shil_runtime::ItemOutcome`], and a
/// sweep interrupted mid-run (deadline, kill) can be resumed from its
/// checkpoint file with bit-identical verdicts and aggregate. Open the
/// checkpoint with [`lock_sweep_fingerprint`] so stale files (different
/// grid or `n`) are rejected.
#[allow(clippy::too_many_arguments)]
pub fn probe_lock_sweep_checkpointed<F>(
    build: F,
    a: NodeId,
    b: NodeId,
    frequencies: &[f64],
    n: u32,
    opts: &SimOptions,
    ic: &[(NodeId, f64)],
    parallelism: Option<usize>,
    backend: BackendChoice,
    policy: &SweepPolicy,
    budget: &Budget,
    checkpoint: Option<&CheckpointFile>,
) -> PolicyLockSweep
where
    F: Fn(f64) -> Circuit + Sync,
{
    let engine = SweepEngine::new(parallelism).with_backend(backend);
    let sweep = engine.run_checkpointed_tran(
        frequencies,
        policy,
        budget,
        checkpoint,
        |_, &f_inj, item_budget| {
            let period = n as f64 / f_inj;
            let dt = period / opts.steps_per_period as f64;
            let t_stop = opts.total_periods() * period;
            let t_record = opts.settle_periods * period;
            let mut tran = TranOptions::new(dt, t_stop)
                .record_after(t_record)
                .with_budget(item_budget.clone());
            for &(node, v) in ic {
                tran = tran.with_ic(node, v);
            }
            (build(f_inj), tran)
        },
        |_, &f_inj, res| {
            let trace = res.voltage_between(a, b)?;
            let s = Sampled::from_time_series(&trace.time, &trace.values).map_err(measure_err)?;
            let locked = is_subharmonic_locked(&s, f_inj, n, &opts.lock).map_err(measure_err)?;
            Ok((locked, res.report))
        },
        |locked: &bool| if *locked { "1" } else { "0" }.to_string(),
        |s: &str| match s {
            "1" => Some(true),
            "0" => Some(false),
            _ => None,
        },
    );
    PolicyLockSweep {
        frequencies_hz: frequencies.to_vec(),
        sweep,
    }
}

/// The simulated lock range found by expanding + bisecting on each side of
/// the center frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedLockRange {
    /// Lower injection lock limit (hertz).
    pub lower_injection_hz: f64,
    /// Upper injection lock limit (hertz).
    pub upper_injection_hz: f64,
    /// Width (hertz).
    pub injection_span_hz: f64,
    /// Number of lock probes (transient simulations) performed.
    pub probes: usize,
}

/// Binary-searches the lock boundary on one side of `f_center`.
///
/// `probe(f)` must report lock/no-lock at injection frequency `f`.
fn boundary<P: FnMut(f64) -> Result<bool, SimError>>(
    mut probe: P,
    f_center: f64,
    initial_step: f64,
    tol: f64,
    upward: bool,
    probes: &mut usize,
) -> Result<f64, SimError> {
    let sign = if upward { 1.0 } else { -1.0 };
    let mut inside = f_center;
    let mut step = initial_step;
    let mut outside = None;
    for _ in 0..40 {
        let f = inside + sign * step;
        *probes += 1;
        if probe(f)? {
            inside = f;
            step *= 2.0;
        } else {
            outside = Some(f);
            break;
        }
    }
    let mut out = outside.ok_or(SimError::BoundaryNotFound {
        last_frequency_hz: inside,
    })?;
    while (out - inside).abs() > tol {
        let mid = 0.5 * (out + inside);
        *probes += 1;
        if probe(mid)? {
            inside = mid;
        } else {
            out = mid;
        }
    }
    Ok(0.5 * (inside + out))
}

/// Finds the injection lock range by brute-force binary search — the
/// paper's simulation baseline.
///
/// `probe(f)` runs a transient at injection frequency `f` and reports
/// whether the oscillator locked; `f_center` must be inside the range.
///
/// # Errors
///
/// - [`SimError::NotLockedAtCenter`] if `probe(f_center)` is false.
/// - [`SimError::BoundaryNotFound`] if expansion never exits the range.
/// - Propagated probe failures.
pub fn simulated_lock_range<P: FnMut(f64) -> Result<bool, SimError>>(
    mut probe: P,
    f_center: f64,
    initial_step: f64,
    tol: f64,
) -> Result<SimulatedLockRange, SimError> {
    let mut probes = 1;
    if !probe(f_center)? {
        return Err(SimError::NotLockedAtCenter {
            f_injection_hz: f_center,
        });
    }
    let upper = boundary(&mut probe, f_center, initial_step, tol, true, &mut probes)?;
    let lower = boundary(&mut probe, f_center, initial_step, tol, false, &mut probes)?;
    Ok(SimulatedLockRange {
        lower_injection_hz: lower,
        upper_injection_hz: upper,
        injection_span_hz: upper - lower,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "oscillator" whose lock range is exactly [990, 1020].
    fn synthetic_probe(f: f64) -> Result<bool, SimError> {
        Ok((990.0..=1020.0).contains(&f))
    }

    #[test]
    fn synthetic_lock_range_is_recovered() {
        let lr = simulated_lock_range(synthetic_probe, 1000.0, 1.0, 0.01).unwrap();
        assert!((lr.lower_injection_hz - 990.0).abs() < 0.02);
        assert!((lr.upper_injection_hz - 1020.0).abs() < 0.02);
        assert!((lr.injection_span_hz - 30.0).abs() < 0.05);
        assert!(lr.probes > 10);
    }

    #[test]
    fn unlocked_center_is_reported() {
        let e = simulated_lock_range(synthetic_probe, 2000.0, 1.0, 0.01).unwrap_err();
        assert!(matches!(e, SimError::NotLockedAtCenter { .. }));
    }

    #[test]
    fn boundless_lock_is_reported() {
        let e = simulated_lock_range(|_| Ok(true), 1000.0, 1.0, 0.01).unwrap_err();
        assert!(matches!(e, SimError::BoundaryNotFound { .. }));
    }

    #[test]
    fn sim_options_total_periods() {
        let o = SimOptions::default();
        // settle + 8 windows × 20 periods + slack
        assert!((o.total_periods() - (300.0 + 160.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = SimError::NotLockedAtCenter {
            f_injection_hz: 1.5e6,
        };
        assert!(e.to_string().contains("1.5"));
        let e = SimError::BoundaryNotFound {
            last_frequency_hz: 2e6,
        };
        assert!(e.to_string().contains("still locked"));
    }
}
