//! A CMOS cross-coupled VCO — the modern RFIC topology the paper's
//! introduction motivates ("virtually all such applications use LC
//! oscillator topologies").
//!
//! The paper validates on BJT and tunnel-diode circuits; this module
//! demonstrates the tool's generality claim on the topology designers
//! actually ship: an NMOS cross-coupled pair with a tail current and a
//! center-tapped tank, analyzed through the identical
//! extract → predict → simulate pipeline.

use shil_circuit::analysis::{operating_point, operating_point_with_guess, OpOptions};
use shil_circuit::device::MosfetModel;
use shil_circuit::{Circuit, CircuitError, DeviceId, NodeId, SourceWave};
use shil_core::tank::ParallelRlc;
use shil_core::ShilError;

/// Component values of the CMOS VCO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosVcoParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Tail current (A).
    pub i_tail: f64,
    /// Differential tank resistance (Ω).
    pub r_tank: f64,
    /// Total differential tank inductance (H), center-tapped at `V_DD`.
    pub l_tank: f64,
    /// Tank capacitance (F).
    pub c_tank: f64,
    /// NMOS model.
    pub mos: MosfetModel,
}

impl Default for CmosVcoParams {
    fn default() -> Self {
        CmosVcoParams {
            vdd: 1.8,
            i_tail: 2e-3,
            r_tank: 600.0,
            l_tank: 10e-6,
            c_tank: 10e-9,
            mos: MosfetModel::default(),
        }
    }
}

impl CmosVcoParams {
    /// The analysis-side tank.
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] for non-physical values.
    pub fn tank(&self) -> Result<ParallelRlc, ShilError> {
        ParallelRlc::new(self.r_tank, self.l_tank, self.c_tank)
    }

    /// The tank center frequency (hertz).
    pub fn center_frequency_hz(&self) -> f64 {
        1.0 / (std::f64::consts::TAU * (self.l_tank * self.c_tank).sqrt())
    }

    /// Builds the `i = f(v)` extraction circuit (the MOS analogue of
    /// Fig. 11b): drains driven to `V_DD ± v/2`.
    pub fn extraction_circuit(&self) -> (Circuit, DeviceId, DeviceId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let dl = ckt.node("dl");
        let dr = ckt.node("dr");
        let tail = ckt.node("tail");
        ckt.vsource(vdd, Circuit::GROUND, SourceWave::Dc(self.vdd));
        // Cross-coupled: M1 gate at the other drain.
        ckt.nmos(dl, dr, tail, self.mos);
        ckt.nmos(dr, dl, tail, self.mos);
        ckt.isource(tail, Circuit::GROUND, SourceWave::Dc(self.i_tail));
        let vs_l = ckt.vsource(dl, Circuit::GROUND, SourceWave::Dc(self.vdd));
        let vs_r = ckt.vsource(dr, Circuit::GROUND, SourceWave::Dc(self.vdd));
        (ckt, vs_l, vs_r)
    }

    /// DC-sweeps the extraction circuit over `±v_span` and returns the
    /// differential `i = f(v)` samples.
    ///
    /// # Errors
    ///
    /// Propagates operating-point failures.
    pub fn extract_iv(
        &self,
        v_span: f64,
        points: usize,
    ) -> Result<(Vec<f64>, Vec<f64>), CircuitError> {
        let (ckt, vs_l, vs_r) = self.extraction_circuit();
        let vs: Vec<f64> = (0..points)
            .map(|k| -v_span + 2.0 * v_span * k as f64 / (points - 1) as f64)
            .collect();
        let opts = OpOptions::default();
        let mut work = ckt;
        let mut currents = vec![0.0; points];
        let mut guess: Option<Vec<f64>> = None;
        // MOS currents are polynomial (no exponential cliffs), so a single
        // forward continuation pass suffices.
        for (k, &v) in vs.iter().enumerate() {
            work.set_source_wave(vs_l, SourceWave::Dc(self.vdd + v / 2.0))?;
            work.set_source_wave(vs_r, SourceWave::Dc(self.vdd - v / 2.0))?;
            let op = match &guess {
                Some(g) => operating_point_with_guess(&work, g, &opts)?,
                None => operating_point(&work, &opts)?,
            };
            let il = -op.branch_current(vs_l)?;
            let ir = -op.branch_current(vs_r)?;
            currents[k] = 0.5 * (il - ir);
            guess = Some(op.x);
        }
        Ok((vs, currents))
    }

    /// The extracted curve as an analysis-ready nonlinearity.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn extract_iv_curve(&self) -> Result<shil_core::nonlinearity::Tabulated, CircuitError> {
        let (v, i) = self.extract_iv(1.6, 321)?;
        shil_core::nonlinearity::Tabulated::new(v, i)
            .map_err(|e| CircuitError::InvalidParameter(format!("bad extracted table: {e}")))
    }
}

/// A built CMOS VCO ready for transient analysis.
#[derive(Debug, Clone)]
pub struct CmosVco {
    /// The netlist.
    pub circuit: Circuit,
    /// Left drain.
    pub dl: NodeId,
    /// Right drain.
    pub dr: NodeId,
    /// The series injection source.
    pub injection: DeviceId,
    /// The parameters used.
    pub params: CmosVcoParams,
}

impl CmosVco {
    /// Builds the VCO with a series injection source in the tank path.
    pub fn build(params: CmosVcoParams) -> Self {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let dl = ckt.node("dl");
        let dr = ckt.node("dr");
        let tail = ckt.node("tail");
        let tb = ckt.node("tank_b");
        ckt.vsource(vdd, Circuit::GROUND, SourceWave::Dc(params.vdd));
        ckt.nmos(dl, dr, tail, params.mos);
        ckt.nmos(dr, dl, tail, params.mos);
        ckt.isource(tail, Circuit::GROUND, SourceWave::Dc(params.i_tail));
        ckt.inductor(dl, vdd, params.l_tank / 2.0);
        ckt.inductor(tb, vdd, params.l_tank / 2.0);
        ckt.resistor(dl, tb, params.r_tank);
        ckt.capacitor(dl, tb, params.c_tank);
        let injection = ckt.vsource(tb, dr, SourceWave::Dc(0.0));
        CmosVco {
            circuit: ckt,
            dl,
            dr,
            injection,
            params,
        }
    }

    /// Sets the injection waveform.
    ///
    /// # Errors
    ///
    /// Never fails for a circuit built by [`Self::build`].
    pub fn set_injection(&mut self, wave: SourceWave) -> Result<(), CircuitError> {
        self.circuit.set_source_wave(self.injection, wave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shil_core::Nonlinearity;

    #[test]
    fn extracted_curve_is_odd_with_mos_softness() {
        let p = CmosVcoParams::default();
        let (v, i) = p.extract_iv(1.2, 121).unwrap();
        let mid = v.len() / 2;
        assert!(i[mid].abs() < 1e-9);
        for k in 0..v.len() {
            assert!(
                (i[k] + i[v.len() - 1 - k]).abs() < 1e-7,
                "odd symmetry at {}",
                v[k]
            );
        }
        // Negative transconductance at the origin: −gm/2 with
        // gm = √(2·k'·W/L·I_D), I_D = I_tail/2.
        let g0 = (i[mid + 1] - i[mid - 1]) / (v[mid + 1] - v[mid - 1]);
        let gm = (2.0 * p.mos.kp * p.mos.w_over_l * p.i_tail / 2.0).sqrt();
        assert!(
            (g0 + gm / 2.0).abs() < 0.05 * gm / 2.0,
            "g0 = {g0}, expected {}",
            -gm / 2.0
        );
        // Full switching plateau at ±I_tail/2.
        let k_sw = v.iter().position(|&x| x >= 0.9).unwrap();
        assert!((i[k_sw] + p.i_tail / 2.0).abs() < 0.1 * p.i_tail);
    }

    #[test]
    fn vco_netlist_and_analysis_pipeline() {
        let p = CmosVcoParams::default();
        let f = p.extract_iv_curve().unwrap();
        assert!(f.conductance(0.0) < 0.0);
        let tank = p.tank().unwrap();
        let gain = shil_core::describing::small_signal_loop_gain(&f, &tank);
        assert!(gain > 1.0, "VCO must start up, gain = {gain}");
        let mut vco = CmosVco::build(p);
        assert!(vco
            .set_injection(SourceWave::sine(0.06, 3.0 * p.center_frequency_hz(), 0.0))
            .is_ok());
    }
}
