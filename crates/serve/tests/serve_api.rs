//! End-to-end API tests against in-process servers: admission control,
//! validation, lifecycle, drain semantics, and checkpoint-backed restart
//! recovery with byte-identical results.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use shil_runtime::json::{self, Json};
use shil_serve::{client, Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shil-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(tag: &str) -> ServerConfig {
    ServerConfig {
        data_dir: temp_dir(tag),
        ..ServerConfig::default()
    }
}

fn get(addr: &str, path: &str) -> client::Response {
    client::request(addr, "GET", path, None).expect("GET")
}

fn post(addr: &str, path: &str, body: &str) -> client::Response {
    client::request(addr, "POST", path, Some(body)).expect("POST")
}

fn sweep_body(scales: &str, stop: f64) -> String {
    format!(
        r#"{{"kind":"sweep","netlist":"V1 in 0 DC 10\nR1 in out 3k\nR2 out 0 1k\nC1 out 0 1n\n.end\n","dt":1e-7,"stop":{stop},"probes":["out"],"scales":{scales}}}"#
    )
}

fn job_id(resp: &client::Response) -> u64 {
    json::parse(&resp.body)
        .and_then(|d| d.get("id").and_then(Json::as_u64))
        .unwrap_or_else(|| panic!("no id in {}", resp.body))
}

fn wait_state(addr: &str, id: u64, want: &str, timeout: Duration) -> Json {
    let deadline = Instant::now() + timeout;
    loop {
        let resp = get(addr, &format!("/jobs/{id}"));
        let doc = json::parse(&resp.body).expect("status json");
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("?");
        if state == want {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in `{state}` waiting for `{want}`"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn health_readiness_and_drain() {
    let server = Server::start(config("health")).expect("start");
    let addr = server.addr().to_string();

    assert_eq!(get(&addr, "/healthz").status, 200);
    assert_eq!(get(&addr, "/readyz").status, 200);
    assert_eq!(get(&addr, "/nope").status, 404);
    let metrics = get(&addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("shil_serve_http_requests_total"),
        "{}",
        metrics.body
    );

    // Draining flips readiness and refuses new work, but liveness holds.
    assert_eq!(post(&addr, "/drain", "").status, 202);
    assert_eq!(get(&addr, "/readyz").status, 503);
    assert_eq!(get(&addr, "/healthz").status, 200);
    let refused = post(&addr, "/jobs", &sweep_body("[1.0]", 1e-5));
    assert_eq!(refused.status, 503);
    assert!(refused.header("retry-after").is_some());

    server.shutdown();
}

#[test]
fn admission_control_sheds_with_429_and_rolls_back() {
    // No workers: admitted jobs stay queued, so capacity fills precisely.
    let server = Server::start(ServerConfig {
        workers: 0,
        queue_capacity: 1,
        ..config("admission")
    })
    .expect("start");
    let addr = server.addr().to_string();

    // Validation failures are 400s with actionable messages.
    assert_eq!(post(&addr, "/jobs", "not json").status, 400);
    let bad = post(
        &addr,
        "/jobs",
        &sweep_body("[1.0]", 1e-5).replace("3k", "3q"),
    );
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("col"), "{}", bad.body);

    let first = post(&addr, "/jobs", &sweep_body("[1.0]", 1e-5));
    assert_eq!(first.status, 202, "{}", first.body);
    let first_id = job_id(&first);

    let shed = post(&addr, "/jobs", &sweep_body("[2.0]", 1e-5));
    assert_eq!(shed.status, 429, "{}", shed.body);
    // Retry-After is jittered (anti-thundering-herd), but stays bounded.
    let retry: u64 = shed
        .header("retry-after")
        .and_then(|v| v.parse().ok())
        .expect("numeric retry-after");
    assert!((1..=4).contains(&retry), "retry-after {retry} out of range");
    // The shed job left no trace: no status, no directory.
    let shed_dir = server_data_dir(&addr).join("jobs").join("2");
    assert!(!shed_dir.exists(), "shed job left {shed_dir:?}");
    assert_eq!(get(&addr, &format!("/jobs/{}", first_id + 1)).status, 404);

    // Cancelling the queued job frees capacity.
    let cancelled = post(&addr, &format!("/jobs/{first_id}/cancel"), "");
    assert_eq!(cancelled.status, 200, "{}", cancelled.body);
    assert!(
        cancelled.body.contains("\"cancelled\""),
        "{}",
        cancelled.body
    );
    // A second cancel of a terminal job is a conflict.
    assert_eq!(
        post(&addr, &format!("/jobs/{first_id}/cancel"), "").status,
        409
    );
    let third = post(&addr, "/jobs", &sweep_body("[3.0]", 1e-5));
    assert_eq!(third.status, 202, "{}", third.body);

    let metrics = get(&addr, "/metrics").body;
    assert!(
        metrics.contains("shil_serve_jobs_shed_total 1"),
        "{metrics}"
    );

    server.shutdown();
}

/// Reads back the data dir a test server wrote its address into.
fn server_data_dir(addr: &str) -> PathBuf {
    // Tests create one server per data dir and know both; this helper only
    // documents the linkage for the rollback assertion.
    let dir = temp_dir_existing("admission");
    assert_eq!(
        std::fs::read_to_string(dir.join("addr.txt"))
            .ok()
            .as_deref(),
        Some(addr),
        "no data dir advertises {addr}"
    );
    dir
}

fn temp_dir_existing(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("shil-serve-test-{tag}-{}", std::process::id()))
}

#[test]
fn jobs_run_to_completion_with_streamed_results() {
    let server = Server::start(ServerConfig {
        workers: 1,
        sweep_threads: Some(2),
        ..config("complete")
    })
    .expect("start");
    let addr = server.addr().to_string();

    // A netlist sweep…
    let resp = post(&addr, "/jobs", &sweep_body("[0.5,1.0,2.0]", 1e-5));
    assert_eq!(resp.status, 202, "{}", resp.body);
    let id = job_id(&resp);
    let done = wait_state(&addr, id, "done", Duration::from_secs(60));
    assert_eq!(done.get("ok").and_then(Json::as_u64), Some(3));
    assert_eq!(done.get("worst").and_then(Json::as_str), Some("ok"));
    assert_eq!(done.get("exit_code").and_then(Json::as_u64), Some(0));

    let results = get(&addr, &format!("/jobs/{id}/results"));
    assert_eq!(results.status, 200);
    assert!(results.header("x-shil-partial").is_none());
    let lines: Vec<&str> = results.body.lines().collect();
    assert_eq!(lines.len(), 4, "{}", results.body); // 3 items + aggregate
    assert!(lines[0].contains("\"scale\":0.5"), "{}", lines[0]);
    assert!(lines[3].contains("\"aggregate\":true"), "{}", lines[3]);
    // Determinism contract: no wall times, no restored markers.
    assert!(!results.body.contains("wall"), "{}", results.body);
    assert!(!results.body.contains("restored"), "{}", results.body);

    // …and a lock-range sweep served from the shared bounded cache.
    let lock_body = r#"{"kind":"lockrange","r":1000.0,"l":1e-5,"c":1e-8,"i_sat":1e-3,"gain":20.0,"n":3,"vi":[0.02,0.03]}"#;
    let resp = post(&addr, "/jobs", lock_body);
    assert_eq!(resp.status, 202, "{}", resp.body);
    let id = job_id(&resp);
    let done = wait_state(&addr, id, "done", Duration::from_secs(120));
    assert_eq!(done.get("ok").and_then(Json::as_u64), Some(2));
    let results = get(&addr, &format!("/jobs/{id}/results")).body;
    assert!(results.contains("\"vi\":0.02"), "{results}");
    // The shared pre-characterization cache saw traffic.
    let metrics = get(&addr, "/metrics").body;
    assert!(
        metrics.contains("shil_prechar_cache_miss_total"),
        "{metrics}"
    );

    server.shutdown();
}

#[test]
fn drain_parks_running_jobs_and_restart_resumes_bit_identically() {
    let body = sweep_body("[0.25,0.5,0.75,1.0,1.25,1.5,1.75,2.0]", 4e-3);

    // Reference: an uninterrupted run of the same job.
    let clean_dir = temp_dir("restart-clean");
    let clean = Server::start(ServerConfig {
        workers: 1,
        sweep_threads: Some(1),
        data_dir: clean_dir.clone(),
        ..ServerConfig::default()
    })
    .expect("start clean");
    let clean_addr = clean.addr().to_string();
    let id = job_id(&post(&clean_addr, "/jobs", &body));
    wait_state(&clean_addr, id, "done", Duration::from_secs(120));
    let clean_results = std::fs::read(clean_dir.join("jobs/1/results.jsonl")).expect("clean run");
    clean.shutdown();

    // Interrupted: drain lands mid-job, the job parks back to `queued`
    // with its checkpoint, and a new server over the same data dir
    // finishes it.
    let dir = temp_dir("restart");
    let first = Server::start(ServerConfig {
        workers: 1,
        sweep_threads: Some(1),
        drain_grace: Duration::from_millis(1),
        data_dir: dir.clone(),
        ..ServerConfig::default()
    })
    .expect("start first");
    let addr = first.addr().to_string();
    let id = job_id(&post(&addr, "/jobs", &body));
    assert_eq!(id, 1);

    // Wait until at least one item is checkpointed, then pull the plug.
    let checkpoint = dir.join("jobs/1/checkpoint.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    while count_records(&checkpoint) < 1 {
        assert!(Instant::now() < deadline, "no checkpoint records appeared");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Partial results stream from the checkpoint while the job runs.
    let partial = get(&addr, &format!("/jobs/{id}/results"));
    if partial.header("x-shil-partial").is_some() {
        for line in partial.body.lines() {
            assert!(line.contains("\"scale\""), "{line}");
        }
    }
    first.shutdown();

    let status = std::fs::read_to_string(dir.join("jobs/1/status.json")).expect("status");
    let finished_before_drain = status.contains("\"done\"");
    if !finished_before_drain {
        assert!(status.contains("\"queued\""), "{status}");
    }

    let second = Server::start(ServerConfig {
        workers: 1,
        sweep_threads: Some(1),
        data_dir: dir.clone(),
        ..ServerConfig::default()
    })
    .expect("start second");
    let addr = second.addr().to_string();
    let done = wait_state(&addr, id, "done", Duration::from_secs(120));
    if !finished_before_drain {
        // The resumed run restored the interrupted run's completed items
        // instead of recomputing them.
        assert!(
            done.get("restored").and_then(Json::as_u64).unwrap_or(0) >= 1,
            "{}",
            get(&addr, &format!("/jobs/{id}")).body
        );
    }
    let resumed_results = std::fs::read(dir.join("jobs/1/results.jsonl")).expect("resumed run");
    assert_eq!(
        resumed_results, clean_results,
        "resumed results differ from an uninterrupted run"
    );
    // New submissions get ids past the recovered ones.
    let next = job_id(&post(&addr, "/jobs", &sweep_body("[1.0]", 1e-5)));
    assert!(next > id, "id {next} not past recovered {id}");
    second.shutdown();
}

fn count_records(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count().saturating_sub(1))
        .unwrap_or(0)
}

#[test]
fn chaos_jobs_are_rejected_unless_enabled() {
    let server = Server::start(ServerConfig {
        workers: 0,
        ..config("chaos-gate")
    })
    .expect("start");
    let addr = server.addr().to_string();
    let refused = post(&addr, "/jobs", r#"{"kind":"chaos","mode":"panic"}"#);
    assert_eq!(refused.status, 400, "{}", refused.body);
    assert!(refused.body.contains("--allow-chaos"), "{}", refused.body);
    // The gate rejects before persistence: no job directory appears.
    assert_eq!(get(&addr, "/jobs/1").status, 404);
    server.shutdown();
}

#[test]
fn panicking_job_is_quarantined_while_siblings_complete() {
    let server = Server::start(ServerConfig {
        workers: 1,
        sweep_threads: Some(1),
        allow_chaos: true,
        quarantine_after: 2,
        ..config("quarantine")
    })
    .expect("start");
    let addr = server.addr().to_string();

    // A poison pill that panics its worker every time it runs, plus an
    // honest sibling job sharing the single worker.
    let poison = post(&addr, "/jobs", r#"{"kind":"chaos","mode":"panic"}"#);
    assert_eq!(poison.status, 202, "{}", poison.body);
    let poison_id = job_id(&poison);
    let sibling = post(&addr, "/jobs", &sweep_body("[1.0]", 1e-5));
    assert_eq!(sibling.status, 202, "{}", sibling.body);
    let sibling_id = job_id(&sibling);

    // The poison job crashes, requeues, crashes again, and lands in the
    // terminal quarantined state — while the sibling still completes.
    let quarantined = wait_state(&addr, poison_id, "quarantined", Duration::from_secs(60));
    wait_state(&addr, sibling_id, "done", Duration::from_secs(120));

    assert_eq!(quarantined.get("crashes").and_then(Json::as_u64), Some(2));
    let reason = quarantined
        .get("reason")
        .and_then(Json::as_str)
        .expect("quarantine reason");
    assert!(reason.contains("2 consecutive worker crashes"), "{reason}");
    let Some(Json::Arr(trail)) = quarantined.get("trail") else {
        panic!(
            "no trail in {}",
            get(&addr, &format!("/jobs/{poison_id}")).body
        )
    };
    assert_eq!(trail.len(), 2, "{trail:?}");
    assert!(
        trail
            .iter()
            .all(|t| t.as_str().is_some_and(|s| s.contains("panicked"))),
        "{trail:?}"
    );

    // Terminal semantics: no results, cancel conflicts, metric exported.
    assert_eq!(
        get(&addr, &format!("/jobs/{poison_id}/results")).status,
        409
    );
    assert_eq!(
        post(&addr, &format!("/jobs/{poison_id}/cancel"), "").status,
        409
    );
    let metrics = get(&addr, "/metrics").body;
    assert!(
        metrics.contains("shil_serve_jobs_quarantined_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("shil_serve_jobs_crash_requeued_total 1"),
        "{metrics}"
    );

    server.shutdown();
}

#[test]
fn faulty_storage_submissions_fail_loud_not_silent() {
    // Storage that fails every data-path write: the server must refuse to
    // start (the write probe catches it at the door).
    let spec = shil_fault::StorageFaultSpec {
        rate: 1.0,
        seed: 1,
        grace_ops: 0,
    };
    let err = Server::start(ServerConfig {
        storage: std::sync::Arc::new(shil_fault::FaultyStorage::over_fs(spec)),
        ..config("faulty-probe")
    })
    .map(|s| s.shutdown())
    .expect_err("a server over broken storage must not start");
    assert!(err.to_string().contains("injected"), "{err}");

    // Storage that starts healthy and degrades later: submissions either
    // persist fully or roll back with a 500 — never a half-admitted job.
    let faulty = std::sync::Arc::new(shil_fault::FaultyStorage::over_fs(
        shil_fault::StorageFaultSpec {
            rate: 0.45,
            seed: 7,
            grace_ops: 32,
        },
    ));
    let server = Server::start(ServerConfig {
        workers: 0,
        storage: faulty.clone(),
        ..config("faulty-submit")
    })
    .expect("healthy during startup grace");
    let addr = server.addr().to_string();
    let mut accepted = Vec::new();
    let mut refused = 0;
    for k in 0..24 {
        let resp = post(&addr, "/jobs", &sweep_body(&format!("[{}.0]", k + 1), 1e-5));
        match resp.status {
            202 => accepted.push(job_id(&resp)),
            500 => refused += 1,
            other => panic!("unexpected status {other}: {}", resp.body),
        }
    }
    assert!(refused > 0, "fault rate 0.45 must refuse some submissions");
    faulty.disarm();
    // Every accepted job is fully persisted and listed; every refused one
    // left no registered trace.
    for id in &accepted {
        let resp = get(&addr, &format!("/jobs/{id}"));
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let listed = get(&addr, "/jobs").body.matches("\"queued\"").count();
    assert_eq!(listed, accepted.len(), "{}", get(&addr, "/jobs").body);
    assert!(
        !faulty.trail().is_empty(),
        "the injector records a failure trail"
    );
    server.shutdown();
}

#[test]
fn atlas_jobs_map_the_tongue_and_stream_partials() {
    let server = Server::start(ServerConfig {
        workers: 1,
        sweep_threads: Some(4),
        ..config("atlas")
    })
    .expect("start");
    let addr = server.addr().to_string();

    // Bad submissions are 400s at the door, not worker crashes.
    let bad = r#"{"kind":"atlas","nx":7,"ny":8,"coarse":4}"#;
    let resp = post(&addr, "/jobs", bad);
    assert_eq!(resp.status, 400, "{}", resp.body);

    let body =
        r#"{"kind":"atlas","nx":8,"ny":8,"coarse":4,"steps_per_period":16,"horizon_periods":170}"#;
    let resp = post(&addr, "/jobs", body);
    assert_eq!(resp.status, 202, "{}", resp.body);
    let id = job_id(&resp);
    let done = wait_state(&addr, id, "done", Duration::from_secs(120));
    assert_eq!(done.get("kind").and_then(Json::as_str), Some("atlas"));
    assert_eq!(done.get("items").and_then(Json::as_u64), Some(64));
    assert_eq!(done.get("worst").and_then(Json::as_str), Some("ok"));
    assert_eq!(done.get("exit_code").and_then(Json::as_u64), Some(0));

    let results = get(&addr, &format!("/jobs/{id}/results"));
    assert_eq!(results.status, 200);
    assert!(results.header("x-shil-partial").is_none());
    let lines: Vec<&str> = results.body.lines().collect();
    assert_eq!(lines.len(), 65, "{}", results.body); // 64 pixels + aggregate
    assert!(lines[0].contains("\"verdict\":"), "{}", lines[0]);
    assert!(lines[64].contains("\"aggregate\":true"), "{}", lines[64]);
    assert!(lines[64].contains("\"naive_items\":64"), "{}", lines[64]);
    // Determinism contract carries over from the sweep kinds.
    assert!(!results.body.contains("wall"), "{}", results.body);
    assert!(!results.body.contains("restored"), "{}", results.body);

    // Every refinement pass streamed a painted partial map.
    let partial = std::fs::read_to_string(
        temp_dir_existing("atlas")
            .join("jobs")
            .join(id.to_string())
            .join("partial.json"),
    )
    .expect("partial.json streamed");
    let doc = json::parse(&partial).expect("partial json");
    assert_eq!(doc.get("nx").and_then(Json::as_u64), Some(8));
    let verdicts = doc.get("verdicts").and_then(Json::as_str).unwrap();
    assert_eq!(verdicts.len(), 64);
    assert!(verdicts.chars().all(|c| c == 'L' || c == 'U'), "{verdicts}");

    server.shutdown();
}
