//! Minimal server-side HTTP/1.1 over std TCP.
//!
//! The service speaks just enough HTTP for its job API: one request per
//! connection (`Connection: close`), request bodies bounded by the caller's
//! limit *before* they are buffered, and a hard cap on header size — a
//! client can never make the server allocate proportionally to what it
//! sends beyond those bounds. No TLS, no chunked encoding, no keep-alive:
//! the deployment model is a reverse proxy or localhost tooling.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string included, if any).
    pub path: String,
    /// Request body (at most the caller's `max_body`).
    pub body: Vec<u8>,
}

/// What came off the wire.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The declared or received body exceeds the caller's bound — answer
    /// 413 and close.
    BodyTooLarge,
    /// Not parseable as HTTP/1.1 — answer 400 and close.
    Malformed,
    /// The peer vanished before a full request arrived.
    Disconnected,
}

/// Reads one request from `stream`, refusing bodies longer than
/// `max_body` without buffering them.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> ReadOutcome {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(p) = find_head_end(&buf) {
            break p;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Malformed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Disconnected,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return ReadOutcome::Disconnected,
        }
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return ReadOutcome::Malformed,
    };
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next().unwrap_or("").split_ascii_whitespace();
    let (Some(method), Some(path)) = (request_line.next(), request_line.next()) else {
        return ReadOutcome::Malformed;
    };
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                match v.trim().parse::<usize>() {
                    Ok(n) => content_length = n,
                    Err(_) => return ReadOutcome::Malformed,
                }
            }
        }
    }
    if content_length > max_body {
        return ReadOutcome::BodyTooLarge;
    }
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined bytes beyond the declared body are ignored (we close
        // after one response anyway).
        body.truncate(content_length);
    }
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Disconnected,
            Ok(n) => {
                let want = content_length - body.len();
                body.extend_from_slice(&chunk[..n.min(want)]);
            }
            Err(_) => return ReadOutcome::Disconnected,
        }
    }
    ReadOutcome::Request(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one full response and flushes. `extra` appends verbatim headers
/// (e.g. `Retry-After`).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8], max_body: usize) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let out = read_request(&mut server_side, max_body);
        drop(client.join().unwrap());
        out
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        match roundtrip(raw, 1024) {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/jobs");
                assert_eq!(r.body, b"abcd");
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_refused_without_buffering() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
        assert!(matches!(roundtrip(raw, 64), ReadOutcome::BodyTooLarge));
    }

    #[test]
    fn garbage_is_malformed_or_disconnect() {
        let raw = b"NOT HTTP\r\n\r\n";
        assert!(matches!(
            roundtrip(raw, 64),
            ReadOutcome::Malformed | ReadOutcome::Request(_)
        ));
        // A single token request line is malformed.
        let raw = b"GET\r\n\r\n";
        assert!(matches!(roundtrip(raw, 64), ReadOutcome::Malformed));
    }
}
