//! `shil-serve` — a crash-tolerant HTTP job service over the SHIL
//! analysis stack.
//!
//! Clients `POST` netlist-sweep or lock-range jobs as JSON, receive a job
//! id, poll status, and stream per-item results as JSONL. The service is
//! built for *unattended* operation:
//!
//! - **Bounded everything**: admission-controlled work queue (429 +
//!   `Retry-After` past capacity), request head/body caps, and an
//!   LRU-bounded pre-characterization cache shared across requests —
//!   offered load never translates into unbounded memory.
//! - **Policy-mapped execution**: job deadlines, per-item timeouts and
//!   retries become a [`shil_runtime::SweepPolicy`]; a panicking item is
//!   isolated and classified, never a crashed worker.
//! - **Graceful drain**: `SIGTERM` (via `shil-cli serve`) or
//!   `POST /drain` stops admissions, lets running jobs finish within a
//!   grace period, then parks stragglers back to `Queued` with their
//!   checkpoints intact.
//! - **Restart recovery**: on startup, jobs that were queued or running
//!   when the previous process died — including by `SIGKILL` — are
//!   re-enqueued and resume from their checkpoints, producing final
//!   results **byte-identical** to an uninterrupted run.
//!
//! The HTTP layer is std-only (no TLS, `Connection: close`), intended for
//! localhost tooling or deployment behind a reverse proxy.
//!
//! # API
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness (200 while the process runs) |
//! | `GET /readyz` | readiness (503 once draining) |
//! | `GET /metrics` | Prometheus text exposition of [`shil_observe`] |
//! | `POST /jobs` | submit a job (202 / 400 / 413 / 429 / 503) |
//! | `GET /jobs` | all job statuses |
//! | `GET /jobs/<id>` | one job's status |
//! | `GET /jobs/<id>/results` | final or partial JSONL results |
//! | `POST /jobs/<id>/cancel` | cancel a queued or running job |
//! | `POST /drain` | stop admissions (readiness goes 503) |

pub mod client;
pub mod http;
pub mod job;
pub mod queue;
pub mod server;

pub use client::{request, Response};
pub use job::{JobKind, JobSpec, JobState, JobStatus, LockRangeSpec};
pub use queue::{QueueFull, WorkQueue};
pub use server::{Server, ServerConfig};
