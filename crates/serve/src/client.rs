//! A minimal blocking HTTP/1.1 client for the job API.
//!
//! Exists so the integration tests, the CI smoke script and `perf_serve`
//! can talk to the server without an HTTP dependency. One request per
//! connection, mirroring the server's `Connection: close` model.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request against `addr` (e.g. `127.0.0.1:8080`).
///
/// # Errors
///
/// Connection and read failures, plus unparseable responses (as
/// [`io::ErrorKind::InvalidData`]).
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparseable HTTP response"))
}

fn parse_response(raw: &str) -> Option<Response> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status = lines
        .next()?
        .split_ascii_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Some(Response {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\nRetry-After: 1\r\n\r\n{\"error\":\"full\"}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.header("Retry-After"), Some("1"));
        assert_eq!(r.body, "{\"error\":\"full\"}");
    }

    #[test]
    fn garbage_is_none() {
        assert!(parse_response("nope").is_none());
        assert!(parse_response("HTTP/1.1\r\n\r\n").is_none());
    }
}
