//! Job specifications, status persistence and deterministic result rendering.
//!
//! A job is submitted as one JSON object, validated *fully* at submission
//! time (a malformed netlist is a 400 with line/column context, never a
//! worker crash), persisted under `data_dir/jobs/<id>/` and executed by a
//! worker through the policy-driven sweep engine:
//!
//! ```text
//! jobs/<id>/spec.json        the submitted spec, verbatim semantics
//! jobs/<id>/status.json      current state machine position (atomic)
//! jobs/<id>/checkpoint.jsonl per-item records, appended as items finish
//! jobs/<id>/results.jsonl    final per-item results (atomic rename)
//! ```
//!
//! `results.jsonl` is *deterministic*: it contains no wall-clock times and
//! no restored-from-checkpoint markers, so a job killed mid-run (even with
//! `SIGKILL`) and re-run after restart produces a byte-identical file —
//! the oracle the crash tests and the CI serve-smoke job diff.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use shil_circuit::analysis::{
    decode_final_voltages, AtlasMap, AtlasSpec, NetlistSweepSpec, PolicySweep,
};
use shil_circuit::network::{Coupling, NetworkLockOptions, NetworkSpec, Topology};
use shil_runtime::json::{self, Json};
use shil_runtime::{CheckpointRecord, ItemOutcome, Storage, SweepPolicy};

/// Schema identifier written into every `status.json`.
pub const JOB_SCHEMA: &str = "shil-serve/job/v1";

/// Parameters of a SHIL lock-range sweep over injection amplitudes, on a
/// `−i_sat·tanh(gain·v)` negative-resistance oscillator with a parallel
/// RLC tank — the paper's Fig. 14-style divider-sizing curve, as a job.
#[derive(Debug, Clone, PartialEq)]
pub struct LockRangeSpec {
    /// Tank resistance, ohms.
    pub r: f64,
    /// Tank inductance, henries.
    pub l: f64,
    /// Tank capacitance, farads.
    pub c: f64,
    /// Nonlinearity saturation current, amperes.
    pub i_sat: f64,
    /// Nonlinearity gain, 1/volts.
    pub gain: f64,
    /// Sub-harmonic order (≥ 2).
    pub n: u32,
    /// Injection phasor magnitudes — one sweep item per entry.
    pub vis: Vec<f64>,
}

/// Parameters of a coupled-oscillator network sweep over coupling
/// strengths: one transient + network lock classification per strength
/// (see [`shil_circuit::network`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpecJob {
    /// Number of oscillators (≥ 2).
    pub n: usize,
    /// Topology name (`chain`, `ring`, `star`, `all-to-all`).
    pub topology: String,
    /// Coupling kind (`resistive`, `capacitive`, `mutual`).
    pub coupling: String,
    /// Coupling strengths — one sweep item per entry (ohms, farads, or
    /// coupling coefficient, depending on `coupling`).
    pub strengths: Vec<f64>,
    /// Per-oscillator fractional detuning (cyclic; empty = none).
    pub detuning: Vec<f64>,
    /// Mean periods to settle before recording.
    pub settle_periods: f64,
    /// Mean periods recorded and analyzed.
    pub record_periods: f64,
    /// Output samples per mean period.
    pub points_per_period: usize,
}

impl NetworkSpecJob {
    /// The base [`NetworkSpec`] this job sweeps (strength of the first
    /// item; per-item rebuilds substitute each swept strength).
    ///
    /// # Errors
    ///
    /// A human-readable message when the topology/coupling names or the
    /// network parameters are invalid.
    pub fn base_spec(&self) -> Result<NetworkSpec, String> {
        let topology = Topology::parse(&self.topology)
            .ok_or_else(|| format!("unknown topology `{}`", self.topology))?;
        let strength = self.strengths.first().copied().unwrap_or(0.0);
        let coupling = Coupling::parse(&self.coupling, strength)
            .ok_or_else(|| format!("unknown coupling kind `{}`", self.coupling))?;
        let spec =
            NetworkSpec::new(self.n, topology, coupling).with_detuning(self.detuning.clone());
        // Front-load build errors (n, detuning, coupling range).
        spec.build().map_err(|e| e.to_string())?;
        Ok(spec)
    }

    /// The lock-analysis options implied by the recording window: 6
    /// windows sized to ~90 % of `record_periods` (the slack absorbs
    /// detuned consensus frequencies whose periods run longer than the
    /// nominal mean the recording was sized on).
    pub fn lock_options(&self) -> NetworkLockOptions {
        let mut opts = NetworkLockOptions::default();
        opts.lock.windows = 6;
        opts.lock.periods_per_window =
            ((0.9 * self.record_periods / opts.lock.windows as f64).floor() as usize).max(2);
        opts
    }
}

/// How a chaos job kills its worker (test/chaos-engineering support; the
/// server rejects chaos submissions unless explicitly enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// The job runner panics — caught by worker panic isolation, so only
    /// this job crashes.
    Panic,
    /// The job calls `abort()`, killing the whole server process — the
    /// crash-across-restarts scenario quarantine defends against.
    Abort,
}

impl ChaosMode {
    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosMode::Panic => "panic",
            ChaosMode::Abort => "abort",
        }
    }

    /// Parses [`ChaosMode::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "panic" => ChaosMode::Panic,
            "abort" => ChaosMode::Abort,
            _ => return None,
        })
    }
}

/// A job that deterministically kills its worker — the poison pill the
/// quarantine state machine is tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// How the worker dies.
    pub mode: ChaosMode,
}

/// What a job computes.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// A source-scale transient sweep over a netlist.
    Sweep(NetlistSweepSpec),
    /// A lock-range sweep over injection amplitudes (served from the
    /// process-wide pre-characterization cache).
    LockRange(LockRangeSpec),
    /// An adaptive Arnold-tongue atlas over (frequency × amplitude).
    Atlas(AtlasSpec),
    /// A coupled-oscillator network sweep over coupling strengths.
    Network(NetworkSpecJob),
    /// A worker-killing poison pill (admitted only when the server runs
    /// with chaos jobs enabled).
    Chaos(ChaosSpec),
}

impl JobKind {
    /// Stable kind name used in specs and status documents.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Sweep(_) => "sweep",
            JobKind::LockRange(_) => "lockrange",
            JobKind::Atlas(_) => "atlas",
            JobKind::Network(_) => "network",
            JobKind::Chaos(_) => "chaos",
        }
    }
}

/// A validated job submission: what to compute plus its execution policy.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// Whole-job wall-clock deadline, seconds.
    pub deadline_s: Option<f64>,
    /// Per-item wall-clock timeout, seconds.
    pub item_timeout_s: Option<f64>,
    /// Extra attempts per failed item.
    pub max_retries: usize,
}

impl JobSpec {
    /// Number of sweep items this job will run.
    pub fn items(&self) -> usize {
        match &self.kind {
            JobKind::Sweep(s) => s.scales.len(),
            JobKind::LockRange(s) => s.vis.len(),
            JobKind::Atlas(s) => s.nx * s.ny,
            JobKind::Network(s) => s.strengths.len(),
            JobKind::Chaos(_) => 1,
        }
    }

    /// The [`SweepPolicy`] this spec maps onto.
    pub fn policy(&self) -> SweepPolicy {
        SweepPolicy {
            deadline: self.deadline_s.map(std::time::Duration::from_secs_f64),
            item_timeout: self.item_timeout_s.map(std::time::Duration::from_secs_f64),
            max_retries: self.max_retries,
            ..SweepPolicy::default()
        }
    }

    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// A human-readable message (the HTTP 400 body). Netlist errors keep
    /// their `line L, col C` context.
    pub fn from_json(body: &str) -> Result<JobSpec, String> {
        let doc = json::parse(body).ok_or_else(|| "body is not valid JSON".to_string())?;
        let kind = doc.get("kind").and_then(Json::as_str).ok_or_else(|| {
            "missing `kind` (one of \"sweep\", \"lockrange\", \"atlas\", \"network\")".to_string()
        })?;
        let f64_field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric `{key}`"))
        };
        let f64_list = |key: &str| -> Result<Vec<f64>, String> {
            match doc.get(key) {
                Some(Json::Arr(items)) if !items.is_empty() => items
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| format!("non-numeric entry in `{key}`"))
                    })
                    .collect(),
                _ => Err(format!("missing or empty array `{key}`")),
            }
        };
        let kind = match kind {
            "sweep" => {
                let netlist = doc
                    .get("netlist")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "missing `netlist` text".to_string())?
                    .to_string();
                let probes = match doc.get("probes") {
                    Some(Json::Arr(items)) if !items.is_empty() => items
                        .iter()
                        .map(|v| {
                            v.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "non-string entry in `probes`".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err("missing or empty array `probes`".into()),
                };
                let spec = NetlistSweepSpec {
                    netlist,
                    dt: f64_field("dt")?,
                    stop: f64_field("stop")?,
                    probes,
                    scales: f64_list("scales")?,
                };
                // Front-load every input error into the 400.
                spec.compile().map_err(|e| e.to_string())?;
                JobKind::Sweep(spec)
            }
            "lockrange" => {
                let spec = LockRangeSpec {
                    r: f64_field("r")?,
                    l: f64_field("l")?,
                    c: f64_field("c")?,
                    i_sat: f64_field("i_sat")?,
                    gain: f64_field("gain")?,
                    n: doc
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| "missing or non-integer `n`".to_string())?
                        as u32,
                    vis: f64_list("vi")?,
                };
                if spec.n < 2 {
                    return Err("`n` must be a sub-harmonic order ≥ 2".into());
                }
                for (name, v) in [
                    ("r", spec.r),
                    ("l", spec.l),
                    ("c", spec.c),
                    ("i_sat", spec.i_sat),
                    ("gain", spec.gain),
                ] {
                    if v <= 0.0 || !v.is_finite() {
                        return Err(format!("`{name}` must be positive and finite, got {v}"));
                    }
                }
                if spec.vis.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
                    return Err("every `vi` must be positive and finite".into());
                }
                JobKind::LockRange(spec)
            }
            "atlas" => {
                let usize_field = |key: &str| -> Result<usize, String> {
                    doc.get(key)
                        .and_then(Json::as_u64)
                        .map(|v| v as usize)
                        .ok_or_else(|| format!("missing or non-integer `{key}`"))
                };
                let nx = usize_field("nx")?;
                let ny = usize_field("ny")?;
                let opt_usize = |key: &str, default: usize| -> Result<usize, String> {
                    match doc.get(key) {
                        None | Some(Json::Null) => Ok(default),
                        Some(v) => v
                            .as_u64()
                            .map(|v| v as usize)
                            .ok_or_else(|| format!("non-integer `{key}`")),
                    }
                };
                let opt_f64v = |key: &str, default: f64| -> Result<f64, String> {
                    match doc.get(key) {
                        None | Some(Json::Null) => Ok(default),
                        Some(v) => v.as_f64().ok_or_else(|| format!("non-numeric `{key}`")),
                    }
                };
                let opt_bool = |key: &str, default: bool| -> Result<bool, String> {
                    match doc.get(key) {
                        None | Some(Json::Null) => Ok(default),
                        Some(Json::Bool(b)) => Ok(*b),
                        Some(_) => Err(format!("non-boolean `{key}`")),
                    }
                };
                let mut spec = AtlasSpec::paper_oscillator(
                    nx,
                    ny,
                    opt_usize("coarse", default_coarse(nx, ny))?,
                );
                spec.r = opt_f64v("r", spec.r)?;
                spec.l = opt_f64v("l", spec.l)?;
                spec.c = opt_f64v("c", spec.c)?;
                spec.i0 = opt_f64v("i0", spec.i0)?;
                spec.gain = opt_f64v("gain", spec.gain)?;
                spec.n = opt_usize("n", spec.n as usize)? as u32;
                spec.f_start = opt_f64v("f_start", spec.f_start)?;
                spec.f_stop = opt_f64v("f_stop", spec.f_stop)?;
                spec.vi_start = opt_f64v("vi_start", spec.vi_start)?;
                spec.vi_stop = opt_f64v("vi_stop", spec.vi_stop)?;
                spec.steps_per_period = opt_usize("steps_per_period", spec.steps_per_period)?;
                spec.horizon_periods = opt_usize("horizon_periods", spec.horizon_periods)?;
                spec.early_exit = opt_bool("early_exit", spec.early_exit)?;
                spec.warm_start = opt_bool("warm_start", spec.warm_start)?;
                spec.startup_kick = opt_f64v("startup_kick", spec.startup_kick)?;
                // Front-load every input error into the 400.
                spec.compile().map_err(|e| e.to_string())?;
                JobKind::Atlas(spec)
            }
            "network" => {
                let str_field = |key: &str, default: &str| -> Result<String, String> {
                    match doc.get(key) {
                        None | Some(Json::Null) => Ok(default.to_string()),
                        Some(v) => v
                            .as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("non-string `{key}`")),
                    }
                };
                let opt_f64v = |key: &str, default: f64| -> Result<f64, String> {
                    match doc.get(key) {
                        None | Some(Json::Null) => Ok(default),
                        Some(v) => v.as_f64().ok_or_else(|| format!("non-numeric `{key}`")),
                    }
                };
                let detuning = match doc.get("detuning") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|v| {
                            v.as_f64()
                                .ok_or_else(|| "non-numeric entry in `detuning`".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    Some(_) => return Err("`detuning` must be an array".into()),
                };
                let spec = NetworkSpecJob {
                    n: doc
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| "missing or non-integer `n`".to_string())?
                        as usize,
                    topology: str_field("topology", "ring")?,
                    coupling: str_field("coupling", "resistive")?,
                    strengths: f64_list("strengths")?,
                    detuning,
                    settle_periods: opt_f64v("settle_periods", 60.0)?,
                    record_periods: opt_f64v("record_periods", 60.0)?,
                    points_per_period: match doc.get("points_per_period") {
                        None | Some(Json::Null) => 64,
                        Some(v) => v
                            .as_u64()
                            .ok_or_else(|| "non-integer `points_per_period`".to_string())?
                            as usize,
                    },
                };
                if spec.strengths.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
                    return Err("every `strengths` entry must be positive and finite".into());
                }
                if !(spec.settle_periods > 0.0 && spec.record_periods >= 16.0) {
                    return Err(
                        "`settle_periods` must be positive and `record_periods` ≥ 16 \
                         (the analysis needs 6 windows of ≥ 2 periods plus margin)"
                            .into(),
                    );
                }
                if !(4..=4096).contains(&spec.points_per_period) {
                    return Err("`points_per_period` must be in 4..=4096".into());
                }
                // Front-load every build error (n, topology, coupling range,
                // detuning) into the 400.
                spec.base_spec()?;
                JobKind::Network(spec)
            }
            "chaos" => {
                let mode = doc
                    .get("mode")
                    .and_then(Json::as_str)
                    .and_then(ChaosMode::parse)
                    .ok_or_else(|| {
                        "missing or unknown `mode` (one of \"panic\", \"abort\")".to_string()
                    })?;
                JobKind::Chaos(ChaosSpec { mode })
            }
            other => return Err(format!("unknown job kind `{other}`")),
        };
        let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
            match doc.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => {
                    let v = v
                        .as_f64()
                        .filter(|v| *v > 0.0 && v.is_finite())
                        .ok_or_else(|| format!("`{key}` must be a positive number of seconds"))?;
                    Ok(Some(v))
                }
            }
        };
        Ok(JobSpec {
            kind,
            deadline_s: opt_f64("deadline_s")?,
            item_timeout_s: opt_f64("item_timeout_s")?,
            max_retries: doc.get("max_retries").and_then(Json::as_u64).unwrap_or(0) as usize,
        })
    }

    /// Renders the spec back to the canonical JSON document (the persisted
    /// `spec.json`; re-parsing it yields an equal spec).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"kind\":");
        json::push_str(&mut out, self.kind.name());
        match &self.kind {
            JobKind::Sweep(s) => {
                out.push_str(",\"netlist\":");
                json::push_str(&mut out, &s.netlist);
                out.push_str(&format!(
                    ",\"dt\":{},\"stop\":{}",
                    json::fmt_f64(s.dt),
                    json::fmt_f64(s.stop)
                ));
                out.push_str(",\"probes\":[");
                for (i, p) in s.probes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::push_str(&mut out, p);
                }
                out.push_str("],\"scales\":");
                push_f64_array(&mut out, &s.scales);
            }
            JobKind::LockRange(s) => {
                out.push_str(&format!(
                    ",\"r\":{},\"l\":{},\"c\":{},\"i_sat\":{},\"gain\":{},\"n\":{}",
                    json::fmt_f64(s.r),
                    json::fmt_f64(s.l),
                    json::fmt_f64(s.c),
                    json::fmt_f64(s.i_sat),
                    json::fmt_f64(s.gain),
                    s.n
                ));
                out.push_str(",\"vi\":");
                push_f64_array(&mut out, &s.vis);
            }
            JobKind::Atlas(s) => {
                out.push_str(&format!(
                    ",\"r\":{},\"l\":{},\"c\":{},\"i0\":{},\"gain\":{},\"n\":{}",
                    json::fmt_f64(s.r),
                    json::fmt_f64(s.l),
                    json::fmt_f64(s.c),
                    json::fmt_f64(s.i0),
                    json::fmt_f64(s.gain),
                    s.n
                ));
                out.push_str(&format!(
                    ",\"f_start\":{},\"f_stop\":{},\"nx\":{},\"vi_start\":{},\"vi_stop\":{},\"ny\":{}",
                    json::fmt_f64(s.f_start),
                    json::fmt_f64(s.f_stop),
                    s.nx,
                    json::fmt_f64(s.vi_start),
                    json::fmt_f64(s.vi_stop),
                    s.ny
                ));
                out.push_str(&format!(
                    ",\"steps_per_period\":{},\"horizon_periods\":{},\"coarse\":{},\"early_exit\":{},\"warm_start\":{},\"startup_kick\":{}",
                    s.steps_per_period,
                    s.horizon_periods,
                    s.coarse,
                    s.early_exit,
                    s.warm_start,
                    json::fmt_f64(s.startup_kick)
                ));
            }
            JobKind::Network(s) => {
                out.push_str(&format!(",\"n\":{},\"topology\":", s.n));
                json::push_str(&mut out, &s.topology);
                out.push_str(",\"coupling\":");
                json::push_str(&mut out, &s.coupling);
                out.push_str(",\"strengths\":");
                push_f64_array(&mut out, &s.strengths);
                if !s.detuning.is_empty() {
                    out.push_str(",\"detuning\":");
                    push_f64_array(&mut out, &s.detuning);
                }
                out.push_str(&format!(
                    ",\"settle_periods\":{},\"record_periods\":{},\"points_per_period\":{}",
                    json::fmt_f64(s.settle_periods),
                    json::fmt_f64(s.record_periods),
                    s.points_per_period
                ));
            }
            JobKind::Chaos(s) => {
                out.push_str(",\"mode\":");
                json::push_str(&mut out, s.mode.as_str());
            }
        }
        if let Some(d) = self.deadline_s {
            out.push_str(&format!(",\"deadline_s\":{}", json::fmt_f64(d)));
        }
        if let Some(t) = self.item_timeout_s {
            out.push_str(&format!(",\"item_timeout_s\":{}", json::fmt_f64(t)));
        }
        if self.max_retries > 0 {
            out.push_str(&format!(",\"max_retries\":{}", self.max_retries));
        }
        out.push('}');
        out
    }
}

fn push_f64_array(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::fmt_f64(*x));
    }
    out.push(']');
}

/// The default coarse superpixel size for an atlas submission that omits
/// `coarse`: the largest power of two ≤ 8 dividing both axes while leaving
/// at least two tiles per axis.
fn default_coarse(nx: usize, ny: usize) -> usize {
    let mut c = 1usize;
    while c < 8 && nx.is_multiple_of(2 * c) && ny.is_multiple_of(2 * c) && 2 * (2 * c) <= nx.min(ny)
    {
        c *= 2;
    }
    c
}

/// Renders the final `results.jsonl` for a finished atlas: one line per
/// pixel (row-major) plus a deterministic aggregate footer. Like the sweep
/// renderer, lines exclude wall time and restored counts — the
/// byte-identity oracle holds across crash/resume.
pub fn atlas_result_lines(map: &AtlasMap) -> String {
    let mut out = String::new();
    for iy in 0..map.ny {
        for ix in 0..map.nx {
            let i = iy * map.nx + ix;
            out.push_str(&format!(
                "{{\"item\":{i},\"f\":{},\"vi\":{},\"verdict\":\"{}\",\"simulated\":{},\"cell_size\":{}}}\n",
                json::fmt_f64(map.freqs[ix]),
                json::fmt_f64(map.amps[iy]),
                map.verdicts[i].name(),
                map.simulated[i],
                map.cell_size[i],
            ));
        }
    }
    let st = &map.stats;
    out.push_str(&format!(
        "{{\"aggregate\":true,\"locked\":{},\"passes\":{},\"items_simulated\":{},\"naive_items\":{},\"steps_run\":{},\"steps_budgeted\":{},\"naive_steps\":{},\"early_exits\":{},\"warm_starts\":{},\"warm_start_hits\":{},\"cold_fallbacks\":{},\"errors\":{},\"cancelled\":{}}}\n",
        map.locked_count(),
        st.passes,
        st.items_simulated,
        st.naive_items,
        st.steps_run,
        st.steps_budgeted,
        st.naive_steps,
        st.early_exits,
        st.warm_starts,
        st.warm_start_hits,
        st.cold_fallbacks,
        st.errors,
        map.cancelled,
    ));
    out
}

/// One compact snapshot of a (possibly in-progress) atlas map — the
/// streamed partial view a client polls while passes are still running.
/// `verdicts` is the row-major grid as a string of `L`/`U`.
pub fn atlas_partial_json(map: &AtlasMap) -> String {
    let verdicts: String = map
        .verdicts
        .iter()
        .map(|v| if v.is_locked() { 'L' } else { 'U' })
        .collect();
    let mut out = format!(
        "{{\"nx\":{},\"ny\":{},\"passes\":{},\"items_simulated\":{},\"locked\":{},\"cancelled\":{}",
        map.nx,
        map.ny,
        map.stats.passes,
        map.stats.items_simulated,
        map.locked_count(),
        map.cancelled,
    );
    out.push_str(",\"verdicts\":");
    json::push_str(&mut out, &verdicts);
    out.push('}');
    out
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker (also the parked state a drained or
    /// crashed-over job returns to, ready for restart recovery).
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; per-item outcomes (including failures) are in
    /// `results.jsonl` and `worst`/`exit_code` summarize them.
    Done,
    /// The job could not run at all (spec failed to compile on re-read,
    /// checkpoint was locked/corrupt, internal error).
    Failed,
    /// Cancelled by the client.
    Cancelled,
    /// The job crashed its worker (panic or whole-process death) too many
    /// consecutive times and is permanently benched — a poison pill must
    /// not be re-enqueued forever. The failure trail is in the status.
    Quarantined,
}

impl JobState {
    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Quarantined => "quarantined",
        }
    }

    /// Parses [`JobState::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            "quarantined" => JobState::Quarantined,
            _ => return None,
        })
    }

    /// Whether the job will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::Quarantined
        )
    }
}

/// The persisted, queryable status of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id (also the directory name).
    pub id: u64,
    /// Job kind name.
    pub kind: String,
    /// Lifecycle position.
    pub state: JobState,
    /// Total sweep items.
    pub items: usize,
    /// Items that produced a usable value (terminal states only).
    pub ok: usize,
    /// Worst per-item outcome (terminal states only).
    pub worst: Option<ItemOutcome>,
    /// Items restored from the checkpoint instead of recomputed, for the
    /// most recent run (diagnostic; excluded from result bytes).
    pub restored: usize,
    /// Failure detail for [`JobState::Failed`].
    pub error: Option<String>,
    /// Consecutive worker crashes (panics or whole-process deaths while
    /// this job was running). Reset is deliberate *not* provided: a job
    /// that crashes its worker is a poison pill, not bad luck.
    pub crashes: usize,
    /// One line per crash, most recent last (bounded), so `/jobs/<id>`
    /// shows *why* a job was quarantined.
    pub trail: Vec<String>,
    /// Human-readable reason for [`JobState::Quarantined`].
    pub reason: Option<String>,
}

/// How many crash-trail lines a status keeps (most recent last).
pub const TRAIL_LIMIT: usize = 8;

impl JobStatus {
    /// A fresh queued status.
    pub fn queued(id: u64, kind: &str, items: usize) -> Self {
        JobStatus {
            id,
            kind: kind.to_string(),
            state: JobState::Queued,
            items,
            ok: 0,
            worst: None,
            restored: 0,
            error: None,
            crashes: 0,
            trail: Vec::new(),
            reason: None,
        }
    }

    /// Records one worker crash and advances the state machine: back to
    /// [`JobState::Queued`] for another attempt, or — once `crashes`
    /// reaches `quarantine_after` — to the terminal
    /// [`JobState::Quarantined`]. Returns `true` when the job was
    /// quarantined by this crash.
    pub fn record_crash(&mut self, cause: String, quarantine_after: usize) -> bool {
        self.crashes += 1;
        self.trail.push(format!("crash {}: {cause}", self.crashes));
        if self.trail.len() > TRAIL_LIMIT {
            let drop = self.trail.len() - TRAIL_LIMIT;
            self.trail.drain(..drop);
        }
        if self.crashes >= quarantine_after.max(1) {
            self.state = JobState::Quarantined;
            self.reason = Some(format!(
                "quarantined after {} consecutive worker crash{}; last: {cause}",
                self.crashes,
                if self.crashes == 1 { "" } else { "es" },
            ));
            true
        } else {
            self.state = JobState::Queued;
            false
        }
    }

    /// The process exit code equivalent of this status (what `shil-cli`
    /// would exit with for the same outcome taxonomy).
    pub fn exit_code(&self) -> u8 {
        match self.state {
            JobState::Failed => 1,
            JobState::Cancelled => ItemOutcome::Cancelled.exit_code(),
            JobState::Quarantined => ItemOutcome::Panicked.exit_code(),
            _ => self.worst.map_or(0, ItemOutcome::exit_code),
        }
    }

    /// Renders the status document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":");
        json::push_str(&mut out, JOB_SCHEMA);
        out.push_str(&format!(",\"id\":{},\"kind\":", self.id));
        json::push_str(&mut out, &self.kind);
        out.push_str(",\"state\":");
        json::push_str(&mut out, self.state.as_str());
        out.push_str(&format!(
            ",\"items\":{},\"ok\":{},\"restored\":{}",
            self.items, self.ok, self.restored
        ));
        out.push_str(",\"worst\":");
        match self.worst {
            Some(w) => json::push_str(&mut out, w.as_str()),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"exit_code\":{}", self.exit_code()));
        out.push_str(",\"error\":");
        match &self.error {
            Some(e) => json::push_str(&mut out, e),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"crashes\":{}", self.crashes));
        out.push_str(",\"reason\":");
        match &self.reason {
            Some(r) => json::push_str(&mut out, r),
            None => out.push_str("null"),
        }
        if !self.trail.is_empty() {
            out.push_str(",\"trail\":[");
            for (i, t) in self.trail.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str(&mut out, t);
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Parses a persisted status document.
    pub fn parse(text: &str) -> Option<JobStatus> {
        let doc = json::parse(text)?;
        if doc.get("schema").and_then(Json::as_str) != Some(JOB_SCHEMA) {
            return None;
        }
        Some(JobStatus {
            id: doc.get("id")?.as_u64()?,
            kind: doc.get("kind")?.as_str()?.to_string(),
            state: JobState::parse(doc.get("state")?.as_str()?)?,
            items: doc.get("items")?.as_u64()? as usize,
            ok: doc.get("ok")?.as_u64()? as usize,
            worst: match doc.get("worst") {
                Some(Json::Str(s)) => Some(ItemOutcome::parse(s)?),
                _ => None,
            },
            restored: doc.get("restored").and_then(Json::as_u64).unwrap_or(0) as usize,
            error: match doc.get("error") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            },
            // Absent in documents written before the quarantine layer —
            // old statuses parse as crash-free.
            crashes: doc.get("crashes").and_then(Json::as_u64).unwrap_or(0) as usize,
            trail: match doc.get("trail") {
                Some(Json::Arr(xs)) => xs
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect(),
                _ => Vec::new(),
            },
            reason: match doc.get("reason") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            },
        })
    }
}

/// Writes `content` to `path` atomically through the injectable storage
/// layer (write-temp → fsync → rename → fsync-dir, see
/// [`Storage::replace`]), so a crash never leaves a half-written document
/// where readers expect a whole one.
pub fn write_atomic(storage: &dyn Storage, path: &Path, content: &str) -> io::Result<()> {
    storage.replace(path, content.as_bytes())
}

/// One deterministic result line for item `index`.
///
/// `x_key`/`x` name the swept coordinate (`scale` or `vi`); `values` are
/// the item's result vector when successful. Lines carry the exact bits
/// (`"bits"`) besides the human-readable numbers, and deliberately exclude
/// wall time and restored flags — the byte-identity oracle.
pub fn item_line(
    index: usize,
    x_key: &str,
    x: f64,
    outcome: ItemOutcome,
    tries: u32,
    values: Option<&[f64]>,
    error: Option<&str>,
) -> String {
    let mut out = format!("{{\"item\":{index},\"{x_key}\":{}", json::fmt_f64(x));
    out.push_str(",\"outcome\":");
    json::push_str(&mut out, outcome.as_str());
    out.push_str(&format!(",\"tries\":{tries}"));
    match values {
        Some(vs) => {
            out.push_str(",\"v\":");
            push_f64_array(&mut out, vs);
            out.push_str(",\"bits\":");
            json::push_str(&mut out, &shil_circuit::analysis::encode_final_voltages(vs));
        }
        None => out.push_str(",\"v\":null"),
    }
    if let Some(e) = error {
        out.push_str(",\"error\":");
        json::push_str(&mut out, e);
    }
    out.push('}');
    out
}

/// Renders the final `results.jsonl` for a finished sweep: one
/// [`item_line`] per item plus a deterministic aggregate footer (exact
/// solver-effort counters; no wall time).
pub fn result_lines(x_key: &str, xs: &[f64], sweep: &PolicySweep<Vec<f64>>) -> String {
    let mut out = String::new();
    for (i, (x, item)) in xs.iter().zip(&sweep.items).enumerate() {
        out.push_str(&item_line(
            i,
            x_key,
            *x,
            item.outcome,
            item.tries,
            item.value.as_deref(),
            item.error.as_deref(),
        ));
        out.push('\n');
    }
    let fallbacks: Vec<String> = sweep
        .aggregate
        .fallbacks
        .iter()
        .map(|f| f.to_string())
        .collect();
    out.push_str(&format!(
        "{{\"aggregate\":true,\"ok\":{},\"cancelled\":{},\"attempts\":{},\"halvings\":{},\"factorizations\":{},\"reuses\":{},\"fallbacks\":[",
        sweep.ok_count(),
        sweep.cancelled,
        sweep.aggregate.attempts,
        sweep.aggregate.halvings,
        sweep.aggregate.factorizations,
        sweep.aggregate.reuses,
    ));
    for (i, f) in fallbacks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(&mut out, f.as_str());
    }
    out.push_str("]}\n");
    out
}

/// Renders the *partial* per-item view of a running job from its
/// checkpoint records — the streaming results a client polls before the
/// job finishes. Completed items render exactly as they will in the final
/// `results.jsonl` (same [`item_line`]); items still pending are absent.
pub fn partial_lines(x_key: &str, xs: &[f64], checkpoint_text: &str) -> String {
    let mut records: BTreeMap<usize, CheckpointRecord> = BTreeMap::new();
    for line in checkpoint_text.lines().skip(1) {
        if let Some(rec) = CheckpointRecord::from_line(line) {
            records.insert(rec.index, rec);
        }
    }
    let mut out = String::new();
    for (i, rec) in &records {
        let Some(x) = xs.get(*i) else { continue };
        let values = if rec.outcome.is_success() {
            decode_final_voltages(&rec.payload)
        } else {
            None
        };
        out.push_str(&item_line(
            *i,
            x_key,
            *x,
            rec.outcome,
            rec.tries,
            values.as_deref(),
            None,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_body() -> String {
        r#"{"kind":"sweep","netlist":"V1 in 0 DC 10\nR1 in out 3k\nR2 out 0 1k\nC1 out 0 1n\n.end\n","dt":1e-7,"stop":1e-5,"probes":["out"],"scales":[0.5,1.0],"item_timeout_s":30,"max_retries":1}"#
            .to_string()
    }

    #[test]
    fn sweep_spec_round_trips_through_json() {
        let spec = JobSpec::from_json(&sweep_body()).unwrap();
        assert_eq!(spec.items(), 2);
        assert_eq!(spec.max_retries, 1);
        assert_eq!(spec.item_timeout_s, Some(30.0));
        let again = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn lockrange_spec_round_trips_and_validates() {
        let body = r#"{"kind":"lockrange","r":1000.0,"l":1e-5,"c":1e-8,"i_sat":1e-3,"gain":20.0,"n":3,"vi":[0.01,0.03]}"#;
        let spec = JobSpec::from_json(body).unwrap();
        assert_eq!(spec.items(), 2);
        let again = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
        for bad in [
            r#"{"kind":"lockrange","r":0,"l":1e-5,"c":1e-8,"i_sat":-1e-3,"gain":20,"n":3,"vi":[0.01]}"#,
            r#"{"kind":"lockrange","r":1000,"l":1e-5,"c":1e-8,"i_sat":1e-3,"gain":20,"n":1,"vi":[0.01]}"#,
            r#"{"kind":"lockrange","r":1000,"l":1e-5,"c":1e-8,"i_sat":1e-3,"gain":20,"n":3,"vi":[]}"#,
        ] {
            assert!(JobSpec::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn atlas_spec_round_trips_and_validates() {
        let body = r#"{"kind":"atlas","nx":16,"ny":16,"steps_per_period":16,"horizon_periods":170,"deadline_s":600}"#;
        let spec = JobSpec::from_json(body).unwrap();
        assert_eq!(spec.items(), 256);
        let JobKind::Atlas(a) = &spec.kind else {
            panic!("not an atlas")
        };
        assert_eq!(a.coarse, 8, "defaulted coarse");
        assert_eq!(a.n, 3, "paper default");
        assert!(a.early_exit && a.warm_start);
        let again = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
        for bad in [
            // coarse does not divide the axes
            r#"{"kind":"atlas","nx":10,"ny":8,"coarse":4}"#,
            // inverted frequency band
            r#"{"kind":"atlas","nx":8,"ny":8,"f_start":2e6,"f_stop":1e6}"#,
            // horizon too short for the detector windows
            r#"{"kind":"atlas","nx":8,"ny":8,"horizon_periods":10}"#,
            r#"{"kind":"atlas","ny":8}"#,
        ] {
            assert!(JobSpec::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn network_spec_round_trips_and_validates() {
        let body = r#"{"kind":"network","n":4,"topology":"ring","coupling":"mutual","strengths":[0.05,0.2],"detuning":[-0.004,0.004],"settle_periods":40,"record_periods":24,"points_per_period":48}"#;
        let spec = JobSpec::from_json(body).unwrap();
        assert_eq!(spec.items(), 2);
        let JobKind::Network(n) = &spec.kind else {
            panic!("not a network job")
        };
        assert_eq!(n.topology, "ring");
        let lock = n.lock_options();
        assert_eq!(lock.lock.windows, 6);
        assert_eq!(
            lock.lock.periods_per_window, 3,
            "90 % of 24 periods / 6 windows"
        );
        let again = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
        // Defaults: ring topology, resistive coupling, 60+60 periods.
        let spec = JobSpec::from_json(r#"{"kind":"network","n":3,"strengths":[1e3]}"#).unwrap();
        let JobKind::Network(n) = &spec.kind else {
            panic!("not a network job")
        };
        assert_eq!(
            (n.topology.as_str(), n.coupling.as_str()),
            ("ring", "resistive")
        );
        let again = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
        for bad in [
            // n = 1 is not a network
            r#"{"kind":"network","n":1,"strengths":[1e3]}"#,
            // unknown topology
            r#"{"kind":"network","n":3,"topology":"moebius","strengths":[1e3]}"#,
            // mutual coupling with |k| ≥ 1
            r#"{"kind":"network","n":3,"coupling":"mutual","strengths":[1.5]}"#,
            // non-positive strength
            r#"{"kind":"network","n":3,"strengths":[0.0]}"#,
            // recording window too short for the analysis
            r#"{"kind":"network","n":3,"strengths":[1e3],"record_periods":6}"#,
            // detuning at or below −1 is non-physical
            r#"{"kind":"network","n":3,"strengths":[1e3],"detuning":[-1.0]}"#,
        ] {
            assert!(JobSpec::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn bad_submissions_get_actionable_errors() {
        let e = JobSpec::from_json("not json").unwrap_err();
        assert!(e.contains("JSON"), "{e}");
        let e = JobSpec::from_json(r#"{"kind":"mystery"}"#).unwrap_err();
        assert!(e.contains("unknown job kind"), "{e}");
        // A netlist typo surfaces with line/column context at submission.
        let body = sweep_body().replace("3k", "3q");
        let e = JobSpec::from_json(&body).unwrap_err();
        assert!(e.contains("line 2, col 11"), "{e}");
        // Unknown probes are caught at submission too.
        let body = sweep_body().replace("\"out\"", "\"nope\"");
        let e = JobSpec::from_json(&body).unwrap_err();
        assert!(e.contains("unknown probe node"), "{e}");
    }

    #[test]
    fn status_round_trips_and_maps_exit_codes() {
        let mut st = JobStatus::queued(7, "sweep", 3);
        assert_eq!(st.exit_code(), 0);
        st.state = JobState::Done;
        st.ok = 2;
        st.worst = Some(ItemOutcome::TimedOut);
        st.restored = 1;
        let parsed = JobStatus::parse(&st.to_json()).unwrap();
        assert_eq!(parsed, st);
        assert_eq!(parsed.exit_code(), ItemOutcome::TimedOut.exit_code());
        st.state = JobState::Failed;
        st.error = Some("boom".into());
        let parsed = JobStatus::parse(&st.to_json()).unwrap();
        assert_eq!(parsed.exit_code(), 1);
        assert_eq!(parsed.error.as_deref(), Some("boom"));
    }

    #[test]
    fn chaos_spec_round_trips_and_validates() {
        for (body, mode) in [
            (r#"{"kind":"chaos","mode":"panic"}"#, ChaosMode::Panic),
            (r#"{"kind":"chaos","mode":"abort"}"#, ChaosMode::Abort),
        ] {
            let spec = JobSpec::from_json(body).unwrap();
            let JobKind::Chaos(c) = &spec.kind else {
                panic!("not a chaos job")
            };
            assert_eq!(c.mode, mode);
            assert_eq!(spec.items(), 1);
            let again = JobSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, again);
        }
        for bad in [
            r#"{"kind":"chaos"}"#,
            r#"{"kind":"chaos","mode":"segfault"}"#,
        ] {
            let e = JobSpec::from_json(bad).unwrap_err();
            assert!(e.contains("mode"), "{e}");
        }
    }

    #[test]
    fn crash_accounting_quarantines_at_the_threshold() {
        let mut st = JobStatus::queued(9, "chaos", 1);
        assert!(!st.record_crash("worker panic: boom".into(), 3));
        assert_eq!(st.state, JobState::Queued, "first crash requeues");
        assert!(!st.record_crash("worker panic: boom".into(), 3));
        assert_eq!(st.state, JobState::Queued, "second crash requeues");
        assert!(st.record_crash("worker panic: boom".into(), 3));
        assert_eq!(st.state, JobState::Quarantined);
        assert!(st.state.is_terminal());
        assert_eq!(st.crashes, 3);
        assert_eq!(st.exit_code(), ItemOutcome::Panicked.exit_code());
        let reason = st.reason.clone().expect("quarantine reason");
        assert!(reason.contains("3 consecutive worker crashes"), "{reason}");
        assert_eq!(st.trail.len(), 3);
        assert!(st.trail[0].starts_with("crash 1:"), "{:?}", st.trail);

        // The persisted document round-trips the whole failure trail …
        let parsed = JobStatus::parse(&st.to_json()).unwrap();
        assert_eq!(parsed, st);
        // … and statuses written before the quarantine layer still parse.
        let legacy = st
            .to_json()
            .replace(",\"crashes\":3", "")
            .replace(",\"reason\":", ",\"ignored\":");
        let parsed = JobStatus::parse(&legacy).unwrap();
        assert_eq!(parsed.crashes, 0);
        assert_eq!(parsed.reason, None);
    }

    #[test]
    fn crash_trail_is_bounded() {
        let mut st = JobStatus::queued(1, "chaos", 1);
        for _ in 0..3 * TRAIL_LIMIT {
            st.record_crash("x".into(), usize::MAX);
        }
        assert_eq!(st.trail.len(), TRAIL_LIMIT, "trail must not grow forever");
        // The oldest entries are dropped, the newest kept.
        assert!(
            st.trail.last().unwrap().starts_with("crash 24:"),
            "{:?}",
            st.trail
        );
    }

    #[test]
    fn item_lines_have_no_wall_time_or_restored_markers() {
        let line = item_line(0, "scale", 0.5, ItemOutcome::Ok, 1, Some(&[2.5]), None);
        assert!(!line.contains("wall"), "{line}");
        assert!(!line.contains("restored"), "{line}");
        assert!(line.contains("\"bits\""), "{line}");
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("outcome").unwrap().as_str(), Some("ok"));
    }
}
