//! The job server: HTTP front-end, bounded work queue, worker pool,
//! graceful drain and restart recovery.
//!
//! # Lifecycle
//!
//! ```text
//!            POST /jobs                    worker pops
//!   client ───────────────► Queued ───────────────────► Running
//!                             │  ▲                        │
//!               cancel        │  │ drain/crash requeue    │ finishes
//!                             ▼  └────────────────────────┤
//!                         Cancelled                       ▼
//!                                              Done / Failed
//! ```
//!
//! - **Admission control**: the queue is bounded; a submission beyond
//!   capacity gets `429 Too Many Requests` with `Retry-After`, and its
//!   on-disk trace is rolled back. Memory use never grows with offered
//!   load.
//! - **Graceful drain**: `drain()` (wired to `SIGTERM` by `shil-cli
//!   serve`) stops admissions (`/readyz` → 503, `POST /jobs` → 503),
//!   gives running jobs a grace period to finish, then cancels them
//!   cooperatively. A cancelled-by-drain job is parked back to `Queued`
//!   with its checkpoint intact — the *checkpoint-on-shutdown* path.
//! - **Restart recovery**: on startup every persisted job directory is
//!   scanned; jobs that were `Queued` or `Running` when the previous
//!   process died (even by `SIGKILL`) are re-enqueued past the admission
//!   bound. Their checkpoints make the re-run skip completed items, so
//!   the final `results.jsonl` is byte-identical to an uninterrupted run.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use shil_circuit::analysis::{decode_final_voltages, encode_final_voltages, AtlasMap, SweepEngine};
use shil_circuit::{CircuitError, SolveReport};
use shil_core::cache::PrecharCache;
use shil_core::nonlinearity::NegativeTanh;
use shil_core::oscillator::Oscillator;
use shil_core::tank::ParallelRlc;
use shil_runtime::storage::probe_writable;
use shil_runtime::{Budget, CancelToken, CheckpointFile, FsStorage, Storage};

use crate::http::{read_request, respond, ReadOutcome, Request};
use crate::job::{self, ChaosMode, JobKind, JobSpec, JobState, JobStatus};
use crate::queue::WorkQueue;

/// How a [`Server`] is shaped. `Default` suits tests and local tooling.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Root of the persisted state (`<data_dir>/jobs/<id>/…`).
    pub data_dir: PathBuf,
    /// Admission bound: queued jobs beyond this are shed with 429.
    pub queue_capacity: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// HTTP acceptor threads.
    pub http_threads: usize,
    /// Entry bound of the shared pre-characterization cache.
    pub cache_entries: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// How long [`Server::drain`] waits for running jobs before cancelling
    /// them (they park back to `Queued` for restart recovery).
    pub drain_grace: Duration,
    /// Threads each sweep fans out to (`None` → one per core).
    pub sweep_threads: Option<usize>,
    /// Backend for every durable write (job specs, statuses, checkpoints,
    /// results). Tests swap in `shil_fault::FaultyStorage` to prove the
    /// durability story; production uses [`FsStorage`].
    pub storage: Arc<dyn Storage>,
    /// Consecutive worker crashes before a job is quarantined instead of
    /// requeued. A poison job stops crash-looping the pool after this many
    /// attempts (counted across restarts via the persisted status).
    pub quarantine_after: usize,
    /// Whether `kind: "chaos"` jobs (deliberate worker panic/abort) are
    /// admitted. Off by default; only test harnesses turn this on.
    pub allow_chaos: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: PathBuf::from("shil-serve-data"),
            queue_capacity: 64,
            workers: 2,
            http_threads: 2,
            cache_entries: 64,
            max_body_bytes: 1 << 20,
            drain_grace: Duration::from_secs(5),
            sweep_threads: None,
            storage: FsStorage::shared(),
            quarantine_after: 3,
            allow_chaos: false,
        }
    }
}

/// One job's live state.
struct Job {
    id: u64,
    spec: JobSpec,
    dir: PathBuf,
    cancel: CancelToken,
    user_cancelled: AtomicBool,
    status: Mutex<JobStatus>,
    storage: Arc<dyn Storage>,
}

impl Job {
    fn status(&self) -> MutexGuard<'_, JobStatus> {
        self.status
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Persists the current status atomically. A persistence failure is
    /// counted, not fatal — the in-memory view stays authoritative while
    /// the process lives.
    fn persist_status(&self) {
        let doc = self.status().to_json();
        if job::write_atomic(&*self.storage, &self.dir.join("status.json"), &doc).is_err() {
            shil_observe::incr("shil_serve_status_write_failures_total");
        }
    }

    fn set_state(&self, state: JobState) {
        self.status().state = state;
        self.persist_status();
    }
}

struct ServerInner {
    config: ServerConfig,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    queue: WorkQueue,
    seq: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
    in_flight: AtomicUsize,
    cache: PrecharCache,
}

impl ServerInner {
    fn jobs(&self) -> MutexGuard<'_, BTreeMap<u64, Arc<Job>>> {
        self.jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs().get(&id).cloned()
    }

    fn jobs_root(&self) -> PathBuf {
        self.config.data_dir.join("jobs")
    }

    fn publish_gauges(&self) {
        shil_observe::gauge_set("shil_serve_queue_depth", self.queue.len() as f64);
        shil_observe::gauge_set(
            "shil_serve_in_flight",
            self.in_flight.load(Ordering::Relaxed) as f64,
        );
        shil_observe::gauge_set(
            "shil_serve_draining",
            if self.draining.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            },
        );
    }
}

/// A running job service. Dropping the handle does *not* stop the server;
/// call [`Server::shutdown`] (or [`Server::drain`] first for a graceful
/// stop).
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers persisted jobs, and starts the HTTP and worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Propagates bind and data-directory I/O failures; in particular a
    /// data directory that cannot actually be written (read-only mount,
    /// full disk, bad permissions) fails here, before any job is accepted.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        // A long-running service wants its metrics on; the registry is a
        // process-wide switch that defaults to off for library users.
        shil_observe::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        probe_writable(&*config.storage, &config.data_dir.join("jobs"))?;

        let inner = Arc::new(ServerInner {
            queue: WorkQueue::new(config.queue_capacity),
            cache: PrecharCache::bounded(config.cache_entries),
            jobs: Mutex::new(BTreeMap::new()),
            seq: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            config,
        });
        recover_jobs(&inner)?;
        inner.publish_gauges();

        // The bound address is persisted so out-of-process clients (tests,
        // the CI smoke job) can find a port-0 server.
        job::write_atomic(
            &*inner.config.storage,
            &inner.config.data_dir.join("addr.txt"),
            &addr.to_string(),
        )?;

        let mut threads = Vec::new();
        for t in 0..inner.config.http_threads.max(1) {
            let inner = Arc::clone(&inner);
            let listener = listener.try_clone()?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("shil-serve-http-{t}"))
                    .spawn(move || http_loop(&inner, &listener))?,
            );
        }
        for t in 0..inner.config.workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("shil-serve-worker-{t}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }
        Ok(Server {
            inner,
            addr,
            threads,
        })
    }

    /// The bound socket address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the server has stopped admitting work.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Relaxed)
    }

    /// Stops admissions, then waits up to `drain_grace` for running jobs
    /// to finish; stragglers are cancelled cooperatively and park back to
    /// `Queued` (checkpoint intact) for the next process to resume.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.publish_gauges();
        let deadline = Instant::now() + self.inner.config.drain_grace;
        while self.inner.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if self.inner.in_flight.load(Ordering::SeqCst) > 0 {
            for jb in self.inner.jobs().values() {
                if jb.status().state == JobState::Running
                    && !jb.user_cancelled.load(Ordering::SeqCst)
                {
                    jb.cancel.cancel();
                }
            }
        }
    }

    /// Graceful stop: [`Server::drain`], then join every thread. Running
    /// jobs have either finished or been parked back to `Queued` with
    /// their status persisted by the time this returns.
    pub fn shutdown(self) {
        self.drain();
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.queue.wake_all();
        for t in self.threads {
            let _ = t.join();
        }
        self.inner.publish_gauges();
    }
}

/// Re-registers persisted jobs. Jobs that were `Queued` or `Running` when
/// the previous process died are parked to `Queued` and re-enqueued
/// *past* the admission bound: work admitted once is never shed.
///
/// A job found `Running` counts a worker crash against it (the previous
/// process died mid-job — graceful drains park to `Queued` first, so a
/// `Running` status at recovery always means an ungraceful death). A job
/// that has crashed `quarantine_after` consecutive times lands in the
/// terminal `Quarantined` state instead of re-entering the queue, ending
/// the crash loop.
fn recover_jobs(inner: &Arc<ServerInner>) -> io::Result<()> {
    let storage = &inner.config.storage;
    let mut max_id = 0u64;
    let mut resume: Vec<u64> = Vec::new();
    for dir in storage.list_dir(&inner.jobs_root())? {
        let Some(id) = dir
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        max_id = max_id.max(id);
        let read_text = |name: &str| storage.read(&dir.join(name)).unwrap_or_default();
        let spec_text = read_text("spec.json");
        let status_text = read_text("status.json");
        let mut status =
            JobStatus::parse(&status_text).unwrap_or_else(|| JobStatus::queued(id, "unknown", 0));
        let spec = match JobSpec::from_json(&spec_text) {
            Ok(spec) => spec,
            Err(e) => {
                // Unreadable spec: the job can never run again; make that
                // visible rather than silently dropping the directory.
                if !status.state.is_terminal() {
                    status.state = JobState::Failed;
                    status.error = Some(format!("unrecoverable spec: {e}"));
                    let _ =
                        job::write_atomic(&**storage, &dir.join("status.json"), &status.to_json());
                    shil_observe::incr("shil_serve_jobs_failed_total");
                }
                continue;
            }
        };
        let mut requeue = !status.state.is_terminal();
        if status.state == JobState::Running {
            // The previous process died while this job ran: that is one
            // crash on this job's record. `record_crash` either parks it
            // back to `Queued` or quarantines it for good.
            let quarantined = status.record_crash(
                "process died while the job was running (found at restart recovery)".into(),
                inner.config.quarantine_after,
            );
            if quarantined {
                requeue = false;
                shil_observe::incr("shil_serve_jobs_quarantined_total");
            }
            job::write_atomic(&**storage, &dir.join("status.json"), &status.to_json())?;
        } else if requeue {
            status.state = JobState::Queued;
            job::write_atomic(&**storage, &dir.join("status.json"), &status.to_json())?;
        }
        let jb = Arc::new(Job {
            id,
            spec,
            dir,
            cancel: CancelToken::new(),
            user_cancelled: AtomicBool::new(false),
            status: Mutex::new(status),
            storage: Arc::clone(storage),
        });
        inner.jobs().insert(id, jb);
        if requeue {
            resume.push(id);
            shil_observe::incr("shil_serve_jobs_recovered_total");
        }
    }
    resume.sort_unstable();
    for id in resume {
        inner.queue.force_push(id);
    }
    inner.seq.store(max_id + 1, Ordering::SeqCst);
    Ok(())
}

// ---------------------------------------------------------------------------
// HTTP front-end
// ---------------------------------------------------------------------------

fn http_loop(inner: &Arc<ServerInner>, listener: &TcpListener) {
    while !inner.stop.load(Ordering::SeqCst) {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        shil_observe::incr("shil_serve_http_requests_total");
        let (status, content_type, extra, body) =
            match read_request(&mut stream, inner.config.max_body_bytes) {
                ReadOutcome::Request(req) => handle(inner, &req),
                ReadOutcome::BodyTooLarge => (
                    413,
                    "application/json",
                    Vec::new(),
                    format!(
                        "{{\"error\":\"body exceeds {} bytes\"}}",
                        inner.config.max_body_bytes
                    ),
                ),
                ReadOutcome::Malformed => (
                    400,
                    "application/json",
                    Vec::new(),
                    "{\"error\":\"malformed request\"}".into(),
                ),
                ReadOutcome::Disconnected => continue,
            };
        let _ = respond(&mut stream, status, content_type, &extra, body.as_bytes());
    }
}

type Reply = (u16, &'static str, Vec<(&'static str, String)>, String);

fn json_reply(status: u16, body: String) -> Reply {
    (status, "application/json", Vec::new(), body)
}

fn error_reply(status: u16, msg: &str) -> Reply {
    let mut body = String::from("{\"error\":");
    shil_runtime::json::push_str(&mut body, msg);
    body.push('}');
    json_reply(status, body)
}

fn handle(inner: &Arc<ServerInner>, req: &Request) -> Reply {
    let path = req.path.split('?').next().unwrap_or("");
    let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    match (req.method.as_str(), parts.as_slice()) {
        ("GET", ["healthz"]) => (200, "text/plain", Vec::new(), "ok\n".into()),
        ("GET", ["readyz"]) => {
            if inner.draining.load(Ordering::SeqCst) {
                (503, "text/plain", Vec::new(), "draining\n".into())
            } else {
                (200, "text/plain", Vec::new(), "ready\n".into())
            }
        }
        ("GET", ["metrics"]) => {
            inner.publish_gauges();
            (
                200,
                "text/plain",
                Vec::new(),
                shil_observe::to_prometheus(&shil_observe::snapshot()),
            )
        }
        ("GET", ["jobs"]) => {
            let jobs = inner.jobs();
            let mut body = String::from("[");
            for (i, jb) in jobs.values().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&jb.status().to_json());
            }
            body.push(']');
            json_reply(200, body)
        }
        ("POST", ["jobs"]) => submit(inner, &req.body),
        ("GET", ["jobs", id]) => match parse_id(id).and_then(|id| inner.job(id)) {
            Some(jb) => json_reply(200, jb.status().to_json()),
            None => error_reply(404, "no such job"),
        },
        ("GET", ["jobs", id, "results"]) => match parse_id(id).and_then(|id| inner.job(id)) {
            Some(jb) => results(&jb),
            None => error_reply(404, "no such job"),
        },
        ("POST", ["jobs", id, "cancel"]) => match parse_id(id).and_then(|id| inner.job(id)) {
            Some(jb) => cancel(inner, &jb),
            None => error_reply(404, "no such job"),
        },
        ("POST", ["drain"]) => {
            inner.draining.store(true, Ordering::SeqCst);
            inner.publish_gauges();
            (202, "text/plain", Vec::new(), "draining\n".into())
        }
        ("GET" | "POST", _) => error_reply(404, "no such route"),
        _ => error_reply(405, "method not allowed"),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// A `Retry-After` value in `base..base + spread` seconds. The jitter
/// desynchronises clients that were all shed by the same burst — without
/// it they retry in lockstep and collide again ("thundering herd").
fn jittered_retry_after(base: u64, spread: u64) -> String {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let x = NONCE.fetch_add(1, Ordering::Relaxed) ^ std::process::id() as u64;
    // splitmix64 finalizer: cheap, stateless, uniform enough for jitter.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (base + z % spread.max(1)).to_string()
}

fn submit(inner: &Arc<ServerInner>, body: &[u8]) -> Reply {
    if inner.draining.load(Ordering::SeqCst) {
        shil_observe::incr("shil_serve_jobs_rejected_total");
        let mut reply = error_reply(503, "server is draining; resubmit elsewhere or later");
        reply.2.push(("Retry-After", jittered_retry_after(5, 5)));
        return reply;
    }
    let Ok(text) = std::str::from_utf8(body) else {
        return error_reply(400, "body is not UTF-8");
    };
    let spec = match JobSpec::from_json(text) {
        Ok(spec) => spec,
        Err(e) => {
            shil_observe::incr("shil_serve_jobs_rejected_total");
            return error_reply(400, &e);
        }
    };
    if matches!(spec.kind, JobKind::Chaos(_)) && !inner.config.allow_chaos {
        shil_observe::incr("shil_serve_jobs_rejected_total");
        return error_reply(
            400,
            "chaos jobs are disabled; start the server with --allow-chaos to admit them",
        );
    }

    let storage = &inner.config.storage;
    let id = inner.seq.fetch_add(1, Ordering::SeqCst);
    let dir = inner.jobs_root().join(id.to_string());
    let status = JobStatus::queued(id, spec.kind.name(), spec.items());
    if storage.create_dir_all(&dir).is_err()
        || job::write_atomic(&**storage, &dir.join("spec.json"), &spec.to_json()).is_err()
        || job::write_atomic(&**storage, &dir.join("status.json"), &status.to_json()).is_err()
    {
        let _ = storage.remove_dir_all(&dir);
        return error_reply(500, "could not persist job");
    }
    let jb = Arc::new(Job {
        id,
        spec,
        dir: dir.clone(),
        cancel: CancelToken::new(),
        user_cancelled: AtomicBool::new(false),
        status: Mutex::new(status),
        storage: Arc::clone(storage),
    });
    inner.jobs().insert(id, Arc::clone(&jb));

    // Admission control: persisted first, pushed second, rolled back on
    // refusal — a 429'd submission leaves no trace in memory or on disk.
    match inner.queue.try_push(id) {
        Ok(_) => {
            shil_observe::incr("shil_serve_jobs_submitted_total");
            inner.publish_gauges();
            json_reply(202, jb.status().to_json())
        }
        Err(full) => {
            inner.jobs().remove(&id);
            let _ = storage.remove_dir_all(&dir);
            shil_observe::incr("shil_serve_jobs_shed_total");
            inner.publish_gauges();
            let mut reply =
                error_reply(429, &format!("queue full ({} jobs waiting)", full.capacity));
            reply.2.push(("Retry-After", jittered_retry_after(1, 4)));
            reply
        }
    }
}

fn results(jb: &Arc<Job>) -> Reply {
    let read_text = |name: &str| jb.storage.read(&jb.dir.join(name)).ok();
    if let Some(text) = read_text("results.jsonl") {
        return (200, "application/jsonl", Vec::new(), text);
    }
    // No final file yet: stream the completed prefix. An atlas job
    // streams the last finished pass's painted map; item sweeps stream
    // the completed items out of the checkpoint, rendered exactly as
    // they will be in the final file.
    let (x_key, xs): (&str, &[f64]) = match &jb.spec.kind {
        JobKind::Sweep(s) => ("scale", &s.scales),
        JobKind::LockRange(s) => ("vi", &s.vis),
        JobKind::Network(s) => ("strength", &s.strengths),
        JobKind::Chaos(_) => return error_reply(409, "chaos jobs produce no results"),
        JobKind::Atlas(_) => {
            let body = read_text("partial.json").unwrap_or_else(|| "{}".into());
            return (
                200,
                "application/json",
                vec![("X-Shil-Partial", "true".into())],
                body,
            );
        }
    };
    let checkpoint = read_text("checkpoint.jsonl").unwrap_or_default();
    let body = job::partial_lines(x_key, xs, &checkpoint);
    (
        200,
        "application/jsonl",
        vec![("X-Shil-Partial", "true".into())],
        body,
    )
}

fn cancel(inner: &Arc<ServerInner>, jb: &Arc<Job>) -> Reply {
    if jb.status().state.is_terminal() {
        return json_reply(409, jb.status().to_json());
    }
    jb.user_cancelled.store(true, Ordering::SeqCst);
    jb.cancel.cancel();
    // A still-queued job is finalized here; a running one is finalized by
    // its worker when the cancellation lands.
    if inner.queue.remove(jb.id) {
        jb.set_state(JobState::Cancelled);
        shil_observe::incr("shil_serve_jobs_cancelled_total");
        inner.publish_gauges();
    }
    json_reply(200, jb.status().to_json())
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(inner: &Arc<ServerInner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        if inner.draining.load(Ordering::SeqCst) {
            // Queued jobs stay parked (status already `queued` on disk) so
            // the next process picks them up; just wait for stop.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        let Some(id) = inner.queue.pop_timeout(Duration::from_millis(50)) else {
            continue;
        };
        let Some(jb) = inner.job(id) else { continue };
        if jb.user_cancelled.load(Ordering::SeqCst) {
            jb.set_state(JobState::Cancelled);
            shil_observe::incr("shil_serve_jobs_cancelled_total");
            continue;
        }
        inner.in_flight.fetch_add(1, Ordering::SeqCst);
        inner.publish_gauges();
        // Item-level panics are isolated inside the sweep engine; this
        // guards the job-level plumbing so a worker thread never dies.
        if let Err(panic_msg) = shil_runtime::isolate(|| run_job(inner, &jb)) {
            crash_job(inner, &jb, format!("job runner panicked: {panic_msg}"));
        }
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
        inner.publish_gauges();
    }
}

/// Books one worker crash against `jb`: the job is requeued for another
/// attempt, or — after `quarantine_after` consecutive crashes — moved to
/// the terminal `Quarantined` state so a poison job cannot crash-loop the
/// pool forever. The crash trail rides along in the persisted status.
fn crash_job(inner: &Arc<ServerInner>, jb: &Arc<Job>, cause: String) {
    let quarantined = jb
        .status()
        .record_crash(cause, inner.config.quarantine_after);
    jb.persist_status();
    if quarantined {
        shil_observe::incr("shil_serve_jobs_quarantined_total");
    } else {
        shil_observe::incr("shil_serve_jobs_crash_requeued_total");
        // Past the admission bound: a job admitted once is never shed.
        inner.queue.force_push(jb.id);
    }
    inner.publish_gauges();
}

fn run_job(inner: &Arc<ServerInner>, jb: &Arc<Job>) {
    jb.set_state(JobState::Running);

    // Chaos jobs are poison pills for resilience testing: they take the
    // same `Running` path as real work and then kill their worker. The
    // panic mode unwinds into `worker_loop`'s isolation (crash counted,
    // job requeued or quarantined); the abort mode kills the whole
    // process, exercising restart recovery's crash accounting.
    if let JobKind::Chaos(spec) = &jb.spec.kind {
        match spec.mode {
            ChaosMode::Panic => panic!("chaos job {}: deliberate worker panic", jb.id),
            ChaosMode::Abort => {
                eprintln!("chaos job {}: deliberate process abort", jb.id);
                std::process::abort();
            }
        }
    }

    let engine = SweepEngine::new(inner.config.sweep_threads);
    let policy = jb.spec.policy();
    let budget = Budget::unlimited().with_token(jb.cancel.clone());

    if let JobKind::Atlas(spec) = &jb.spec.kind {
        match run_atlas(jb, &engine, &policy, &budget, spec) {
            Ok(map) => finalize_atlas(inner, jb, &map),
            Err(error) => {
                let mut st = jb.status();
                st.state = JobState::Failed;
                st.error = Some(error);
                drop(st);
                jb.persist_status();
                shil_observe::incr("shil_serve_jobs_failed_total");
            }
        }
        return;
    }

    let outcome: Result<(Vec<f64>, shil_circuit::analysis::PolicySweep<Vec<f64>>), String> =
        match &jb.spec.kind {
            JobKind::Sweep(spec) => match spec.compile() {
                Ok(compiled) => {
                    match CheckpointFile::open_with(
                        &*jb.storage,
                        &jb.dir.join("checkpoint.jsonl"),
                        &compiled.fingerprint(),
                        compiled.len(),
                    ) {
                        Ok(cp) => Ok((
                            spec.scales.clone(),
                            compiled.run(&engine, &policy, &budget, Some(&cp)),
                        )),
                        Err(e) => Err(format!("checkpoint unavailable: {e}")),
                    }
                }
                Err(e) => Err(format!("spec no longer compiles: {e}")),
            },
            JobKind::LockRange(spec) => run_lockrange(inner, jb, &engine, &policy, &budget, spec),
            JobKind::Network(spec) => run_network(jb, &engine, &policy, &budget, spec),
            JobKind::Atlas(_) => unreachable!("atlas jobs are dispatched above"),
            JobKind::Chaos(_) => unreachable!("chaos jobs never return from the dispatch above"),
        };

    match outcome {
        Err(error) => {
            let mut st = jb.status();
            st.state = JobState::Failed;
            st.error = Some(error);
            drop(st);
            jb.persist_status();
            shil_observe::incr("shil_serve_jobs_failed_total");
        }
        Ok((xs, sweep)) => finalize(inner, jb, &xs, &sweep),
    }
}

fn run_lockrange(
    inner: &Arc<ServerInner>,
    jb: &Arc<Job>,
    engine: &SweepEngine,
    policy: &shil_runtime::SweepPolicy,
    budget: &Budget,
    spec: &crate::job::LockRangeSpec,
) -> Result<(Vec<f64>, shil_circuit::analysis::PolicySweep<Vec<f64>>), String> {
    let tank = ParallelRlc::new(spec.r, spec.l, spec.c).map_err(|e| e.to_string())?;
    let osc = Oscillator::new(NegativeTanh::new(spec.i_sat, spec.gain), tank);
    let mut inputs = vec![
        spec.r,
        spec.l,
        spec.c,
        spec.i_sat,
        spec.gain,
        f64::from(spec.n),
    ];
    inputs.extend_from_slice(&spec.vis);
    let fp = shil_runtime::checkpoint::fingerprint("shil-serve/lockrange", &inputs);
    let cp = CheckpointFile::open_with(
        &*jb.storage,
        &jb.dir.join("checkpoint.jsonl"),
        &fp,
        spec.vis.len(),
    )
    .map_err(|e| format!("checkpoint unavailable: {e}"))?;
    let n = spec.n;
    let cache = &inner.cache;
    let sweep = engine.run_checkpointed(
        &spec.vis,
        policy,
        budget,
        Some(&cp),
        |_, &vi, _| {
            let lock = osc
                .shil_cached(n, vi, cache)
                .and_then(|a| a.lock_range())
                .map_err(|e| CircuitError::InvalidRequest(e.to_string()))?;
            Ok((
                vec![
                    lock.lower_injection_hz,
                    lock.upper_injection_hz,
                    lock.injection_span_hz,
                    lock.amplitude_at_center,
                ],
                SolveReport::new(),
            ))
        },
        |v| encode_final_voltages(v),
        decode_final_voltages,
    );
    Ok((spec.vis.clone(), sweep))
}

/// Runs a coupled-oscillator network job: one transient + network lock
/// classification per coupling strength, checkpointed per item so a
/// crashed or drained job resumes without recomputation.
///
/// Each item's result vector is
/// `[mutual_lock (0/1), locked_fraction, consensus_frequency_hz,
///   locked_pairs]` — fully derived from the deterministic transient, so
/// the byte-identity oracle of `results.jsonl` holds across crash/resume.
fn run_network(
    jb: &Arc<Job>,
    engine: &SweepEngine,
    policy: &shil_runtime::SweepPolicy,
    budget: &Budget,
    spec: &crate::job::NetworkSpecJob,
) -> Result<(Vec<f64>, shil_circuit::analysis::PolicySweep<Vec<f64>>), String> {
    let base = spec.base_spec()?;
    let lock_opts = spec.lock_options();
    let mut inputs = vec![
        base.n as f64,
        spec.settle_periods,
        spec.record_periods,
        spec.points_per_period as f64,
    ];
    inputs.extend_from_slice(&spec.detuning);
    inputs.extend_from_slice(&spec.strengths);
    let fp = shil_runtime::checkpoint::fingerprint(
        &format!("shil-serve/network/{}/{}", spec.topology, spec.coupling),
        &inputs,
    );
    let cp = CheckpointFile::open_with(
        &*jb.storage,
        &jb.dir.join("checkpoint.jsonl"),
        &fp,
        spec.strengths.len(),
    )
    .map_err(|e| format!("checkpoint unavailable: {e}"))?;
    let sweep = engine.run_checkpointed(
        &spec.strengths,
        policy,
        budget,
        Some(&cp),
        |_, &strength, item_budget| {
            let coupling = shil_circuit::network::Coupling::parse(base.coupling.kind(), strength)
                .expect("kind() strings always re-parse");
            let mut point = base.clone();
            point.coupling = coupling;
            let net = point.build()?;
            let opts = net
                .transient_options(
                    spec.settle_periods,
                    spec.record_periods,
                    spec.points_per_period,
                )
                .with_budget(item_budget.clone());
            let result = net.simulate(&opts)?;
            let report = net.probe_lock(&result, &lock_opts)?;
            Ok((
                vec![
                    if report.mutual_lock { 1.0 } else { 0.0 },
                    report.locked_fraction,
                    report.consensus_frequency_hz,
                    report.pairs.iter().filter(|p| p.locked).count() as f64,
                ],
                result.report,
            ))
        },
        |v| encode_final_voltages(v),
        decode_final_voltages,
    );
    Ok((spec.strengths.clone(), sweep))
}

fn run_atlas(
    jb: &Arc<Job>,
    engine: &SweepEngine,
    policy: &shil_runtime::SweepPolicy,
    budget: &Budget,
    spec: &shil_circuit::analysis::AtlasSpec,
) -> Result<AtlasMap, String> {
    let compiled = spec
        .compile()
        .map_err(|e| format!("spec no longer compiles: {e}"))?;
    let cp = CheckpointFile::open_with(
        &*jb.storage,
        &jb.dir.join("checkpoint.jsonl"),
        &compiled.fingerprint(),
        compiled.checkpoint_slots(),
    )
    .map_err(|e| format!("checkpoint unavailable: {e}"))?;
    // Stream each pass's painted map so clients polling `/results` watch
    // the tongue sharpen while the job runs.
    let partial_path = jb.dir.join("partial.json");
    let mut on_pass = |map: &AtlasMap| {
        if job::write_atomic(&*jb.storage, &partial_path, &job::atlas_partial_json(map)).is_err() {
            shil_observe::incr("shil_serve_status_write_failures_total");
        }
    };
    Ok(compiled.run(engine, policy, budget, Some(&cp), Some(&mut on_pass)))
}

/// Atlas twin of [`finalize`]: classifies the finished (or interrupted)
/// map into the job's terminal or re-queued state and persists the
/// deterministic per-pixel results.
fn finalize_atlas(inner: &Arc<ServerInner>, jb: &Arc<Job>, map: &AtlasMap) {
    if jb.cancel.is_cancelled() {
        if jb.user_cancelled.load(Ordering::SeqCst) {
            jb.set_state(JobState::Cancelled);
            shil_observe::incr("shil_serve_jobs_cancelled_total");
        } else {
            // Checkpoint-on-shutdown: simulated cells are on disk; park
            // the job for the next process to resume the remaining passes.
            jb.set_state(JobState::Queued);
            shil_observe::incr("shil_serve_jobs_requeued_total");
        }
        return;
    }
    let lines = job::atlas_result_lines(map);
    if let Err(e) = job::write_atomic(&*jb.storage, &jb.dir.join("results.jsonl"), &lines) {
        let mut st = jb.status();
        st.state = JobState::Failed;
        st.error = Some(format!("could not persist results: {e}"));
        drop(st);
        jb.persist_status();
        shil_observe::incr("shil_serve_jobs_failed_total");
        return;
    }
    let mut st = jb.status();
    st.state = JobState::Done;
    st.ok = map.stats.items_simulated;
    st.worst = Some(if map.cancelled {
        shil_runtime::ItemOutcome::Cancelled
    } else if map.stats.errors > 0 {
        shil_runtime::ItemOutcome::Failed
    } else {
        shil_runtime::ItemOutcome::Ok
    });
    st.restored = map.stats.restored;
    drop(st);
    jb.persist_status();
    shil_observe::incr("shil_serve_jobs_completed_total");
    let _ = inner;
}

/// Classifies a finished sweep into the job's terminal (or re-queued)
/// state and persists results.
fn finalize(
    inner: &Arc<ServerInner>,
    jb: &Arc<Job>,
    xs: &[f64],
    sweep: &shil_circuit::analysis::PolicySweep<Vec<f64>>,
) {
    // The job's own cancel token fires for exactly two reasons: a client
    // cancel, or a drain that ran out of grace. Everything else (deadline,
    // per-item outcomes) is a regular completion.
    if jb.cancel.is_cancelled() {
        if jb.user_cancelled.load(Ordering::SeqCst) {
            jb.set_state(JobState::Cancelled);
            shil_observe::incr("shil_serve_jobs_cancelled_total");
        } else {
            // Checkpoint-on-shutdown: completed items are on disk; park the
            // job for the next process to resume.
            jb.set_state(JobState::Queued);
            shil_observe::incr("shil_serve_jobs_requeued_total");
        }
        return;
    }
    let lines = job::result_lines(
        match &jb.spec.kind {
            JobKind::Sweep(_) => "scale",
            JobKind::LockRange(_) => "vi",
            JobKind::Network(_) => "strength",
            JobKind::Atlas(_) => unreachable!("atlas jobs use finalize_atlas"),
            JobKind::Chaos(_) => unreachable!("chaos jobs never finalize"),
        },
        xs,
        sweep,
    );
    if let Err(e) = job::write_atomic(&*jb.storage, &jb.dir.join("results.jsonl"), &lines) {
        let mut st = jb.status();
        st.state = JobState::Failed;
        st.error = Some(format!("could not persist results: {e}"));
        drop(st);
        jb.persist_status();
        shil_observe::incr("shil_serve_jobs_failed_total");
        return;
    }
    let mut st = jb.status();
    st.state = JobState::Done;
    st.ok = sweep.ok_count();
    st.worst = Some(shil_runtime::ItemOutcome::worst(
        sweep.items.iter().map(|i| i.outcome),
    ));
    st.restored = sweep.items.iter().filter(|i| i.restored).count();
    drop(st);
    jb.persist_status();
    shil_observe::incr("shil_serve_jobs_completed_total");
    let _ = inner;
}
