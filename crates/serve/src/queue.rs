//! Bounded FIFO work queue with admission control.
//!
//! Submissions beyond `capacity` are refused (the HTTP layer turns that
//! into `429 Too Many Requests` + `Retry-After`) so a traffic burst sheds
//! load instead of growing memory without bound. Restart recovery uses
//! [`WorkQueue::force_push`]: work that was already admitted before a
//! crash is never dropped by the admission bound.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured bound that was hit.
    pub capacity: usize,
}

/// A bounded multi-producer multi-consumer FIFO of job ids.
#[derive(Debug)]
pub struct WorkQueue {
    capacity: usize,
    inner: Mutex<VecDeque<u64>>,
    ready: Condvar,
}

impl WorkQueue {
    /// An empty queue admitting at most `capacity` entries (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        WorkQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Admission-controlled push: refused once `capacity` entries wait.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue is at capacity.
    pub fn try_push(&self, id: u64) -> Result<usize, QueueFull> {
        let mut q = self.lock();
        if q.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        q.push_back(id);
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Push that bypasses the admission bound — restart recovery only:
    /// work admitted before a crash must not be shed on the way back in.
    pub fn force_push(&self, id: u64) -> usize {
        let mut q = self.lock();
        q.push_back(id);
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        depth
    }

    /// Pops the oldest entry, waiting up to `wait` for one to arrive.
    /// Returns `None` on timeout — callers poll their stop/drain flags
    /// between waits.
    pub fn pop_timeout(&self, wait: Duration) -> Option<u64> {
        let mut q = self.lock();
        if let Some(id) = q.pop_front() {
            return Some(id);
        }
        let (mut q, _timeout) = self
            .ready
            .wait_timeout(q, wait)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.pop_front()
    }

    /// Removes a specific id (a cancelled queued job). Returns whether it
    /// was present.
    pub fn remove(&self, id: u64) -> bool {
        let mut q = self.lock();
        match q.iter().position(|&x| x == id) {
            Some(i) => {
                q.remove(i);
                true
            }
            None => false,
        }
    }

    /// Wakes every waiting consumer (used at shutdown so workers observe
    /// the stop flag promptly).
    pub fn wake_all(&self) {
        self.ready.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<u64>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_bound_is_enforced() {
        let q = WorkQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(QueueFull { capacity: 2 }));
        // Recovery pushes bypass the bound.
        assert_eq!(q.force_push(4), 3);
        // Still at capacity after one pop thanks to the forced entry …
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert!(q.try_push(5).is_err());
        // … admitting again once the depth drops below the bound.
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.try_push(5), Ok(2));
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q = WorkQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn cancelled_entries_can_be_removed() {
        let q = WorkQueue::new(4);
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        assert!(q.remove(7));
        assert!(!q.remove(7));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(8));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = WorkQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_err());
    }
}
