//! Deterministic I/O fault injection behind the [`Storage`] trait.
//!
//! [`FaultyStorage`] wraps any inner backend (normally the real
//! `FsStorage`) and injects the classic durability failure modes at a
//! seeded rate: short writes that leave a torn prefix, `ENOSPC`, bare
//! `EIO`, flushes that fail or are silently dropped, and torn renames
//! that leave a half-replaced destination. Every injected fault is
//! recorded in a failure trail so a failing chaos run can be shipped as
//! an artifact and replayed from `(seed, rate)` alone.
//!
//! # Determinism
//!
//! Decisions are a pure function of the spec's seed and a per-handle
//! operation counter: the N-th storage operation of a run always gets the
//! same verdict for the same seed. (Under multi-threaded use the op
//! *interleaving* may vary, but single-threaded chaos suites — the
//! intended use — replay exactly.)

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shil_runtime::storage::{AppendFile, FsStorage, Storage};

/// The kind of storage fault injected at one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// An append writes only a prefix of the buffer, then errors — the
    /// torn-line signature checkpoint v2 framing must catch.
    ShortWrite,
    /// `ENOSPC`: the operation fails cleanly, nothing is written.
    Enospc,
    /// A bare I/O error with nothing written.
    Eio,
    /// `sync` fails with an error.
    FlushError,
    /// `sync` reports success without syncing — the lying-drive mode.
    DroppedFlush,
    /// An atomic replace leaves the *destination* holding a torn prefix
    /// and errors — the crash-between-write-and-rename signature.
    TornRename,
}

impl StorageFaultKind {
    /// Short tag used in failure-trail lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            StorageFaultKind::ShortWrite => "short-write",
            StorageFaultKind::Enospc => "enospc",
            StorageFaultKind::Eio => "eio",
            StorageFaultKind::FlushError => "flush-error",
            StorageFaultKind::DroppedFlush => "dropped-flush",
            StorageFaultKind::TornRename => "torn-rename",
        }
    }
}

/// Fault rate, seed and grace window for a [`FaultyStorage`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultSpec {
    /// Probability that any one storage operation is faulted.
    pub rate: f64,
    /// Seed of the decision stream.
    pub seed: u64,
    /// Number of initial operations that are never faulted, so a run can
    /// get past setup (header writes, dir creation) into interesting
    /// states before the chaos starts.
    pub grace_ops: u64,
}

impl StorageFaultSpec {
    /// A spec faulting roughly `rate` of operations after a short grace.
    pub fn new(rate: f64, seed: u64) -> Self {
        StorageFaultSpec {
            rate,
            seed,
            grace_ops: 2,
        }
    }
}

/// Shared fault state: the op counter, the decision spec, the arm switch
/// and the failure trail. One per [`FaultyStorage`], shared with every
/// append handle it vends.
#[derive(Debug)]
struct Core {
    spec: StorageFaultSpec,
    ops: AtomicU64,
    armed: AtomicBool,
    trail: Mutex<Vec<String>>,
}

impl Core {
    /// Decides whether the next operation is faulted; returns a hash for
    /// sub-decisions (which kind, how many bytes survive a short write).
    fn draw(&self) -> Option<u64> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Relaxed) || op < self.spec.grace_ops {
            return None;
        }
        let h = splitmix64(op ^ self.spec.seed);
        (unit(h) < self.spec.rate).then(|| splitmix64(h))
    }

    fn record(&self, kind: StorageFaultKind, path: &Path, detail: &str) {
        let op = self.ops.load(Ordering::Relaxed);
        let mut line = format!("op#{op} {} {}", kind.as_str(), path.display());
        if !detail.is_empty() {
            line.push_str(": ");
            line.push_str(detail);
        }
        if let Ok(mut t) = self.trail.lock() {
            t.push(line);
        }
    }

    fn error(&self, kind: StorageFaultKind, path: &Path, detail: &str) -> io::Error {
        self.record(kind, path, detail);
        let ek = match kind {
            StorageFaultKind::Enospc => io::ErrorKind::StorageFull,
            StorageFaultKind::ShortWrite => io::ErrorKind::WriteZero,
            _ => io::ErrorKind::Other,
        };
        io::Error::new(ek, format!("injected {} ({detail})", kind.as_str()))
    }
}

/// A [`Storage`] backend that injects seeded faults into an inner one.
///
/// Only the data-path operations are faulted (read, append, sync,
/// replace); directory bookkeeping passes through, so a chaos run fails
/// in its durability layer rather than in setup boilerplate.
#[derive(Debug, Clone)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    core: Arc<Core>,
}

impl FaultyStorage {
    /// Wraps `inner` with the given fault spec.
    pub fn new(inner: Arc<dyn Storage>, spec: StorageFaultSpec) -> Self {
        FaultyStorage {
            inner,
            core: Arc::new(Core {
                spec,
                ops: AtomicU64::new(0),
                armed: AtomicBool::new(true),
                trail: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A faulty layer over the real file system.
    pub fn over_fs(spec: StorageFaultSpec) -> Self {
        Self::new(Arc::new(FsStorage), spec)
    }

    /// Stops injecting (existing handles included) — the "storage healed"
    /// phase of a chaos scenario.
    pub fn disarm(&self) {
        self.core.armed.store(false, Ordering::Relaxed);
    }

    /// Resumes injecting after [`FaultyStorage::disarm`].
    pub fn arm(&self) {
        self.core.armed.store(true, Ordering::Relaxed);
    }

    /// The failure trail so far: one line per injected fault, in order.
    pub fn trail(&self) -> Vec<String> {
        self.core
            .trail
            .lock()
            .map(|t| t.clone())
            .unwrap_or_default()
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> usize {
        self.core.trail.lock().map(|t| t.len()).unwrap_or(0)
    }
}

impl Storage for FaultyStorage {
    fn read(&self, path: &Path) -> io::Result<String> {
        if self.core.draw().is_some() {
            return Err(self.core.error(StorageFaultKind::Eio, path, "read failed"));
        }
        self.inner.read(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        if self.core.draw().is_some() {
            return Err(self.core.error(StorageFaultKind::Eio, path, "open failed"));
        }
        Ok(Box::new(FaultyAppend {
            inner: self.inner.open_append(path)?,
            core: Arc::clone(&self.core),
            path: path.to_path_buf(),
        }))
    }

    fn replace(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.core.draw() {
            None => self.inner.replace(path, bytes),
            Some(h) if h & 1 == 0 && !bytes.is_empty() => {
                // Torn rename: the destination ends up holding a prefix
                // of the new contents — neither old nor new.
                let keep = (h >> 1) as usize % bytes.len();
                let _ = self.inner.replace(path, &bytes[..keep]);
                Err(self.core.error(
                    StorageFaultKind::TornRename,
                    path,
                    &format!("destination torn at {keep}/{} bytes", bytes.len()),
                ))
            }
            Some(_) => {
                Err(self
                    .core
                    .error(StorageFaultKind::Enospc, path, "no space left on device"))
            }
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[derive(Debug)]
struct FaultyAppend {
    inner: Box<dyn AppendFile>,
    core: Arc<Core>,
    path: PathBuf,
}

impl AppendFile for FaultyAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.core.draw() {
            None => self.inner.append(bytes),
            Some(h) => match h % 3 {
                0 if !bytes.is_empty() => {
                    // Short write: a torn prefix lands in the file.
                    let wrote = (h >> 2) as usize % bytes.len();
                    let _ = self.inner.append(&bytes[..wrote]);
                    Err(self.core.error(
                        StorageFaultKind::ShortWrite,
                        &self.path,
                        &format!("wrote {wrote}/{} bytes", bytes.len()),
                    ))
                }
                1 => Err(self.core.error(
                    StorageFaultKind::Enospc,
                    &self.path,
                    "no space left on device",
                )),
                _ => Err(self
                    .core
                    .error(StorageFaultKind::Eio, &self.path, "append failed")),
            },
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.core.draw() {
            None => self.inner.sync(),
            Some(h) if h & 1 == 0 => {
                // Dropped flush: report success without syncing.
                self.core
                    .record(StorageFaultKind::DroppedFlush, &self.path, "sync skipped");
                Ok(())
            }
            Some(_) => {
                Err(self
                    .core
                    .error(StorageFaultKind::FlushError, &self.path, "fsync failed"))
            }
        }
    }
}

/// splitmix64 finalizer — same mixing quality as the value-domain
/// injector in the crate root.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("shil_fault_storage_{}_{name}", std::process::id()))
    }

    #[test]
    fn zero_rate_is_a_transparent_passthrough() {
        let path = temp("clean.txt");
        let fs = FaultyStorage::over_fs(StorageFaultSpec::new(0.0, 1));
        fs.replace(&path, b"hello").unwrap();
        assert_eq!(fs.read(&path).unwrap(), "hello");
        assert_eq!(fs.injected(), 0);
        fs.remove_file(&path).unwrap();
    }

    #[test]
    fn short_write_leaves_a_torn_prefix_and_errors() {
        let path = temp("short.log");
        let _ = std::fs::remove_file(&path);
        // rate = 1.0: every post-grace op faults deterministically.
        let spec = StorageFaultSpec {
            rate: 1.0,
            seed: 0,
            grace_ops: 1, // let open_append through
        };
        let fs = FaultyStorage::over_fs(spec);
        let mut f = fs.open_append(&path).unwrap();
        let payload = b"{\"item\":0}\n";
        // Walk the op stream until a short write fires (kind is h % 3).
        let mut saw_short = false;
        for _ in 0..32 {
            match f.append(payload) {
                Err(e) if e.to_string().contains("short-write") => {
                    saw_short = true;
                    break;
                }
                Err(_) => {}
                Ok(()) => panic!("rate-1.0 append must fail"),
            }
        }
        assert!(saw_short, "no short write in 32 faulted appends");
        drop(f);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(
            on_disk.len() < payload.len(),
            "destination must hold a strict prefix, got {on_disk:?}"
        );
        assert!(fs.trail().iter().any(|l| l.contains("short-write")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enospc_carries_the_storage_full_kind() {
        let path = temp("full.log");
        let _ = std::fs::remove_file(&path);
        let spec = StorageFaultSpec {
            rate: 1.0,
            seed: 3,
            grace_ops: 1,
        };
        let fs = FaultyStorage::over_fs(spec);
        let mut f = fs.open_append(&path).unwrap();
        let mut saw = false;
        for _ in 0..32 {
            if let Err(e) = f.append(b"x\n") {
                if e.kind() == io::ErrorKind::StorageFull {
                    assert!(e.to_string().contains("injected enospc"), "{e}");
                    saw = true;
                    break;
                }
            }
        }
        assert!(saw, "no ENOSPC in 32 faulted appends");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_rename_leaves_a_half_replaced_destination() {
        let path = temp("torn.json");
        let fs_clean = FaultyStorage::over_fs(StorageFaultSpec::new(0.0, 0));
        fs_clean.replace(&path, b"OLD CONTENTS").unwrap();
        let spec = StorageFaultSpec {
            rate: 1.0,
            seed: 5,
            grace_ops: 0,
        };
        let fs = FaultyStorage::over_fs(spec);
        let new = b"NEW CONTENTS, LONGER THAN OLD";
        let mut saw = false;
        for _ in 0..32 {
            match fs.replace(&path, new) {
                Err(e) if e.to_string().contains("torn-rename") => {
                    saw = true;
                    break;
                }
                Err(_) => {}
                Ok(()) => panic!("rate-1.0 replace must fail"),
            }
        }
        assert!(saw, "no torn rename in 32 faulted replaces");
        let on_disk = std::fs::read(&path).unwrap();
        assert!(
            new.starts_with(&on_disk) && on_disk.len() < new.len(),
            "destination must hold a prefix of the new contents, got {on_disk:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn decisions_replay_from_the_seed() {
        let run = |seed: u64| -> Vec<String> {
            let path = temp(&format!("replay-{seed}.log"));
            let _ = std::fs::remove_file(&path);
            let fs = FaultyStorage::over_fs(StorageFaultSpec {
                rate: 0.5,
                seed,
                grace_ops: 1,
            });
            if let Ok(mut f) = fs.open_append(&path) {
                for _ in 0..50 {
                    let _ = f.append(b"line\n");
                    let _ = f.sync();
                }
            }
            let _ = std::fs::remove_file(&path);
            fs.trail()
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds must differ");
        assert!(!run(42).is_empty(), "rate 0.5 must inject something");
    }

    #[test]
    fn disarm_heals_the_storage() {
        let path = temp("healed.log");
        let _ = std::fs::remove_file(&path);
        let fs = FaultyStorage::over_fs(StorageFaultSpec {
            rate: 1.0,
            seed: 9,
            grace_ops: 1,
        });
        let mut f = fs.open_append(&path).unwrap();
        assert!(f.append(b"doomed\n").is_err());
        fs.disarm();
        f.append(b"ok\n").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(std::fs::read_to_string(&path).unwrap().ends_with("ok\n"));
        let _ = std::fs::remove_file(&path);
    }
}
