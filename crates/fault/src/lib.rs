//! Fault-injection test support for the `shil` workspace.
//!
//! The resilience layer (non-finite guards, escalating fallbacks, degraded
//! results) is only trustworthy if it is exercised: this crate wraps any
//! [`Nonlinearity`] or [`IvCurve`] in a deterministic fault injector that
//! returns NaN, ±Inf or a large discontinuous jump at configurable rates,
//! so tests can prove that every public solver entry point returns a typed
//! error or a degraded-but-finite result — never a panic — when the device
//! model misbehaves.
//!
//! # Determinism
//!
//! Fault decisions are a **pure function** of the evaluation voltage's bit
//! pattern and the spec's seed — no interior mutability, no call counters.
//! That makes injectors `Sync` (the SHIL grid build fans out across
//! threads), makes runs independent of thread count and evaluation order,
//! and makes every failure reproducible from `(seed, rates)` alone.
//!
//! ```
//! use shil_fault::{FaultSpec, FaultyNonlinearity};
//! use shil_core::nonlinearity::{NegativeTanh, Nonlinearity};
//!
//! let spec = FaultSpec::nan(0.01, 42); // 1 % NaN rate, seed 42
//! let faulty = FaultyNonlinearity::new(NegativeTanh::new(1e-3, 20.0), spec);
//! // Roughly 1 % of evaluations are poisoned, the rest pass through.
//! let poisoned = (0..10_000)
//!     .filter(|k| faulty.current(*k as f64 * 1e-4).is_nan())
//!     .count();
//! assert!(poisoned > 20 && poisoned < 500, "poisoned = {poisoned}");
//! ```

use shil_circuit::IvCurve;
use shil_core::nonlinearity::Nonlinearity;

pub mod storage;

pub use storage::{FaultyStorage, StorageFaultKind, StorageFaultSpec};

/// The kind of fault injected at one evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The evaluation returns NaN.
    Nan,
    /// The evaluation returns ±Inf (sign follows the input voltage).
    Inf,
    /// A large constant is added — a discontinuity in an otherwise smooth
    /// curve, the classic table-lookup-off-by-one failure mode.
    Jump,
}

/// Fault rates and the seed of the deterministic decision stream.
///
/// Rates are probabilities per evaluation; they are tested in the order
/// NaN → Inf → jump against one uniform draw, so their sum should stay at
/// or below one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability of returning NaN.
    pub nan_rate: f64,
    /// Probability of returning ±Inf.
    pub inf_rate: f64,
    /// Probability of adding [`FaultSpec::jump_size`] to the result.
    pub jump_rate: f64,
    /// Magnitude of the discontinuous jump (amperes).
    pub jump_size: f64,
    /// Seed of the decision stream; two specs with equal rates but
    /// different seeds poison different voltages.
    pub seed: u64,
}

impl Default for FaultSpec {
    /// No faults at all — the wrapper becomes a transparent pass-through.
    fn default() -> Self {
        FaultSpec {
            nan_rate: 0.0,
            inf_rate: 0.0,
            jump_rate: 0.0,
            jump_size: 1e-3,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// A NaN-only injector at the given rate.
    pub fn nan(rate: f64, seed: u64) -> Self {
        FaultSpec {
            nan_rate: rate,
            seed,
            ..Default::default()
        }
    }

    /// An injector mixing all three fault kinds at the same rate each.
    pub fn mixed(rate: f64, seed: u64) -> Self {
        FaultSpec {
            nan_rate: rate,
            inf_rate: rate,
            jump_rate: rate,
            seed,
            ..Default::default()
        }
    }

    /// The fault (if any) injected at evaluation voltage `v`.
    ///
    /// Pure in `(v, self)`: the same voltage always gets the same verdict,
    /// regardless of thread, call order or call count.
    pub fn fault_at(&self, v: f64) -> Option<FaultKind> {
        let u = unit(splitmix64(v.to_bits() ^ self.seed));
        if u < self.nan_rate {
            Some(FaultKind::Nan)
        } else if u < self.nan_rate + self.inf_rate {
            Some(FaultKind::Inf)
        } else if u < self.nan_rate + self.inf_rate + self.jump_rate {
            Some(FaultKind::Jump)
        } else {
            None
        }
    }

    /// Applies the fault decision for `v` to a healthy current `i`.
    pub fn apply(&self, v: f64, i: f64) -> f64 {
        match self.fault_at(v) {
            None => i,
            Some(FaultKind::Nan) => f64::NAN,
            Some(FaultKind::Inf) => f64::INFINITY.copysign(if v < 0.0 { -1.0 } else { 1.0 }),
            Some(FaultKind::Jump) => i + self.jump_size,
        }
    }
}

/// splitmix64 finalizer — enough mixing that adjacent voltage bit patterns
/// get independent fault verdicts.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Nonlinearity`] wrapper that injects faults per [`FaultSpec`].
///
/// The differential conductance is *not* overridden, so the trait's default
/// finite difference runs through the faulty `current` — a NaN at either
/// probe point poisons the derivative too, exactly as a buggy device model
/// would.
#[derive(Debug, Clone)]
pub struct FaultyNonlinearity<N> {
    inner: N,
    spec: FaultSpec,
}

impl<N> FaultyNonlinearity<N> {
    /// Wraps `inner` with the given fault spec.
    pub fn new(inner: N, spec: FaultSpec) -> Self {
        FaultyNonlinearity { inner, spec }
    }

    /// The wrapped element.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// The fault spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }
}

impl<N: Nonlinearity> Nonlinearity for FaultyNonlinearity<N> {
    fn current(&self, v: f64) -> f64 {
        self.spec.apply(v, self.inner.current(v))
    }

    /// Never identifiable by value: the injected faults depend on the seed
    /// and rates, and sharing a cached pre-characterization between two
    /// different fault configurations would silently mix their grids.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Wraps an [`IvCurve`] in a fault injector, for poisoning circuit-level
/// devices (`Circuit::nonlinear`) the same way [`FaultyNonlinearity`]
/// poisons analysis-level elements.
pub fn faulty_iv(inner: IvCurve, spec: FaultSpec) -> IvCurve {
    IvCurve::function(move |v| spec.apply(v, inner.current(v)))
}

/// Transient options tuned for chaos testing: small bounded budgets so an
/// unsolvable (fault-saturated) circuit fails fast with diagnostics
/// instead of grinding through the full default retry ladder.
///
/// # Panics
///
/// Panics unless `0 < dt < t_stop` (delegates to
/// [`shil_circuit::analysis::TranOptions::new`]).
pub fn chaos_tran_options(dt: f64, t_stop: f64) -> shil_circuit::analysis::TranOptions {
    let mut opts = shil_circuit::analysis::TranOptions::new(dt, t_stop).with_step_retry_budget(64);
    opts.max_halvings = 6;
    opts.max_newton_iter = 30;
    opts.op.max_iter = 40;
    opts.op.source_steps = 4;
    opts.op.gmin_steps.truncate(3);
    opts
}

#[cfg(test)]
mod tests {
    use super::*;
    use shil_core::nonlinearity::NegativeTanh;

    #[test]
    fn zero_rate_spec_is_transparent() {
        let f = FaultyNonlinearity::new(NegativeTanh::new(1e-3, 20.0), FaultSpec::default());
        let clean = NegativeTanh::new(1e-3, 20.0);
        for k in -100..=100 {
            let v = k as f64 * 0.01;
            assert_eq!(f.current(v), clean.current(v));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultSpec::nan(0.05, 1);
        let b = FaultSpec::nan(0.05, 2);
        let mut differs = false;
        for k in 0..10_000 {
            let v = k as f64 * 1e-3;
            assert_eq!(a.fault_at(v), a.fault_at(v));
            if a.fault_at(v) != b.fault_at(v) {
                differs = true;
            }
        }
        assert!(differs, "different seeds must poison different points");
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let spec = FaultSpec::nan(0.01, 7);
        let n = 100_000;
        let hits = (0..n)
            .filter(|k| spec.fault_at(*k as f64 * 1e-4 - 3.0).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!(
            (0.005..0.02).contains(&rate),
            "observed rate {rate} far from 1 %"
        );
    }

    #[test]
    fn mixed_faults_produce_all_kinds() {
        let spec = FaultSpec::mixed(0.05, 3);
        let mut seen = [false; 3];
        for k in 0..10_000 {
            match spec.fault_at(k as f64 * 1e-3) {
                Some(FaultKind::Nan) => seen[0] = true,
                Some(FaultKind::Inf) => seen[1] = true,
                Some(FaultKind::Jump) => seen[2] = true,
                None => {}
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn faulty_wrapper_bypasses_the_cache() {
        let f = FaultyNonlinearity::new(NegativeTanh::new(1e-3, 20.0), FaultSpec::nan(0.01, 1));
        assert!(f.fingerprint().is_none());
    }

    #[test]
    fn faulty_iv_poisons_circuit_curves() {
        let iv = faulty_iv(IvCurve::tanh(-1e-3, 20.0), FaultSpec::nan(0.05, 11));
        let poisoned = (0..10_000)
            .filter(|k| iv.current(*k as f64 * 1e-4).is_nan())
            .count();
        assert!(poisoned > 100, "poisoned = {poisoned}");
    }

    #[test]
    fn injector_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<FaultyNonlinearity<NegativeTanh>>();
    }
}
