//! Property-based invariants of the batched/parallel pre-characterization
//! engine.
//!
//! Two guarantees are load-bearing for the perf work and are pinned here:
//!
//! 1. **Thread-count invariance is exact.** The parallel grid fill
//!    partitions rows across workers but computes every cell with the same
//!    expressions in the same order, so serial and parallel fills must be
//!    *bit-for-bit* identical — not merely close. Same for the full
//!    analysis pipeline (refinement fan-out, lock-range scan).
//! 2. **Batching does not change the numbers.** The single-tone batched
//!    path reuses the exact trigonometric expressions of the scalar path
//!    and must match it bit-for-bit; the two-tone path phase-decomposes the
//!    injection angle and is allowed rounding-level (~1 ulp per operation)
//!    differences only.

use proptest::prelude::*;
use shil_core::harmonics::{i1_injected, i_k, HarmonicOptions, HarmonicTable};
use shil_core::nonlinearity::NegativeTanh;
use shil_core::shil::{precharacterize, ShilAnalysis, ShilOptions};
use shil_core::tank::ParallelRlc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_grid_fill_is_bit_identical_to_serial(
        i0 in 2e-4f64..5e-3,
        gain in 5.0f64..40.0,
        vi in 0.005f64..0.08,
        n in 1u32..5,
        nx in 5usize..24,
        ny in 3usize..16,
        threads in 2usize..7,
    ) {
        let f = NegativeTanh::new(i0, gain);
        let table = HarmonicTable::new(n, 1, &HarmonicOptions { samples: 64 });
        let phis: Vec<f64> = (0..nx)
            .map(|i| std::f64::consts::TAU * i as f64 / nx as f64)
            .collect();
        let amps: Vec<f64> = (0..ny).map(|j| 0.1 + 0.1 * j as f64).collect();
        let r = 1000.0;

        let (tf_serial, ang_serial) =
            precharacterize(&f, r, vi, &phis, &amps, &table, 1).unwrap();
        let (tf_par, ang_par) =
            precharacterize(&f, r, vi, &phis, &amps, &table, threads).unwrap();

        // Grid2 compares data element-wise by f64 equality, so this is the
        // bit-for-bit claim (no NaNs occur for these inputs).
        prop_assert_eq!(&tf_serial, &tf_par);
        prop_assert_eq!(&ang_serial, &ang_par);
    }

    #[test]
    fn batched_single_tone_harmonics_are_bitwise_scalar(
        i0 in 2e-4f64..5e-3,
        gain in 5.0f64..40.0,
        amplitude in 0.05f64..2.0,
    ) {
        let f = NegativeTanh::new(i0, gain);
        let opts = HarmonicOptions { samples: 128 };
        let table = HarmonicTable::new(1, 3, &opts);
        let mut buf = table.scratch();
        table.sample_single_into(&f, amplitude, &mut buf);
        for k in 0..=3usize {
            let batched = table.coefficient(&buf, k);
            let scalar = i_k(&f, amplitude, k as i32, &opts);
            prop_assert_eq!(batched.re.to_bits(), scalar.re.to_bits());
            prop_assert_eq!(batched.im.to_bits(), scalar.im.to_bits());
        }
    }

    #[test]
    fn batched_two_tone_fundamental_matches_scalar_reference(
        i0 in 2e-4f64..5e-3,
        gain in 5.0f64..40.0,
        amplitude in 0.05f64..2.0,
        vi in 0.005f64..0.08,
        phi in -3.1f64..3.1,
        n in 1u32..5,
    ) {
        let f = NegativeTanh::new(i0, gain);
        let opts = HarmonicOptions { samples: 128 };
        let table = HarmonicTable::new(n, 1, &opts);
        let mut buf = table.scratch();
        let batched = table.i1(&f, amplitude, vi, phi, &mut buf);
        let scalar = i1_injected(&f, amplitude, vi, phi, n, &opts);
        // The phase decomposition reorders rounding, so allow a few ulps of
        // the coefficient scale (bounded by the saturation current i0).
        let tol = 16.0 * f64::EPSILON * i0.max(batched.abs());
        prop_assert!(
            (batched - scalar).abs() <= tol,
            "batched {:?} vs scalar {:?} (tol {})",
            batched,
            scalar,
            tol
        );
    }
}

proptest! {
    // Full-pipeline cases are much heavier (two complete analyses each), so
    // run fewer of them.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn full_analysis_is_invariant_under_thread_count(
        vi in 0.015f64..0.05,
        phi_d in -0.03f64..0.03,
        threads in 2usize..5,
    ) {
        let f = NegativeTanh::new(1e-3, 20.0);
        let tank = ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap();
        let opts = |p: usize| ShilOptions {
            phase_points: 61,
            amplitude_points: 41,
            harmonics: HarmonicOptions { samples: 128 },
            lock_range_iters: 20,
            lock_range_scan: 8,
            parallelism: Some(p),
            ..Default::default()
        };
        let serial = ShilAnalysis::new(&f, &tank, 3, vi, opts(1)).unwrap();
        let parallel = ShilAnalysis::new(&f, &tank, 3, vi, opts(threads)).unwrap();

        prop_assert_eq!(serial.tf_grid(), parallel.tf_grid());
        prop_assert_eq!(serial.angle_grid(), parallel.angle_grid());

        // Solutions and the lock range run the refinement fan-out and the
        // coarse scan; both must also be exactly thread-count invariant.
        let s = serial.solutions_at_phase(phi_d).unwrap();
        let p = parallel.solutions_at_phase(phi_d).unwrap();
        prop_assert_eq!(s, p);
        let lr_s = serial.lock_range().unwrap();
        let lr_p = parallel.lock_range().unwrap();
        prop_assert_eq!(lr_s, lr_p);
    }
}
