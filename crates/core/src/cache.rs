//! Memoized pre-characterization cache for SHIL sweeps.
//!
//! The expensive artifacts of a [`crate::shil::ShilAnalysis`] — the natural
//! oscillation solve and the `(φ, A)` grid pair with its `C_{T_f,1}` level
//! set — depend only on the *value* of the oscillator (nonlinearity + tank
//! parameters), the injection `(n, V_i)` and the grid/sampling options, not
//! on which `ShilAnalysis` instance asked for them. A [`PrecharCache`]
//! keys them by those values so that sweeps (the Tab. 1/2 frequency sweeps,
//! Fig. 10's isoline families, Fig. 14's amplitude-vs-detuning curve)
//! re-analyzing the same oscillator reuse one grid build instead of
//! repeating it per sweep point.
//!
//! Elements identify themselves through
//! [`Nonlinearity::fingerprint`](crate::nonlinearity::Nonlinearity::fingerprint)
//! and [`Tank::fingerprint`](crate::tank::Tank::fingerprint) — a stable
//! 64-bit digest of their parameters. Elements that cannot be identified by
//! value (arbitrary closures) return `None` and bypass the cache safely.
//!
//! The natural-oscillation solve is cached under a *coarser* key than the
//! grids: it does not depend on `(n, V_i)` or the grid spec, so a `V_i`
//! sweep at fixed oscillator re-solves it exactly once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shil_numerics::contour::Polyline;
use shil_numerics::Grid2;

use crate::describing::NaturalOscillation;
use crate::error::ShilError;
use crate::harmonics::HarmonicTable;

/// FNV-1a digest of a tag string plus a parameter list.
///
/// The tag separates element types with coincidentally equal parameters
/// (`NegativeTanh{1e-3, 20}` vs a polynomial starting with the same
/// numbers). Parameters hash by their exact bit patterns, so two elements
/// collide only when they are numerically identical — which is exactly when
/// sharing a cache entry is correct.
pub fn fingerprint(tag: &str, params: &[f64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in tag.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(PRIME);
    }
    for p in params {
        for b in p.to_bits().to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    h
}

/// Folds a child digest into a parent digest (for wrapper elements like
/// `Biased<N>`).
pub fn combine(parent: u64, child: u64) -> u64 {
    // splitmix64-style finalizer keeps the combination well mixed.
    let mut z = parent ^ child.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything a [`crate::shil::ShilAnalysis`] computes up front that depends
/// only on (oscillator, `n`, `V_i`, grid spec): the natural oscillation, the
/// sampling tables, both pre-characterization grids and the
/// injection-frequency-invariant `C_{T_f,1}` level set.
#[derive(Debug, Clone)]
pub struct Precharacterization {
    /// The natural oscillation the grid axes were scaled from.
    pub natural: NaturalOscillation,
    /// Tank peak resistance `R` used in `T_f`.
    pub r: f64,
    /// Sampling/twiddle tables for the exact residual evaluations.
    pub table: HarmonicTable,
    /// `T_f(φ, A)` over the grid (x = φ, y = A).
    pub tf_grid: Grid2,
    /// `∠−I₁(φ, A)` over the grid, wrapped to `(−π, π]`.
    pub angle_grid: Grid2,
    /// The `C_{T_f,1}` level set (independent of injection frequency).
    pub tf_unity: Vec<Polyline>,
    /// Number of grid nodes where `T_f` or `∠−I₁` evaluated non-finite.
    ///
    /// Marching squares masks the surrounding cells, so a nonzero count
    /// means the graphical curves (and everything derived from them) only
    /// cover part of the `(φ, A)` plane — queries against this
    /// pre-characterization report their solutions as degraded.
    pub non_finite_cells: usize,
}

/// Cache key for a full grid pre-characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrecharKey {
    /// Nonlinearity parameter digest.
    pub nonlinearity: u64,
    /// Tank parameter digest.
    pub tank: u64,
    /// Sub-harmonic order.
    pub n: u32,
    /// Injection magnitude bit pattern.
    pub vi_bits: u64,
    /// Digest of the grid/sampling options.
    pub options: u64,
}

/// Cache key for a natural-oscillation solve (no injection dependence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NaturalKey {
    /// Nonlinearity parameter digest.
    pub nonlinearity: u64,
    /// Tank parameter digest.
    pub tank: u64,
    /// Digest of the natural-solve options.
    pub options: u64,
}

/// A cache entry stamped with its last-use tick, the unit of the LRU
/// eviction order.
#[derive(Debug)]
struct Stamped<V> {
    value: V,
    last_used: u64,
}

/// Thread-safe memoization of pre-characterizations and natural solves.
///
/// Entries are shared via [`Arc`]; hit/miss counters expose the reuse a
/// sweep achieved (the `perf_precharacterize` harness reports them), and
/// each event is mirrored to the process-wide `shil-observe` registry as
/// the `shil_core_prechar_*` counters (plus the cross-layer
/// `shil_prechar_cache_{hit,miss,evict}_total` triplet) when it is
/// enabled. Lookups never hold a lock across a build, so concurrent
/// sweeps can (rarely) race to build the same entry — the first insert
/// wins and both callers receive the canonical `Arc`.
///
/// A cache built with [`PrecharCache::bounded`] holds at most `capacity`
/// grid entries and `capacity` natural solves, evicting the
/// least-recently-used entry on overflow — the configuration a long-lived
/// server needs, where one shared cache sees an unbounded stream of
/// distinct oscillators and must not grow without bound. [`Arc`]s handed
/// out before an eviction stay valid; eviction only drops the cache's own
/// reference.
#[derive(Debug, Default)]
pub struct PrecharCache {
    grids: Mutex<HashMap<PrecharKey, Stamped<Arc<Precharacterization>>>>,
    naturals: Mutex<HashMap<NaturalKey, Stamped<NaturalOscillation>>>,
    /// `None` = unbounded (the default, and the pre-existing behavior).
    capacity: Option<usize>,
    /// Monotone use counter; entries carry the tick of their last touch.
    tick: AtomicU64,
    grid_hits: AtomicU64,
    grid_misses: AtomicU64,
    natural_hits: AtomicU64,
    natural_misses: AtomicU64,
    evictions: AtomicU64,
    uncacheable: AtomicU64,
}

impl PrecharCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` grid entries (and as many
    /// natural solves), evicting least-recently-used entries on overflow.
    /// A zero capacity is clamped to 1 — a cache that can hold nothing
    /// would turn every lookup into a rebuild while still paying the
    /// bookkeeping.
    pub fn bounded(capacity: usize) -> Self {
        PrecharCache {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// The configured entry bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries dropped by the LRU policy since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The next use tick.
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Drops least-recently-used entries until `map` has room for one
    /// more insert under `capacity`. Called with the map lock held.
    fn make_room<K: Eq + std::hash::Hash + Copy, V>(&self, map: &mut HashMap<K, Stamped<V>>) {
        let Some(cap) = self.capacity else { return };
        while map.len() >= cap {
            let Some(oldest) = map.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| *k) else {
                return;
            };
            map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            shil_observe::incr("shil_prechar_cache_evict_total");
        }
    }

    /// Grid lookups served from memory.
    pub fn grid_hits(&self) -> u64 {
        self.grid_hits.load(Ordering::Relaxed)
    }

    /// Grid builds actually performed (cache misses).
    pub fn grid_builds(&self) -> u64 {
        self.grid_misses.load(Ordering::Relaxed)
    }

    /// Natural-oscillation lookups served from memory.
    pub fn natural_hits(&self) -> u64 {
        self.natural_hits.load(Ordering::Relaxed)
    }

    /// Natural-oscillation solves actually performed.
    pub fn natural_builds(&self) -> u64 {
        self.natural_misses.load(Ordering::Relaxed)
    }

    /// Analyses that bypassed the cache because an element had no
    /// fingerprint.
    pub fn uncacheable(&self) -> u64 {
        self.uncacheable.load(Ordering::Relaxed)
    }

    /// Number of distinct grid entries held.
    pub fn len(&self) -> usize {
        self.grids
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds no grid entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are preserved).
    pub fn clear(&self) {
        self.grids
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.naturals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    /// Records a cache bypass (missing fingerprint).
    pub(crate) fn note_uncacheable(&self) {
        self.uncacheable.fetch_add(1, Ordering::Relaxed);
        shil_observe::incr("shil_core_prechar_uncacheable_total");
    }

    /// Returns the cached pre-characterization for `key`, building it with
    /// `build` on a miss.
    pub(crate) fn grid_or_insert(
        &self,
        key: PrecharKey,
        build: impl FnOnce() -> Result<Precharacterization, ShilError>,
    ) -> Result<Arc<Precharacterization>, ShilError> {
        if let Some(hit) = self
            .grids
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(&key)
        {
            hit.last_used = self.next_tick();
            self.grid_hits.fetch_add(1, Ordering::Relaxed);
            shil_observe::incr("shil_core_prechar_grid_hits_total");
            shil_observe::incr("shil_prechar_cache_hit_total");
            return Ok(Arc::clone(&hit.value));
        }
        self.grid_misses.fetch_add(1, Ordering::Relaxed);
        shil_observe::incr("shil_core_prechar_grid_misses_total");
        shil_observe::incr("shil_prechar_cache_miss_total");
        let built = Arc::new(build()?);
        let mut grids = self
            .grids
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !grids.contains_key(&key) {
            self.make_room(&mut grids);
        }
        let tick = self.next_tick();
        let entry = grids.entry(key).or_insert(Stamped {
            value: built,
            last_used: tick,
        });
        entry.last_used = tick;
        Ok(Arc::clone(&entry.value))
    }

    /// Returns the cached natural oscillation for `key`, solving on a miss.
    pub(crate) fn natural_or_insert(
        &self,
        key: NaturalKey,
        solve: impl FnOnce() -> Result<NaturalOscillation, ShilError>,
    ) -> Result<NaturalOscillation, ShilError> {
        if let Some(hit) = self
            .naturals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(&key)
        {
            hit.last_used = self.next_tick();
            self.natural_hits.fetch_add(1, Ordering::Relaxed);
            shil_observe::incr("shil_core_prechar_natural_hits_total");
            shil_observe::incr("shil_prechar_cache_hit_total");
            return Ok(hit.value);
        }
        self.natural_misses.fetch_add(1, Ordering::Relaxed);
        shil_observe::incr("shil_core_prechar_natural_misses_total");
        shil_observe::incr("shil_prechar_cache_miss_total");
        let solved = solve()?;
        let mut naturals = self
            .naturals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !naturals.contains_key(&key) {
            self.make_room(&mut naturals);
        }
        let tick = self.next_tick();
        let entry = naturals.entry(key).or_insert(Stamped {
            value: solved,
            last_used: tick,
        });
        entry.last_used = tick;
        Ok(entry.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_tags_and_params() {
        let a = fingerprint("negative-tanh", &[1e-3, 20.0]);
        let b = fingerprint("polynomial", &[1e-3, 20.0]);
        let c = fingerprint("negative-tanh", &[1e-3, 20.000001]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fingerprint("negative-tanh", &[1e-3, 20.0]));
    }

    #[test]
    fn fingerprint_distinguishes_signed_zero_but_not_value() {
        // Bit-pattern hashing: −0.0 and +0.0 key differently, which only
        // ever costs a redundant build, never a wrong reuse.
        assert_ne!(fingerprint("t", &[0.0]), fingerprint("t", &[-0.0]));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let (a, b) = (fingerprint("x", &[1.0]), fingerprint("y", &[2.0]));
        assert_ne!(combine(a, b), combine(b, a));
    }

    #[test]
    fn natural_cache_counts_hits_and_misses() {
        let cache = PrecharCache::new();
        let key = NaturalKey {
            nonlinearity: 1,
            tank: 2,
            options: 3,
        };
        let natural = NaturalOscillation {
            amplitude: 1.0,
            frequency_hz: 5e5,
            stable: true,
            t_f_slope: -1.0,
        };
        let mut solves = 0;
        for _ in 0..3 {
            let got = cache
                .natural_or_insert(key, || {
                    solves += 1;
                    Ok(natural)
                })
                .unwrap();
            assert_eq!(got, natural);
        }
        assert_eq!(solves, 1);
        assert_eq!(cache.natural_builds(), 1);
        assert_eq!(cache.natural_hits(), 2);
    }

    fn nat(amplitude: f64) -> NaturalOscillation {
        NaturalOscillation {
            amplitude,
            frequency_hz: 5e5,
            stable: true,
            t_f_slope: -1.0,
        }
    }

    fn nkey(id: u64) -> NaturalKey {
        NaturalKey {
            nonlinearity: id,
            tank: id,
            options: id,
        }
    }

    #[test]
    fn bounded_cache_respects_capacity_and_counts_evictions() {
        let cache = PrecharCache::bounded(2);
        assert_eq!(cache.capacity(), Some(2));
        let mut solves = 0;
        for id in 0..5 {
            cache
                .natural_or_insert(nkey(id), || {
                    solves += 1;
                    Ok(nat(id as f64))
                })
                .unwrap();
        }
        assert_eq!(solves, 5);
        assert_eq!(cache.evictions(), 3);
        let held = cache
            .naturals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        assert_eq!(held, 2);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = PrecharCache::bounded(2);
        let solve = |id: u64| move || Ok(nat(id as f64));
        cache.natural_or_insert(nkey(1), solve(1)).unwrap();
        cache.natural_or_insert(nkey(2), solve(2)).unwrap();
        // Touch 1 so that 2 becomes the LRU entry, then overflow with 3.
        cache.natural_or_insert(nkey(1), solve(1)).unwrap();
        cache.natural_or_insert(nkey(3), solve(3)).unwrap();
        assert_eq!(cache.evictions(), 1);
        // 1 and 3 survive (hits); 2 was evicted (re-solve = miss).
        let before = cache.natural_builds();
        cache.natural_or_insert(nkey(1), solve(1)).unwrap();
        cache.natural_or_insert(nkey(3), solve(3)).unwrap();
        assert_eq!(cache.natural_builds(), before);
        cache.natural_or_insert(nkey(2), solve(2)).unwrap();
        assert_eq!(cache.natural_builds(), before + 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = PrecharCache::bounded(0);
        assert_eq!(cache.capacity(), Some(1));
        cache.natural_or_insert(nkey(1), || Ok(nat(1.0))).unwrap();
        // The single slot still serves repeat lookups as hits.
        let before = cache.natural_hits();
        cache.natural_or_insert(nkey(1), || Ok(nat(1.0))).unwrap();
        assert_eq!(cache.natural_hits(), before + 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = PrecharCache::new();
        assert_eq!(cache.capacity(), None);
        for id in 0..64 {
            cache
                .natural_or_insert(nkey(id), || Ok(nat(id as f64)))
                .unwrap();
        }
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = PrecharCache::new();
        let key = NaturalKey {
            nonlinearity: 9,
            tank: 9,
            options: 9,
        };
        assert!(cache
            .natural_or_insert(key, || Err(ShilError::NoLock))
            .is_err());
        // A later successful solve still runs and is then cached.
        let natural = NaturalOscillation {
            amplitude: 2.0,
            frequency_hz: 1e6,
            stable: true,
            t_f_slope: -0.5,
        };
        assert!(cache.natural_or_insert(key, || Ok(natural)).is_ok());
        assert_eq!(cache.natural_builds(), 2);
    }
}
