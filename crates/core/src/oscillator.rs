//! High-level façade tying a nonlinearity and a tank together.

use crate::cache::PrecharCache;
use crate::describing::{
    natural_oscillation, natural_oscillations, small_signal_loop_gain, NaturalOptions,
    NaturalOscillation,
};
use crate::error::ShilError;
use crate::hb::{solve_oscillator, HbOptions, HbSolution};
use crate::nonlinearity::Nonlinearity;
use crate::pulling::{pulling_state, PullingState};
use crate::shil::{LockRange, ShilAnalysis, ShilOptions};
use crate::tank::Tank;

/// A negative-resistance LC oscillator: a memoryless nonlinearity in
/// feedback around a linear tank.
///
/// This is the one-stop entry point for the common questions:
/// does it oscillate, at what amplitude, and where does it lock?
///
/// ```
/// use shil_core::nonlinearity::NegativeTanh;
/// use shil_core::oscillator::Oscillator;
/// use shil_core::tank::ParallelRlc;
///
/// # fn main() -> Result<(), shil_core::ShilError> {
/// let osc = Oscillator::new(
///     NegativeTanh::new(1e-3, 20.0),
///     ParallelRlc::new(1000.0, 10e-6, 10e-9)?,
/// );
/// assert!(osc.small_signal_loop_gain() > 1.0);
/// let nat = osc.natural_oscillation()?;
/// let lock = osc.shil_lock_range(3, 0.03)?;
/// assert!(lock.lower_injection_hz < 3.0 * nat.frequency_hz);
/// assert!(lock.upper_injection_hz > 3.0 * nat.frequency_hz);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Oscillator<N, T> {
    nonlinearity: N,
    tank: T,
    natural_opts: NaturalOptions,
    shil_opts: ShilOptions,
}

impl<N: Nonlinearity, T: Tank> Oscillator<N, T> {
    /// Creates an oscillator with default analysis options.
    pub fn new(nonlinearity: N, tank: T) -> Self {
        Oscillator {
            nonlinearity,
            tank,
            natural_opts: NaturalOptions::default(),
            shil_opts: ShilOptions::default(),
        }
    }

    /// Overrides the natural-oscillation solve options.
    #[must_use]
    pub fn with_natural_options(mut self, opts: NaturalOptions) -> Self {
        self.natural_opts = opts;
        self
    }

    /// Overrides the SHIL analysis options.
    #[must_use]
    pub fn with_shil_options(mut self, opts: ShilOptions) -> Self {
        self.shil_opts = opts;
        self
    }

    /// The nonlinearity.
    pub fn nonlinearity(&self) -> &N {
        &self.nonlinearity
    }

    /// The tank.
    pub fn tank(&self) -> &T {
        &self.tank
    }

    /// Small-signal loop gain `−R·f′(0)`; oscillation requires `> 1`.
    pub fn small_signal_loop_gain(&self) -> f64 {
        small_signal_loop_gain(&self.nonlinearity, &self.tank)
    }

    /// The stable natural oscillation (§II + §VI-A1).
    ///
    /// # Errors
    ///
    /// [`ShilError::NoOscillation`] when the loop gain never reaches one or
    /// no stable crossing exists.
    pub fn natural_oscillation(&self) -> Result<NaturalOscillation, ShilError> {
        natural_oscillation(&self.nonlinearity, &self.tank, &self.natural_opts)
    }

    /// All crossings of `T_f(A) = 1` with stability.
    ///
    /// # Errors
    ///
    /// Propagates scan/refinement failures.
    pub fn natural_oscillations(&self) -> Result<Vec<NaturalOscillation>, ShilError> {
        natural_oscillations(&self.nonlinearity, &self.tank, &self.natural_opts)
    }

    /// Multi-harmonic (harmonic-balance) steady state: refines the
    /// describing-function answer with waveform distortion and the
    /// Groszkowski frequency shift.
    ///
    /// # Errors
    ///
    /// See [`solve_oscillator`].
    pub fn harmonic_balance(&self, opts: &HbOptions) -> Result<HbSolution, ShilError> {
        solve_oscillator(&self.nonlinearity, &self.tank, opts)
    }
}

// The SHIL entry points additionally require `Sync` elements: the grid
// pre-characterization and solution refinement fan out across scoped
// threads that share the nonlinearity and tank (see
// [`ShilOptions::parallelism`]).
impl<N: Nonlinearity + Sync, T: Tank + Sync> Oscillator<N, T> {
    /// Prepares the full SHIL analysis for order `n` and injection phasor
    /// magnitude `vi` (physical injection amplitude `2·vi`).
    ///
    /// # Errors
    ///
    /// See [`ShilAnalysis::new`].
    pub fn shil(&self, n: u32, vi: f64) -> Result<ShilAnalysis<'_, N, T>, ShilError> {
        ShilAnalysis::new(&self.nonlinearity, &self.tank, n, vi, self.shil_opts)
    }

    /// Like [`Self::shil`], but serving the natural solve and grid
    /// pre-characterization from `cache` (see [`ShilAnalysis::new_cached`]).
    ///
    /// # Errors
    ///
    /// See [`ShilAnalysis::new`].
    pub fn shil_cached(
        &self,
        n: u32,
        vi: f64,
        cache: &PrecharCache,
    ) -> Result<ShilAnalysis<'_, N, T>, ShilError> {
        ShilAnalysis::new_cached(&self.nonlinearity, &self.tank, n, vi, self.shil_opts, cache)
    }

    /// Convenience: the `n`-th sub-harmonic lock range at injection `vi`.
    ///
    /// # Errors
    ///
    /// See [`ShilAnalysis::lock_range`].
    pub fn shil_lock_range(&self, n: u32, vi: f64) -> Result<LockRange, ShilError> {
        self.shil(n, vi)?.lock_range()
    }

    /// Sweeps the lock range over several injection strengths — the
    /// divider-sizing curve a designer actually wants. The (expensive)
    /// natural-oscillation seed is shared; injections that produce no lock
    /// appear as `Err` entries without aborting the sweep.
    pub fn shil_lock_range_sweep(
        &self,
        n: u32,
        vis: &[f64],
    ) -> Vec<(f64, Result<LockRange, ShilError>)> {
        // The grids differ per injection strength, but the natural solve is
        // injection-independent — the sweep-local cache runs it once.
        let cache = PrecharCache::new();
        vis.iter()
            .map(|&vi| {
                (
                    vi,
                    self.shil_cached(n, vi, &cache)
                        .and_then(|an| an.lock_range()),
                )
            })
            .collect()
    }

    /// Lock-or-pull verdict at one injection frequency: `Locked` inside the
    /// lock range, otherwise the quasi-static beat frequency.
    ///
    /// # Errors
    ///
    /// See [`pulling_state`] and [`ShilAnalysis::new`].
    pub fn injection_response(
        &self,
        n: u32,
        vi: f64,
        f_injection_hz: f64,
    ) -> Result<PullingState, ShilError> {
        let analysis = self.shil(n, vi)?;
        pulling_state(
            &analysis,
            &self.nonlinearity,
            &self.tank,
            f_injection_hz,
            256,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonics::HarmonicOptions;
    use crate::nonlinearity::NegativeTanh;
    use crate::tank::ParallelRlc;

    fn osc() -> Oscillator<NegativeTanh, ParallelRlc> {
        Oscillator::new(
            NegativeTanh::new(1e-3, 20.0),
            ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap(),
        )
        .with_shil_options(ShilOptions {
            phase_points: 121,
            amplitude_points: 81,
            harmonics: HarmonicOptions { samples: 256 },
            lock_range_iters: 30,
            lock_range_scan: 16,
            ..Default::default()
        })
    }

    #[test]
    fn facade_exposes_components() {
        let o = osc();
        assert_eq!(o.nonlinearity().i0, 1e-3);
        assert!((o.tank().q() - 31.6227766).abs() < 1e-6);
        assert!((o.small_signal_loop_gain() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn natural_and_shil_workflow() {
        let o = osc();
        let nat = o.natural_oscillation().unwrap();
        assert!(nat.stable);
        let all = o.natural_oscillations().unwrap();
        assert_eq!(all.len(), 1);
        let analysis = o.shil(3, 0.03).unwrap();
        assert_eq!(analysis.order(), 3);
        assert_eq!(analysis.injection(), 0.03);
        let lr = o.shil_lock_range(3, 0.03).unwrap();
        assert!(lr.injection_span_hz > 0.0);
    }

    #[test]
    fn sweep_and_response_conveniences() {
        let o = osc();
        let sweep = o.shil_lock_range_sweep(3, &[0.01, 0.03]);
        assert_eq!(sweep.len(), 2);
        let s0 = sweep[0].1.as_ref().expect("locks");
        let s1 = sweep[1].1.as_ref().expect("locks");
        assert!(s1.injection_span_hz > s0.injection_span_hz);

        let hb = o.harmonic_balance(&HbOptions::default()).unwrap();
        assert!(hb.frequency_hz < o.tank().center_frequency_hz());

        let center = 0.5 * (s1.lower_injection_hz + s1.upper_injection_hz);
        assert_eq!(
            o.injection_response(3, 0.03, center).unwrap(),
            PullingState::Locked
        );
        match o
            .injection_response(3, 0.03, s1.upper_injection_hz + 2.0 * s1.injection_span_hz)
            .unwrap()
        {
            PullingState::Pulled { beat_hz, .. } => assert!(beat_hz > 0.0),
            other => panic!("expected pulling, got {other:?}"),
        }
    }

    #[test]
    fn option_overrides_apply() {
        let o = osc().with_natural_options(NaturalOptions {
            a_max: Some(3.0),
            ..Default::default()
        });
        assert!(o.natural_oscillation().is_ok());
    }
}
