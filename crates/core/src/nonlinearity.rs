//! Memoryless nonlinearities `i = f(v)`.
//!
//! The describing-function method works for *any* memoryless nonlinearity —
//! the paper's central claim — because the harmonic pre-characterization in
//! [`crate::harmonics`] only ever evaluates `f` pointwise. This module
//! provides the trait plus the concrete curves used by the paper:
//!
//! - [`NegativeTanh`] — the `−tanh` illustration of §II–III;
//! - [`TunnelDiode`] / [`TunnelDiodeModel`] — the exact §VI-C device;
//! - [`Polynomial`] — e.g. van der Pol cubics;
//! - [`Tabulated`] — PCHIP over DC-sweep data (the Fig. 12a extraction);
//! - [`Biased`] — re-centers any curve around a DC operating point;
//! - [`FnNonlinearity`] — wraps an arbitrary closure.

use shil_numerics::interp::Pchip;

use crate::error::ShilError;

/// Thermal voltage `kT/q` used by the junction models (25 mV, the value in
/// the paper's appendix §VI-C).
pub const THERMAL_VOLTAGE: f64 = 0.025;

/// Exponential with linearized continuation above `x = 40`, the standard
/// SPICE convergence aid for junction laws.
pub fn limexp(x: f64) -> f64 {
    const LIM: f64 = 40.0;
    if x <= LIM {
        x.exp()
    } else {
        LIM.exp() * (1.0 + (x - LIM))
    }
}

/// Derivative of [`limexp`].
pub fn limexp_deriv(x: f64) -> f64 {
    const LIM: f64 = 40.0;
    if x <= LIM {
        x.exp()
    } else {
        LIM.exp()
    }
}

/// A memoryless `i = f(v)` characteristic.
///
/// Implementors must be deterministic and finite on the voltage ranges the
/// analysis explores (roughly `|v| ≤ A_max + 2V_i`).
pub trait Nonlinearity {
    /// Current through the element at instantaneous voltage `v`.
    fn current(&self, v: f64) -> f64;

    /// Differential conductance `df/dv`.
    ///
    /// The default is a central finite difference; override when an
    /// analytic derivative is available.
    fn conductance(&self, v: f64) -> f64 {
        let h = 1e-6 * (1.0 + v.abs());
        (self.current(v + h) - self.current(v - h)) / (2.0 * h)
    }

    /// A stable 64-bit digest of this element's parameters, or `None` when
    /// the element cannot be identified by value (e.g. arbitrary closures).
    ///
    /// Equal fingerprints must imply numerically identical `current`
    /// curves — the pre-characterization cache
    /// ([`crate::cache::PrecharCache`]) shares grids between elements with
    /// equal fingerprints.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

impl<N: Nonlinearity + ?Sized> Nonlinearity for &N {
    fn current(&self, v: f64) -> f64 {
        (**self).current(v)
    }
    fn conductance(&self, v: f64) -> f64 {
        (**self).conductance(v)
    }
    fn fingerprint(&self) -> Option<u64> {
        (**self).fingerprint()
    }
}

/// The paper's illustrative negative-resistance element
/// `f(v) = −i₀·tanh(gain·v)`.
///
/// Small-signal conductance `f′(0) = −i₀·gain`; with a tank resistance `R`
/// the oscillator starts up iff `R·i₀·gain > 1`.
///
/// ```
/// use shil_core::nonlinearity::{NegativeTanh, Nonlinearity};
///
/// let f = NegativeTanh::new(1e-3, 20.0);
/// assert!(f.current(0.5) < 0.0);
/// assert!((f.conductance(0.0) + 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeTanh {
    /// Saturation current magnitude `i₀` (amperes, positive).
    pub i0: f64,
    /// Voltage gain inside the tanh (1/V, positive).
    pub gain: f64,
}

impl NegativeTanh {
    /// Creates the element.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn new(i0: f64, gain: f64) -> Self {
        assert!(i0 > 0.0 && gain > 0.0, "parameters must be positive");
        NegativeTanh { i0, gain }
    }
}

impl Nonlinearity for NegativeTanh {
    fn current(&self, v: f64) -> f64 {
        -self.i0 * (self.gain * v).tanh()
    }
    fn conductance(&self, v: f64) -> f64 {
        let c = (self.gain * v).cosh();
        -self.i0 * self.gain / (c * c)
    }
    fn fingerprint(&self) -> Option<u64> {
        Some(crate::cache::fingerprint(
            "negative-tanh",
            &[self.i0, self.gain],
        ))
    }
}

/// Polynomial nonlinearity `i = Σ c_k v^k` (coefficients ascending).
///
/// A van der Pol negative-resistance element is `[0, −g₁, 0, g₃]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] for an empty coefficient list
    /// or non-finite coefficients.
    pub fn new(coeffs: Vec<f64>) -> Result<Self, ShilError> {
        if coeffs.is_empty() {
            return Err(ShilError::InvalidParameter(
                "polynomial needs at least one coefficient".into(),
            ));
        }
        if coeffs.iter().any(|c| !c.is_finite()) {
            return Err(ShilError::InvalidParameter(
                "polynomial coefficients must be finite".into(),
            ));
        }
        Ok(Polynomial { coeffs })
    }

    /// The van der Pol cubic `i = −g₁·v + g₃·v³`.
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] unless both conductances are
    /// positive.
    pub fn van_der_pol(g1: f64, g3: f64) -> Result<Self, ShilError> {
        if !(g1 > 0.0 && g3 > 0.0) {
            return Err(ShilError::InvalidParameter(
                "van der Pol conductances must be positive".into(),
            ));
        }
        Polynomial::new(vec![0.0, -g1, 0.0, g3])
    }

    /// The coefficients, ascending.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }
}

impl Nonlinearity for Polynomial {
    fn current(&self, v: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * v + c)
    }
    fn conductance(&self, v: f64) -> f64 {
        let mut acc = 0.0;
        for (k, &c) in self.coeffs.iter().enumerate().skip(1).rev() {
            acc = acc * v + c * k as f64;
        }
        acc
    }
    fn fingerprint(&self) -> Option<u64> {
        Some(crate::cache::fingerprint("polynomial", &self.coeffs))
    }
}

/// Parameters of the paper's tunnel-diode model (appendix §VI-C):
/// `I_td = I_tunnel + I_diode`, `I_diode = I_s(e^{v/(ηV_th)} − 1)`,
/// `I_tunnel = (v/R₀)·e^{−(v/V₀)^m}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunnelDiodeModel {
    /// Saturation current `I_s` (paper: 1e−12 A).
    pub saturation_current: f64,
    /// Ideality factor `η` (paper: 1).
    pub ideality: f64,
    /// Thermal voltage `V_th` (paper: 0.025 V).
    pub thermal_voltage: f64,
    /// Tunnel exponent `m` (paper: 2; typically 1 ≤ m ≤ 3).
    pub m: f64,
    /// Tunnel voltage scale `V₀` (paper: 0.2 V; typically 0.1–0.5 V).
    pub v0: f64,
    /// Ohmic-region resistance `R₀` (paper: 1000 Ω).
    pub r0: f64,
}

impl Default for TunnelDiodeModel {
    /// The exact parameter set of appendix §VI-C.
    fn default() -> Self {
        TunnelDiodeModel {
            saturation_current: 1e-12,
            ideality: 1.0,
            thermal_voltage: THERMAL_VOLTAGE,
            m: 2.0,
            v0: 0.2,
            r0: 1000.0,
        }
    }
}

impl TunnelDiodeModel {
    /// Total diode current at junction voltage `v`.
    pub fn current(&self, v: f64) -> f64 {
        let x = v / (self.ideality * self.thermal_voltage);
        let i_diode = self.saturation_current * (limexp(x) - 1.0);
        let i_tunnel = v / self.r0 * (-self.signed_pow(v)).exp();
        i_diode + i_tunnel
    }

    /// Differential conductance `dI/dv` at `v`.
    pub fn conductance(&self, v: f64) -> f64 {
        let nvt = self.ideality * self.thermal_voltage;
        let g_diode = self.saturation_current * limexp_deriv(v / nvt) / nvt;
        let a = (-self.signed_pow(v)).exp();
        let u = self.signed_pow(v);
        g_diode + a / self.r0 * (1.0 - self.m * u)
    }

    /// `(|v|/V₀)^m` — the tunnel attenuation exponent (the magnitude keeps
    /// the expression defined for `v < 0`, where the junction term dominates
    /// anyway).
    fn signed_pow(&self, v: f64) -> f64 {
        (v / self.v0).abs().powf(self.m)
    }
}

/// The tunnel diode as a [`Nonlinearity`] (un-biased; see [`Biased`] or
/// [`TunnelDiode::biased_at`] for the 0.25 V re-centering of Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TunnelDiode {
    /// Device model parameters.
    pub model: TunnelDiodeModel,
}

impl TunnelDiode {
    /// Creates a tunnel diode with the paper's §VI-C parameters.
    pub fn new() -> Self {
        TunnelDiode::default()
    }

    /// Re-centers the device around `v_bias`, returning a curve through the
    /// origin with the same local shape — the normalization Fig. 16 applies
    /// before running the prediction theory.
    pub fn biased_at(self, v_bias: f64) -> Biased<TunnelDiode> {
        Biased::new(self, v_bias)
    }
}

impl Nonlinearity for TunnelDiode {
    fn current(&self, v: f64) -> f64 {
        self.model.current(v)
    }
    fn conductance(&self, v: f64) -> f64 {
        self.model.conductance(v)
    }
    fn fingerprint(&self) -> Option<u64> {
        let m = &self.model;
        Some(crate::cache::fingerprint(
            "tunnel-diode",
            &[
                m.saturation_current,
                m.ideality,
                m.thermal_voltage,
                m.m,
                m.v0,
                m.r0,
            ],
        ))
    }
}

/// Bias-shifting adapter: `i = inner(v + v_bias) − inner(v_bias)`.
///
/// Moves a chosen DC operating point to the origin, which is the frame the
/// describing-function equations assume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biased<N> {
    inner: N,
    v_bias: f64,
    i_bias: f64,
}

impl<N: Nonlinearity> Biased<N> {
    /// Wraps `inner` so that `(v_bias, inner(v_bias))` maps to the origin.
    pub fn new(inner: N, v_bias: f64) -> Self {
        let i_bias = inner.current(v_bias);
        Biased {
            inner,
            v_bias,
            i_bias,
        }
    }

    /// The wrapped curve.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// The bias voltage.
    pub fn v_bias(&self) -> f64 {
        self.v_bias
    }
}

impl<N: Nonlinearity> Nonlinearity for Biased<N> {
    fn current(&self, v: f64) -> f64 {
        self.inner.current(v + self.v_bias) - self.i_bias
    }
    fn conductance(&self, v: f64) -> f64 {
        self.inner.conductance(v + self.v_bias)
    }
    fn fingerprint(&self) -> Option<u64> {
        // Cacheable only when the wrapped element is.
        self.inner.fingerprint().map(|inner| {
            crate::cache::combine(
                inner,
                crate::cache::fingerprint("biased", &[self.v_bias, self.i_bias]),
            )
        })
    }
}

/// Tabulated `i = f(v)` data interpolated with shape-preserving PCHIP.
///
/// This is how DC-sweep extractions (Fig. 11b → Fig. 12a) enter the
/// analysis: the `(v, i)` samples from the simulator become a first-class
/// nonlinearity.
#[derive(Debug, Clone, PartialEq)]
pub struct Tabulated {
    pchip: Pchip,
    /// Digest of the `(v, i)` samples, captured at construction (the
    /// interpolant itself does not expose its knots).
    fp: u64,
}

impl Tabulated {
    /// Builds the interpolant from `(v, i)` samples with strictly
    /// increasing `v`.
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] for fewer than two points or
    /// a non-increasing voltage axis.
    pub fn new(v: Vec<f64>, i: Vec<f64>) -> Result<Self, ShilError> {
        let fp = crate::cache::combine(
            crate::cache::fingerprint("tabulated-v", &v),
            crate::cache::fingerprint("tabulated-i", &i),
        );
        let pchip = Pchip::new(v, i)
            .map_err(|e| ShilError::InvalidParameter(format!("bad i(v) table: {e}")))?;
        Ok(Tabulated { pchip, fp })
    }

    /// The valid voltage range of the table (queries outside extrapolate
    /// linearly with the edge slope).
    pub fn domain(&self) -> (f64, f64) {
        self.pchip.domain()
    }
}

impl Nonlinearity for Tabulated {
    fn current(&self, v: f64) -> f64 {
        self.pchip.eval(v).unwrap_or(0.0)
    }
    fn conductance(&self, v: f64) -> f64 {
        self.pchip.derivative(v)
    }
    fn fingerprint(&self) -> Option<u64> {
        Some(self.fp)
    }
}

/// Wraps an arbitrary closure as a [`Nonlinearity`] (finite-difference
/// conductance).
///
/// ```
/// use shil_core::nonlinearity::{FnNonlinearity, Nonlinearity};
///
/// let f = FnNonlinearity::new(|v: f64| -1e-3 * v.sin());
/// assert!((f.conductance(0.0) + 1e-3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnNonlinearity<F> {
    f: F,
}

impl<F: Fn(f64) -> f64> FnNonlinearity<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnNonlinearity { f }
    }
}

impl<F: Fn(f64) -> f64> Nonlinearity for FnNonlinearity<F> {
    fn current(&self, v: f64) -> f64 {
        (self.f)(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(f: &dyn Nonlinearity, v: f64) -> f64 {
        let h = 1e-7 * (1.0 + v.abs());
        (f.current(v + h) - f.current(v - h)) / (2.0 * h)
    }

    #[test]
    fn negative_tanh_shape() {
        let f = NegativeTanh::new(1e-3, 20.0);
        assert_eq!(f.current(0.0), 0.0);
        assert!((f.current(10.0) + 1e-3).abs() < 1e-12);
        assert!((f.current(-10.0) - 1e-3).abs() < 1e-12);
        for &v in &[-0.2, -0.01, 0.0, 0.05, 0.3] {
            assert!((f.conductance(v) - fd(&f, v)).abs() < 1e-6);
        }
    }

    #[test]
    fn polynomial_van_der_pol() {
        let f = Polynomial::van_der_pol(1e-3, 1e-3).unwrap();
        // Zero crossings of conductance at v = ±1/√3.
        assert!(f.conductance(0.0) < 0.0);
        assert!(f.conductance(1.0) > 0.0);
        for &v in &[-1.5, -0.3, 0.0, 0.8, 2.0] {
            assert!((f.conductance(v) - fd(&f, v)).abs() < 1e-6);
        }
        assert!(Polynomial::van_der_pol(-1.0, 1.0).is_err());
        assert!(Polynomial::new(vec![]).is_err());
        assert!(Polynomial::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn tunnel_diode_matches_appendix_equations() {
        let td = TunnelDiode::new();
        let v = 0.1;
        let expect = 0.1 / 1000.0 * (-0.25f64).exp() + 1e-12 * ((4.0f64).exp() - 1.0);
        assert!((td.current(v) - expect).abs() < 1e-15);
        // Negative resistance near the paper's 0.25 V bias.
        assert!(td.conductance(0.25) < 0.0);
        for &v in &[-0.1, 0.05, 0.25, 0.45, 0.7] {
            assert!((td.conductance(v) - fd(&td, v)).abs() < 1e-6);
        }
    }

    #[test]
    fn biased_tunnel_diode_centers_origin() {
        let f = TunnelDiode::new().biased_at(0.25);
        assert!(f.current(0.0).abs() < 1e-18);
        assert!(f.conductance(0.0) < 0.0);
        assert_eq!(f.v_bias(), 0.25);
        // Shifting is exact: f(v) = td(v + 0.25) − td(0.25).
        let td = TunnelDiode::new();
        for &v in &[-0.2, -0.05, 0.1, 0.3] {
            assert!((f.current(v) - (td.current(v + 0.25) - td.current(0.25))).abs() < 1e-18);
        }
    }

    #[test]
    fn tabulated_roundtrip_against_generator() {
        let v: Vec<f64> = (0..201).map(|k| -1.0 + 0.01 * k as f64).collect();
        let gen = NegativeTanh::new(2e-3, 8.0);
        let i: Vec<f64> = v.iter().map(|&x| gen.current(x)).collect();
        let t = Tabulated::new(v, i).unwrap();
        for &q in &[-0.9, -0.33, 0.0, 0.41, 0.87] {
            assert!((t.current(q) - gen.current(q)).abs() < 1e-6);
            assert!((t.conductance(q) - gen.conductance(q)).abs() < 1e-3);
        }
        assert_eq!(t.domain(), (-1.0, 1.0));
        assert!(Tabulated::new(vec![0.0], vec![0.0]).is_err());
    }

    #[test]
    fn fn_nonlinearity_and_reference_impl() {
        let f = FnNonlinearity::new(|v: f64| -0.5 * v);
        assert_eq!(f.current(2.0), -1.0);
        let r = &f;
        assert_eq!(r.current(2.0), -1.0);
        assert!((r.conductance(0.3) + 0.5).abs() < 1e-8);
    }

    #[test]
    fn limexp_continuity() {
        assert!((limexp(39.9999999) - limexp(40.0000001)).abs() / limexp(40.0) < 1e-6);
        assert!(limexp(500.0).is_finite());
        assert!(limexp_deriv(500.0).is_finite());
    }
}
