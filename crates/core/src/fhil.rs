//! Fundamental-harmonic injection locking (FHIL, §III-B) and the classical
//! Adler approximation.
//!
//! The paper's SHIL machinery subsumes FHIL as the `n = 1` special case
//! (handled by [`crate::shil::ShilAnalysis`] directly). This module adds
//! the textbook closed form for cross-validation: for a weak fundamental
//! injection the combined drive phasor is `A/2 + V_i·e^{jφ}`, the maximum
//! loop phase the injection can absorb is `arcsin`-limited, and the
//! resulting lock range follows from the tank phase slope.

use crate::describing::{natural_oscillation, NaturalOptions};
use crate::error::ShilError;
use crate::nonlinearity::Nonlinearity;
use crate::tank::{ParallelRlc, Tank};

/// Closed-form (Adler-style) FHIL lock range for a parallel RLC oscillator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdlerLockRange {
    /// Maximum loop phase the injection can supply (radians):
    /// `arcsin(2V_i/A)` for `2V_i < A`.
    pub phi_max: f64,
    /// Lower lock limit (hertz).
    pub lower_hz: f64,
    /// Upper lock limit (hertz).
    pub upper_hz: f64,
    /// Total lock-range width (hertz).
    pub span_hz: f64,
}

/// Computes the Adler approximation of the FHIL lock range.
///
/// With drive phasor `A/2` and injection phasor `V_i·e^{jφ}` the angle of
/// the combined phasor reaches at most `arcsin(2V_i/A)`; setting the tank
/// phase equal to that bound and inverting gives the lock limits. Accurate
/// for `2V_i ≪ A` and high-ish Q.
///
/// # Errors
///
/// - [`ShilError::InvalidParameter`] if `vi ≤ 0`.
/// - [`ShilError::NoLock`] if `2·vi ≥ amplitude` (the weak-injection
///   formula does not apply).
/// - [`ShilError::NoOscillation`] propagated from the natural-oscillation
///   solve.
pub fn adler_lock_range<N: Nonlinearity + ?Sized>(
    nonlinearity: &N,
    tank: &ParallelRlc,
    vi: f64,
) -> Result<AdlerLockRange, ShilError> {
    // NaN-rejecting positivity check.
    if vi.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(ShilError::InvalidParameter(format!(
            "injection magnitude must be positive, got {vi}"
        )));
    }
    let natural = natural_oscillation(nonlinearity, tank, &NaturalOptions::default())?;
    let a = natural.amplitude;
    if 2.0 * vi >= a {
        return Err(ShilError::NoLock);
    }
    let phi_max = (2.0 * vi / a).asin();
    let w_lo = tank.omega_for_phase(phi_max)?;
    let w_hi = tank.omega_for_phase(-phi_max)?;
    let lower_hz = w_lo / std::f64::consts::TAU;
    let upper_hz = w_hi / std::f64::consts::TAU;
    Ok(AdlerLockRange {
        phi_max,
        lower_hz,
        upper_hz,
        span_hz: upper_hz - lower_hz,
    })
}

/// The classical small-signal estimate `Δf ≈ 2·f_c·V_i/(Q·A)` (total
/// width), handy as a sanity bound.
pub fn adler_span_estimate(fc_hz: f64, q: f64, amplitude: f64, vi: f64) -> f64 {
    2.0 * fc_hz * vi / (q * amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonlinearity::NegativeTanh;
    use crate::shil::{ShilAnalysis, ShilOptions};

    fn setup() -> (NegativeTanh, ParallelRlc) {
        (
            NegativeTanh::new(1e-3, 20.0),
            ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap(),
        )
    }

    #[test]
    fn adler_formula_matches_small_signal_estimate() {
        let (f, t) = setup();
        let lr = adler_lock_range(&f, &t, 0.01).unwrap();
        let natural = natural_oscillation(&f, &t, &NaturalOptions::default()).unwrap();
        let est = adler_span_estimate(t.center_frequency_hz(), t.q(), natural.amplitude, 0.01);
        assert!(
            ((lr.span_hz - est) / est).abs() < 0.05,
            "closed form {} vs estimate {est}",
            lr.span_hz
        );
        assert!(lr.lower_hz < t.center_frequency_hz());
        assert!(lr.upper_hz > t.center_frequency_hz());
    }

    #[test]
    fn adler_agrees_with_graphical_n1_analysis() {
        // The paper's claim that SHIL machinery subsumes FHIL: the n = 1
        // graphical lock range must approximate Adler for weak injection.
        let (f, t) = setup();
        let vi = 0.02;
        let adler = adler_lock_range(&f, &t, vi).unwrap();
        let an = ShilAnalysis::new(
            &f,
            &t,
            1,
            vi,
            ShilOptions {
                phase_points: 161,
                amplitude_points: 101,
                ..Default::default()
            },
        )
        .unwrap();
        let graphical = an.lock_range().unwrap();
        let rel = (graphical.injection_span_hz - adler.span_hz).abs() / adler.span_hz;
        assert!(
            rel < 0.25,
            "graphical {} vs adler {} (rel {rel})",
            graphical.injection_span_hz,
            adler.span_hz
        );
    }

    #[test]
    fn rejects_overdrive_and_bad_input() {
        let (f, t) = setup();
        assert!(matches!(
            adler_lock_range(&f, &t, 0.0),
            Err(ShilError::InvalidParameter(_))
        ));
        // 2·V_i above the ~1.27 V natural amplitude.
        assert!(matches!(
            adler_lock_range(&f, &t, 0.7),
            Err(ShilError::NoLock)
        ));
    }

    #[test]
    fn span_scales_linearly_with_injection() {
        let (f, t) = setup();
        let a = adler_lock_range(&f, &t, 0.005).unwrap();
        let b = adler_lock_range(&f, &t, 0.01).unwrap();
        assert!(((b.span_hz / a.span_hz) - 2.0).abs() < 0.01);
    }
}
