//! Harmonic pre-characterization of nonlinearities.
//!
//! Everything the describing-function method needs from a nonlinearity is a
//! handful of Fourier coefficients of its output under one- or two-tone
//! excitation (paper eq. 1 and §VI-B2):
//!
//! - single tone: `i(θ) = f(A·cosθ)` with coefficients `I_k(A)`;
//! - with sub-harmonic injection: `i(θ) = f(A·cosθ + 2V_i·cos(nθ + φ))`
//!   with the fundamental `I₁(A, V_i, φ)` carrying all the locking physics.
//!
//! All integrals are periodic trapezoid sums, which converge spectrally for
//! the smooth waveforms at hand; this is the "minimal cost" computational
//! pre-characterization the paper describes.

use shil_numerics::quad::{buffer_coefficient, sample_periodic, TwiddleTable};
use shil_numerics::Complex64;

use crate::nonlinearity::Nonlinearity;

/// Sampling options for the harmonic integrals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarmonicOptions {
    /// Samples per fundamental period (power of two recommended).
    pub samples: usize,
}

impl Default for HarmonicOptions {
    fn default() -> Self {
        HarmonicOptions { samples: 512 }
    }
}

/// Precomputed sampling and twiddle tables for batched two-tone harmonic
/// pre-characterization.
///
/// One table serves an entire (φ, A) grid: the injection angle is
/// phase-decomposed as `cos(nθ+φ) = cosφ·cos(nθ) − sinφ·sin(nθ)`, so the
/// per-cell work reduces to one nonlinearity evaluation per sample plus a
/// handful of multiply-adds — no trigonometric calls at all. The scalar
/// wrappers ([`i_k`], [`i1_injected`], …) re-derive their angles per call;
/// on the pre-characterization grid that trigonometry dominated the total
/// runtime.
///
/// The two-tone waveform is sampled once per `(A, V_i, φ)` point into a
/// caller-owned scratch buffer; every Fourier coefficient `I_k` up to
/// `max_k` is then extracted from that one buffer via the embedded
/// [`TwiddleTable`].
#[derive(Debug, Clone)]
pub struct HarmonicTable {
    n: u32,
    /// `cos θ_i` — the oscillation tone.
    cos_theta: Vec<f64>,
    /// `cos(nθ_i)` — in-phase injection tone.
    cos_n: Vec<f64>,
    /// `sin(nθ_i)` — quadrature injection tone.
    sin_n: Vec<f64>,
    twiddle: TwiddleTable,
}

impl HarmonicTable {
    /// Builds tables for sub-harmonic order `n`, extracting harmonics up to
    /// `max_k`, at `opts.samples` angles per period.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `opts.samples == 0`.
    pub fn new(n: u32, max_k: usize, opts: &HarmonicOptions) -> Self {
        assert!(n >= 1, "harmonic order n must be >= 1");
        let samples = opts.samples;
        assert!(samples >= 1, "at least one sample required");
        let h = std::f64::consts::TAU / samples as f64;
        let nf = n as f64;
        let mut cos_theta = Vec::with_capacity(samples);
        let mut cos_n = Vec::with_capacity(samples);
        let mut sin_n = Vec::with_capacity(samples);
        for i in 0..samples {
            let theta = h * i as f64;
            cos_theta.push(theta.cos());
            let (s, c) = (nf * theta).sin_cos();
            cos_n.push(c);
            sin_n.push(s);
        }
        HarmonicTable {
            n,
            cos_theta,
            cos_n,
            sin_n,
            twiddle: TwiddleTable::new(samples, max_k),
        }
    }

    /// Sub-harmonic order `n` the injection tables were built for.
    pub fn order(&self) -> u32 {
        self.n
    }

    /// Angular samples per period.
    pub fn samples(&self) -> usize {
        self.cos_theta.len()
    }

    /// Highest extractable harmonic.
    pub fn max_k(&self) -> usize {
        self.twiddle.max_k()
    }

    /// A correctly sized scratch buffer for the `sample_*` methods.
    pub fn scratch(&self) -> Vec<f64> {
        Vec::with_capacity(self.samples())
    }

    /// Samples `f(A·cosθ + 2V_i·cos(nθ + φ))` over one period into `buf`
    /// (cleared first) — one nonlinearity call per sample, no trig.
    pub fn sample_into<N: Nonlinearity + ?Sized>(
        &self,
        f: &N,
        amplitude: f64,
        vi: f64,
        phi: f64,
        buf: &mut Vec<f64>,
    ) {
        let (sphi, cphi) = phi.sin_cos();
        buf.clear();
        buf.reserve(self.samples());
        for i in 0..self.cos_theta.len() {
            let injection = 2.0 * vi * (cphi * self.cos_n[i] - sphi * self.sin_n[i]);
            buf.push(f.current(amplitude * self.cos_theta[i] + injection));
        }
    }

    /// Samples the single-tone waveform `f(A·cosθ)` into `buf`.
    pub fn sample_single_into<N: Nonlinearity + ?Sized>(
        &self,
        f: &N,
        amplitude: f64,
        buf: &mut Vec<f64>,
    ) {
        buf.clear();
        buf.reserve(self.samples());
        for &c in &self.cos_theta {
            buf.push(f.current(amplitude * c));
        }
    }

    /// `I_k` extracted from a buffer filled by one of the `sample_*`
    /// methods.
    ///
    /// # Panics
    ///
    /// Panics if `buf` has the wrong length or `k > self.max_k()`.
    pub fn coefficient(&self, buf: &[f64], k: usize) -> Complex64 {
        self.twiddle.coefficient(buf, k)
    }

    /// Batched `I₁(A, V_i, φ)`: sample once, extract the fundamental.
    pub fn i1<N: Nonlinearity + ?Sized>(
        &self,
        f: &N,
        amplitude: f64,
        vi: f64,
        phi: f64,
        buf: &mut Vec<f64>,
    ) -> Complex64 {
        self.sample_into(f, amplitude, vi, phi, buf);
        self.twiddle.coefficient(buf, 1)
    }

    /// Batched single-tone `I₁(A)`.
    pub fn i1_single<N: Nonlinearity + ?Sized>(
        &self,
        f: &N,
        amplitude: f64,
        buf: &mut Vec<f64>,
    ) -> Complex64 {
        self.sample_single_into(f, amplitude, buf);
        self.twiddle.coefficient(buf, 1)
    }

    /// All `I_0..=I_max_k` of the injected response from one sampling pass.
    pub fn spectrum<N: Nonlinearity + ?Sized>(
        &self,
        f: &N,
        amplitude: f64,
        vi: f64,
        phi: f64,
        buf: &mut Vec<f64>,
    ) -> Vec<Complex64> {
        self.sample_into(f, amplitude, vi, phi, buf);
        (0..=self.max_k())
            .map(|k| self.twiddle.coefficient(buf, k))
            .collect()
    }
}

/// `k`-th Fourier coefficient `I_k(A)` of `f(A·cosθ)` (paper eq. 1).
///
/// For any real memoryless `f`, `I₁(A)` is real (the input is even in θ),
/// and negative exactly when `f` acts as a negative resistance at this
/// amplitude — the fact §II uses to close the loop without injection.
///
/// This is the one-shot scalar path; for repeated evaluation (grids,
/// sweeps) build a [`HarmonicTable`] once and reuse it.
pub fn i_k<N: Nonlinearity + ?Sized>(
    f: &N,
    amplitude: f64,
    k: i32,
    opts: &HarmonicOptions,
) -> Complex64 {
    let mut buf = Vec::new();
    sample_periodic(
        |theta| f.current(amplitude * theta.cos()),
        opts.samples,
        &mut buf,
    );
    buffer_coefficient(&buf, k)
}

/// Fundamental coefficient `I₁(A)` of the single-tone response.
pub fn i1_single<N: Nonlinearity + ?Sized>(
    f: &N,
    amplitude: f64,
    opts: &HarmonicOptions,
) -> Complex64 {
    i_k(f, amplitude, 1, opts)
}

/// Fundamental coefficient `I₁(A, V_i, φ)` under `n`-th-harmonic injection:
/// the Fourier coefficient at the fundamental of
/// `f(A·cosθ + 2V_i·cos(nθ + φ))` (paper §VI-B2).
///
/// `vi` is the injection **phasor magnitude** (the physical injection
/// waveform has peak amplitude `2·vi`, matching the paper's
/// `2V_i·cos(nω_i t + φ)` convention).
///
/// # Panics
///
/// Panics if `n == 0` (use [`i1_single`] for no injection, or `n = 1` for
/// fundamental injection).
pub fn i1_injected<N: Nonlinearity + ?Sized>(
    f: &N,
    amplitude: f64,
    vi: f64,
    phi: f64,
    n: u32,
    opts: &HarmonicOptions,
) -> Complex64 {
    assert!(n >= 1, "harmonic order n must be >= 1");
    let nf = n as f64;
    let mut buf = Vec::new();
    sample_periodic(
        |theta| f.current(amplitude * theta.cos() + 2.0 * vi * (nf * theta + phi).cos()),
        opts.samples,
        &mut buf,
    );
    buffer_coefficient(&buf, 1)
}

/// All coefficients `I_0..=I_max_k` of the injected two-tone response.
///
/// Useful for verifying the filtering assumption: with a high-Q tank only
/// `I₁` (and the injection's own bin `I_n`) matter.
pub fn injected_spectrum<N: Nonlinearity + ?Sized>(
    f: &N,
    amplitude: f64,
    vi: f64,
    phi: f64,
    n: u32,
    max_k: usize,
    opts: &HarmonicOptions,
) -> Vec<Complex64> {
    let table = HarmonicTable::new(n, max_k, opts);
    let mut buf = table.scratch();
    table.spectrum(f, amplitude, vi, phi, &mut buf)
}

/// The paper's loop-gain describing function
/// `T_f(A) = −R·I₁(A)/(A/2)` for the injection-free loop (eq. 2).
pub fn t_f_single<N: Nonlinearity + ?Sized>(
    f: &N,
    r: f64,
    amplitude: f64,
    opts: &HarmonicOptions,
) -> f64 {
    -r * i1_single(f, amplitude, opts).re / (amplitude / 2.0)
}

/// The injected loop-gain describing function
/// `T_f(A, V_i, φ) = −R·I₁ₓ(A, V_i, φ)/(A/2)` (paper eq. 3), where `I₁ₓ` is
/// the cosine (real) component of the fundamental phasor.
pub fn t_f_injected<N: Nonlinearity + ?Sized>(
    f: &N,
    r: f64,
    amplitude: f64,
    vi: f64,
    phi: f64,
    n: u32,
    opts: &HarmonicOptions,
) -> f64 {
    -r * i1_injected(f, amplitude, vi, phi, n, opts).re / (amplitude / 2.0)
}

/// The phase `∠−I₁(A, V_i, φ)` used in the lock condition (paper eq. 4),
/// wrapped to `(−π, π]`.
pub fn angle_neg_i1<N: Nonlinearity + ?Sized>(
    f: &N,
    amplitude: f64,
    vi: f64,
    phi: f64,
    n: u32,
    opts: &HarmonicOptions,
) -> f64 {
    (-i1_injected(f, amplitude, vi, phi, n, opts)).arg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonlinearity::{FnNonlinearity, NegativeTanh, Polynomial};
    use std::f64::consts::PI;

    fn opts() -> HarmonicOptions {
        HarmonicOptions::default()
    }

    #[test]
    fn linear_element_fundamental() {
        let f = FnNonlinearity::new(|v: f64| 0.01 * v);
        // I₁ = g·A/2 for i = g·v.
        let i1 = i1_single(&f, 2.0, &opts());
        assert!((i1.re - 0.01).abs() < 1e-12);
        assert!(i1.im.abs() < 1e-14);
    }

    #[test]
    fn tanh_fundamental_is_real_negative_and_saturates() {
        let f = NegativeTanh::new(1e-3, 50.0);
        for &a in &[0.05, 0.2, 1.0, 5.0] {
            let i1 = i1_single(&f, a, &opts());
            assert!(i1.im.abs() < 1e-12, "imaginary leak at A={a}");
            assert!(i1.re < 0.0, "negative resistance sign at A={a}");
        }
        // Hard-limit asymptote: |I₁| → (2/π)·i₀.
        let deep = i1_single(&f, 100.0, &opts());
        assert!((deep.re.abs() - 2e-3 / PI).abs() < 1e-5);
    }

    #[test]
    fn van_der_pol_fundamental_matches_closed_form() {
        // i = −g₁v + g₃v³ with v = A cosθ:
        // I₁ = (−g₁·A/2 + g₃·(3/4)A³·(1/2)) = −g₁A/2 + (3/8)g₃A³.
        let (g1, g3) = (2e-3, 5e-4);
        let f = Polynomial::van_der_pol(g1, g3).unwrap();
        for &a in &[0.1, 0.7, 1.5, 3.0] {
            let i1 = i1_single(&f, a, &opts());
            let expect = -g1 * a / 2.0 + 3.0 / 8.0 * g3 * a.powi(3);
            assert!(
                (i1.re - expect).abs() < 1e-12 * (1.0 + expect.abs()),
                "A={a}: {} vs {expect}",
                i1.re
            );
        }
    }

    #[test]
    fn injection_at_n2plus_leaves_linear_element_untouched() {
        // A *linear* element cannot mix the injection down to the
        // fundamental: I₁ must be independent of V_i and φ for n ≥ 2.
        let f = FnNonlinearity::new(|v: f64| 0.01 * v);
        let base = i1_injected(&f, 1.0, 0.0, 0.0, 3, &opts());
        for &phi in &[0.0, 1.0, 2.5] {
            let withinj = i1_injected(&f, 1.0, 0.2, phi, 3, &opts());
            assert!((withinj - base).abs() < 1e-13);
        }
    }

    #[test]
    fn nonlinear_element_mixes_injection_into_fundamental() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let no_inj = i1_injected(&f, 0.5, 0.0, 0.0, 3, &opts());
        assert!(no_inj.im.abs() < 1e-12);
        let with_inj = i1_injected(&f, 0.5, 0.03, 0.8, 3, &opts());
        // The injection must rotate the fundamental phasor — that rotation
        // is the entire SHIL mechanism (§III-C).
        assert!(with_inj.im.abs() > 1e-6, "no phase generated: {with_inj:?}");
    }

    #[test]
    fn conjugate_symmetry_in_phi() {
        // §VI-B3: replacing φ → −φ conjugates the fundamental phasor.
        let f = NegativeTanh::new(1e-3, 20.0);
        for &phi in &[0.3, 1.2, 2.9] {
            let plus = i1_injected(&f, 0.4, 0.05, phi, 3, &opts());
            let minus = i1_injected(&f, 0.4, 0.05, -phi, 3, &opts());
            assert!((plus.conj() - minus).abs() < 1e-13);
        }
    }

    #[test]
    fn phi_periodicity_is_two_pi() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let a = i1_injected(&f, 0.4, 0.05, 0.7, 3, &opts());
        let b = i1_injected(&f, 0.4, 0.05, 0.7 + std::f64::consts::TAU, 3, &opts());
        assert!((a - b).abs() < 1e-13);
    }

    #[test]
    fn n1_injection_reduces_to_vector_addition() {
        // For n = 1 the two tones are colinear: the input is a single
        // sinusoid with phasor A/2 + V_i·e^{jφ}, so
        // I₁(A, V_i, φ) = I₁(A_eff)·e^{jψ} with A_eff/2·e^{jψ} the combined
        // phasor.
        let f = NegativeTanh::new(1e-3, 20.0);
        let (a, vi, phi) = (0.5, 0.04, 1.1);
        let combined = Complex64::new(a / 2.0, 0.0) + Complex64::from_polar(vi, phi);
        let a_eff = 2.0 * combined.abs();
        let psi = combined.arg();
        let direct = i1_injected(&f, a, vi, phi, 1, &opts());
        let composed = i1_single(&f, a_eff, &opts()) * Complex64::from_polar(1.0, psi);
        assert!(
            (direct - composed).abs() < 1e-12,
            "{direct:?} vs {composed:?}"
        );
    }

    #[test]
    fn injected_spectrum_shows_injection_bin() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let spec = injected_spectrum(&f, 0.5, 0.03, 0.4, 3, 6, &opts());
        // Odd nonlinearity, odd input structure: fundamental and 3rd
        // dominate; DC vanishes.
        assert!(spec[0].abs() < 1e-12);
        assert!(spec[1].abs() > 1e-4);
        assert!(spec[3].abs() > 1e-6);
    }

    #[test]
    fn t_f_definitions_are_consistent() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let r = 1000.0;
        let a = 0.7;
        let tf1 = t_f_single(&f, r, a, &opts());
        let tf2 = t_f_injected(&f, r, a, 0.0, 0.0, 3, &opts());
        assert!((tf1 - tf2).abs() < 1e-12);
        assert!(tf1 > 0.0);
        // Small-signal limit: T_f → −R·f′(0) = R·i₀·gain = 20.
        let tf0 = t_f_single(&f, r, 1e-6, &opts());
        assert!((tf0 - 20.0).abs() < 1e-6, "tf0 = {tf0}");
    }

    #[test]
    fn angle_neg_i1_is_zero_without_injection() {
        let f = NegativeTanh::new(1e-3, 20.0);
        // −I₁ is a positive real number ⇒ angle 0 (the §II natural case).
        let ang = angle_neg_i1(&f, 0.5, 0.0, 0.0, 3, &opts());
        assert!(ang.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "harmonic order")]
    fn zero_harmonic_order_panics() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let _ = i1_injected(&f, 0.5, 0.03, 0.0, 0, &opts());
    }

    #[test]
    fn harmonic_table_matches_scalar_injected_path() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let table = HarmonicTable::new(3, 1, &opts());
        let mut buf = table.scratch();
        for &(a, vi, phi) in &[
            (0.5, 0.03, 0.8),
            (0.1, 0.0, 0.0),
            (1.3, 0.08, -2.4),
            (2.0, 0.01, 3.1),
        ] {
            let batched = table.i1(&f, a, vi, phi, &mut buf);
            let scalar = i1_injected(&f, a, vi, phi, 3, &opts());
            // The table phase-decomposes cos(nθ+φ); agreement is to
            // rounding, not bitwise.
            assert!(
                (batched - scalar).abs() < 1e-15,
                "(A={a}, Vi={vi}, φ={phi}): {batched:?} vs {scalar:?}"
            );
        }
    }

    #[test]
    fn harmonic_table_single_tone_is_bitwise_scalar() {
        // The single-tone sampling and extraction use the exact same
        // floating-point expressions as the scalar i_k path, so agreement
        // is bit-for-bit.
        let f = NegativeTanh::new(1e-3, 20.0);
        let table = HarmonicTable::new(3, 1, &opts());
        let mut buf = table.scratch();
        for &a in &[0.05, 0.4, 1.7] {
            let batched = table.i1_single(&f, a, &mut buf);
            let scalar = i1_single(&f, a, &opts());
            assert_eq!(batched, scalar, "A={a}");
        }
    }

    #[test]
    fn harmonic_table_spectrum_matches_per_coefficient_extraction() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let table = HarmonicTable::new(3, 6, &opts());
        let mut buf = table.scratch();
        let spec = table.spectrum(&f, 0.5, 0.03, 0.4, &mut buf);
        assert_eq!(spec.len(), 7);
        for (k, &c) in spec.iter().enumerate() {
            assert_eq!(c, table.coefficient(&buf, k), "k={k}");
        }
        // And the free-function spectrum rides the same table path.
        let free = injected_spectrum(&f, 0.5, 0.03, 0.4, 3, 6, &opts());
        for k in 0..=6 {
            assert!((free[k] - spec[k]).abs() < 1e-18);
        }
    }

    #[test]
    fn harmonic_table_scratch_is_reusable_across_cells() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let table = HarmonicTable::new(3, 1, &opts());
        let mut buf = table.scratch();
        let first = table.i1(&f, 0.5, 0.03, 0.4, &mut buf);
        let _ = table.i1(&f, 0.9, 0.05, -1.0, &mut buf);
        let again = table.i1(&f, 0.5, 0.03, 0.4, &mut buf);
        assert_eq!(first, again);
    }
}
