//! Natural-oscillation prediction by the describing-function method (§II)
//! and its stability rule (§VI-A1).
//!
//! The loop closes without injection when `T_f(A) = −R·I₁(A)/(A/2) = 1`
//! (paper eq. 2). Plotting `y = T_f(A)` against `y = 1` and reading the
//! crossings *is* the graphical procedure of Fig. 3; this module finds the
//! same crossings numerically (scan + Brent) and classifies each with the
//! paper's rule: stable iff the curve cuts `y = 1` from above.

use shil_numerics::fallback::solve_1d_escalating;
use shil_numerics::roots::bracket_scan;

use crate::error::ShilError;
use crate::harmonics::{HarmonicOptions, HarmonicTable};
use crate::nonlinearity::Nonlinearity;
use crate::tank::Tank;

/// Options for the natural-oscillation solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaturalOptions {
    /// Upper end of the amplitude scan; `None` grows automatically until
    /// `T_f < 1` (saturation guarantees this for physical elements).
    pub a_max: Option<f64>,
    /// Scan resolution (number of amplitude subintervals).
    pub scan_points: usize,
    /// Harmonic-integral sampling.
    pub harmonics: HarmonicOptions,
}

impl Default for NaturalOptions {
    fn default() -> Self {
        NaturalOptions {
            a_max: None,
            scan_points: 400,
            harmonics: HarmonicOptions::default(),
        }
    }
}

/// A predicted natural oscillation (one crossing of `T_f(A) = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaturalOscillation {
    /// Oscillation amplitude `A` (volts).
    pub amplitude: f64,
    /// Oscillation frequency — the tank center frequency (hertz), per the
    /// §II filtering argument.
    pub frequency_hz: f64,
    /// Stability by the §VI-A1 rule (curve cuts `y = 1` from above).
    pub stable: bool,
    /// Slope `dT_f/dA` at the crossing (negative for stable solutions).
    pub t_f_slope: f64,
}

/// The small-signal loop gain `T_f(A → 0) = −R·f′(0)`.
///
/// Oscillation can start up only when this exceeds one.
pub fn small_signal_loop_gain<N: Nonlinearity + ?Sized, T: Tank + ?Sized>(
    nonlinearity: &N,
    tank: &T,
) -> f64 {
    -tank.peak_resistance() * nonlinearity.conductance(0.0)
}

/// Samples the describing-function curve `T_f(A)` over the given
/// amplitudes — the `y = −R·I₁(A)/(A/2)` curve of Fig. 3, ready for
/// plotting.
pub fn t_f_curve<N: Nonlinearity + ?Sized, T: Tank + ?Sized>(
    nonlinearity: &N,
    tank: &T,
    amplitudes: &[f64],
    opts: &HarmonicOptions,
) -> Vec<f64> {
    let r = tank.peak_resistance();
    // One table + scratch buffer for the whole curve (bit-identical to the
    // scalar t_f_single per point, minus its per-point trigonometry).
    let table = HarmonicTable::new(1, 1, opts);
    let mut buf = table.scratch();
    amplitudes
        .iter()
        .map(|&a| -r * table.i1_single(nonlinearity, a, &mut buf).re / (a / 2.0))
        .collect()
}

/// Finds **all** natural-oscillation amplitudes and their stability.
///
/// The zero amplitude equilibrium is not reported (it is unstable whenever
/// the small-signal gain exceeds one, which is the interesting case).
///
/// Each bracketed crossing is refined with the escalating 1-D policy
/// (Brent, then bisection on the same bracket). A crossing whose
/// refinement still fails — e.g. the describing function evaluates
/// non-finite throughout the bracket — is skipped rather than failing the
/// whole solve, so one poisoned crossing cannot hide the healthy ones.
///
/// # Errors
///
/// - [`ShilError::InvalidParameter`] if the automatic amplitude cap fails
///   to bracket saturation (pathological `f` that never saturates), or if
///   a non-finite `a_max` is supplied.
pub fn natural_oscillations<N: Nonlinearity + ?Sized, T: Tank + ?Sized>(
    nonlinearity: &N,
    tank: &T,
    opts: &NaturalOptions,
) -> Result<Vec<NaturalOscillation>, ShilError> {
    let r = tank.peak_resistance();
    let fc = tank.center_frequency_hz();
    // The scan + Brent refinement evaluates T_f hundreds of times; hold one
    // sampling table and scratch buffer across all of them.
    let table = HarmonicTable::new(1, 1, &opts.harmonics);
    let mut buf = table.scratch();
    let mut tf = |a: f64| -r * table.i1_single(nonlinearity, a, &mut buf).re / (a / 2.0);

    let a_max = match opts.a_max {
        Some(a) => {
            // NaN-rejecting positivity check; infinities are equally unusable
            // as a scan cap.
            if a.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !a.is_finite() {
                return Err(ShilError::InvalidParameter(format!(
                    "a_max must be positive and finite, got {a}"
                )));
            }
            a
        }
        None => {
            // Grow until the loop gain has fallen below one (saturation).
            let mut a = 1.0;
            let mut tries = 0;
            while tf(a) > 1.0 {
                a *= 2.0;
                tries += 1;
                if tries > 60 {
                    return Err(ShilError::InvalidParameter(
                        "nonlinearity never saturates: T_f(A) > 1 for all scanned A".into(),
                    ));
                }
            }
            a
        }
    };

    // Scan from a tiny amplitude: T_f(0⁺) is the small-signal gain.
    let a_min = a_max * 1e-9;
    let mut out = Vec::new();
    for (lo, hi) in bracket_scan(|a| tf(a) - 1.0, a_min, a_max, opts.scan_points) {
        let amplitude = if lo == hi {
            lo
        } else {
            match solve_1d_escalating(|a| tf(a) - 1.0, lo, hi, a_max * 1e-14, 200) {
                Ok((a, _method)) => a,
                // Both Brent and bisection failed on this bracket (the DF
                // evaluated non-finite everywhere that matters): skip this
                // crossing and keep the rest.
                Err(_) => continue,
            }
        };
        // Slope by central difference on the smooth DF curve. A non-finite
        // slope (sample landed on a poisoned point) classifies as unstable:
        // `slope < 0.0` is false for NaN, which is the conservative answer.
        let h = a_max * 1e-6;
        let slope = (tf(amplitude + h) - tf(amplitude - h)) / (2.0 * h);
        out.push(NaturalOscillation {
            amplitude,
            frequency_hz: fc,
            stable: slope < 0.0,
            t_f_slope: slope,
        });
    }
    Ok(out)
}

/// Finds the (unique, stable) natural oscillation of a healthy oscillator.
///
/// # Errors
///
/// Returns [`ShilError::NoOscillation`] when no stable crossing exists —
/// including the gain-below-one case — with the small-signal gain attached
/// for diagnosis.
pub fn natural_oscillation<N: Nonlinearity + ?Sized, T: Tank + ?Sized>(
    nonlinearity: &N,
    tank: &T,
    opts: &NaturalOptions,
) -> Result<NaturalOscillation, ShilError> {
    let gain = small_signal_loop_gain(nonlinearity, tank);
    if gain <= 1.0 {
        return Err(ShilError::NoOscillation {
            small_signal_gain: gain,
        });
    }
    let all = natural_oscillations(nonlinearity, tank, opts)?;
    all.into_iter()
        .filter(|o| o.stable && o.amplitude.is_finite())
        .max_by(|a, b| a.amplitude.total_cmp(&b.amplitude))
        .ok_or(ShilError::NoOscillation {
            small_signal_gain: gain,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonics::t_f_single;
    use crate::nonlinearity::{NegativeTanh, Polynomial};
    use crate::tank::ParallelRlc;
    use std::f64::consts::PI;

    fn tank() -> ParallelRlc {
        ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap()
    }

    #[test]
    fn small_signal_gain_formula() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let g = small_signal_loop_gain(&f, &tank());
        assert!((g - 20.0).abs() < 1e-12);
    }

    #[test]
    fn tanh_oscillator_amplitude_near_saturated_asymptote() {
        // Deeply saturated: A ≈ (4/π)·R·i₀.
        let f = NegativeTanh::new(1e-3, 20.0);
        let t = tank();
        let osc = natural_oscillation(&f, &t, &NaturalOptions::default()).unwrap();
        let asymptote = 4.0 / PI * 1000.0 * 1e-3;
        assert!(
            (osc.amplitude - asymptote).abs() / asymptote < 0.05,
            "A = {} vs asymptote {asymptote}",
            osc.amplitude
        );
        assert!(osc.stable);
        assert!(osc.t_f_slope < 0.0);
        assert!((osc.frequency_hz - t.center_frequency_hz()).abs() < 1e-6);
        // Consistency: T_f(A*) = 1.
        let r = t.peak_resistance();
        let tf = t_f_single(&f, r, osc.amplitude, &HarmonicOptions::default());
        assert!((tf - 1.0).abs() < 1e-9);
    }

    #[test]
    fn van_der_pol_amplitude_closed_form() {
        // T_f(A) = R(g₁ − (3/4)g₃A²)… from I₁ = −g₁A/2 + (3/8)g₃A³:
        // T_f = R(g₁ − (3/4)g₃A²) = 1 ⇒ A² = (g₁ − 1/R)·4/(3g₃).
        let (g1, g3) = (3e-3, 1e-3);
        let f = Polynomial::van_der_pol(g1, g3).unwrap();
        let t = tank();
        let osc = natural_oscillation(&f, &t, &NaturalOptions::default()).unwrap();
        let expect = ((g1 - 1e-3) * 4.0 / (3.0 * g3)).sqrt();
        assert!(
            (osc.amplitude - expect).abs() < 1e-6,
            "A = {} vs {expect}",
            osc.amplitude
        );
        assert!(osc.stable);
    }

    #[test]
    fn subcritical_oscillator_reports_no_oscillation() {
        // Loop gain 0.5 < 1: dead.
        let f = NegativeTanh::new(1e-3, 0.5e-3 / 1e-3 * 1.0);
        let e = natural_oscillation(&f, &tank(), &NaturalOptions::default()).unwrap_err();
        match e {
            ShilError::NoOscillation { small_signal_gain } => {
                assert!(small_signal_gain < 1.0)
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn t_f_curve_matches_pointwise_evaluation() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let t = tank();
        let amps = [0.1, 0.5, 1.0, 2.0];
        let curve = t_f_curve(&f, &t, &amps, &HarmonicOptions::default());
        assert_eq!(curve.len(), 4);
        for (a, c) in amps.iter().zip(&curve) {
            assert!((c - t_f_single(&f, 1000.0, *a, &HarmonicOptions::default())).abs() < 1e-15);
        }
        // Monotone decreasing toward saturation.
        assert!(curve[0] > curve[1] && curve[1] > curve[2] && curve[2] > curve[3]);
    }

    #[test]
    fn explicit_a_max_is_honoured() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let opts = NaturalOptions {
            a_max: Some(5.0),
            ..Default::default()
        };
        let oscs = natural_oscillations(&f, &tank(), &opts).unwrap();
        assert_eq!(oscs.len(), 1);
        assert!(oscs[0].amplitude < 5.0);
        let bad = NaturalOptions {
            a_max: Some(-1.0),
            ..Default::default()
        };
        assert!(natural_oscillations(&f, &tank(), &bad).is_err());
    }

    #[test]
    fn non_finite_a_max_is_rejected() {
        let f = NegativeTanh::new(1e-3, 20.0);
        for bad in [f64::NAN, f64::INFINITY] {
            let opts = NaturalOptions {
                a_max: Some(bad),
                ..Default::default()
            };
            assert!(matches!(
                natural_oscillations(&f, &tank(), &opts),
                Err(ShilError::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn poisoned_amplitude_region_degrades_without_panicking() {
        // The element evaluates NaN beyond |v| = 1 V, which poisons T_f(A)
        // for every amplitude reaching into that region — including the
        // crossing near A ≈ 1.27 V. The scan must neither panic nor
        // manufacture a crossing; the element simply reports no stable
        // oscillation.
        let f = crate::nonlinearity::FnNonlinearity::new(|v: f64| {
            if v.abs() > 1.0 {
                f64::NAN
            } else {
                -1e-3 * (20.0 * v / 1e-3).tanh()
            }
        });
        let opts = NaturalOptions {
            a_max: Some(2.0),
            ..Default::default()
        };
        let oscs = natural_oscillations(&f, &tank(), &opts).unwrap();
        assert!(
            oscs.iter().all(|o| o.amplitude.is_finite()),
            "no non-finite amplitudes may escape: {oscs:?}"
        );
        let single = natural_oscillation(&f, &tank(), &opts);
        match single {
            Ok(o) => assert!(o.amplitude.is_finite()),
            Err(ShilError::NoOscillation { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn never_saturating_element_is_rejected() {
        // i = −g·v is linear: T_f(A) = R·g for all A; with R·g > 1 the
        // auto-cap cannot terminate and must error out.
        let f = crate::nonlinearity::FnNonlinearity::new(|v: f64| -2e-3 * v);
        let e = natural_oscillations(&f, &tank(), &NaturalOptions::default()).unwrap_err();
        assert!(matches!(e, ShilError::InvalidParameter(_)));
    }
}
