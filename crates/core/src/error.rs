use std::fmt;

use shil_numerics::NumericsError;

/// Errors produced by the describing-function analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShilError {
    /// A parameter was non-physical (documented per constructor).
    InvalidParameter(String),
    /// The oscillator has no (stable) natural oscillation — the small-signal
    /// loop gain never reaches one.
    NoOscillation {
        /// The small-signal loop gain `T_f(A→0)` that was found.
        small_signal_gain: f64,
    },
    /// No stable lock exists for the requested injection (the lock range is
    /// empty at this `V_i`).
    NoLock,
    /// An underlying numerical kernel failed.
    Numerics(NumericsError),
}

impl fmt::Display for ShilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShilError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ShilError::NoOscillation { small_signal_gain } => write!(
                f,
                "no natural oscillation: small-signal loop gain {small_signal_gain:.3} never exceeds 1"
            ),
            ShilError::NoLock => write!(f, "no stable injection lock exists"),
            ShilError::Numerics(e) => write!(f, "numerics failure: {e}"),
        }
    }
}

impl std::error::Error for ShilError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShilError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for ShilError {
    fn from(e: NumericsError) -> Self {
        ShilError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ShilError::InvalidParameter("bad R".into())
            .to_string()
            .contains("bad R"));
        assert!(ShilError::NoOscillation {
            small_signal_gain: 0.5
        }
        .to_string()
        .contains("0.5"));
        assert_eq!(
            ShilError::NoLock.to_string(),
            "no stable injection lock exists"
        );
        let e: ShilError = NumericsError::InvalidBracket { a: 0.0, b: 1.0 }.into();
        assert!(e.to_string().contains("bracket"));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error;
        let e: ShilError = NumericsError::SingularMatrix { pivot: 2 }.into();
        assert!(e.source().is_some());
        assert!(ShilError::NoLock.source().is_none());
    }
}
