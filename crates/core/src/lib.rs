//! Describing-function analysis of injection locking in negative-resistance
//! LC oscillators — a Rust reproduction of *"A Rigorous Graphical Technique
//! for Predicting Sub-harmonic Injection Locking in LC Oscillators"*
//! (DAC 2014).
//!
//! # The method in one paragraph
//!
//! An LC oscillator is a memoryless nonlinearity `i = f(v)` in feedback
//! around a band-pass tank `H(jω)`. Cutting the loop and driving the
//! nonlinearity with `A·cos(ω_i t) + 2V_i·cos(nω_i t + φ)` (tank fundamental
//! plus the `n`-th-harmonic injection) produces a current whose fundamental
//! phasor `I₁(A, V_i, φ)` can be pre-characterized numerically for *any*
//! `f`. Closing the loop demands (paper eqs. 3–4)
//!
//! ```text
//! T_f(A, V_i, φ) = −R·I₁ₓ(A, V_i, φ) / (A/2) = 1          (magnitude)
//! ∠−I₁(A, V_i, φ) = −φ_d(ω_i) = −∠H(jω_i)                 (phase)
//! ```
//!
//! Solutions are intersections of two level-set curves in the `(φ, A)`
//! plane; their stability follows from the local slopes; the **lock range**
//! is the largest tank phase `|φ_d|` at which a stable intersection
//! survives, mapped back to frequency through the tank. Every step is
//! exposed both as numbers and as extractable curves (see
//! [`shil::GraphicalCurves`]) so the original *graphical* procedure of the
//! paper can be rendered.
//!
//! # Quickstart
//!
//! ```
//! use shil_core::nonlinearity::NegativeTanh;
//! use shil_core::oscillator::Oscillator;
//! use shil_core::tank::ParallelRlc;
//!
//! # fn main() -> Result<(), shil_core::ShilError> {
//! let tank = ParallelRlc::new(1000.0, 10e-6, 10e-9)?;
//! let osc = Oscillator::new(NegativeTanh::new(1e-3, 20.0), tank);
//!
//! // §II: natural oscillation amplitude by the describing-function method.
//! let natural = osc.natural_oscillation()?;
//! assert!(natural.amplitude > 1.0 && natural.amplitude < 1.4);
//!
//! // §III: 3rd-sub-harmonic lock range for a 30 mV injection phasor.
//! let lock = osc.shil_lock_range(3, 0.03)?;
//! assert!(lock.upper_injection_hz > lock.lower_injection_hz);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod describing;
pub mod fhil;
pub mod harmonics;
pub mod hb;
pub mod nonlinearity;
pub mod oscillator;
pub mod pulling;
pub mod shil;
pub mod tank;

mod error;

pub use error::ShilError;
pub use nonlinearity::Nonlinearity;
pub use oscillator::Oscillator;
pub use tank::Tank;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ShilError>;
