//! Linear tank models.
//!
//! The feedback path of the oscillator is the tank impedance `H(jω)`. The
//! analysis needs three things from it: the center frequency `ω_c`, the
//! peak resistance `R = |H(jω_c)|`, and the phase `φ_d(ω) = ∠H(jω)` with
//! its inverse (to map a lock-range boundary in `φ_d` back to frequency).
//!
//! [`ParallelRlc`] provides all of these analytically, including the
//! paper's *circle property* (§VI-B1): `|H(jω)| = R·cos φ_d(ω)`, i.e. the
//! phasor head sweeps a circle of diameter `R`. [`TabulatedTank`] covers
//! arbitrary topologies pre-characterized numerically (e.g. by the AC
//! analysis in `shil-circuit`).

use shil_numerics::interp::Pchip;
use shil_numerics::roots::brent;
use shil_numerics::Complex64;

use crate::error::ShilError;

/// A linear band-pass tank characterized by its impedance.
pub trait Tank {
    /// Complex impedance `H(jω)` at angular frequency `omega` (rad/s).
    fn impedance(&self, omega: f64) -> Complex64;

    /// Center (resonance) angular frequency `ω_c` where the phase is zero
    /// and the magnitude peaks.
    fn center_omega(&self) -> f64;

    /// Peak resistance `R = |H(jω_c)|`.
    fn peak_resistance(&self) -> f64 {
        self.impedance(self.center_omega()).abs()
    }

    /// Phase `φ_d(ω) = ∠H(jω)`, radians.
    fn phase(&self, omega: f64) -> f64 {
        self.impedance(omega).arg()
    }

    /// Inverts the phase curve: the angular frequency at which
    /// `φ_d(ω) = phi_d`. Positive `phi_d` lies **below** resonance and
    /// negative above (standard band-pass behaviour).
    ///
    /// The default implementation brackets around `ω_c` and bisects with
    /// Brent; tanks with closed-form phase (like [`ParallelRlc`]) override.
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] if `|phi_d| ≥ π/2` (or is
    /// NaN) or the phase is not attained within `ω_c/64 .. 64·ω_c`.
    fn omega_for_phase(&self, phi_d: f64) -> Result<f64, ShilError> {
        if phi_d.is_nan() || phi_d.abs() >= std::f64::consts::FRAC_PI_2 {
            return Err(ShilError::InvalidParameter(format!(
                "tank phase must lie in (−π/2, π/2), got {phi_d}"
            )));
        }
        let wc = self.center_omega();
        let g = |w: f64| self.phase(w) - phi_d;
        let (mut lo, mut hi) = (wc, wc);
        // Expand the bracket on the correct side.
        for _ in 0..12 {
            if phi_d >= 0.0 {
                lo /= 2.0;
            } else {
                hi *= 2.0;
            }
            if g(lo) * g(hi) <= 0.0 {
                return brent(g, lo, hi, wc * 1e-14, 200).map_err(ShilError::from);
            }
        }
        Err(ShilError::InvalidParameter(format!(
            "phase {phi_d} not attained by the tank"
        )))
    }

    /// Frequency (hertz) version of [`Tank::center_omega`].
    fn center_frequency_hz(&self) -> f64 {
        self.center_omega() / std::f64::consts::TAU
    }

    /// A stable 64-bit digest of this tank's parameters, or `None` when the
    /// tank cannot be identified by value. Equal fingerprints must imply
    /// identical impedance curves — see
    /// [`Nonlinearity::fingerprint`](crate::nonlinearity::Nonlinearity::fingerprint).
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

impl<T: Tank + ?Sized> Tank for &T {
    fn impedance(&self, omega: f64) -> Complex64 {
        (**self).impedance(omega)
    }
    fn center_omega(&self) -> f64 {
        (**self).center_omega()
    }
    fn peak_resistance(&self) -> f64 {
        (**self).peak_resistance()
    }
    fn phase(&self, omega: f64) -> f64 {
        (**self).phase(omega)
    }
    fn omega_for_phase(&self, phi_d: f64) -> Result<f64, ShilError> {
        (**self).omega_for_phase(phi_d)
    }
    fn fingerprint(&self) -> Option<u64> {
        (**self).fingerprint()
    }
}

/// A parallel RLC tank: `H(jω) = R / (1 + jQ(ω/ω_c − ω_c/ω))` with
/// `ω_c = 1/√(LC)` and `Q = R√(C/L)`.
///
/// ```
/// use shil_core::tank::{ParallelRlc, Tank};
///
/// # fn main() -> Result<(), shil_core::ShilError> {
/// let tank = ParallelRlc::new(1000.0, 10e-6, 10e-9)?;
/// assert!((tank.center_frequency_hz() - 503.29e3).abs() < 20.0);
/// assert!((tank.peak_resistance() - 1000.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelRlc {
    r: f64,
    l: f64,
    c: f64,
}

impl ParallelRlc {
    /// Creates a tank from parallel resistance (Ω), inductance (H) and
    /// capacitance (F).
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] unless all three values are
    /// positive and finite.
    pub fn new(r: f64, l: f64, c: f64) -> Result<Self, ShilError> {
        for (name, v) in [("R", r), ("L", l), ("C", c)] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ShilError::InvalidParameter(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        Ok(ParallelRlc { r, l, c })
    }

    /// Parallel resistance R.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Inductance L.
    pub fn l(&self) -> f64 {
        self.l
    }

    /// Capacitance C.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Quality factor `Q = R√(C/L)`.
    pub fn q(&self) -> f64 {
        self.r * (self.c / self.l).sqrt()
    }
}

impl Tank for ParallelRlc {
    fn impedance(&self, omega: f64) -> Complex64 {
        // Y = 1/R + jωC + 1/(jωL)
        let y = Complex64::new(1.0 / self.r, omega * self.c - 1.0 / (omega * self.l));
        y.inv()
    }

    fn center_omega(&self) -> f64 {
        1.0 / (self.l * self.c).sqrt()
    }

    fn peak_resistance(&self) -> f64 {
        self.r
    }

    fn phase(&self, omega: f64) -> f64 {
        let x = omega / self.center_omega();
        -(self.q() * (x - 1.0 / x)).atan()
    }

    fn omega_for_phase(&self, phi_d: f64) -> Result<f64, ShilError> {
        if phi_d.is_nan() || phi_d.abs() >= std::f64::consts::FRAC_PI_2 {
            return Err(ShilError::InvalidParameter(format!(
                "tank phase must lie in (−π/2, π/2), got {phi_d}"
            )));
        }
        // tan φ_d = −Q(x − 1/x)  ⇒  x² + (t/Q)x − 1 = 0, x > 0.
        let t = phi_d.tan() / self.q();
        let x = 0.5 * (-t + (t * t + 4.0).sqrt());
        Ok(x * self.center_omega())
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(crate::cache::fingerprint(
            "parallel-rlc",
            &[self.r, self.l, self.c],
        ))
    }
}

/// A tank characterized by sampled impedance data (e.g. from the AC
/// analysis of `shil-circuit` on an arbitrary passive network).
///
/// Magnitude and phase are PCHIP-interpolated over frequency; the center
/// frequency is the interpolated magnitude peak.
#[derive(Debug, Clone)]
pub struct TabulatedTank {
    omega: Vec<f64>,
    mag: Pchip,
    phase: Pchip,
    omega_c: f64,
}

impl TabulatedTank {
    /// Builds a tank from `(frequency_hz, impedance)` samples covering the
    /// resonance.
    ///
    /// # Errors
    ///
    /// Returns [`ShilError::InvalidParameter`] if fewer than 5 samples are
    /// given, any sample is non-finite, the frequency axis is not strictly
    /// increasing, or the magnitude peak sits on the boundary of the
    /// sampled band (resonance not covered).
    pub fn from_samples(freq_hz: Vec<f64>, z: Vec<Complex64>) -> Result<Self, ShilError> {
        if freq_hz.len() != z.len() {
            return Err(ShilError::InvalidParameter(
                "frequency and impedance sample counts differ".into(),
            ));
        }
        if freq_hz.len() < 5 {
            return Err(ShilError::InvalidParameter(
                "need at least 5 impedance samples".into(),
            ));
        }
        if let Some(k) = freq_hz.iter().position(|f| !f.is_finite()) {
            return Err(ShilError::InvalidParameter(format!(
                "non-finite frequency sample {} at index {k}",
                freq_hz[k]
            )));
        }
        if let Some(k) = z
            .iter()
            .position(|z| !z.re.is_finite() || !z.im.is_finite())
        {
            return Err(ShilError::InvalidParameter(format!(
                "non-finite impedance sample {:?} at index {k}",
                z[k]
            )));
        }
        let omega: Vec<f64> = freq_hz.iter().map(|f| f * std::f64::consts::TAU).collect();
        let mags: Vec<f64> = z.iter().map(|z| z.abs()).collect();
        let phases: Vec<f64> = z.iter().map(|z| z.arg()).collect();
        // Peak must be interior. The samples are all finite by the guard
        // above, so `total_cmp` orders them exactly as `partial_cmp` would.
        let (kpk, _) = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .ok_or_else(|| ShilError::InvalidParameter("no impedance samples".into()))?;
        if kpk == 0 || kpk == mags.len() - 1 {
            return Err(ShilError::InvalidParameter(
                "impedance peak on band edge: widen the sampled frequency range".into(),
            ));
        }
        let mag = Pchip::new(omega.clone(), mags)
            .map_err(|e| ShilError::InvalidParameter(format!("bad magnitude data: {e}")))?;
        let phase = Pchip::new(omega.clone(), phases)
            .map_err(|e| ShilError::InvalidParameter(format!("bad phase data: {e}")))?;
        // Refine the peak: the zero of the phase near the discrete peak is
        // the robust resonance marker for a band-pass impedance.
        let omega_c = brent(
            |w| phase.eval(w).unwrap_or(f64::NAN),
            omega[kpk - 1],
            omega[kpk + 1],
            omega[kpk] * 1e-14,
            200,
        )
        .unwrap_or(omega[kpk]);
        Ok(TabulatedTank {
            omega,
            mag,
            phase,
            omega_c,
        })
    }

    /// The sampled angular-frequency range.
    pub fn omega_range(&self) -> (f64, f64) {
        (self.omega[0], self.omega[self.omega.len() - 1])
    }
}

impl Tank for TabulatedTank {
    fn impedance(&self, omega: f64) -> Complex64 {
        let m = self.mag.eval(omega).unwrap_or(0.0).max(0.0);
        let p = self.phase.eval(omega).unwrap_or(0.0);
        Complex64::from_polar(m, p)
    }

    fn center_omega(&self) -> f64 {
        self.omega_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn tank() -> ParallelRlc {
        ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap()
    }

    #[test]
    fn center_frequency_and_q() {
        let t = tank();
        assert!((t.center_frequency_hz() - 503_292.12).abs() < 1.0);
        assert!((t.q() - 1000.0 * (10e-9f64 / 10e-6).sqrt()).abs() < 1e-9);
        assert_eq!(t.q(), 31.622776601683793);
    }

    #[test]
    fn impedance_peaks_at_resonance_with_zero_phase() {
        let t = tank();
        let wc = t.center_omega();
        let z = t.impedance(wc);
        assert!((z.abs() - 1000.0).abs() < 1e-6);
        assert!(z.arg().abs() < 1e-9);
        // Off resonance the magnitude falls.
        assert!(t.impedance(wc * 1.05).abs() < 999.0);
        assert!(t.impedance(wc * 0.95).abs() < 999.0);
    }

    #[test]
    fn phase_sign_convention() {
        let t = tank();
        let wc = t.center_omega();
        // Below resonance the tank is inductive: positive phase.
        assert!(t.phase(wc * 0.98) > 0.0);
        // Above resonance: capacitive, negative phase.
        assert!(t.phase(wc * 1.02) < 0.0);
        // Phase matches the impedance argument.
        for &x in &[0.9, 0.99, 1.01, 1.1] {
            let w = wc * x;
            assert!((t.phase(w) - t.impedance(w).arg()).abs() < 1e-12);
        }
    }

    #[test]
    fn circle_property_holds() {
        // §VI-B1: |H(jω)| = R·cos(φ_d(ω)) exactly for the parallel RLC.
        let t = tank();
        let wc = t.center_omega();
        for &x in &[0.9, 0.95, 0.99, 1.0, 1.01, 1.05, 1.12] {
            let w = wc * x;
            let z = t.impedance(w);
            assert!((z.abs() - 1000.0 * z.arg().cos()).abs() < 1e-6, "x = {x}");
        }
    }

    #[test]
    fn omega_for_phase_inverts_phase() {
        let t = tank();
        for &phi in &[-1.2, -0.5, -0.05, 0.0, 0.05, 0.5, 1.2] {
            let w = t.omega_for_phase(phi).unwrap();
            assert!(
                (t.phase(w) - phi).abs() < 1e-10,
                "phi = {phi}: phase(w) = {}",
                t.phase(w)
            );
        }
        assert!(t.omega_for_phase(FRAC_PI_2).is_err());
        assert!(t.omega_for_phase(-2.0).is_err());
    }

    #[test]
    fn default_omega_for_phase_agrees_with_analytic() {
        // Drive the trait's default implementation through a wrapper that
        // hides the analytic override.
        struct Wrap(ParallelRlc);
        impl Tank for Wrap {
            fn impedance(&self, w: f64) -> Complex64 {
                self.0.impedance(w)
            }
            fn center_omega(&self) -> f64 {
                self.0.center_omega()
            }
        }
        let t = tank();
        let w = Wrap(t);
        for &phi in &[-0.9, -0.2, 0.3, 1.0] {
            let wa = t.omega_for_phase(phi).unwrap();
            let wd = w.omega_for_phase(phi).unwrap();
            assert!(((wa - wd) / wa).abs() < 1e-10, "phi = {phi}: {wa} vs {wd}");
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ParallelRlc::new(0.0, 1e-6, 1e-9).is_err());
        assert!(ParallelRlc::new(1e3, -1e-6, 1e-9).is_err());
        assert!(ParallelRlc::new(1e3, 1e-6, f64::NAN).is_err());
    }

    #[test]
    fn tabulated_tank_reproduces_analytic_tank() {
        let t = tank();
        let fc = t.center_frequency_hz();
        let freqs: Vec<f64> = (0..401)
            .map(|k| fc * (0.7 + 0.6 * k as f64 / 400.0))
            .collect();
        let z: Vec<Complex64> = freqs
            .iter()
            .map(|f| t.impedance(f * std::f64::consts::TAU))
            .collect();
        let tab = TabulatedTank::from_samples(freqs, z).unwrap();
        assert!(((tab.center_omega() - t.center_omega()) / t.center_omega()).abs() < 1e-6);
        assert!((tab.peak_resistance() - 1000.0).abs() < 0.5);
        for &x in &[0.8, 0.95, 1.0, 1.05, 1.2] {
            let w = t.center_omega() * x;
            let za = t.impedance(w);
            let zt = tab.impedance(w);
            assert!((za - zt).abs() < 2.0, "x = {x}: {za:?} vs {zt:?}");
        }
        // The generic inverse works on the tabulated phase too.
        for &phi in &[-0.4, 0.25] {
            let w = tab.omega_for_phase(phi).unwrap();
            assert!((tab.phase(w) - phi).abs() < 1e-9);
        }
    }

    #[test]
    fn tabulated_tank_validates_inputs() {
        assert!(TabulatedTank::from_samples(vec![1.0, 2.0], vec![Complex64::ONE; 2]).is_err());
        assert!(TabulatedTank::from_samples(vec![1.0, 2.0, 3.0], vec![Complex64::ONE; 2]).is_err());
        // Peak on the edge: monotone magnitude data.
        let freqs: Vec<f64> = (1..=6).map(|k| k as f64).collect();
        let z: Vec<Complex64> = freqs.iter().map(|f| Complex64::new(*f, 0.0)).collect();
        assert!(TabulatedTank::from_samples(freqs, z).is_err());
    }

    #[test]
    fn tabulated_tank_rejects_non_finite_samples() {
        let freqs: Vec<f64> = (1..=7).map(|k| k as f64).collect();
        let peaked = |f: f64| Complex64::new(10.0 - (f - 4.0) * (f - 4.0), 0.0);
        // Healthy peaked data is accepted…
        let z: Vec<Complex64> = freqs.iter().map(|f| peaked(*f)).collect();
        assert!(TabulatedTank::from_samples(freqs.clone(), z.clone()).is_ok());
        // …but one NaN frequency or one non-finite impedance poisons it.
        let mut bad_f = freqs.clone();
        bad_f[3] = f64::NAN;
        assert!(matches!(
            TabulatedTank::from_samples(bad_f, z.clone()),
            Err(ShilError::InvalidParameter(_))
        ));
        let mut bad_z = z;
        bad_z[2] = Complex64::new(f64::INFINITY, 0.0);
        assert!(matches!(
            TabulatedTank::from_samples(freqs, bad_z),
            Err(ShilError::InvalidParameter(_))
        ));
    }

    #[test]
    fn omega_for_phase_rejects_nan() {
        let t = tank();
        assert!(t.omega_for_phase(f64::NAN).is_err());
        // Through the trait default too.
        struct Wrap(ParallelRlc);
        impl Tank for Wrap {
            fn impedance(&self, w: f64) -> Complex64 {
                self.0.impedance(w)
            }
            fn center_omega(&self) -> f64 {
                self.0.center_omega()
            }
        }
        assert!(Wrap(t).omega_for_phase(f64::NAN).is_err());
    }

    #[test]
    fn tank_trait_object_and_reference() {
        let t = tank();
        let r: &dyn Tank = &t;
        assert!((r.peak_resistance() - 1000.0).abs() < 1e-9);
        let rr = &t;
        assert!((Tank::phase(&rr, t.center_omega())).abs() < 1e-12);
    }
}
