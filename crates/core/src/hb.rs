//! Multi-harmonic steady-state oscillator analysis (harmonic balance).
//!
//! The describing-function method of §II keeps only the fundamental and
//! predicts oscillation exactly at the tank center frequency. Retaining `K`
//! harmonics turns the loop equation into the harmonic-balance system
//!
//! ```text
//! V_k + Z(jkω)·I_k(v) = 0,   k = 1..=K,
//! ```
//!
//! where `I_k` are the Fourier coefficients of `f(v(t))` and both the
//! harmonic phasors `V_k` **and the frequency ω** are unknowns (the phase
//! reference is fixed by `Im V₁ = 0`). Solving this recovers two effects
//! the single-harmonic theory drops:
//!
//! - the **Groszkowski frequency shift**: harmonic currents circulating in
//!   the reactive tank detune the oscillation below `ω_c`, and
//! - waveform distortion (the higher-harmonic content of the output).
//!
//! This module is the reproduction's precision cross-check: it explains
//! quantitatively why transient simulations of the paper's oscillators run
//! a fraction of a percent below the tank center frequency while the
//! describing-function prediction (and the paper) place them exactly at
//! `f_c` — see the `abl_groszkowski` experiment.

use shil_numerics::newton::{newton_system, NewtonOptions};
use shil_numerics::quad::TwiddleTable;
use shil_numerics::Complex64;

use crate::describing::{natural_oscillation, NaturalOptions};
use crate::error::ShilError;
use crate::nonlinearity::Nonlinearity;
use crate::tank::Tank;

/// Options for [`solve_oscillator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbOptions {
    /// Number of harmonics retained (`K ≥ 1`; `K = 1` reduces to the
    /// describing function plus the frequency unknown).
    pub harmonics: usize,
    /// Samples per period for the Fourier integrals (should comfortably
    /// exceed `2K`).
    pub samples: usize,
    /// Newton options for the balance solve.
    pub newton: NewtonOptions,
}

impl Default for HbOptions {
    fn default() -> Self {
        HbOptions {
            harmonics: 7,
            samples: 512,
            newton: NewtonOptions {
                tol_residual: 1e-12,
                max_iter: 120,
                ..NewtonOptions::default()
            },
        }
    }
}

/// A converged harmonic-balance steady state.
#[derive(Debug, Clone, PartialEq)]
pub struct HbSolution {
    /// Oscillation frequency (hertz) — *below* the tank center by the
    /// Groszkowski shift.
    pub frequency_hz: f64,
    /// Harmonic voltage phasors `V_1..=V_K` (`v(t) = Σ 2·Re[V_k e^{jkωt}]`;
    /// `V_1` is real by the phase convention).
    pub harmonics: Vec<Complex64>,
    /// Peak value of the reconstructed waveform over one period.
    pub peak_amplitude: f64,
    /// Total harmonic distortion `√(Σ_{k≥2}|V_k|²)/|V_1|`.
    pub thd: f64,
}

impl HbSolution {
    /// Fundamental amplitude `2|V₁|` (comparable to the describing-function
    /// `A`).
    pub fn fundamental_amplitude(&self) -> f64 {
        2.0 * self.harmonics[0].abs()
    }

    /// Reconstructs the waveform at phase `θ ∈ [0, 2π)`.
    pub fn waveform(&self, theta: f64) -> f64 {
        self.harmonics
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * (*v * Complex64::from_polar(1.0, (i + 1) as f64 * theta)).re)
            .sum()
    }

    /// The relative Groszkowski shift `(f_osc − f_c)/f_c` against a given
    /// tank (negative: the oscillator runs below center).
    pub fn groszkowski_shift<T: Tank + ?Sized>(&self, tank: &T) -> f64 {
        let fc = tank.center_frequency_hz();
        (self.frequency_hz - fc) / fc
    }
}

/// Solves the free-running oscillator steady state with `K` harmonics.
///
/// The unknown vector is `[ω, Re V₁, (Re V₂, Im V₂), …, (Re V_K, Im V_K)]`
/// (the fundamental's imaginary part is pinned to zero as the phase
/// reference), seeded from the describing-function solution.
///
/// # Errors
///
/// - [`ShilError::NoOscillation`] if the describing-function seed finds no
///   stable oscillation.
/// - [`ShilError::InvalidParameter`] for `harmonics == 0` or too few
///   samples.
/// - [`ShilError::Numerics`] if the Newton solve fails to converge.
pub fn solve_oscillator<N: Nonlinearity + ?Sized, T: Tank + ?Sized>(
    nonlinearity: &N,
    tank: &T,
    opts: &HbOptions,
) -> Result<HbSolution, ShilError> {
    let k_max = opts.harmonics;
    if k_max == 0 {
        return Err(ShilError::InvalidParameter(
            "harmonic balance needs at least one harmonic".into(),
        ));
    }
    if opts.samples < 4 * (k_max + 1) {
        return Err(ShilError::InvalidParameter(format!(
            "{} samples cannot resolve {} harmonics",
            opts.samples, k_max
        )));
    }

    // Seed: describing-function amplitude at the tank center.
    let seed = natural_oscillation(nonlinearity, tank, &NaturalOptions::default())?;
    let w0 = tank.center_omega();

    // Unknowns: x[0] = ω/ω_c (normalized), x[1] = Re V₁ (volts),
    // x[2k], x[2k+1] = Re/Im V_{k+1} for k ≥ 1.
    let n_unknowns = 1 + 1 + 2 * (k_max - 1);
    let mut x0 = vec![0.0; n_unknowns];
    x0[0] = 1.0;
    x0[1] = seed.amplitude / 2.0;

    // One twiddle table serves both directions of every residual
    // evaluation: synthesis of the trial waveform on the sample grid
    // (`v(θ_i) = Σ_k 2[Re V_k cos kθ_i − Im V_k sin kθ_i]`) and analysis of
    // the resulting current (`I_k` for all k from one buffer). The old path
    // re-evaluated the K-term waveform once per extracted harmonic and paid
    // a `sin_cos` per sample per term — O(K²·samples) transcendentals per
    // residual; this is zero.
    let twiddle = TwiddleTable::new(opts.samples, k_max);
    let mut buf = vec![0.0; opts.samples];
    let residual = |x: &[f64], r: &mut [f64]| {
        let omega = x[0] * w0;
        let mut v = vec![Complex64::ZERO; k_max];
        v[0] = Complex64::new(x[1], 0.0);
        for k in 1..k_max {
            v[k] = Complex64::new(x[2 * k], x[2 * k + 1]);
        }
        // Synthesize the waveform, then overwrite the buffer with the
        // nonlinearity's current on the same grid.
        buf.fill(0.0);
        for (i, vk) in v.iter().enumerate() {
            let cos = twiddle.cos_row(i + 1);
            let sin = twiddle.sin_row(i + 1);
            for (j, b) in buf.iter_mut().enumerate() {
                *b += 2.0 * (vk.re * cos[j] - vk.im * sin[j]);
            }
        }
        for b in buf.iter_mut() {
            *b = nonlinearity.current(*b);
        }
        // Balance V_k + Z(jkω)·I_k = 0. Scale rows to volts.
        let mut idx = 0;
        for k in 1..=k_max {
            let ik = twiddle.coefficient(&buf, k);
            let z = tank.impedance(k as f64 * omega);
            let res = v[k - 1] + z * ik;
            r[idx] = res.re;
            r[idx + 1] = res.im;
            idx += 2;
        }
    };

    let sol = newton_system(residual, &x0, &opts.newton)?;

    let omega = sol[0] * w0;
    let mut harmonics = vec![Complex64::ZERO; k_max];
    harmonics[0] = Complex64::new(sol[1], 0.0);
    for k in 1..k_max {
        harmonics[k] = Complex64::new(sol[2 * k], sol[2 * k + 1]);
    }
    // Peak of the reconstructed waveform.
    let mut peak = 0.0f64;
    for i in 0..1024 {
        let theta = std::f64::consts::TAU * i as f64 / 1024.0;
        let mut acc = 0.0;
        for (k, vk) in harmonics.iter().enumerate() {
            acc += 2.0 * (*vk * Complex64::from_polar(1.0, (k + 1) as f64 * theta)).re;
        }
        peak = peak.max(acc.abs());
    }
    let fund = harmonics[0].abs();
    let higher: f64 = harmonics[1..].iter().map(|v| v.norm_sqr()).sum();
    Ok(HbSolution {
        frequency_hz: omega / std::f64::consts::TAU,
        harmonics,
        peak_amplitude: peak,
        thd: higher.sqrt() / fund,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonlinearity::{NegativeTanh, Polynomial};
    use crate::tank::ParallelRlc;

    fn tank() -> ParallelRlc {
        ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap()
    }

    #[test]
    fn hb_matches_describing_function_for_weak_nonlinearity() {
        // A barely-supercritical van der Pol stays nearly sinusoidal: HB
        // with 5 harmonics must agree with the DF amplitude to < 0.1 % and
        // show negligible frequency shift.
        let f = Polynomial::van_der_pol(1.2e-3, 4e-4).unwrap();
        let t = tank();
        let df = natural_oscillation(&f, &t, &NaturalOptions::default()).unwrap();
        let hb = solve_oscillator(&f, &t, &HbOptions::default()).unwrap();
        assert!(
            (hb.fundamental_amplitude() - df.amplitude).abs() / df.amplitude < 1e-3,
            "HB {} vs DF {}",
            hb.fundamental_amplitude(),
            df.amplitude
        );
        assert!(hb.groszkowski_shift(&t).abs() < 1e-4);
        assert!(hb.thd < 0.02, "thd = {}", hb.thd);
    }

    #[test]
    fn hb_predicts_negative_groszkowski_shift_for_hard_limiting() {
        // The strongly saturated tanh oscillator distorts hard; the
        // harmonic currents must pull the frequency *below* f_c.
        let f = NegativeTanh::new(1e-3, 20.0);
        let t = tank();
        let hb = solve_oscillator(&f, &t, &HbOptions::default()).unwrap();
        let shift = hb.groszkowski_shift(&t);
        assert!(shift < 0.0, "shift = {shift}");
        assert!(shift > -2e-3, "implausibly large shift {shift}");
        // The high-Q tank filters the (heavily distorted) current, so the
        // *voltage* THD stays small — but clearly above the weak-nonlinearity
        // case.
        assert!(
            hb.thd > 2e-3,
            "hard limiter should distort, thd = {}",
            hb.thd
        );
        // Odd nonlinearity: even harmonics vanish.
        assert!(hb.harmonics[1].abs() < 1e-9 * hb.harmonics[0].abs());
        assert!(hb.harmonics[2].abs() > 1e-3 * hb.harmonics[0].abs());
    }

    #[test]
    fn hb_residual_is_satisfied_at_the_solution() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let t = tank();
        let opts = HbOptions::default();
        let hb = solve_oscillator(&f, &t, &opts).unwrap();
        // Re-evaluate the balance equations directly, through the
        // independent `waveform` reconstruction rather than the solver's
        // batched synthesis.
        let omega = hb.frequency_hz * std::f64::consts::TAU;
        let mut samples = Vec::new();
        shil_numerics::quad::sample_periodic(
            |theta| f.current(hb.waveform(theta)),
            opts.samples,
            &mut samples,
        );
        for (k, vk) in hb.harmonics.iter().enumerate() {
            let ik = shil_numerics::quad::buffer_coefficient(&samples, (k + 1) as i32);
            let z = t.impedance((k + 1) as f64 * omega);
            let res = *vk + z * ik;
            assert!(
                res.abs() < 1e-9,
                "harmonic {}: residual {}",
                k + 1,
                res.abs()
            );
        }
    }

    #[test]
    fn more_harmonics_refine_the_waveform_peak() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let t = tank();
        let hb3 = solve_oscillator(
            &f,
            &t,
            &HbOptions {
                harmonics: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let hb9 = solve_oscillator(
            &f,
            &t,
            &HbOptions {
                harmonics: 9,
                ..Default::default()
            },
        )
        .unwrap();
        // Frequencies converge (shift magnitude stabilizes).
        assert!(
            (hb3.frequency_hz - hb9.frequency_hz).abs() / hb9.frequency_hz < 2e-4,
            "{} vs {}",
            hb3.frequency_hz,
            hb9.frequency_hz
        );
        // The K = 9 solution resolves more distortion detail.
        assert!(hb9.harmonics.len() == 9 && hb3.harmonics.len() == 3);
        assert!(hb9.thd >= hb3.thd - 1e-6);
    }

    #[test]
    fn hb_validates_options() {
        let f = NegativeTanh::new(1e-3, 20.0);
        let t = tank();
        assert!(solve_oscillator(
            &f,
            &t,
            &HbOptions {
                harmonics: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(solve_oscillator(
            &f,
            &t,
            &HbOptions {
                harmonics: 64,
                samples: 64,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn subcritical_oscillator_propagates_no_oscillation() {
        let f = NegativeTanh::new(1e-3, 0.5); // loop gain 0.5
        let t = tank();
        assert!(matches!(
            solve_oscillator(&f, &t, &HbOptions::default()),
            Err(ShilError::NoOscillation { .. })
        ));
    }
}
