//! Injection pulling: quasi-periodic beating just outside the lock range.
//!
//! The paper's introduction cites injection pulling as the sibling
//! phenomenon of locking. Inside the lock range the relative phase
//! `φ = θ_V − n·θ_A` settles; outside it `φ` slips continuously and the
//! output becomes quasi-periodic with a characteristic beat. The slip
//! dynamics follow from the same pre-characterized curves as the lock
//! analysis:
//!
//! 1. Quasi-statically, the amplitude rides the injection-invariant
//!    `T_f(A, φ) = 1` curve: `A = A*(φ)`.
//! 2. The oscillator detunes itself so the loop phase closes: its
//!    instantaneous frequency `ω(φ)` satisfies
//!    `φ_d(ω) = −∠−I₁(A*(φ), φ)`.
//! 3. The relative phase then slips at `dφ/dt = n·(ω_i − ω(φ))` where
//!    `ω_i = 2π·f_inj/n`.
//!
//! If `dφ/dt` has a zero the oscillator locks (this reproduces the lock
//! range); otherwise the beat frequency is `1/T` with
//! `T = ∮ dφ/|dφ/dt|` — the quantity [`pulling_state`] returns, validated
//! against transient simulation in the `ext_pulling` experiment.

use crate::error::ShilError;
use crate::harmonics::{angle_neg_i1, t_f_injected};
use crate::nonlinearity::Nonlinearity;
use crate::shil::ShilAnalysis;
use crate::tank::Tank;
use shil_numerics::roots::brent;

/// Result of a pulling analysis at one injection frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PullingState {
    /// The phase dynamics have a fixed point: the oscillator locks.
    Locked,
    /// The phase slips: quasi-periodic output with the given beat.
    Pulled {
        /// Slip (beat) frequency in hertz — the spacing of the sidebands
        /// around the quasi-locked spectrum.
        beat_hz: f64,
        /// Mean slip direction: `+1` when the oscillator trails the
        /// injection (injection above the range), `−1` below.
        direction: f64,
    },
}

/// Quasi-static pulling analysis at injection frequency `f_injection_hz`.
///
/// Uses the prepared [`ShilAnalysis`] for its nonlinearity/tank/injection
/// configuration. The phase circle is discretized into `steps` points
/// (defaults are fine at 256; the integrand is smooth).
///
/// # Errors
///
/// - [`ShilError::InvalidParameter`] for non-positive frequency or a
///   detuning so large the required tank phase leaves `(−π/2, π/2)`.
/// - Root-finding failures from the amplitude solve.
pub fn pulling_state<N: Nonlinearity + Sync + ?Sized, T: Tank + Sync + ?Sized>(
    analysis: &ShilAnalysis<'_, N, T>,
    nonlinearity: &N,
    tank: &T,
    f_injection_hz: f64,
    steps: usize,
) -> Result<PullingState, ShilError> {
    // NaN-rejecting positivity check.
    if f_injection_hz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(ShilError::InvalidParameter(format!(
            "injection frequency must be positive, got {f_injection_hz}"
        )));
    }
    let n = analysis.order();
    let vi = analysis.injection();
    let natural = analysis.natural();
    let opts = crate::harmonics::HarmonicOptions::default();
    let omega_i = std::f64::consts::TAU * f_injection_hz / n as f64;

    // Walk the phase circle, computing the quasi-static slip rate.
    let mut rates = Vec::with_capacity(steps);
    let a_lo = 0.2 * natural.amplitude;
    let a_hi = 1.5 * natural.amplitude;
    let r = tank.peak_resistance();
    for k in 0..steps {
        let phi = std::f64::consts::TAU * k as f64 / steps as f64;
        // Amplitude on the T_f = 1 curve at this phase.
        let g = |a: f64| t_f_injected(nonlinearity, r, a, vi, phi, n, &opts) - 1.0;
        let a_star = brent(g, a_lo, a_hi, 1e-12 * a_hi, 200)?;
        // Oscillator's self-consistent instantaneous frequency.
        let ang = angle_neg_i1(nonlinearity, a_star, vi, phi, n, &opts);
        let omega_phi = tank.omega_for_phase(-ang)?;
        rates.push(n as f64 * (omega_i - omega_phi));
    }

    let (min_rate, max_rate) = rates
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if min_rate <= 0.0 && max_rate >= 0.0 {
        return Ok(PullingState::Locked);
    }
    // Beat period: T = ∮ dφ / |dφ/dt| (trapezoid over the periodic circle).
    let dphi = std::f64::consts::TAU / steps as f64;
    let period: f64 = rates.iter().map(|v| dphi / v.abs()).sum();
    Ok(PullingState::Pulled {
        beat_hz: 1.0 / period,
        direction: if min_rate > 0.0 { 1.0 } else { -1.0 },
    })
}

/// Classical Adler beat formula `f_beat = √(Δf² − Δf_L²)` for a detuning
/// `Δf` beyond a lock half-width `Δf_L` (both in hertz) — the weak-injection
/// asymptote of [`pulling_state`].
pub fn adler_beat(detuning_hz: f64, lock_half_width_hz: f64) -> Option<f64> {
    let d2 = detuning_hz * detuning_hz - lock_half_width_hz * lock_half_width_hz;
    if d2 <= 0.0 {
        None
    } else {
        Some(d2.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonlinearity::NegativeTanh;
    use crate::shil::ShilOptions;
    use crate::tank::ParallelRlc;

    fn setup() -> (NegativeTanh, ParallelRlc) {
        (
            NegativeTanh::new(1e-3, 20.0),
            ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap(),
        )
    }

    #[test]
    fn inside_the_lock_range_reports_locked() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, ShilOptions::default()).unwrap();
        let lr = an.lock_range().unwrap();
        let mid = 0.5 * (lr.lower_injection_hz + lr.upper_injection_hz);
        assert_eq!(
            pulling_state(&an, &f, &t, mid, 256).unwrap(),
            PullingState::Locked
        );
        // Also at 90 % of the upper edge.
        let near = mid + 0.4 * lr.injection_span_hz;
        assert_eq!(
            pulling_state(&an, &f, &t, near, 256).unwrap(),
            PullingState::Locked
        );
    }

    #[test]
    fn beat_appears_outside_and_matches_adler_shape() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, ShilOptions::default()).unwrap();
        let lr = an.lock_range().unwrap();
        let center = 0.5 * (lr.lower_injection_hz + lr.upper_injection_hz);
        let half = 0.5 * lr.injection_span_hz;

        for &excess in &[1.1, 1.5, 3.0, 10.0] {
            let f_inj = center + excess * half;
            let state = pulling_state(&an, &f, &t, f_inj, 512).unwrap();
            let PullingState::Pulled { beat_hz, direction } = state else {
                panic!("expected pulling at {excess}x the half width");
            };
            assert!(direction > 0.0);
            let adler = adler_beat(excess * half, half).expect("outside");
            // The quasi-static beat must track the Adler square-root law
            // within a few percent (the curves are not exactly sinusoidal).
            assert!(
                (beat_hz - adler).abs() / adler < 0.1,
                "excess {excess}: beat {beat_hz} vs adler {adler}"
            );
        }
    }

    #[test]
    fn beat_direction_flips_below_the_range() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, ShilOptions::default()).unwrap();
        let lr = an.lock_range().unwrap();
        let f_inj = lr.lower_injection_hz - lr.injection_span_hz;
        match pulling_state(&an, &f, &t, f_inj, 256).unwrap() {
            PullingState::Pulled { direction, .. } => assert!(direction < 0.0),
            other => panic!("expected pulling, got {other:?}"),
        }
    }

    #[test]
    fn far_detuning_beat_approaches_raw_offset() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, ShilOptions::default()).unwrap();
        let lr = an.lock_range().unwrap();
        let center = 0.5 * (lr.lower_injection_hz + lr.upper_injection_hz);
        let offset = 20.0 * lr.injection_span_hz;
        match pulling_state(&an, &f, &t, center + offset, 256).unwrap() {
            PullingState::Pulled { beat_hz, .. } => {
                assert!((beat_hz - offset).abs() / offset < 0.05, "beat {beat_hz}");
            }
            other => panic!("expected pulling, got {other:?}"),
        }
    }

    #[test]
    fn adler_beat_edge_cases() {
        assert_eq!(adler_beat(1.0, 2.0), None);
        assert_eq!(adler_beat(2.0, 2.0), None);
        let b = adler_beat(5.0, 3.0).unwrap();
        assert!((b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_frequency_is_rejected() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, ShilOptions::default()).unwrap();
        assert!(pulling_state(&an, &f, &t, -1.0, 64).is_err());
    }
}
