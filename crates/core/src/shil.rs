//! Sub-harmonic injection locking: the paper's graphical procedure (§III-C)
//! as an executable algorithm.
//!
//! # The procedure
//!
//! For an injection phasor `V_i` at `n·ω_i` the lock conditions are
//! (paper eqs. 3–4)
//!
//! ```text
//! T_f(A, φ)  = −R·I₁ₓ(A, V_i, φ) / (A/2) = 1
//! ∠−I₁(A, φ) = −φ_d(ω_i)
//! ```
//!
//! Both left-hand sides are pre-characterized on a rectangular `(φ, A)`
//! grid. The level set `C_{T_f,1}` is extracted once with marching squares
//! — it does **not** depend on the injection frequency, the invariance the
//! paper exploits for cheap lock-range sweeps. For a given `ω_i`, solutions
//! are the intersections of `C_{T_f,1}` with the isoline
//! `C_{∠−I₁, −φ_d(ω_i)}`; each intersection is polished by a 2×2 Newton
//! solve on the exact residuals and classified as stable or unstable from
//! the local restoring-force field (§VI-B3). The lock range is the largest
//! `|φ_d|` for which a stable intersection survives (§III-C, Fig. 10),
//! found by bisection; the tank phase inverse maps it back to frequency.
//!
//! Every intermediate object — grids, level sets, isolines, intersections —
//! is exposed through [`GraphicalCurves`] so the figures of the paper can
//! be re-rendered from this crate's output.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use shil_numerics::contour::{marching_squares, polyline_intersections, Point, Polyline};
use shil_numerics::fallback::{newton_with_restarts, FallbackOptions};
use shil_numerics::newton::NewtonOptions;
use shil_numerics::{wrap_angle, Grid2};
use shil_runtime::Budget;

use crate::cache::{self, NaturalKey, PrecharCache, PrecharKey, Precharacterization};
use crate::describing::{natural_oscillation, NaturalOptions, NaturalOscillation};
use crate::error::ShilError;
use crate::harmonics::{HarmonicOptions, HarmonicTable};
use crate::nonlinearity::Nonlinearity;
use crate::tank::Tank;

/// Options for the SHIL analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShilOptions {
    /// Grid resolution along the phase axis `φ ∈ [0, 2π]`.
    pub phase_points: usize,
    /// Grid resolution along the amplitude axis.
    pub amplitude_points: usize,
    /// Lower amplitude bound as a fraction of the natural amplitude.
    pub a_min_factor: f64,
    /// Upper amplitude bound as a fraction of the natural amplitude.
    pub a_max_factor: f64,
    /// Harmonic-integral sampling.
    pub harmonics: HarmonicOptions,
    /// Bisection iterations for the lock-range boundary.
    pub lock_range_iters: usize,
    /// Coarse scan steps when locating the lock-range boundary.
    pub lock_range_scan: usize,
    /// Natural-oscillation solve options (used for grid scaling).
    pub natural: NaturalOptions,
    /// Worker threads for the grid fill and related fan-out work:
    /// `None` = one per available core, `Some(1)` = fully serial,
    /// `Some(k)` = exactly `k`. Results are **bit-for-bit identical**
    /// regardless of the setting (rows are partitioned, never reduced
    /// across threads).
    pub parallelism: Option<usize>,
}

impl Default for ShilOptions {
    fn default() -> Self {
        // The graphical pass only needs to *locate* intersections — the
        // Newton polish against the exact residuals supplies the precision —
        // so a moderate grid loses nothing (verified by the A02 ablation).
        ShilOptions {
            phase_points: 161,
            amplitude_points: 101,
            a_min_factor: 0.05,
            a_max_factor: 1.35,
            harmonics: HarmonicOptions { samples: 256 },
            lock_range_iters: 36,
            lock_range_scan: 16,
            natural: NaturalOptions::default(),
            parallelism: None,
        }
    }
}

/// Resolves a [`ShilOptions::parallelism`] request to a concrete thread
/// count (`None` → available cores, floor of 1).
///
/// Delegates to [`shil_numerics::parallel::effective_parallelism`] so the
/// grid fill and the circuit-level sweep engine share one policy;
/// re-exported here to keep the historical path alive.
pub fn effective_parallelism(requested: Option<usize>) -> usize {
    shil_numerics::parallel::effective_parallelism(requested)
}

/// Digest of the options that influence a natural-oscillation solve.
fn natural_options_fingerprint(opts: &NaturalOptions) -> u64 {
    cache::fingerprint(
        "natural-options",
        &[
            opts.a_max.unwrap_or(-1.0),
            opts.scan_points as f64,
            opts.harmonics.samples as f64,
        ],
    )
}

/// Digest of the options that influence the grid pre-characterization.
/// Excludes the lock-range iteration counts (query-time knobs) and
/// `parallelism` (the fill is bit-identical at any thread count).
fn grid_options_fingerprint(opts: &ShilOptions) -> u64 {
    cache::combine(
        cache::fingerprint(
            "grid-options",
            &[
                opts.phase_points as f64,
                opts.amplitude_points as f64,
                opts.a_min_factor,
                opts.a_max_factor,
                opts.harmonics.samples as f64,
            ],
        ),
        natural_options_fingerprint(&opts.natural),
    )
}

/// Fills the `T_f(φ, A)` and `∠−I₁(φ, A)` grids for the given axes using
/// `threads` workers.
///
/// This is the hot loop of [`ShilAnalysis::new`], exposed so sweeps and
/// benchmarks can drive it directly. Each grid cell costs one batched
/// two-tone sampling pass of `table` (no trigonometric calls; see
/// [`HarmonicTable`]). Rows are partitioned into disjoint contiguous chunks,
/// one scoped thread per chunk, every cell computed by the same expressions
/// in the same order — so serial (`threads == 1`) and parallel fills return
/// **bit-for-bit identical** grids.
///
/// # Errors
///
/// Propagates grid-construction failures (non-monotonic axes).
pub fn precharacterize<N: Nonlinearity + Sync + ?Sized>(
    nonlinearity: &N,
    r: f64,
    vi: f64,
    phis: &[f64],
    amps: &[f64],
    table: &HarmonicTable,
    threads: usize,
) -> Result<(Grid2, Grid2), ShilError> {
    precharacterize_budgeted(
        nonlinearity,
        r,
        vi,
        phis,
        amps,
        table,
        threads,
        &Budget::unlimited(),
    )
}

/// [`precharacterize`] under an execution [`Budget`].
///
/// Every worker checks the budget at each row boundary, so a deadline or a
/// cancelled token stops the fill within one row per worker. A fill that
/// ran to completion is returned even if the budget trips on the final
/// check — completion wins the race.
///
/// # Errors
///
/// [`ShilError::Numerics`] with `NumericsError::Cancelled` once the budget
/// trips (the partial grid is discarded: a grid with unfilled rows has no
/// meaningful "best iterate"), plus every failure mode of
/// [`precharacterize`].
#[allow(clippy::too_many_arguments)]
pub fn precharacterize_budgeted<N: Nonlinearity + Sync + ?Sized>(
    nonlinearity: &N,
    r: f64,
    vi: f64,
    phis: &[f64],
    amps: &[f64],
    table: &HarmonicTable,
    threads: usize,
    budget: &Budget,
) -> Result<(Grid2, Grid2), ShilError> {
    use std::sync::atomic::{AtomicBool, Ordering};

    let cancelled = || {
        shil_observe::incr("shil_core_prechar_cancellations_total");
        ShilError::Numerics(shil_numerics::NumericsError::Cancelled {
            best_iterate: Vec::new(),
            elapsed: budget.elapsed(),
        })
    };
    // Prompt cancellation: a pre-tripped budget computes no cell.
    if budget.cancelled().is_some() {
        return Err(cancelled());
    }
    let nx = phis.len();
    let ny = amps.len();
    let _fill_span = shil_observe::span("shil_core_prechar_fill");
    shil_observe::counter_add("shil_core_prechar_cells_total", (nx * ny) as u64);
    let mut tf_data = vec![0.0; nx * ny];
    let mut angle_data = vec![0.0; nx * ny];
    let aborted = AtomicBool::new(false);

    // `j0` is the absolute index of the first row in the chunk; each worker
    // owns a disjoint &mut window of both data vectors.
    let fill = |j0: usize, tf_rows: &mut [f64], angle_rows: &mut [f64]| {
        let mut buf = table.scratch();
        for (dj, (tf_row, angle_row)) in tf_rows
            .chunks_mut(nx)
            .zip(angle_rows.chunks_mut(nx))
            .enumerate()
        {
            // Row-boundary budget check; `aborted` (not the budget itself)
            // is the authoritative flag, so a fill whose last row finishes
            // just as the deadline passes still counts as complete.
            if !budget.is_unlimited() && budget.cancelled().is_some() {
                aborted.store(true, Ordering::Relaxed);
                return;
            }
            let a = amps[j0 + dj];
            for (i, &phi) in phis.iter().enumerate() {
                let i1 = table.i1(nonlinearity, a, vi, phi, &mut buf);
                tf_row[i] = -r * i1.re / (a / 2.0);
                angle_row[i] = (-i1).arg();
            }
        }
    };

    let threads = threads.clamp(1, ny.max(1));
    if threads == 1 {
        fill(0, &mut tf_data, &mut angle_data);
    } else {
        let rows_per = ny.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk, (tf_chunk, angle_chunk)) in tf_data
                .chunks_mut(rows_per * nx)
                .zip(angle_data.chunks_mut(rows_per * nx))
                .enumerate()
            {
                let fill = &fill;
                scope.spawn(move || fill(chunk * rows_per, tf_chunk, angle_chunk));
            }
        });
    }

    if aborted.load(std::sync::atomic::Ordering::Relaxed) {
        return Err(cancelled());
    }
    let tf_grid = Grid2::from_data(phis.to_vec(), amps.to_vec(), tf_data)?;
    let angle_grid = Grid2::from_data(phis.to_vec(), amps.to_vec(), angle_data)?;
    Ok((tf_grid, angle_grid))
}

/// One lock solution `(φ_s, A_s)` of the SHIL equations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShilSolution {
    /// Oscillation amplitude `A_s` (volts).
    pub amplitude: f64,
    /// Phase `φ_s` of the injection relative to the oscillation fundamental
    /// (radians, wrapped to `(−π, π]`).
    pub phase: f64,
    /// Stability from the restoring-force analysis (§VI-B3).
    pub stable: bool,
    /// Determinant of the perturbation Jacobian (positive for
    /// non-saddle equilibria).
    pub jacobian_det: f64,
    /// Trace of the perturbation Jacobian (negative for stable equilibria).
    pub jacobian_trace: f64,
    /// Whether an escalation fallback produced this solution.
    ///
    /// `true` means the Newton polish (and its restarts) failed and the
    /// coarse graphical intersection was accepted instead, or the stability
    /// classification hit non-finite derivatives — the numbers are grid-
    /// resolution accurate, not solver-tolerance accurate.
    pub degraded: bool,
}

/// The predicted lock range (paper Fig. 10 / Tables 1–2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockRange {
    /// Largest tank phase magnitude `|φ_d|` with a stable lock (radians).
    pub phi_d_max: f64,
    /// Lower oscillator lock limit (hertz, below `f_c`).
    pub lower_oscillator_hz: f64,
    /// Upper oscillator lock limit (hertz, above `f_c`).
    pub upper_oscillator_hz: f64,
    /// Lower injection lock limit `n·lower_oscillator_hz` (hertz).
    pub lower_injection_hz: f64,
    /// Upper injection lock limit `n·upper_oscillator_hz` (hertz).
    pub upper_injection_hz: f64,
    /// Injection lock-range width `Δf` (hertz).
    pub injection_span_hz: f64,
    /// Amplitude of the stable lock at center frequency (`φ_d = 0`).
    pub amplitude_at_center: f64,
    /// Whether any solution consulted while locating the boundary was
    /// itself degraded (see [`ShilSolution::degraded`]) — the range is then
    /// grid-resolution accurate rather than solver-tolerance accurate.
    pub degraded: bool,
}

/// The raw curves of the graphical procedure at one injection frequency —
/// everything needed to redraw Figs. 7/10/14/18.
#[derive(Debug, Clone)]
pub struct GraphicalCurves {
    /// The tank phase `−φ_d` used for the isoline.
    pub neg_phi_d: f64,
    /// The injection-invariant `C_{T_f,1}` level set (φ on x, A on y).
    pub tf_unity: Vec<Polyline>,
    /// The `∠−I₁ = −φ_d` isoline.
    pub angle_isoline: Vec<Polyline>,
    /// Intersections after Newton refinement, with stability.
    pub solutions: Vec<ShilSolution>,
}

/// A prepared SHIL analysis for one oscillator, sub-harmonic order and
/// injection strength.
///
/// Construction performs the full grid pre-characterization; all queries
/// afterwards (solutions at a frequency, lock range, plot curves) reuse it.
pub struct ShilAnalysis<'a, N: ?Sized, T: ?Sized> {
    nonlinearity: &'a N,
    tank: &'a T,
    n: u32,
    vi: f64,
    opts: ShilOptions,
    /// Grids, level set, natural solve and sampling tables — possibly
    /// shared with other analyses through a [`PrecharCache`].
    prechar: Arc<Precharacterization>,
    /// Resolved worker-thread count (from [`ShilOptions::parallelism`]).
    threads: usize,
    /// Memoized `∠−I₁` isolines keyed by the level's bit pattern; repeat
    /// queries at the same tank phase (bisections, figure sweeps) skip the
    /// marching-squares re-extraction.
    iso_cache: Mutex<HashMap<u64, Arc<Vec<Polyline>>>>,
}

impl<'a, N: Nonlinearity + Sync + ?Sized, T: Tank + Sync + ?Sized> ShilAnalysis<'a, N, T> {
    /// Pre-characterizes the oscillator for `n`-th sub-harmonic injection
    /// with phasor magnitude `vi` (the physical injection waveform is
    /// `2·vi·cos(nω_i t + φ)`).
    ///
    /// # Errors
    ///
    /// - [`ShilError::InvalidParameter`] for `n = 0` or `vi ≤ 0`.
    /// - [`ShilError::NoOscillation`] if the oscillator has no stable
    ///   natural oscillation (the grid is scaled from it).
    pub fn new(
        nonlinearity: &'a N,
        tank: &'a T,
        n: u32,
        vi: f64,
        opts: ShilOptions,
    ) -> Result<Self, ShilError> {
        Self::validate(n, vi, &opts)?;
        let natural = natural_oscillation(nonlinearity, tank, &opts.natural)?;
        let threads = effective_parallelism(opts.parallelism);
        let prechar = Arc::new(Self::build_prechar(
            nonlinearity,
            tank,
            natural,
            n,
            vi,
            &opts,
            threads,
        )?);
        Ok(ShilAnalysis {
            nonlinearity,
            tank,
            n,
            vi,
            opts,
            prechar,
            threads,
            iso_cache: Mutex::new(HashMap::new()),
        })
    }

    /// Like [`Self::new`], but serving the natural solve and the grid
    /// pre-characterization from `cache` when the oscillator's elements
    /// carry fingerprints (falling back to an uncached build otherwise).
    ///
    /// A sweep that constructs many analyses over the same oscillator —
    /// e.g. one per injection frequency, as the Tab. 1/Fig. 14 experiments
    /// do — pays for a single grid build; every further construction is a
    /// lookup.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::new`].
    pub fn new_cached(
        nonlinearity: &'a N,
        tank: &'a T,
        n: u32,
        vi: f64,
        opts: ShilOptions,
        cache: &PrecharCache,
    ) -> Result<Self, ShilError> {
        Self::validate(n, vi, &opts)?;
        let threads = effective_parallelism(opts.parallelism);
        let (nl_fp, tank_fp) = match (nonlinearity.fingerprint(), tank.fingerprint()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                cache.note_uncacheable();
                return Self::new(nonlinearity, tank, n, vi, opts);
            }
        };
        let natural_fp = natural_options_fingerprint(&opts.natural);
        let natural = cache.natural_or_insert(
            NaturalKey {
                nonlinearity: nl_fp,
                tank: tank_fp,
                options: natural_fp,
            },
            || natural_oscillation(nonlinearity, tank, &opts.natural),
        )?;
        let key = PrecharKey {
            nonlinearity: nl_fp,
            tank: tank_fp,
            n,
            vi_bits: vi.to_bits(),
            options: grid_options_fingerprint(&opts),
        };
        let prechar = cache.grid_or_insert(key, || {
            Self::build_prechar(nonlinearity, tank, natural, n, vi, &opts, threads)
        })?;
        Ok(ShilAnalysis {
            nonlinearity,
            tank,
            n,
            vi,
            opts,
            prechar,
            threads,
            iso_cache: Mutex::new(HashMap::new()),
        })
    }

    fn validate(n: u32, vi: f64, opts: &ShilOptions) -> Result<(), ShilError> {
        if n == 0 {
            return Err(ShilError::InvalidParameter(
                "sub-harmonic order n must be ≥ 1".into(),
            ));
        }
        if !(vi > 0.0 && vi.is_finite()) {
            return Err(ShilError::InvalidParameter(format!(
                "injection magnitude must be positive and finite, got {vi}"
            )));
        }
        if opts.phase_points < 2 || opts.amplitude_points < 2 {
            return Err(ShilError::InvalidParameter(format!(
                "grid needs at least 2 points per axis, got {}×{}",
                opts.phase_points, opts.amplitude_points
            )));
        }
        // NaN fails all of these comparisons, so non-finite factors are
        // rejected here instead of producing NaN grid axes downstream.
        if !(opts.a_min_factor > 0.0
            && opts.a_max_factor > opts.a_min_factor
            && opts.a_max_factor.is_finite())
        {
            return Err(ShilError::InvalidParameter(format!(
                "amplitude bounds must satisfy 0 < a_min_factor < a_max_factor < ∞, \
                 got [{}, {}]",
                opts.a_min_factor, opts.a_max_factor
            )));
        }
        if opts.harmonics.samples == 0 {
            return Err(ShilError::InvalidParameter(
                "harmonic sampling needs at least one sample".into(),
            ));
        }
        Ok(())
    }

    fn build_prechar(
        nonlinearity: &N,
        tank: &T,
        natural: NaturalOscillation,
        n: u32,
        vi: f64,
        opts: &ShilOptions,
        threads: usize,
    ) -> Result<Precharacterization, ShilError> {
        let r = tank.peak_resistance();
        let a_lo = opts.a_min_factor * natural.amplitude;
        let a_hi = opts.a_max_factor * natural.amplitude;
        let (nx, ny) = (opts.phase_points, opts.amplitude_points);

        // One batched sampling pass per grid point yields both fields.
        let phis: Vec<f64> = (0..nx)
            .map(|i| std::f64::consts::TAU * i as f64 / (nx - 1) as f64)
            .collect();
        let amps: Vec<f64> = (0..ny)
            .map(|j| a_lo + (a_hi - a_lo) * j as f64 / (ny - 1) as f64)
            .collect();
        let table = HarmonicTable::new(n, 1, &opts.harmonics);
        let (tf_grid, angle_grid) =
            precharacterize(nonlinearity, r, vi, &phis, &amps, &table, threads)?;
        // Non-finite nodes are tolerated — marching squares masks the cells
        // around them — but their count is kept so every downstream query
        // can flag its answers as degraded.
        let non_finite_cells = (0..ny)
            .flat_map(|j| (0..nx).map(move |i| (i, j)))
            .filter(|&(i, j)| {
                !tf_grid.value(i, j).is_finite() || !angle_grid.value(i, j).is_finite()
            })
            .count();
        if non_finite_cells == nx * ny {
            return Err(ShilError::InvalidParameter(
                "pre-characterization produced no finite grid values \
                 (nonlinearity non-finite over the whole (φ, A) plane)"
                    .into(),
            ));
        }
        let tf_unity = marching_squares(&tf_grid, 1.0)?;
        Ok(Precharacterization {
            natural,
            r,
            table,
            tf_grid,
            angle_grid,
            tf_unity,
            non_finite_cells,
        })
    }

    /// The natural oscillation the grids were scaled from.
    pub fn natural(&self) -> NaturalOscillation {
        self.prechar.natural
    }

    /// Sub-harmonic order `n`.
    pub fn order(&self) -> u32 {
        self.n
    }

    /// Injection phasor magnitude `V_i`.
    pub fn injection(&self) -> f64 {
        self.vi
    }

    /// The pre-characterized `T_f(φ, A)` grid (x = φ, y = A).
    pub fn tf_grid(&self) -> &Grid2 {
        &self.prechar.tf_grid
    }

    /// The pre-characterized `∠−I₁(φ, A)` grid, wrapped to `(−π, π]`.
    pub fn angle_grid(&self) -> &Grid2 {
        &self.prechar.angle_grid
    }

    /// The injection-frequency-invariant level set `C_{T_f,1}`.
    pub fn tf_unity_curve(&self) -> &[Polyline] {
        &self.prechar.tf_unity
    }

    /// Extracts the isoline `∠−I₁ = level` from the angle grid, masking the
    /// wrap-around branch cut. Memoized per level (sweeps and bisections
    /// revisit levels; the marching-squares pass runs once each).
    fn angle_isoline(&self, level: f64) -> Result<Arc<Vec<Polyline>>, ShilError> {
        let key = level.to_bits();
        if let Some(hit) = self
            .iso_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return Ok(Arc::clone(hit));
        }
        let angle_grid = &self.prechar.angle_grid;
        let nx = angle_grid.nx();
        let ny = angle_grid.ny();
        let mut data = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                let d = wrap_angle(angle_grid.value(i, j) - level);
                // Mask the half of the circle nearest the branch cut so
                // marching squares never sees the ±π jump.
                data.push(if d.abs() > std::f64::consts::FRAC_PI_2 {
                    f64::NAN
                } else {
                    d
                });
            }
        }
        let g = Grid2::from_data(angle_grid.xs().to_vec(), angle_grid.ys().to_vec(), data)?;
        let iso = Arc::new(marching_squares(&g, 0.0)?);
        Ok(Arc::clone(
            self.iso_cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entry(key)
                .or_insert(iso),
        ))
    }

    /// Exact residuals of the lock equations at `(φ, A)`, batched through
    /// the caller's scratch buffer.
    fn residuals_with(&self, phi: f64, a: f64, neg_phi_d: f64, buf: &mut Vec<f64>) -> (f64, f64) {
        let i1 = self
            .prechar
            .table
            .i1(self.nonlinearity, a, self.vi, phi, buf);
        let tf = -self.prechar.r * i1.re / (a / 2.0);
        let ang = wrap_angle((-i1).arg() - neg_phi_d);
        (tf - 1.0, ang)
    }

    /// Exact residuals of the lock equations at `(φ, A)`:
    /// `(T_f − 1, ∠−I₁ − (−φ_d))`. Both vanish at a lock solution — useful
    /// for validating refined solutions against the non-gridded equations.
    pub fn residuals(&self, phi: f64, a: f64, neg_phi_d: f64) -> (f64, f64) {
        let mut buf = self.prechar.table.scratch();
        self.residuals_with(phi, a, neg_phi_d, &mut buf)
    }

    /// Effective loop gain `T_F` (paper eq. 5) at `(φ, A)` for tank phase
    /// `φ_d` — the quantity whose excess over 1 drives amplitude growth.
    fn t_f_gain(&self, phi: f64, a: f64, phi_d: f64, buf: &mut Vec<f64>) -> f64 {
        let i1 = self
            .prechar
            .table
            .i1(self.nonlinearity, a, self.vi, phi, buf);
        self.prechar.r * i1.abs() * phi_d.cos().abs() / (a / 2.0)
    }

    /// Classifies the stability of a refined solution from the local
    /// restoring-force field (§VI-B3).
    ///
    /// Perturbation dynamics: `dA/dt ∝ (T_F − 1)·A` and
    /// `dφ/dt ∝ −(∠−I₁ + φ_d)`. The solution is stable iff the 2×2
    /// Jacobian of this field has positive determinant and negative trace.
    fn classify(&self, phi: f64, a: f64, phi_d: f64) -> (bool, f64, f64) {
        let ha = 1e-5 * self.prechar.natural.amplitude;
        let hp = 1e-5;
        let mut buf = self.prechar.table.scratch();
        let mut gain = |p: f64, aa: f64| self.t_f_gain(p, aa, phi_d, &mut buf) - 1.0;
        let dga = (gain(phi, a + ha) - gain(phi, a - ha)) / (2.0 * ha);
        let dgp = (gain(phi + hp, a) - gain(phi - hp, a)) / (2.0 * hp);
        let mut pha = |p: f64, aa: f64| {
            let i1 = self
                .prechar
                .table
                .i1(self.nonlinearity, aa, self.vi, p, &mut buf);
            wrap_angle((-i1).arg() + phi_d)
        };
        let dpa = (pha(phi, a + ha) - pha(phi, a - ha)) / (2.0 * ha);
        let dpp = (pha(phi + hp, a) - pha(phi - hp, a)) / (2.0 * hp);
        // J = [[∂Ȧ/∂A, ∂Ȧ/∂φ], [∂φ̇/∂A, ∂φ̇/∂φ]] with Ȧ = (T_F−1)A, φ̇ = −(∠−I₁+φ_d).
        let j11 = dga * a;
        let j12 = dgp * a;
        let j21 = -dpa;
        let j22 = -dpp;
        let det = j11 * j22 - j12 * j21;
        let trace = j11 + j22;
        (det > 0.0 && trace < 0.0, det, trace)
    }

    /// All lock solutions at a given tank phase `φ_d` (radians), over the
    /// full `φ ∈ [0, 2π)` plane — so each physical lock appears with all of
    /// its `n` state copies (§VI-B4).
    ///
    /// # Errors
    ///
    /// - [`ShilError::InvalidParameter`] if `|φ_d| ≥ π/2`.
    pub fn solutions_at_phase(&self, phi_d: f64) -> Result<Vec<ShilSolution>, ShilError> {
        // The explicit NaN branch matters: NaN sails through a plain `>=`
        // comparison and would poison the isoline level.
        if phi_d.is_nan() || phi_d.abs() >= std::f64::consts::FRAC_PI_2 {
            return Err(ShilError::InvalidParameter(format!(
                "tank phase must lie in (−π/2, π/2), got {phi_d}"
            )));
        }
        let neg_phi_d = -phi_d;
        let isoline = self.angle_isoline(neg_phi_d)?;
        let tf_grid = &self.prechar.tf_grid;
        let merge_tol = 1e-3 * (tf_grid.ys()[tf_grid.ny() - 1]);
        let raw = polyline_intersections(&self.prechar.tf_unity, &isoline, merge_tol);

        // Newton-polish every graphical intersection (parallel when the
        // analysis has workers), then dedup + classify serially in the
        // original order — identical results at any thread count.
        let refined = self.refine_all(&raw, neg_phi_d);

        // A partially masked grid means some intersections may simply be
        // missing; anything we do find is at best grid-accurate.
        let grid_degraded = self.prechar.non_finite_cells > 0;

        let mut solutions: Vec<ShilSolution> = Vec::new();
        for refined in refined {
            let (phi, a, fell_back) = match refined {
                Some(pa) => pa,
                None => continue,
            };
            let phi_wrapped = wrap_angle(phi);
            // Deduplicate (graphical intersections can converge together).
            let dup = solutions.iter().any(|s| {
                shil_numerics::angle_diff(s.phase, phi_wrapped).abs() < 1e-4
                    && (s.amplitude - a).abs() < 1e-6 * self.prechar.natural.amplitude.max(1.0)
            });
            if dup {
                continue;
            }
            let (stable, det, trace) = self.classify(phi, a, phi_d);
            // Non-finite classification derivatives (fault injection, grid
            // edges): report the solution as unstable and degraded rather
            // than leaking NaN into user-facing fields.
            let classify_poisoned = !det.is_finite() || !trace.is_finite();
            solutions.push(ShilSolution {
                amplitude: a,
                phase: phi_wrapped,
                stable: stable && !classify_poisoned,
                jacobian_det: if classify_poisoned { 0.0 } else { det },
                jacobian_trace: if classify_poisoned { 0.0 } else { trace },
                degraded: fell_back || classify_poisoned || grid_degraded,
            });
        }
        solutions.sort_by(|a, b| a.phase.total_cmp(&b.phase));
        Ok(solutions)
    }

    /// Newton-polishes each graphical intersection, fanning the (mutually
    /// independent) polishes across the analysis' worker threads. Output
    /// order matches input order, and each polish runs the same expressions
    /// regardless of the partition, so the result is independent of the
    /// thread count.
    fn refine_all(&self, raw: &[Point], neg_phi_d: f64) -> Vec<Option<(f64, f64, bool)>> {
        if self.threads <= 1 || raw.len() < 2 {
            let mut buf = self.prechar.table.scratch();
            return raw
                .iter()
                .map(|&p| self.refine(p, neg_phi_d, &mut buf))
                .collect();
        }
        let mut refined: Vec<Option<(f64, f64, bool)>> = vec![None; raw.len()];
        let per = raw.len().div_ceil(self.threads);
        std::thread::scope(|scope| {
            for (points, out) in raw.chunks(per).zip(refined.chunks_mut(per)) {
                scope.spawn(move || {
                    let mut buf = self.prechar.table.scratch();
                    for (p, slot) in points.iter().zip(out.iter_mut()) {
                        *slot = self.refine(*p, neg_phi_d, &mut buf);
                    }
                });
            }
        });
        refined
    }

    /// Polishes a graphical intersection against the exact residuals with
    /// the escalation ladder: damped Newton from the intersection, then
    /// Newton restarted from the four grid-neighbor seeds and deterministic
    /// perturbations, then — if every solve fails but the exact residuals at
    /// the raw intersection are finite and small — the coarse graphical
    /// answer itself, flagged as degraded (`true` in the returned triple).
    ///
    /// Returns `None` only for genuinely spurious intersections: polish
    /// lands out of the amplitude range, or the raw point's residuals are
    /// non-finite/large.
    fn refine(&self, p: Point, neg_phi_d: f64, buf: &mut Vec<f64>) -> Option<(f64, f64, bool)> {
        let tf_grid = &self.prechar.tf_grid;
        let a_lo = tf_grid.ys()[0];
        let a_hi = tf_grid.ys()[tf_grid.ny() - 1];
        let in_range = |phi: f64, a: f64| {
            a.is_finite() && phi.is_finite() && a >= 0.25 * a_lo && a <= 1.2 * a_hi
        };
        // Grid-neighbor seeds: one cell spacing away along each axis.
        let dphi = (tf_grid.xs()[tf_grid.nx() - 1] - tf_grid.xs()[0]) / (tf_grid.nx() - 1) as f64;
        let da = (a_hi - a_lo) / (tf_grid.ny() - 1) as f64;
        let neighbor_seeds = [
            vec![p.x + dphi, p.y],
            vec![p.x - dphi, p.y],
            vec![p.x, p.y + da],
            vec![p.x, p.y - da],
        ];
        let fallback_opts = FallbackOptions {
            newton: NewtonOptions {
                tol_residual: 1e-11,
                max_iter: 60,
                ..NewtonOptions::default()
            },
            random_restarts: 2,
            perturbation: 0.02,
            ..FallbackOptions::default()
        };
        if let Ok(sol) = newton_with_restarts(
            |x, r| {
                let (r0, r1) = self.residuals_with(x[0], x[1], neg_phi_d, buf);
                r[0] = r0;
                r[1] = r1;
            },
            &[p.x, p.y],
            &neighbor_seeds,
            &fallback_opts,
        ) {
            let (phi, a) = (sol.x[0], sol.x[1]);
            if in_range(phi, a) {
                return Some((phi, a, false));
            }
            // A converged polish outside the range means the intersection
            // was a grid artifact; do not resurrect it via the coarse rung.
            return None;
        }
        // Terminal rung: accept the coarse graphical intersection when the
        // exact equations nearly hold there. The tolerance is grid-scale
        // loose on purpose — this is the "degrade to the graphical answer"
        // path, not a convergence claim — and it still rejects spurious
        // intersections, whose residuals are far from zero.
        let (r0, r1) = self.residuals_with(p.x, p.y, neg_phi_d, buf);
        if r0.is_finite()
            && r1.is_finite()
            && r0.abs() < 0.05
            && r1.abs() < 0.05
            && in_range(p.x, p.y)
        {
            return Some((p.x, p.y, true));
        }
        None
    }

    /// All lock solutions at a given **injection** frequency (hertz); the
    /// oscillator runs at `f_injection/n`.
    ///
    /// # Errors
    ///
    /// - [`ShilError::InvalidParameter`] for a non-positive frequency.
    pub fn solutions_at_injection(
        &self,
        f_injection_hz: f64,
    ) -> Result<Vec<ShilSolution>, ShilError> {
        // NaN-rejecting positivity check.
        if f_injection_hz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ShilError::InvalidParameter(format!(
                "injection frequency must be positive, got {f_injection_hz}"
            )));
        }
        let omega_i = std::f64::consts::TAU * f_injection_hz / self.n as f64;
        let phi_d = self.tank.phase(omega_i);
        self.solutions_at_phase(phi_d)
    }

    /// The full graphical picture at one tank phase: level set, isoline,
    /// refined solutions (Fig. 7 at a glance).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::solutions_at_phase`].
    pub fn graphical_curves(&self, phi_d: f64) -> Result<GraphicalCurves, ShilError> {
        let solutions = self.solutions_at_phase(phi_d)?;
        Ok(GraphicalCurves {
            neg_phi_d: -phi_d,
            tf_unity: self.prechar.tf_unity.clone(),
            angle_isoline: self.angle_isoline(-phi_d)?.as_ref().clone(),
            solutions,
        })
    }

    /// Isolines of `∠−I₁` at several levels (the Fig. 10 visualization).
    ///
    /// # Errors
    ///
    /// Propagates grid extraction failures.
    pub fn angle_isolines(&self, levels: &[f64]) -> Result<Vec<(f64, Vec<Polyline>)>, ShilError> {
        levels
            .iter()
            .map(|&lv| Ok((lv, self.angle_isoline(lv)?.as_ref().clone())))
            .collect()
    }

    /// The `n` physical lock states of a solution (§VI-B4), reported as the
    /// oscillator's phase offsets relative to a reference signal at
    /// `f_injection/n` that is phase-locked to the injection (the
    /// measurement of Figs. 15/19).
    ///
    /// In the `(φ, A)` solution plane all `n` states coincide — shifting
    /// the oscillation by a full injection period leaves the relative phase
    /// `φ` unchanged — but the oscillator's absolute phase takes the `n`
    /// equally spaced values `(−φ_s + 2πk)/n`, `k = 0..n`.
    pub fn state_phases(&self, solution: &ShilSolution) -> Vec<f64> {
        let nf = self.n as f64;
        (0..self.n)
            .map(|k| wrap_angle((-solution.phase + std::f64::consts::TAU * k as f64) / nf))
            .collect()
    }

    /// Whether a stable lock exists at tank phase `φ_d`.
    fn has_stable_lock(&self, phi_d: f64) -> bool {
        self.stable_lock_probe(phi_d).0
    }

    /// `(stable lock exists, any solution was degraded)` at `φ_d` — the
    /// lock-range search needs both, so the boundary it reports can carry
    /// the degradation of the solutions it was derived from.
    fn stable_lock_probe(&self, phi_d: f64) -> (bool, bool) {
        shil_observe::incr("shil_core_lock_probes_total");
        self.solutions_at_phase(phi_d)
            .map(|sols| {
                (
                    sols.iter().any(|s| s.stable),
                    sols.iter().any(|s| s.degraded),
                )
            })
            .unwrap_or((false, false))
    }

    /// Predicts the lock range (paper §III-C, Fig. 10; validated against
    /// Tables 1–2).
    ///
    /// A coarse scan locates the loss-of-lock boundary in `φ_d ∈ [0, π/2)`,
    /// bisection sharpens it, and the tank phase inverse maps the boundary
    /// back to the oscillator and injection frequencies. By the reflection
    /// symmetry of §VI-B3 the range is symmetric in `±φ_d`.
    ///
    /// # Errors
    ///
    /// - [`ShilError::NoLock`] when even `φ_d = 0` admits no stable
    ///   solution.
    pub fn lock_range(&self) -> Result<LockRange, ShilError> {
        let _span = shil_observe::span("shil_core_lock_range");
        if !self.has_stable_lock(0.0) {
            return Err(ShilError::NoLock);
        }
        let center = self
            .solutions_at_phase(0.0)?
            .into_iter()
            .filter(|s| s.stable)
            .max_by(|a, b| a.amplitude.total_cmp(&b.amplitude))
            .ok_or(ShilError::NoLock)?;
        let mut degraded = center.degraded;

        // Coarse forward scan for the first failing phase. With workers
        // available, evaluate every scan point concurrently and then derive
        // the bracket from the *first* failure — the same (lo, hi) the
        // serial early-exit scan produces.
        let cap = std::f64::consts::FRAC_PI_2 * 0.999;
        let steps = self.opts.lock_range_scan.max(4);
        let scan_phis: Vec<f64> = (1..=steps).map(|k| cap * k as f64 / steps as f64).collect();
        let locked: Vec<(bool, bool)> = if self.threads <= 1 {
            let mut flags = Vec::with_capacity(steps);
            for &phi in &scan_phis {
                let probe = self.stable_lock_probe(phi);
                flags.push(probe);
                if !probe.0 {
                    break;
                }
            }
            flags
        } else {
            let mut flags = vec![(false, false); steps];
            let per = steps.div_ceil(self.threads);
            std::thread::scope(|scope| {
                for (phis, out) in scan_phis.chunks(per).zip(flags.chunks_mut(per)) {
                    scope.spawn(move || {
                        for (&phi, slot) in phis.iter().zip(out.iter_mut()) {
                            *slot = self.stable_lock_probe(phi);
                        }
                    });
                }
            });
            flags
        };
        let mut lo = 0.0;
        let mut hi = cap;
        let mut found_fail = false;
        for (k, &(ok, deg)) in locked.iter().enumerate() {
            degraded |= deg;
            if ok {
                lo = scan_phis[k];
            } else {
                hi = scan_phis[k];
                found_fail = true;
                break;
            }
        }
        let phi_d_max = if found_fail {
            // Bisection between the last success and the first failure.
            let mut lo = lo;
            let mut hi = hi;
            for _ in 0..self.opts.lock_range_iters {
                let mid = 0.5 * (lo + hi);
                let (ok, deg) = self.stable_lock_probe(mid);
                degraded |= deg;
                if ok {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        } else {
            cap
        };

        // φ_d > 0 ⇒ below resonance; the ± pair gives the two edges.
        let w_lo = self.tank.omega_for_phase(phi_d_max)?;
        let w_hi = self.tank.omega_for_phase(-phi_d_max)?;
        let lower_oscillator_hz = w_lo / std::f64::consts::TAU;
        let upper_oscillator_hz = w_hi / std::f64::consts::TAU;
        let nf = self.n as f64;
        Ok(LockRange {
            phi_d_max,
            lower_oscillator_hz,
            upper_oscillator_hz,
            lower_injection_hz: nf * lower_oscillator_hz,
            upper_injection_hz: nf * upper_oscillator_hz,
            injection_span_hz: nf * (upper_oscillator_hz - lower_oscillator_hz),
            amplitude_at_center: center.amplitude,
            degraded,
        })
    }
}

impl<N: ?Sized, T: ?Sized> std::fmt::Debug for ShilAnalysis<'_, N, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShilAnalysis")
            .field("n", &self.n)
            .field("vi", &self.vi)
            .field("natural", &self.prechar.natural)
            .field(
                "grid",
                &(self.prechar.tf_grid.nx(), self.prechar.tf_grid.ny()),
            )
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonlinearity::NegativeTanh;
    use crate::tank::ParallelRlc;

    fn setup() -> (NegativeTanh, ParallelRlc) {
        (
            NegativeTanh::new(1e-3, 20.0),
            ParallelRlc::new(1000.0, 10e-6, 10e-9).unwrap(),
        )
    }

    fn fast_opts() -> ShilOptions {
        ShilOptions {
            phase_points: 121,
            amplitude_points: 81,
            harmonics: HarmonicOptions { samples: 256 },
            lock_range_iters: 30,
            lock_range_scan: 16,
            ..Default::default()
        }
    }

    #[test]
    fn precharacterize_budget_semantics() {
        let (f, _t) = setup();
        let phis: Vec<f64> = (0..32)
            .map(|i| i as f64 * std::f64::consts::TAU / 31.0)
            .collect();
        let amps: Vec<f64> = (1..=16).map(|j| j as f64 * 0.1).collect();
        let table = HarmonicTable::new(3, 1, &HarmonicOptions { samples: 64 });
        // A generous budget changes nothing, bit for bit, at any threads.
        let plain = precharacterize(&f, 1000.0, 0.03, &phis, &amps, &table, 2).unwrap();
        let budgeted = precharacterize_budgeted(
            &f,
            1000.0,
            0.03,
            &phis,
            &amps,
            &table,
            3,
            &Budget::with_deadline(std::time::Duration::from_secs(3600)),
        )
        .unwrap();
        assert_eq!(plain, budgeted);
        // A pre-cancelled token stops the fill before any cell, serial and
        // parallel alike.
        for threads in [1usize, 4] {
            let token = shil_runtime::CancelToken::new();
            token.cancel();
            let err = precharacterize_budgeted(
                &f,
                1000.0,
                0.03,
                &phis,
                &amps,
                &table,
                threads,
                &Budget::unlimited().with_token(token),
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    ShilError::Numerics(shil_numerics::NumericsError::Cancelled { .. })
                ),
                "threads {threads}: got {err:?}"
            );
        }
    }

    #[test]
    fn construction_validates_parameters() {
        let (f, t) = setup();
        assert!(ShilAnalysis::new(&f, &t, 0, 0.03, fast_opts()).is_err());
        assert!(ShilAnalysis::new(&f, &t, 3, 0.0, fast_opts()).is_err());
        assert!(ShilAnalysis::new(&f, &t, 3, -0.1, fast_opts()).is_err());
        assert!(ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).is_ok());
    }

    #[test]
    fn center_frequency_has_stable_unstable_pair() {
        // In the (φ, A) plane the n physical states coincide, so at the
        // center frequency exactly one stable/unstable pair appears: the
        // stable lock at φ = π and its unstable companion at φ = 0 (for the
        // odd tanh element, where ∠−I₁ = 0 on both axes).
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let sols = an.solutions_at_phase(0.0).unwrap();
        let stable: Vec<_> = sols.iter().filter(|s| s.stable).collect();
        let unstable: Vec<_> = sols.iter().filter(|s| !s.stable).collect();
        assert_eq!(stable.len(), 1, "stable: {stable:?}");
        assert_eq!(unstable.len(), 1, "unstable: {unstable:?}");
        assert!(shil_numerics::angle_diff(stable[0].phase, std::f64::consts::PI).abs() < 1e-3);
        assert!(unstable[0].phase.abs() < 1e-3);
    }

    #[test]
    fn shil_amplitude_drops_below_natural_at_the_band_edge() {
        // §IV observes "the value of A for SHIL is lower than that for
        // natural oscillations": A decreases with detuning, so near the
        // lock-range edge it sits clearly below the natural amplitude. At
        // exact center the difference is within the injection perturbation.
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let nat = an.natural().amplitude;
        let center = an.solutions_at_phase(0.0).unwrap();
        let s0 = center.iter().find(|s| s.stable).expect("stable lock");
        assert!(
            (s0.amplitude - nat).abs() < 0.01 * nat,
            "center amplitude {} vs natural {nat}",
            s0.amplitude
        );
        let lr = an.lock_range().unwrap();
        let edge = an.solutions_at_phase(0.95 * lr.phi_d_max).unwrap();
        let se = edge.iter().find(|s| s.stable).expect("stable edge lock");
        assert!(
            se.amplitude < nat,
            "edge amplitude {} vs natural {nat}",
            se.amplitude
        );
    }

    #[test]
    fn residuals_vanish_at_solutions() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        for &phi_d in &[0.0, 0.1, -0.15] {
            for s in an.solutions_at_phase(phi_d).unwrap() {
                let (r0, r1) = an.residuals(s.phase, s.amplitude, -phi_d);
                assert!(r0.abs() < 1e-9, "T_f residual {r0} at φ_d = {phi_d}");
                assert!(r1.abs() < 1e-9, "angle residual {r1} at φ_d = {phi_d}");
            }
        }
    }

    #[test]
    fn detuning_shrinks_amplitude() {
        // Fig. 14: A decreases with increasing |ω_c − ω_i| up to the lock
        // boundary.
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let amp_at = |phi_d: f64| {
            an.solutions_at_phase(phi_d)
                .unwrap()
                .into_iter()
                .filter(|s| s.stable)
                .map(|s| s.amplitude)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        // The lock boundary for this oscillator sits near φ_d ≈ 0.047, so
        // probe inside it.
        let a0 = amp_at(0.0);
        let a1 = amp_at(0.02);
        let a2 = amp_at(0.04);
        assert!(a0 > a1 && a1 > a2, "a0={a0}, a1={a1}, a2={a2}");
    }

    #[test]
    fn lock_range_is_positive_and_centered() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let lr = an.lock_range().unwrap();
        let fc = t.center_frequency_hz();
        assert!(lr.phi_d_max > 0.0 && lr.phi_d_max < std::f64::consts::FRAC_PI_2);
        assert!(lr.lower_oscillator_hz < fc && fc < lr.upper_oscillator_hz);
        assert!((lr.lower_injection_hz - 3.0 * lr.lower_oscillator_hz).abs() < 1e-6);
        assert!(
            (lr.injection_span_hz - (lr.upper_injection_hz - lr.lower_injection_hz)).abs() < 1e-9
        );
        assert!(lr.amplitude_at_center > 0.0);
        // Locking inside the range, no stable lock outside.
        assert!(an.has_stable_lock(0.5 * lr.phi_d_max));
        assert!(!an.has_stable_lock((1.05 * lr.phi_d_max).min(1.5)));
    }

    #[test]
    fn lock_range_grows_with_injection_strength() {
        let (f, t) = setup();
        let weak = ShilAnalysis::new(&f, &t, 3, 0.01, fast_opts())
            .unwrap()
            .lock_range()
            .unwrap();
        let strong = ShilAnalysis::new(&f, &t, 3, 0.05, fast_opts())
            .unwrap()
            .lock_range()
            .unwrap();
        assert!(
            strong.injection_span_hz > 2.0 * weak.injection_span_hz,
            "weak {} vs strong {}",
            weak.injection_span_hz,
            strong.injection_span_hz
        );
    }

    #[test]
    fn even_order_lock_is_much_weaker_through_an_odd_nonlinearity() {
        // Leading-order mixing of a 2nd-harmonic injection down to the
        // fundamental needs even-order terms that an odd f lacks; the
        // surviving 5th-order path (a³b² → cos(θ + 2φ)) is weak. The n = 2
        // lock range must therefore be far narrower than n = 3's — the
        // classic reason practical ÷2 injection dividers add asymmetry.
        let (f, t) = setup();
        let n3 = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts())
            .unwrap()
            .lock_range()
            .unwrap();
        let an2 = ShilAnalysis::new(&f, &t, 2, 0.03, fast_opts()).unwrap();
        match an2.lock_range() {
            Err(ShilError::NoLock) => {}
            Ok(lr2) => assert!(
                lr2.injection_span_hz < 0.1 * n3.injection_span_hz,
                "n=2 span {} vs n=3 span {}",
                lr2.injection_span_hz,
                n3.injection_span_hz
            ),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn solutions_at_injection_maps_frequency_through_tank() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let fc = t.center_frequency_hz();
        let sols_center = an.solutions_at_injection(3.0 * fc).unwrap();
        let direct = an.solutions_at_phase(0.0).unwrap();
        assert_eq!(sols_center.len(), direct.len());
        assert!(an.solutions_at_injection(-1.0).is_err());
    }

    #[test]
    fn graphical_curves_expose_the_procedure() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let g = an.graphical_curves(0.1).unwrap();
        assert!(!g.tf_unity.is_empty(), "C_{{T_f,1}} missing");
        assert!(!g.angle_isoline.is_empty(), "isoline missing");
        assert_eq!(g.neg_phi_d, -0.1);
        // Solutions lie on both curve families (within grid tolerance).
        for s in &g.solutions {
            let p = Point::new(
                if s.phase < 0.0 {
                    s.phase + std::f64::consts::TAU
                } else {
                    s.phase
                },
                s.amplitude,
            );
            let near_tf = g
                .tf_unity
                .iter()
                .filter_map(|c| {
                    c.points
                        .iter()
                        .map(|q| q.distance(p))
                        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
                })
                .fold(f64::INFINITY, f64::min);
            assert!(near_tf < 0.1, "solution far from C_Tf1: {near_tf}");
        }
    }

    #[test]
    fn state_phases_are_equally_spaced() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let sols = an.solutions_at_phase(0.02).unwrap();
        let s = sols.iter().find(|s| s.stable).expect("stable solution");
        let states = an.state_phases(s);
        assert_eq!(states.len(), 3);
        // Gaps of exactly 2π/3 (§VI-B4), independent of the lock phase.
        for w in 0..3 {
            let gap = shil_numerics::angle_diff(states[(w + 1) % 3], states[w]);
            assert!(
                (gap.abs() - std::f64::consts::TAU / 3.0).abs() < 1e-12,
                "gap {gap}"
            );
        }
        // State 0 is the lock phase divided down by n.
        assert!((states[0] - wrap_angle(-s.phase / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn fhil_special_case_n1_locks() {
        // §III-C: "this viewpoint is general and also works for n = 1."
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 1, 0.03, fast_opts()).unwrap();
        let sols = an.solutions_at_phase(0.0).unwrap();
        assert!(sols.iter().any(|s| s.stable));
        let lr = an.lock_range().unwrap();
        assert!(lr.injection_span_hz > 0.0);
        // n = 1: injection and oscillator frequencies coincide.
        assert!((lr.lower_injection_hz - lr.lower_oscillator_hz).abs() < 1e-9);
    }

    #[test]
    fn angle_isolines_for_figure_10() {
        let (f, t) = setup();
        let an = ShilAnalysis::new(&f, &t, 3, 0.03, fast_opts()).unwrap();
        let iso = an.angle_isolines(&[-0.2, -0.1, 0.0, 0.1, 0.2]).unwrap();
        assert_eq!(iso.len(), 5);
        // The zero isoline exists (locks at resonance).
        let zero = iso.iter().find(|(l, _)| *l == 0.0).expect("level 0");
        assert!(!zero.1.is_empty());
    }
}
