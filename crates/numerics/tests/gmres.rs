//! Property-based and fault-injection coverage for the GMRES+ILU(0) tier.
//!
//! Three contracts from the iterative-solver design are exercised here:
//!
//! 1. On random well-conditioned systems the Krylov path agrees with the
//!    dense LU reference to the residual-certificate tolerance.
//! 2. Singular systems are rejected with a typed error (small N, where the
//!    embedded LU *is* the backend) or recovered through the exact fallback
//!    (large N) — never answered wrongly.
//! 3. 1000-seed fault injection: a NaN-poisoned preconditioner never
//!    influences a served solution. Every served answer still satisfies the
//!    exact-solve residual bound, because poison forces the stagnation
//!    fallback onto the exact LU.

use std::sync::Arc;

use proptest::prelude::*;
use shil_numerics::iterative::GmresSolver;
use shil_numerics::solver::{DenseSolver, LinearSolver, Stamp};
use shil_numerics::sparse::{SparseMatrix, SparsePattern};
use shil_numerics::{Matrix, NumericsError};

/// Deterministic LCG shared by the non-proptest sweeps.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize % bound.max(1)
    }
}

/// A pattern with scattered off-diagonals so ILU(0) is genuinely
/// approximate (elimination fills outside the pattern).
fn scattered_pattern(n: usize) -> Arc<SparsePattern> {
    let mut entries = Vec::new();
    for i in 0..n {
        entries.push((i, i));
        entries.push((i, (i * 7 + 3) % n));
        entries.push(((i * 5 + 1) % n, i));
        if i + 1 < n {
            entries.push((i, i + 1));
            entries.push((i + 1, i));
        }
    }
    Arc::new(SparsePattern::from_entries(n, &entries))
}

/// Diagonally dominant fill over `pattern`: well-conditioned by
/// construction.
fn fill_well_conditioned(pattern: &Arc<SparsePattern>, rng: &mut Lcg) -> (SparseMatrix, Matrix) {
    let n = pattern.dim();
    let mut sparse = SparseMatrix::zeros(pattern.clone());
    let mut dense = Matrix::zeros(n, n);
    for i in 0..n {
        for (j, _) in pattern.row(i) {
            let v = if i == j {
                rng.next_f64().abs() + 5.0
            } else {
                rng.next_f64()
            };
            sparse.add_at(i, j, v);
            dense.add_at(i, j, v);
        }
    }
    (sparse, dense)
}

fn residual_inf_norm(a: &SparseMatrix, x: &[f64], b: &[f64]) -> f64 {
    let mut ax = vec![0.0; b.len()];
    a.mul_vec_into(x, &mut ax);
    ax.iter()
        .zip(b)
        .map(|(axi, bi)| (bi - axi).abs())
        .fold(0.0f64, |m, v| if v.is_nan() { f64::NAN } else { m.max(v) })
}

proptest! {
    /// Krylov-path solutions satisfy the certificate bound and agree with
    /// the dense LU reference on random well-conditioned systems.
    #[test]
    fn gmres_matches_dense_lu_to_certificate_tolerance(
        seed in 0u64..5000,
        n in 40usize..120,
    ) {
        let pattern = scattered_pattern(n);
        let mut rng = Lcg::new(seed);
        let (a, dense) = fill_well_conditioned(&pattern, &mut rng);
        let b: Vec<f64> = (0..n).map(|_| rng.next_f64() * 3.0).collect();
        let bnorm = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));

        let mut gm = GmresSolver::new(pattern.clone()).unwrap().with_direct_below(0);
        gm.refactorize(&a).unwrap();
        prop_assert!(gm.is_krylov());
        let mut x = b.clone();
        gm.solve_in_place(&mut x);

        // Certificate: the served solution's true residual is bounded.
        let rnorm = residual_inf_norm(&a, &x, &b);
        prop_assert!(
            rnorm <= GmresSolver::DEFAULT_RTOL * bnorm * (n as f64).sqrt() * 1.01,
            "residual {rnorm:.3e} exceeds certificate at n = {n}"
        );

        // Agreement with the dense reference, to well inside the
        // conditioning of a diagonally dominant draw.
        let mut reference = DenseSolver::new(n);
        reference.refactorize(&dense).unwrap();
        let mut xr = b.clone();
        reference.solve_in_place(&mut xr);
        for (xi, ri) in x.iter().zip(&xr) {
            prop_assert!((xi - ri).abs() < 1e-6 * (1.0 + ri.abs()), "{xi} vs {ri}");
        }
    }

    /// Singular systems never produce a served solution: small systems are
    /// rejected at refactorize with a typed error; any path that reaches
    /// solve_in_place on a singular system yields NaN (caught by every
    /// caller's NaN-propagating norms), never numbers.
    #[test]
    fn singular_systems_are_rejected_or_poisoned(seed in 0u64..500) {
        let n = 24;
        let pattern = scattered_pattern(n);
        let mut rng = Lcg::new(seed);
        let (mut a, _) = fill_well_conditioned(&pattern, &mut rng);
        // Make row 1 an exact copy of row 0's values on the overlapping
        // structural positions and zero elsewhere — a rank deficiency the
        // elimination must hit.
        let slots0: Vec<(usize, usize)> = pattern.row(0).collect();
        let slots1: Vec<(usize, usize)> = pattern.row(1).collect();
        for &(_, s) in &slots1 {
            a.values_mut()[s] = 0.0;
        }
        for &(j, s0) in &slots0 {
            if let Some(s1) = pattern.slot(1, j) {
                let v = a.values()[s0];
                a.values_mut()[s1] = v;
            } else {
                // Overlap incomplete: zero the row-0 entry too so the two
                // rows stay linearly dependent.
                a.values_mut()[s0] = 0.0;
            }
        }
        let mut gm = GmresSolver::new(pattern).unwrap();
        match gm.refactorize(&a) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            Ok(()) => {
                let mut x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
                let b = x.clone();
                gm.solve_in_place(&mut x);
                let rnorm = residual_inf_norm(&a, &x, &b);
                // Either the solve failed loudly (NaN poison) or, in the
                // measure-zero case the dependent rows are still consistent,
                // the answer is certified.
                prop_assert!(
                    rnorm.is_nan() || rnorm <= 1e-6,
                    "singular system served residual {rnorm:.3e}"
                );
            }
        }
    }
}

/// 1000-seed fault injection: poison a random ILU slot with NaN (or ±Inf)
/// after a successful refactorize, then solve. The served answer must always
/// satisfy the exact-solve residual bound — proof that the poisoned
/// preconditioner never influences a served solution (the stagnation
/// fallback routes around it onto the exact LU).
#[test]
fn thousand_seed_poisoned_preconditioner_never_serves_a_solution() {
    let n = 72;
    let pattern = scattered_pattern(n);
    let poisons = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    for seed in 0..1000u64 {
        let mut rng = Lcg::new(seed);
        let (a, _) = fill_well_conditioned(&pattern, &mut rng);
        let b: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0).collect();
        let bnorm = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let mut gm = GmresSolver::new(pattern.clone())
            .unwrap()
            .with_direct_below(0);
        gm.refactorize(&a).unwrap();
        assert!(gm.is_krylov(), "seed {seed}: expected the Krylov path");
        let slot = rng.next_usize(pattern.nnz());
        let poison = poisons[rng.next_usize(poisons.len())];
        gm.preconditioner_mut_for_tests()
            .poison_slot_for_tests(slot, poison);
        let mut x = b.clone();
        gm.solve_in_place(&mut x);
        let rnorm = residual_inf_norm(&a, &x, &b);
        assert!(
            rnorm <= 1e-9 * (1.0 + bnorm),
            "seed {seed}: poisoned preconditioner leaked \
             (slot {slot}, poison {poison}, residual {rnorm:.3e})"
        );
    }
}
