//! Property-based invariants for the numerical kernels.

use proptest::prelude::*;
use shil_numerics::complex::Complex64;
use shil_numerics::contour::marching_squares;
use shil_numerics::fft::{fft_in_place, ifft_in_place};
use shil_numerics::grid::Grid2;
use shil_numerics::interp::Pchip;
use shil_numerics::linalg::{Lu, Matrix};
use shil_numerics::roots::brent;
use shil_numerics::wrap_angle;

proptest! {
    #[test]
    fn wrap_angle_always_in_principal_range(theta in -1e6f64..1e6f64) {
        let w = wrap_angle(theta);
        prop_assert!(w > -std::f64::consts::PI - 1e-9);
        prop_assert!(w <= std::f64::consts::PI + 1e-9);
    }

    #[test]
    fn wrap_angle_is_periodic(theta in -100.0f64..100.0f64) {
        let a = wrap_angle(theta);
        let b = wrap_angle(theta + std::f64::consts::TAU);
        // Compare as complex phases to avoid branch-point flakiness.
        let za = Complex64::from_polar(1.0, a);
        let zb = Complex64::from_polar(1.0, b);
        prop_assert!((za - zb).abs() < 1e-9);
    }

    #[test]
    fn complex_field_axioms(
        ar in -10.0f64..10.0, ai in -10.0f64..10.0,
        br in -10.0f64..10.0, bi in -10.0f64..10.0,
        cr in -10.0f64..10.0, ci in -10.0f64..10.0,
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let c = Complex64::new(cr, ci);
        // Distributivity.
        prop_assert!((a * (b + c) - (a * b + a * c)).abs() < 1e-9);
        // Commutativity.
        prop_assert!((a * b - b * a).abs() == 0.0);
        // |ab| = |a||b| (up to rounding).
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }

    #[test]
    fn lu_solves_diagonally_dominant_systems(
        seed in prop::array::uniform32(-1.0f64..1.0),
        rhs in prop::array::uniform4(-10.0f64..10.0),
    ) {
        // Build a 4x4 strictly diagonally dominant (hence nonsingular) matrix.
        let mut a = Matrix::zeros(4, 4);
        let mut idx = 0;
        for i in 0..4 {
            let mut row_sum = 0.0;
            for j in 0..4 {
                if i != j {
                    a[(i, j)] = seed[idx % 32];
                    row_sum += a[(i, j)].abs();
                }
                idx += 1;
            }
            a[(i, i)] = row_sum + 1.0;
        }
        let x = a.solve(&rhs).expect("dominant matrix is nonsingular");
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&rhs) {
            prop_assert!((ri - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_determinant_of_permuted_identity_is_unit(perm in 0usize..24) {
        // Generate one of the 24 permutations of 4 indices.
        let mut items = vec![0usize, 1, 2, 3];
        let mut p = perm;
        let mut order = Vec::new();
        for k in (1..=4).rev() {
            order.push(items.remove(p % k));
            p /= k;
        }
        let mut a = Matrix::zeros(4, 4);
        for (i, &j) in order.iter().enumerate() {
            a[(i, j)] = 1.0;
        }
        let lu = Lu::factorize(a).expect("permutation matrix is nonsingular");
        prop_assert!((lu.det().abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fft_roundtrip_recovers_signal(values in prop::collection::vec(-100.0f64..100.0, 32)) {
        let orig: Vec<Complex64> = values.iter().map(|&v| Complex64::new(v, -0.5 * v)).collect();
        let mut x = orig.clone();
        fft_in_place(&mut x).expect("length 32 is a power of two");
        ifft_in_place(&mut x).expect("length 32 is a power of two");
        let scale = values.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-10 * scale);
        }
    }

    #[test]
    fn pchip_stays_within_data_hull_on_monotone_data(
        mut ys in prop::collection::vec(-5.0f64..5.0, 6..12),
        q in 0.0f64..1.0,
    ) {
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        // Deduplicate to keep the data strictly usable (equal values are fine
        // for y, only x must be strictly increasing).
        let n = ys.len();
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let p = Pchip::new(xs, ys.clone()).expect("valid axes");
        let xq = q * (n - 1) as f64;
        let v = p.eval(xq).expect("inside domain");
        prop_assert!(v >= ys[0] - 1e-9 && v <= ys[n - 1] + 1e-9,
            "interpolant {v} escapes hull [{}, {}]", ys[0], ys[n - 1]);
    }

    #[test]
    fn brent_finds_root_of_odd_cubic(a in 0.1f64..5.0, b in -2.0f64..2.0) {
        // f(x) = a(x − b)³ + (x − b): odd around b, strictly increasing.
        let f = |x: f64| a * (x - b).powi(3) + (x - b);
        let r = brent(f, b - 10.0, b + 10.0, 1e-13, 200).expect("bracketed");
        prop_assert!((r - b).abs() < 1e-6);
    }

    #[test]
    fn marching_squares_points_lie_on_level(
        ax in -3.0f64..3.0,
        by in -3.0f64..3.0,
        level in -1.0f64..1.0,
    ) {
        prop_assume!(ax.abs() + by.abs() > 0.1);
        let g = Grid2::from_fn(-1.0, 1.0, 41, -1.0, 1.0, 41, |x, y| ax * x + by * y)
            .expect("valid grid");
        let curves = marching_squares(&g, level).expect("level is finite");
        for c in &curves {
            for p in &c.points {
                // Linear fields are reproduced exactly by linear edge
                // interpolation.
                prop_assert!((ax * p.x + by * p.y - level).abs() < 1e-9);
            }
        }
    }
}
