//! One-dimensional interpolation: linear and PCHIP (monotone cubic).
//!
//! The SHIL tool pre-characterizes nonlinearities from DC-sweep data (the
//! `i = f(v)` extraction of §IV of the paper). PCHIP is used there because a
//! shape-preserving interpolant keeps the negative-resistance region of the
//! extracted curve free of spurious oscillation — overshoot in a plain cubic
//! spline would manufacture artificial equilibria in the Newton solves.

use crate::error::NumericsError;

/// How an interpolant behaves outside its abscissa range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extrapolation {
    /// Clamp to the boundary value.
    Clamp,
    /// Continue with the boundary slope (default; physical for I–V curves
    /// whose tails are ohmic/saturated).
    #[default]
    Linear,
    /// Return an error instead of extrapolating.
    Error,
}

fn check_axis(x: &[f64], y: &[f64]) -> Result<(), NumericsError> {
    if x.len() != y.len() {
        return Err(NumericsError::InvalidInput(format!(
            "x and y length mismatch ({} vs {})",
            x.len(),
            y.len()
        )));
    }
    if x.len() < 2 {
        return Err(NumericsError::InvalidInput(
            "need at least two points".into(),
        ));
    }
    for w in x.windows(2) {
        // NaN-rejecting strict-increase check.
        if w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater) {
            return Err(NumericsError::InvalidInput(
                "abscissae must be strictly increasing".into(),
            ));
        }
    }
    Ok(())
}

/// Index of the interval containing `xq` (clamped to valid intervals).
fn locate(x: &[f64], xq: f64) -> usize {
    match x.binary_search_by(|v| v.partial_cmp(&xq).expect("NaN in abscissae")) {
        Ok(i) => i.min(x.len() - 2),
        Err(i) => i.clamp(1, x.len() - 1) - 1,
    }
}

/// Piecewise-linear interpolant over strictly increasing abscissae.
///
/// ```
/// use shil_numerics::interp::LinearInterp;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let li = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])?;
/// assert_eq!(li.eval(0.5)?, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    x: Vec<f64>,
    y: Vec<f64>,
    extrapolation: Extrapolation,
}

impl LinearInterp {
    /// Creates an interpolant with [`Extrapolation::Linear`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] if the axes mismatch, contain
    /// fewer than two points, or are not strictly increasing.
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self, NumericsError> {
        check_axis(&x, &y)?;
        Ok(LinearInterp {
            x,
            y,
            extrapolation: Extrapolation::Linear,
        })
    }

    /// Sets the extrapolation policy.
    #[must_use]
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.extrapolation = e;
        self
    }

    /// Domain of the interpolant (first and last abscissa).
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], *self.x.last().expect("non-empty by invariant"))
    }

    /// Evaluates the interpolant at `xq`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] when `xq` is outside the
    /// domain and the policy is [`Extrapolation::Error`].
    pub fn eval(&self, xq: f64) -> Result<f64, NumericsError> {
        let (lo, hi) = self.domain();
        if xq < lo || xq > hi {
            match self.extrapolation {
                Extrapolation::Error => {
                    return Err(NumericsError::InvalidInput(format!(
                        "query {xq} outside domain [{lo}, {hi}]"
                    )))
                }
                Extrapolation::Clamp => {
                    return Ok(if xq < lo {
                        self.y[0]
                    } else {
                        *self.y.last().expect("non-empty")
                    })
                }
                Extrapolation::Linear => {} // fall through: segment formula extends
            }
        }
        let i = locate(&self.x, xq);
        let t = (xq - self.x[i]) / (self.x[i + 1] - self.x[i]);
        Ok(self.y[i] + t * (self.y[i + 1] - self.y[i]))
    }

    /// Piecewise-constant derivative at `xq` (boundary slope outside).
    pub fn derivative(&self, xq: f64) -> f64 {
        let i = locate(
            &self.x,
            xq.clamp(self.x[0], *self.x.last().expect("non-empty")),
        );
        (self.y[i + 1] - self.y[i]) / (self.x[i + 1] - self.x[i])
    }
}

/// PCHIP: piecewise cubic Hermite interpolation with Fritsch–Carlson
/// monotone slope limiting.
///
/// C¹-continuous, shape preserving (no overshoot between data points), with
/// an analytic derivative — exactly what tabulated `i = f(v)` device curves
/// need inside Newton loops.
///
/// ```
/// use shil_numerics::interp::Pchip;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let p = Pchip::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 1.0, 2.0])?;
/// // Monotone data stays monotone: no overshoot above 1.0 in [1, 2].
/// assert!(p.eval(1.5)? <= 1.0 + 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pchip {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Nodal derivatives chosen by the Fritsch–Carlson limiter.
    d: Vec<f64>,
    extrapolation: Extrapolation,
}

impl Pchip {
    /// Creates a PCHIP interpolant with [`Extrapolation::Linear`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearInterp::new`].
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self, NumericsError> {
        check_axis(&x, &y)?;
        let n = x.len();
        let mut delta = vec![0.0; n - 1];
        for i in 0..n - 1 {
            delta[i] = (y[i + 1] - y[i]) / (x[i + 1] - x[i]);
        }
        let mut d = vec![0.0; n];
        if n == 2 {
            d[0] = delta[0];
            d[1] = delta[0];
        } else {
            // Interior nodes: weighted harmonic mean when the secants agree
            // in sign, zero otherwise (Fritsch–Carlson).
            for i in 1..n - 1 {
                if delta[i - 1] * delta[i] > 0.0 {
                    let h0 = x[i] - x[i - 1];
                    let h1 = x[i + 1] - x[i];
                    let w1 = 2.0 * h1 + h0;
                    let w2 = h1 + 2.0 * h0;
                    d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                } else {
                    d[i] = 0.0;
                }
            }
            // One-sided endpoint formulas with monotonicity clamping.
            d[0] = Self::edge_slope(x[1] - x[0], x[2] - x[1], delta[0], delta[1]);
            d[n - 1] = Self::edge_slope(
                x[n - 1] - x[n - 2],
                x[n - 2] - x[n - 3],
                delta[n - 2],
                delta[n - 3],
            );
        }
        Ok(Pchip {
            x,
            y,
            d,
            extrapolation: Extrapolation::Linear,
        })
    }

    fn edge_slope(h0: f64, h1: f64, del0: f64, del1: f64) -> f64 {
        let d = ((2.0 * h0 + h1) * del0 - h0 * del1) / (h0 + h1);
        if d * del0 <= 0.0 {
            0.0
        } else if del0 * del1 < 0.0 && d.abs() > 3.0 * del0.abs() {
            3.0 * del0
        } else {
            d
        }
    }

    /// Sets the extrapolation policy.
    #[must_use]
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.extrapolation = e;
        self
    }

    /// Domain of the interpolant.
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], *self.x.last().expect("non-empty by invariant"))
    }

    /// Evaluates the interpolant at `xq`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] under [`Extrapolation::Error`]
    /// for out-of-domain queries.
    pub fn eval(&self, xq: f64) -> Result<f64, NumericsError> {
        let (lo, hi) = self.domain();
        if xq < lo || xq > hi {
            match self.extrapolation {
                Extrapolation::Error => {
                    return Err(NumericsError::InvalidInput(format!(
                        "query {xq} outside domain [{lo}, {hi}]"
                    )))
                }
                Extrapolation::Clamp => {
                    return Ok(if xq < lo {
                        self.y[0]
                    } else {
                        *self.y.last().expect("non-empty")
                    })
                }
                Extrapolation::Linear => {
                    return Ok(if xq < lo {
                        self.y[0] + self.d[0] * (xq - lo)
                    } else {
                        self.y[self.y.len() - 1] + self.d[self.d.len() - 1] * (xq - hi)
                    })
                }
            }
        }
        let i = locate(&self.x, xq);
        let h = self.x[i + 1] - self.x[i];
        let t = (xq - self.x[i]) / h;
        let (h00, h10, h01, h11) = hermite_basis(t);
        Ok(h00 * self.y[i] + h10 * h * self.d[i] + h01 * self.y[i + 1] + h11 * h * self.d[i + 1])
    }

    /// Analytic derivative of the interpolant at `xq` (boundary slope
    /// outside the domain).
    pub fn derivative(&self, xq: f64) -> f64 {
        let (lo, hi) = self.domain();
        if xq <= lo {
            return self.d[0];
        }
        if xq >= hi {
            return self.d[self.d.len() - 1];
        }
        let i = locate(&self.x, xq);
        let h = self.x[i + 1] - self.x[i];
        let t = (xq - self.x[i]) / h;
        let dh00 = (6.0 * t * t - 6.0 * t) / h;
        let dh10 = 3.0 * t * t - 4.0 * t + 1.0;
        let dh01 = -dh00;
        let dh11 = 3.0 * t * t - 2.0 * t;
        dh00 * self.y[i] + dh10 * self.d[i] + dh01 * self.y[i + 1] + dh11 * self.d[i + 1]
    }
}

fn hermite_basis(t: f64) -> (f64, f64, f64, f64) {
    let t2 = t * t;
    let t3 = t2 * t;
    (
        2.0 * t3 - 3.0 * t2 + 1.0,
        t3 - 2.0 * t2 + t,
        -2.0 * t3 + 3.0 * t2,
        t3 - t2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolates_nodes_exactly() {
        let li = LinearInterp::new(vec![0.0, 1.0, 3.0], vec![1.0, -1.0, 5.0]).unwrap();
        assert_eq!(li.eval(0.0).unwrap(), 1.0);
        assert_eq!(li.eval(1.0).unwrap(), -1.0);
        assert_eq!(li.eval(3.0).unwrap(), 5.0);
        assert_eq!(li.eval(2.0).unwrap(), 2.0);
    }

    #[test]
    fn linear_extrapolation_policies() {
        let base = LinearInterp::new(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        assert_eq!(
            base.clone()
                .with_extrapolation(Extrapolation::Clamp)
                .eval(2.0)
                .unwrap(),
            2.0
        );
        assert_eq!(
            base.clone()
                .with_extrapolation(Extrapolation::Linear)
                .eval(2.0)
                .unwrap(),
            4.0
        );
        assert!(base
            .with_extrapolation(Extrapolation::Error)
            .eval(2.0)
            .is_err());
    }

    #[test]
    fn rejects_bad_axes() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn pchip_reproduces_nodes() {
        let x: Vec<f64> = vec![-2.0, -1.0, 0.0, 1.0, 2.0];
        let y: Vec<f64> = x.iter().map(|v| v.tanh()).collect();
        let p = Pchip::new(x.clone(), y.clone()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert!((p.eval(*xi).unwrap() - yi).abs() < 1e-14);
        }
    }

    #[test]
    fn pchip_is_monotone_on_monotone_data() {
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = x.iter().map(|v| (v - 2.0).tanh()).collect();
        let p = Pchip::new(x, y).unwrap();
        let mut prev = p.eval(0.0).unwrap();
        let mut q = 0.01;
        while q < 4.75 {
            let v = p.eval(q).unwrap();
            assert!(v >= prev - 1e-12, "non-monotone at {q}");
            prev = v;
            q += 0.01;
        }
    }

    #[test]
    fn pchip_no_overshoot_on_step_data() {
        let p = Pchip::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let mut q = 0.0;
        while q <= 4.0 {
            let v = p.eval(q).unwrap();
            assert!((-1e-12..=1.0 + 1e-12).contains(&v), "overshoot {v} at {q}");
            q += 0.01;
        }
    }

    #[test]
    fn pchip_derivative_matches_finite_difference() {
        let x: Vec<f64> = (0..30).map(|i| -3.0 + i as f64 * 0.2).collect();
        let y: Vec<f64> = x.iter().map(|v| (2.0 * v).tanh() * -1.5).collect();
        let p = Pchip::new(x, y).unwrap();
        for &q in &[-2.5, -1.0, 0.05, 1.3, 2.4] {
            let h = 1e-6;
            let fd = (p.eval(q + h).unwrap() - p.eval(q - h).unwrap()) / (2.0 * h);
            assert!(
                (p.derivative(q) - fd).abs() < 1e-5,
                "derivative mismatch at {q}: {} vs {}",
                p.derivative(q),
                fd
            );
        }
    }

    #[test]
    fn pchip_accuracy_on_smooth_function() {
        let x: Vec<f64> = (0..=40).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let p = Pchip::new(x, y).unwrap();
        let mut q = 0.0;
        while q <= 4.0 {
            assert!((p.eval(q).unwrap() - q.sin()).abs() < 2e-3, "error at {q}");
            q += 0.013;
        }
    }

    #[test]
    fn pchip_two_point_degenerates_to_line() {
        let p = Pchip::new(vec![0.0, 2.0], vec![1.0, 5.0]).unwrap();
        assert!((p.eval(1.0).unwrap() - 3.0).abs() < 1e-14);
        assert!((p.derivative(1.0) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn pchip_linear_extrapolation_uses_edge_slope() {
        let x: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let p = Pchip::new(x, y).unwrap();
        assert!((p.eval(12.0).unwrap() - 25.0).abs() < 1e-10);
        assert!((p.eval(-2.0).unwrap() + 3.0).abs() < 1e-10);
    }
}
