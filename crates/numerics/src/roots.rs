//! One-dimensional root finding: bracketing, bisection, Brent and Newton.
//!
//! The describing-function solvers reduce to scalar root problems —
//! `T_f(A) − 1 = 0` for the natural-oscillation amplitude, and the lock-range
//! boundary search in `|φ_d|` — so robust bracketing methods are the
//! workhorses here. Brent's method is the default; Newton is provided for
//! polishing with analytic derivatives.

use crate::error::NumericsError;

/// Scans `[a, b]` with `n` uniform subintervals and returns every
/// subinterval across which `f` changes sign.
///
/// This is the standard "one pass" sweep that the paper's graphical method
/// performs implicitly when it draws a curve and reads off intersections:
/// every sign change of the residual corresponds to a crossing.
///
/// Intervals where either endpoint is non-finite are skipped. An exact zero
/// at a sample point is returned as a degenerate bracket `(x, x)`.
///
/// Degenerate requests — `n == 0`, a non-finite bound, or `b ≤ a` — return
/// an empty list rather than panicking, so callers upstream of user-supplied
/// sweep ranges degrade to "no crossings found".
///
/// ```
/// use shil_numerics::roots::bracket_scan;
///
/// let brackets = bracket_scan(|x: f64| x.sin(), -0.5, 7.0, 100);
/// assert_eq!(brackets.len(), 3); // roots at 0, π, 2π
/// ```
pub fn bracket_scan<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> Vec<(f64, f64)> {
    if n == 0 || !a.is_finite() || !b.is_finite() || b <= a {
        return Vec::new();
    }
    let mut out = Vec::new();
    let h = (b - a) / n as f64;
    let mut x0 = a;
    let mut f0 = f(a);
    for i in 1..=n {
        let x1 = a + h * i as f64;
        let f1 = f(x1);
        if f0.is_finite() && f1.is_finite() {
            if f0 == 0.0 {
                out.push((x0, x0));
            } else if f0 * f1 < 0.0 {
                out.push((x0, x1));
            }
        }
        x0 = x1;
        f0 = f1;
    }
    if f0 == 0.0 {
        out.push((x0, x0));
    }
    out
}

/// Bisection on a sign-changing bracket.
///
/// # Errors
///
/// - [`NumericsError::InvalidBracket`] if `f(a)` and `f(b)` have the same sign.
/// - [`NumericsError::NonFinite`] if `f` evaluates to NaN/±Inf at an endpoint
///   or any midpoint — without the guard a NaN midpoint silently steers every
///   subsequent halving toward `b`.
/// - [`NumericsError::NotConverged`] if the interval does not shrink below
///   `tol` within `max_iter` halvings; carries the interval midpoint.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericsError> {
    let mut fa = f(a);
    let fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(NumericsError::NonFinite {
            context: "bisect endpoint".into(),
            at: vec![if fa.is_finite() { b } else { a }],
        });
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumericsError::InvalidBracket { a, b });
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if !fm.is_finite() {
            return Err(NumericsError::NonFinite {
                context: "bisect midpoint".into(),
                at: vec![m],
            });
        }
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fa * fm < 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
    }
    Err(NumericsError::NotConverged {
        iterations: max_iter,
        residual: (b - a).abs(),
        best_x: vec![0.5 * (a + b)],
    })
}

/// Brent's method: inverse-quadratic/secant steps guarded by bisection.
///
/// The default scalar solver of the workspace — superlinear on smooth
/// residuals (like `T_f(A) − 1`) yet guaranteed to converge on any valid
/// bracket.
///
/// # Errors
///
/// - [`NumericsError::InvalidBracket`] if `[a, b]` does not bracket a root.
/// - [`NumericsError::NonFinite`] if `f` returns NaN/±Inf at an endpoint or
///   at any interpolated point.
/// - [`NumericsError::NotConverged`] on iteration exhaustion, carrying the
///   best bracketing iterate.
///
/// ```
/// use shil_numerics::roots::brent;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 100)?;
/// assert!((r - 2f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericsError> {
    let mut xa = a;
    let mut xb = b;
    let mut fa = f(xa);
    let mut fb = f(xb);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(NumericsError::NonFinite {
            context: "brent endpoint".into(),
            at: vec![if fa.is_finite() { xb } else { xa }],
        });
    }
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa * fb > 0.0 {
        return Err(NumericsError::InvalidBracket { a, b });
    }
    // Ensure |f(xb)| <= |f(xa)|: xb is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut xa, &mut xb);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut mflag = true;
    let mut xd = xa; // previous xc; only read after first iteration
    for _ in 0..max_iter {
        if fb == 0.0 || (xb - xa).abs() < tol {
            return Ok(xb);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            xa * fb * fc / ((fa - fb) * (fa - fc))
                + xb * fa * fc / ((fb - fa) * (fb - fc))
                + xc * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            xb - fb * (xb - xa) / (fb - fa)
        };

        let lo = (3.0 * xa + xb) / 4.0;
        let hi = xb;
        let (lo, hi) = if lo < hi { (lo, hi) } else { (hi, lo) };
        let cond1 = s < lo || s > hi;
        let cond2 = mflag && (s - xb).abs() >= (xb - xc).abs() / 2.0;
        let cond3 = !mflag && (s - xb).abs() >= (xc - xd).abs() / 2.0;
        let cond4 = mflag && (xb - xc).abs() < tol;
        let cond5 = !mflag && (xc - xd).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (xa + xb);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if !fs.is_finite() {
            return Err(NumericsError::NonFinite {
                context: "brent interpolated point".into(),
                at: vec![s],
            });
        }
        xd = xc;
        xc = xb;
        fc = fb;
        if fa * fs < 0.0 {
            xb = s;
            fb = fs;
        } else {
            xa = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut xa, &mut xb);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::NotConverged {
        iterations: max_iter,
        residual: fb.abs(),
        best_x: vec![xb],
    })
}

/// Newton's method with a caller-provided derivative.
///
/// Steps are clamped to the optional `bounds` interval if given. Used to
/// polish solutions found by the graphical (grid) pass.
///
/// # Errors
///
/// - [`NumericsError::NonFinite`] if the residual evaluates to NaN/±Inf.
/// - [`NumericsError::NotConverged`] on iteration exhaustion or when the
///   derivative vanishes; carries the best iterate seen so far.
pub fn newton<F, D>(
    mut f: F,
    mut df: D,
    x0: f64,
    tol: f64,
    max_iter: usize,
    bounds: Option<(f64, f64)>,
) -> Result<f64, NumericsError>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    let mut x = x0;
    let mut best_x = x0;
    let mut best_res = f64::INFINITY;
    for i in 0..max_iter {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(NumericsError::NonFinite {
                context: "newton 1-d residual".into(),
                at: vec![x],
            });
        }
        if fx.abs() < best_res {
            best_res = fx.abs();
            best_x = x;
        }
        if fx.abs() < tol {
            return Ok(x);
        }
        let dfx = df(x);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericsError::NotConverged {
                iterations: i,
                residual: best_res,
                best_x: vec![best_x],
            });
        }
        let mut xn = x - fx / dfx;
        if let Some((lo, hi)) = bounds {
            xn = xn.clamp(lo, hi);
        }
        if (xn - x).abs() < tol * (1.0 + x.abs()) {
            return Ok(xn);
        }
        x = xn;
    }
    Err(NumericsError::NotConverged {
        iterations: max_iter,
        residual: best_res,
        best_x: vec![best_x],
    })
}

/// Finds **all** roots of `f` on `[a, b]` by a scan-then-Brent sweep.
///
/// This mirrors the paper's "exactly one pass" graphical philosophy: a
/// uniform scan finds every sign change, then each bracket is polished.
/// Roots closer together than the scan resolution `(b − a)/n` may be missed;
/// choose `n` from problem knowledge (the DF curves here are smooth and have
/// a small number of crossings).
///
/// # Errors
///
/// Propagates failures from [`brent`] on any bracket (the scan itself cannot
/// fail).
pub fn all_roots<F: FnMut(f64) -> f64 + Copy>(
    f: F,
    a: f64,
    b: f64,
    n: usize,
    tol: f64,
) -> Result<Vec<f64>, NumericsError> {
    let mut roots = Vec::new();
    for (lo, hi) in bracket_scan(f, a, b, n) {
        if lo == hi {
            roots.push(lo);
        } else {
            roots.push(brent(f, lo, hi, tol, 200)?);
        }
    }
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(e, NumericsError::InvalidBracket { .. }));
    }

    #[test]
    fn brent_converges_fast_on_smooth_function() {
        let mut evals = 0usize;
        let r = brent(
            |x| {
                evals += 1;
                x.exp() - 2.0
            },
            0.0,
            1.0,
            1e-14,
            100,
        )
        .unwrap();
        assert!((r - 2f64.ln()).abs() < 1e-12);
        assert!(evals < 20, "brent took {evals} evaluations");
    }

    #[test]
    fn brent_handles_root_at_endpoint() {
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-14, 100).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-14, 100).unwrap(), 1.0);
    }

    #[test]
    fn brent_flat_tail_function() {
        // tanh-style saturation, the shape of T_f(A) − 1 for LC oscillators.
        let r = brent(|x: f64| (2.0 * (1.0 - x)).tanh(), 0.0, 3.0, 1e-13, 100).unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn newton_with_derivative() {
        let r = newton(|x| x * x - 2.0, |x| 2.0 * x, 1.0, 1e-14, 50, None).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn newton_respects_bounds() {
        // Without bounds Newton from x0=0.1 on 1/x - 1 overshoots; with a
        // clamp to [0.05, 10] it still converges to x = 1.
        let r = newton(
            |x| 1.0 / x - 1.0,
            |x| -1.0 / (x * x),
            0.1,
            1e-13,
            200,
            Some((0.05, 10.0)),
        )
        .unwrap();
        assert!((r - 1.0).abs() < 1e-8);
    }

    #[test]
    fn newton_zero_derivative_errors() {
        let e = newton(|_| 1.0, |_| 0.0, 0.0, 1e-12, 10, None).unwrap_err();
        assert!(matches!(e, NumericsError::NotConverged { .. }));
    }

    #[test]
    fn bisect_detects_nan_midpoint() {
        let e = bisect(
            |x: f64| if x.abs() < 0.3 { f64::NAN } else { x },
            -1.0,
            1.0,
            1e-12,
            100,
        )
        .unwrap_err();
        match e {
            NumericsError::NonFinite { context, at } => {
                assert!(context.contains("bisect"));
                assert!(at[0].abs() < 0.3);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn brent_detects_nan_endpoint() {
        let e = brent(
            |x: f64| if x < 0.0 { f64::NAN } else { x - 0.5 },
            -1.0,
            1.0,
            1e-12,
            100,
        )
        .unwrap_err();
        assert!(matches!(
            e,
            NumericsError::NonFinite { ref context, ref at }
                if context.contains("brent") && at == &vec![-1.0]
        ));
    }

    #[test]
    fn bisect_exhaustion_reports_midpoint_iterate() {
        // tol = 0 can never be reached; the error must carry a point inside
        // the original bracket.
        let e = bisect(|x| x - 0.3, -1.0, 1.0, 0.0, 8).unwrap_err();
        match e {
            NumericsError::NotConverged { best_x, .. } => {
                assert!(best_x[0] > -1.0 && best_x[0] < 1.0);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn bracket_scan_tolerates_degenerate_ranges() {
        assert!(bracket_scan(|x| x, f64::NAN, 1.0, 10).is_empty());
        assert!(bracket_scan(|x| x, 1.0, -1.0, 10).is_empty());
        assert!(bracket_scan(|x| x, -1.0, 1.0, 0).is_empty());
    }

    #[test]
    fn all_roots_of_sine() {
        let roots = all_roots(|x: f64| x.sin(), 0.5, 10.0, 400, 1e-13).unwrap();
        assert_eq!(roots.len(), 3);
        for (k, r) in roots.iter().enumerate() {
            assert!((r - PI * (k + 1) as f64).abs() < 1e-10);
        }
    }

    #[test]
    fn bracket_scan_detects_exact_zero_sample() {
        let brackets = bracket_scan(|x| x, -1.0, 1.0, 2);
        // x = 0 is a sample point and must be reported (as a degenerate bracket).
        assert!(brackets.iter().any(|&(a, b)| a == b && a == 0.0));
    }

    #[test]
    fn bracket_scan_skips_nan_regions() {
        let brackets = bracket_scan(
            |x: f64| if x.abs() < 0.1 { f64::NAN } else { x },
            -1.0,
            1.0,
            10,
        );
        // The sign change is hidden inside the NaN region; no false bracket.
        assert!(brackets.is_empty());
    }
}
