//! One-dimensional root finding: bracketing, bisection, Brent and Newton.
//!
//! The describing-function solvers reduce to scalar root problems —
//! `T_f(A) − 1 = 0` for the natural-oscillation amplitude, and the lock-range
//! boundary search in `|φ_d|` — so robust bracketing methods are the
//! workhorses here. Brent's method is the default; Newton is provided for
//! polishing with analytic derivatives.

use crate::error::NumericsError;

/// Scans `[a, b]` with `n` uniform subintervals and returns every
/// subinterval across which `f` changes sign.
///
/// This is the standard "one pass" sweep that the paper's graphical method
/// performs implicitly when it draws a curve and reads off intersections:
/// every sign change of the residual corresponds to a crossing.
///
/// Intervals where either endpoint is non-finite are skipped. An exact zero
/// at a sample point is returned as a degenerate bracket `(x, x)`.
///
/// ```
/// use shil_numerics::roots::bracket_scan;
///
/// let brackets = bracket_scan(|x: f64| x.sin(), -0.5, 7.0, 100);
/// assert_eq!(brackets.len(), 3); // roots at 0, π, 2π
/// ```
pub fn bracket_scan<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 1, "at least one subinterval required");
    assert!(b > a, "bracket_scan requires b > a");
    let mut out = Vec::new();
    let h = (b - a) / n as f64;
    let mut x0 = a;
    let mut f0 = f(a);
    for i in 1..=n {
        let x1 = a + h * i as f64;
        let f1 = f(x1);
        if f0.is_finite() && f1.is_finite() {
            if f0 == 0.0 {
                out.push((x0, x0));
            } else if f0 * f1 < 0.0 {
                out.push((x0, x1));
            }
        }
        x0 = x1;
        f0 = f1;
    }
    if f0 == 0.0 {
        out.push((x0, x0));
    }
    out
}

/// Bisection on a sign-changing bracket.
///
/// # Errors
///
/// - [`NumericsError::InvalidBracket`] if `f(a)` and `f(b)` have the same sign.
/// - [`NumericsError::NoConvergence`] if the interval does not shrink below
///   `tol` within `max_iter` halvings.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericsError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumericsError::InvalidBracket { a, b });
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fa * fm < 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: max_iter,
        residual: (b - a).abs(),
    })
}

/// Brent's method: inverse-quadratic/secant steps guarded by bisection.
///
/// The default scalar solver of the workspace — superlinear on smooth
/// residuals (like `T_f(A) − 1`) yet guaranteed to converge on any valid
/// bracket.
///
/// # Errors
///
/// - [`NumericsError::InvalidBracket`] if `[a, b]` does not bracket a root.
/// - [`NumericsError::NoConvergence`] on iteration exhaustion.
///
/// ```
/// use shil_numerics::roots::brent;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 100)?;
/// assert!((r - 2f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericsError> {
    let mut xa = a;
    let mut xb = b;
    let mut fa = f(xa);
    let mut fb = f(xb);
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa * fb > 0.0 {
        return Err(NumericsError::InvalidBracket { a, b });
    }
    // Ensure |f(xb)| <= |f(xa)|: xb is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut xa, &mut xb);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut mflag = true;
    let mut xd = xa; // previous xc; only read after first iteration
    for _ in 0..max_iter {
        if fb == 0.0 || (xb - xa).abs() < tol {
            return Ok(xb);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            xa * fb * fc / ((fa - fb) * (fa - fc))
                + xb * fa * fc / ((fb - fa) * (fb - fc))
                + xc * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            xb - fb * (xb - xa) / (fb - fa)
        };

        let lo = (3.0 * xa + xb) / 4.0;
        let hi = xb;
        let (lo, hi) = if lo < hi { (lo, hi) } else { (hi, lo) };
        let cond1 = s < lo || s > hi;
        let cond2 = mflag && (s - xb).abs() >= (xb - xc).abs() / 2.0;
        let cond3 = !mflag && (s - xb).abs() >= (xc - xd).abs() / 2.0;
        let cond4 = mflag && (xb - xc).abs() < tol;
        let cond5 = !mflag && (xc - xd).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (xa + xb);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        xd = xc;
        xc = xb;
        fc = fb;
        if fa * fs < 0.0 {
            xb = s;
            fb = fs;
        } else {
            xa = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut xa, &mut xb);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: max_iter,
        residual: fb.abs(),
    })
}

/// Newton's method with a caller-provided derivative.
///
/// Steps are clamped to the optional `bounds` interval if given. Used to
/// polish solutions found by the graphical (grid) pass.
///
/// # Errors
///
/// - [`NumericsError::NoConvergence`] on iteration exhaustion or when the
///   derivative vanishes.
pub fn newton<F, D>(
    mut f: F,
    mut df: D,
    x0: f64,
    tol: f64,
    max_iter: usize,
    bounds: Option<(f64, f64)>,
) -> Result<f64, NumericsError>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    let mut x = x0;
    for i in 0..max_iter {
        let fx = f(x);
        if fx.abs() < tol {
            return Ok(x);
        }
        let dfx = df(x);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericsError::NoConvergence {
                iterations: i,
                residual: fx.abs(),
            });
        }
        let mut xn = x - fx / dfx;
        if let Some((lo, hi)) = bounds {
            xn = xn.clamp(lo, hi);
        }
        if (xn - x).abs() < tol * (1.0 + x.abs()) {
            return Ok(xn);
        }
        x = xn;
    }
    Err(NumericsError::NoConvergence {
        iterations: max_iter,
        residual: f(x).abs(),
    })
}

/// Finds **all** roots of `f` on `[a, b]` by a scan-then-Brent sweep.
///
/// This mirrors the paper's "exactly one pass" graphical philosophy: a
/// uniform scan finds every sign change, then each bracket is polished.
/// Roots closer together than the scan resolution `(b − a)/n` may be missed;
/// choose `n` from problem knowledge (the DF curves here are smooth and have
/// a small number of crossings).
///
/// # Errors
///
/// Propagates failures from [`brent`] on any bracket (the scan itself cannot
/// fail).
pub fn all_roots<F: FnMut(f64) -> f64 + Copy>(
    f: F,
    a: f64,
    b: f64,
    n: usize,
    tol: f64,
) -> Result<Vec<f64>, NumericsError> {
    let mut roots = Vec::new();
    for (lo, hi) in bracket_scan(f, a, b, n) {
        if lo == hi {
            roots.push(lo);
        } else {
            roots.push(brent(f, lo, hi, tol, 200)?);
        }
    }
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(e, NumericsError::InvalidBracket { .. }));
    }

    #[test]
    fn brent_converges_fast_on_smooth_function() {
        let mut evals = 0usize;
        let r = brent(
            |x| {
                evals += 1;
                x.exp() - 2.0
            },
            0.0,
            1.0,
            1e-14,
            100,
        )
        .unwrap();
        assert!((r - 2f64.ln()).abs() < 1e-12);
        assert!(evals < 20, "brent took {evals} evaluations");
    }

    #[test]
    fn brent_handles_root_at_endpoint() {
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-14, 100).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-14, 100).unwrap(), 1.0);
    }

    #[test]
    fn brent_flat_tail_function() {
        // tanh-style saturation, the shape of T_f(A) − 1 for LC oscillators.
        let r = brent(|x: f64| (2.0 * (1.0 - x)).tanh(), 0.0, 3.0, 1e-13, 100).unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn newton_with_derivative() {
        let r = newton(|x| x * x - 2.0, |x| 2.0 * x, 1.0, 1e-14, 50, None).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn newton_respects_bounds() {
        // Without bounds Newton from x0=0.1 on 1/x - 1 overshoots; with a
        // clamp to [0.05, 10] it still converges to x = 1.
        let r = newton(
            |x| 1.0 / x - 1.0,
            |x| -1.0 / (x * x),
            0.1,
            1e-13,
            200,
            Some((0.05, 10.0)),
        )
        .unwrap();
        assert!((r - 1.0).abs() < 1e-8);
    }

    #[test]
    fn newton_zero_derivative_errors() {
        let e = newton(|_| 1.0, |_| 0.0, 0.0, 1e-12, 10, None).unwrap_err();
        assert!(matches!(e, NumericsError::NoConvergence { .. }));
    }

    #[test]
    fn all_roots_of_sine() {
        let roots = all_roots(|x: f64| x.sin(), 0.5, 10.0, 400, 1e-13).unwrap();
        assert_eq!(roots.len(), 3);
        for (k, r) in roots.iter().enumerate() {
            assert!((r - PI * (k + 1) as f64).abs() < 1e-10);
        }
    }

    #[test]
    fn bracket_scan_detects_exact_zero_sample() {
        let brackets = bracket_scan(|x| x, -1.0, 1.0, 2);
        // x = 0 is a sample point and must be reported (as a degenerate bracket).
        assert!(brackets.iter().any(|&(a, b)| a == b && a == 0.0));
    }

    #[test]
    fn bracket_scan_skips_nan_regions() {
        let brackets = bracket_scan(
            |x: f64| if x.abs() < 0.1 { f64::NAN } else { x },
            -1.0,
            1.0,
            10,
        );
        // The sign change is hidden inside the NaN region; no false bracket.
        assert!(brackets.is_empty());
    }
}
