//! Escalating solver fallbacks.
//!
//! The graphical SHIL pipeline sits on top of solvers that can fail in
//! benign ways: a Newton polish started from a crude grid intersection may
//! wander into a non-finite region of the describing function, and the
//! 1-D natural-oscillation closure can defeat Brent's interpolation steps
//! on nearly flat `T_f(A) − 1` tails. Rather than dropping the answer, the
//! workspace escalates:
//!
//! 1. plain damped Newton from the caller's seed,
//! 2. damped Newton restarted from grid-neighbor seeds and deterministic
//!    pseudo-random perturbations of the original seed,
//! 3. (1-D closures) bracketed bisection, which only needs sign information,
//! 4. accepting the coarse-grid (graphical) answer, flagged as degraded.
//!
//! Each rung is recorded in [`SolveMethod`] so callers can surface *how* a
//! number was obtained, not just the number.

use shil_runtime::Budget;

use crate::error::NumericsError;
use crate::newton::{newton_system_budgeted, NewtonOptions};
use crate::roots::{bisect, brent};

/// Which rung of the escalation ladder produced a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Plain damped Newton from the caller's seed.
    Newton,
    /// Damped Newton after restarting from an alternative seed; `restart` is
    /// the index (0-based) of the seed that succeeded.
    RestartedNewton {
        /// Index of the successful restart seed.
        restart: usize,
    },
    /// Bracketed bisection, the sign-only terminal rung for 1-D closures.
    Bisection,
    /// The coarse-grid (graphical) answer was accepted without refinement.
    CoarseGrid,
}

/// A solution together with the method that produced it and the number of
/// solver attempts spent.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// The escalation rung that succeeded.
    pub method: SolveMethod,
    /// Total solver attempts, including the failed ones.
    pub attempts: usize,
}

impl FallbackSolution {
    /// Whether the solution came from anything other than the first-choice
    /// Newton solve (i.e. an escalation rung was needed).
    pub fn escalated(&self) -> bool {
        self.method != SolveMethod::Newton
    }
}

/// Options controlling [`newton_with_restarts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallbackOptions {
    /// Options forwarded to every Newton attempt.
    pub newton: NewtonOptions,
    /// Number of deterministic pseudo-random perturbations of the original
    /// seed to try after the explicit neighbor seeds are exhausted.
    pub random_restarts: usize,
    /// Relative scale of the pseudo-random perturbations
    /// (`x_j ← x_j · (1 + scale·u) + scale·u`, `u ∈ [−1, 1]`).
    pub perturbation: f64,
    /// Seed for the deterministic perturbation stream. Fixed by default so
    /// repeated runs escalate identically.
    pub seed: u64,
}

impl Default for FallbackOptions {
    fn default() -> Self {
        FallbackOptions {
            newton: NewtonOptions::default(),
            random_restarts: 4,
            perturbation: 0.05,
            seed: 0x5_8117,
        }
    }
}

/// Deterministic xorshift64* stream used for restart perturbations.
///
/// Not a statistical RNG — it only needs to scatter restart seeds around the
/// original guess reproducibly, without pulling in a dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform sample in `[−1, 1]` from the perturbation stream.
fn uniform_pm1(state: &mut u64) -> f64 {
    ((xorshift(state) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// Damped Newton with an escalation ladder of restart seeds.
///
/// Tries `x0` first; on failure walks the explicit `neighbor_seeds`
/// (typically the surrounding grid nodes of a graphical intersection), then
/// `opts.random_restarts` deterministic perturbations of `x0`. The first
/// converged attempt wins and reports which rung succeeded.
///
/// # Errors
///
/// If every attempt fails, returns the error whose diagnostics are most
/// useful: a [`NumericsError::NotConverged`] with the smallest residual if
/// any attempt produced one, otherwise the error from the last attempt.
pub fn newton_with_restarts<F>(
    f: F,
    x0: &[f64],
    neighbor_seeds: &[Vec<f64>],
    opts: &FallbackOptions,
) -> Result<FallbackSolution, NumericsError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    newton_with_restarts_budgeted(f, x0, neighbor_seeds, opts, &Budget::unlimited())
}

/// [`newton_with_restarts`] under an execution [`Budget`].
///
/// The budget is threaded into every Newton attempt, so a tripped budget
/// stops the ladder at the next iteration boundary — including *between*
/// rungs, because each attempt re-checks the budget before evaluating the
/// model even once.
///
/// # Errors
///
/// [`NumericsError::Cancelled`] as soon as the budget trips (the remaining
/// rungs are not tried), plus every failure mode of
/// [`newton_with_restarts`].
pub fn newton_with_restarts_budgeted<F>(
    mut f: F,
    x0: &[f64],
    neighbor_seeds: &[Vec<f64>],
    opts: &FallbackOptions,
    budget: &Budget,
) -> Result<FallbackSolution, NumericsError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let mut attempts = 0usize;
    let mut best_err: Option<NumericsError> = None;

    // `Err` aborts the whole ladder (cancellation); `Ok(None)` means "this
    // seed failed, try the next rung".
    let try_seed = |seed: &[f64],
                    f: &mut F,
                    attempts: &mut usize,
                    best_err: &mut Option<NumericsError>|
     -> Result<Option<Vec<f64>>, NumericsError> {
        *attempts += 1;
        match newton_system_budgeted(|x, r| f(x, r), seed, &opts.newton, budget) {
            Ok(x) => Ok(Some(x)),
            // Cancellation is not a rung failure: stop escalating and let
            // the caller see the budget trip directly.
            Err(e @ NumericsError::Cancelled { .. }) => Err(e),
            Err(e) => {
                let better = match (&e, best_err.as_ref()) {
                    (_, None) => true,
                    (
                        NumericsError::NotConverged { residual: new, .. },
                        Some(NumericsError::NotConverged { residual: old, .. }),
                    ) => new < old,
                    // A NotConverged (with a best iterate) beats any
                    // diagnostics-free failure mode.
                    (NumericsError::NotConverged { .. }, Some(_)) => true,
                    _ => false,
                };
                if better {
                    *best_err = Some(e);
                }
                Ok(None)
            }
        }
    };

    if let Some(x) = try_seed(x0, &mut f, &mut attempts, &mut best_err)? {
        return Ok(FallbackSolution {
            x,
            method: SolveMethod::Newton,
            attempts,
        });
    }
    // First-choice Newton failed: everything past this point is a rung of
    // the escalation ladder.
    shil_observe::incr("shil_numerics_fallback_escalations_total");

    for (i, seed) in neighbor_seeds.iter().enumerate() {
        if seed.len() != x0.len() || seed.iter().any(|v| !v.is_finite()) {
            continue;
        }
        if let Some(x) = try_seed(seed, &mut f, &mut attempts, &mut best_err)? {
            return Ok(FallbackSolution {
                x,
                method: SolveMethod::RestartedNewton { restart: i },
                attempts,
            });
        }
    }

    let mut state = opts.seed | 1;
    let mut perturbed = x0.to_vec();
    for i in 0..opts.random_restarts {
        for (p, &orig) in perturbed.iter_mut().zip(x0) {
            let u = uniform_pm1(&mut state);
            *p = orig * (1.0 + opts.perturbation * u) + opts.perturbation * u;
        }
        if let Some(x) = try_seed(&perturbed, &mut f, &mut attempts, &mut best_err)? {
            return Ok(FallbackSolution {
                x,
                method: SolveMethod::RestartedNewton {
                    restart: neighbor_seeds.len() + i,
                },
                attempts,
            });
        }
    }

    shil_observe::incr("shil_numerics_fallback_exhausted_total");
    Err(best_err.unwrap_or(NumericsError::NotConverged {
        iterations: 0,
        residual: f64::INFINITY,
        best_x: x0.to_vec(),
    }))
}

/// 1-D root solve with a Brent → bisection escalation on a fixed bracket.
///
/// Brent's interpolation steps are the fast path; if they fail (including on
/// non-finite interpolated evaluations that happen to miss in bisection's
/// midpoint sequence), plain bisection retries with only sign information.
///
/// # Errors
///
/// Propagates the bisection error if both rungs fail, or
/// [`NumericsError::InvalidBracket`] immediately when the bracket has no
/// sign change (escalation cannot fix a bad bracket).
pub fn solve_1d_escalating<F>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<(f64, SolveMethod), NumericsError>
where
    F: FnMut(f64) -> f64,
{
    match brent(&mut f, a, b, tol, max_iter) {
        Ok(x) => Ok((x, SolveMethod::Newton)),
        Err(e @ NumericsError::InvalidBracket { .. }) => Err(e),
        Err(_) => {
            shil_observe::incr("shil_numerics_fallback_escalations_total");
            let x = bisect(&mut f, a, b, tol, max_iter.max(128))?;
            Ok((x, SolveMethod::Bisection))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_problem_stays_on_plain_newton() {
        let sol = newton_with_restarts(
            |x, r| {
                r[0] = x[0] * x[0] - 4.0;
            },
            &[1.0],
            &[],
            &FallbackOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.method, SolveMethod::Newton);
        assert_eq!(sol.attempts, 1);
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn neighbor_seed_rescues_non_finite_start() {
        // The residual is NaN for x < 0, so the initial seed at −1 fails
        // immediately; the neighbor seed at +1 converges.
        let sol = newton_with_restarts(
            |x, r| {
                r[0] = x[0].sqrt() - 2.0;
            },
            &[-1.0],
            &[vec![1.0]],
            &FallbackOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.method, SolveMethod::RestartedNewton { restart: 0 });
        assert!(sol.attempts >= 2);
        assert!((sol.x[0] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn random_restarts_are_deterministic() {
        let run = || {
            newton_with_restarts(
                |x, r| {
                    // Fails from the poisoned seed; succeeds only once a
                    // perturbed restart lands in x > 0.
                    r[0] = if x[0] <= 0.0 { f64::NAN } else { x[0].ln() };
                },
                &[0.0],
                &[],
                &FallbackOptions {
                    random_restarts: 8,
                    perturbation: 0.5,
                    ..FallbackOptions::default()
                },
            )
        };
        let a = run().unwrap();
        let b = run().unwrap();
        assert_eq!(a, b);
        assert!(matches!(a.method, SolveMethod::RestartedNewton { .. }));
        assert!((a.x[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn total_failure_reports_best_diagnostics() {
        let e = newton_with_restarts(
            |x, r| {
                r[0] = x[0] * x[0] + 1.0; // no real root
            },
            &[2.0],
            &[vec![5.0]],
            &FallbackOptions {
                random_restarts: 1,
                newton: NewtonOptions {
                    max_iter: 10,
                    ..NewtonOptions::default()
                },
                ..FallbackOptions::default()
            },
        )
        .unwrap_err();
        match e {
            NumericsError::NotConverged {
                residual, best_x, ..
            } => {
                assert!(residual.is_finite());
                assert!(!best_x.is_empty());
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn skips_malformed_neighbor_seeds() {
        let sol = newton_with_restarts(
            |x, r| r[0] = x[0].sqrt() - 1.0,
            &[-1.0],
            &[vec![f64::NAN], vec![1.0, 2.0], vec![2.0]],
            &FallbackOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.method, SolveMethod::RestartedNewton { restart: 2 });
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn one_d_escalates_to_bisection() {
        // Brent's first secant step on x³ − 0.3 over [0, 1] lands at
        // x = 0.3, inside the NaN hole; bisection's dyadic midpoints
        // converge to the root near 0.669 without ever entering it.
        let f = |x: f64| {
            if (x - 0.3).abs() < 0.02 {
                f64::NAN
            } else {
                x * x * x - 0.3
            }
        };
        let (x, method) = solve_1d_escalating(f, 0.0, 1.0, 1e-10, 100).unwrap();
        assert_eq!(method, SolveMethod::Bisection);
        assert!((x - 0.3f64.cbrt()).abs() < 1e-8);
    }

    #[test]
    fn tripped_budget_aborts_the_ladder_without_trying_more_rungs() {
        let token = shil_runtime::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_token(token);
        let mut evals = 0usize;
        let e = newton_with_restarts_budgeted(
            |x, r| {
                evals += 1;
                r[0] = x[0] * x[0] + 1.0; // would otherwise exhaust every rung
            },
            &[2.0],
            &[vec![5.0], vec![-5.0]],
            &FallbackOptions::default(),
            &budget,
        )
        .unwrap_err();
        assert!(matches!(e, NumericsError::Cancelled { .. }), "got {e:?}");
        assert_eq!(evals, 0, "pre-cancelled ladder must not evaluate the model");
    }

    #[test]
    fn mid_ladder_cancellation_stops_before_remaining_seeds() {
        // Cancel during the first attempt; rung 2 (the neighbor seed that
        // would converge) must never run.
        let token = shil_runtime::CancelToken::new();
        let budget = Budget::unlimited().with_token(token.clone());
        let mut first_seed_evals = 0usize;
        let mut rescue_seed_seen = false;
        let e = newton_with_restarts_budgeted(
            |x, r| {
                if x[0] > 50.0 {
                    rescue_seed_seen = true;
                }
                first_seed_evals += 1;
                if first_seed_evals == 2 {
                    token.cancel();
                }
                r[0] = x[0] * x[0] + 1.0;
            },
            &[2.0],
            &[vec![100.0]],
            &FallbackOptions::default(),
            &budget,
        )
        .unwrap_err();
        assert!(matches!(e, NumericsError::Cancelled { .. }), "got {e:?}");
        assert!(
            !rescue_seed_seen,
            "cancelled ladder must not try more rungs"
        );
    }

    #[test]
    fn one_d_bad_bracket_fails_fast() {
        let e = solve_1d_escalating(|x| x * x + 1.0, -1.0, 1.0, 1e-10, 100).unwrap_err();
        assert!(matches!(e, NumericsError::InvalidBracket { .. }));
    }
}
