//! Dense row-major matrices and LU factorization with partial pivoting.
//!
//! MNA systems in the circuit simulator and Jacobians in the SHIL solver are
//! small (a handful to a few dozen unknowns), so a straightforward dense LU
//! is both simpler and faster than a sparse solver at this scale. The
//! factorization is generic over a [`Scalar`] trait implemented for `f64`
//! and [`Complex64`] (the latter used by AC analysis).

use crate::complex::Complex64;
use crate::error::NumericsError;

/// Scalar field over which [`Dense`] matrices can be factorized.
///
/// This trait is sealed in spirit: the workspace only ever needs `f64` and
/// [`Complex64`], and the dense kernels are written against exactly the
/// operations listed here.
pub trait Scalar:
    Copy
    + PartialEq
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// A non-negative magnitude used for pivot selection.
    fn modulus(self) -> f64;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex64 {
    #[inline]
    fn zero() -> Self {
        Complex64::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex64::ONE
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
}

/// A dense, row-major, square-or-rectangular matrix over a [`Scalar`].
///
/// ```
/// use shil_numerics::Matrix;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// Real dense matrix (`f64` entries).
pub type Matrix = Dense<f64>;
/// Complex dense matrix ([`Complex64`] entries), used by AC analysis.
pub type CMatrix = Dense<Complex64>;

impl<T: Scalar> Dense<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Dense {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Dense {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read-only view of the row-major entry storage.
    ///
    /// Exists so callers can scan all entries at once (e.g. the non-finite
    /// guards in [`crate::newton`]) without a doubly indexed loop.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Resets every entry to zero, keeping the allocation.
    ///
    /// The MNA assembly loop re-stamps the matrix on every Newton iteration,
    /// so avoiding reallocation matters in the transient inner loop.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = T::zero();
        }
    }

    /// Adds `value` to entry `(i, j)` (the MNA "stamp" operation).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, value: T) {
        let c = self.cols;
        self.data[i * c + j] = self.data[i * c + j] + value;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![T::zero(); self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, xv) in row.iter().zip(x) {
                acc = acc + *a * *xv;
            }
            *yi = acc;
        }
        y
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting on an
    /// augmented working copy.
    ///
    /// The elimination runs on a flat copy of the entries with the
    /// right-hand side carried along, so only the value buffer and the
    /// solution vector are allocated — `self` is never cloned as a matrix
    /// and no permutation vector is materialized. For repeated solves
    /// against the same matrix use [`Lu::factorize`]; for repeated solves
    /// against the same *structure* use [`crate::solver::DenseSolver`] or
    /// [`crate::sparse::SparseSolver`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] if a pivot is exactly zero
    /// or smaller than `1e-300` in magnitude.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumericsError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        let n = self.rows;
        assert_eq!(b.len(), n, "dimension mismatch in solve");
        let mut w: Vec<T> = self.data.clone();
        let mut x: Vec<T> = b.to_vec();
        for k in 0..n {
            // Partial pivoting: pick the largest-magnitude entry in column k.
            let mut pivot_row = k;
            let mut pivot_mag = w[k * n + k].modulus();
            for i in (k + 1)..n {
                let mag = w[i * n + k].modulus();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            // `partial_cmp` keeps the NaN-rejecting behaviour of `!(a > b)`.
            if pivot_mag.partial_cmp(&1e-300) != Some(std::cmp::Ordering::Greater) {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    w.swap(k * n + j, pivot_row * n + j);
                }
                x.swap(k, pivot_row);
            }
            let pivot = w[k * n + k];
            for i in (k + 1)..n {
                let m = w[i * n + k] / pivot;
                w[i * n + k] = m;
                for j in (k + 1)..n {
                    let wkj = w[k * n + j];
                    w[i * n + j] = w[i * n + j] - m * wkj;
                }
                // Forward substitution fused into the elimination: x[k] is
                // final by the time column k is processed, and each x[i]
                // receives its updates in the same increasing-k order the
                // deferred substitution would use, so results are identical.
                let xk = x[k];
                x[i] = x[i] - m * xk;
            }
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            let row = &w[i * n..(i + 1) * n];
            for (u, xj) in row[i + 1..].iter().zip(&x[i + 1..]) {
                acc = acc - *u * *xj;
            }
            x[i] = acc / w[i * n + i];
        }
        Ok(x)
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Dense<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Dense<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.cols + j]
    }
}

/// An LU factorization with partial pivoting, reusable across right-hand sides.
///
/// ```
/// use shil_numerics::linalg::Lu;
/// use shil_numerics::Matrix;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = Lu::factorize(a)?;
/// let x = lu.solve(&[10.0, 12.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu<T: Scalar> {
    lu: Dense<T>,
    perm: Vec<usize>,
    sign_flips: usize,
}

impl<T: Scalar> Lu<T> {
    /// Factorizes `a` (consumed) with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] when the best available
    /// pivot in some column has magnitude below `1e-300`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factorize(mut a: Dense<T>) -> Result<Self, NumericsError> {
        assert_eq!(a.rows, a.cols, "LU requires a square matrix");
        let n = a.rows;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign_flips = 0usize;

        for k in 0..n {
            // Partial pivoting: pick the largest-magnitude entry in column k.
            let mut pivot_row = k;
            let mut pivot_mag = a[(k, k)].modulus();
            for i in (k + 1)..n {
                let mag = a[(i, k)].modulus();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            // `partial_cmp` keeps the NaN-rejecting behaviour of `!(a > b)`.
            if pivot_mag.partial_cmp(&1e-300) != Some(std::cmp::Ordering::Greater) {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign_flips += 1;
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let m = a[(i, k)] / pivot;
                a[(i, k)] = m;
                for j in (k + 1)..n {
                    let akj = a[(k, j)];
                    a[(i, j)] = a[(i, j)] - m * akj;
                }
            }
        }
        Ok(Lu {
            lu: a,
            perm,
            sign_flips,
        })
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "dimension mismatch in solve");
        // Apply permutation.
        let mut x: Vec<T> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-lower-triangular L.
        for i in 1..n {
            let mut acc = x[i];
            let row = &self.lu.data[i * n..(i + 1) * n];
            for (l, xj) in row[..i].iter().zip(&x[..i]) {
                acc = acc - *l * *xj;
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            let row = &self.lu.data[i * n..(i + 1) * n];
            for (u, xj) in row[i + 1..].iter().zip(&x[i + 1..]) {
                acc = acc - *u * *xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> T {
        let n = self.lu.rows;
        let mut d = T::one();
        for i in 0..n {
            d = d * self.lu[(i, i)];
        }
        if self.sign_flips % 2 == 1 {
            d = -d;
        }
        d
    }

    /// Matrix dimension `n` of the factorized `n × n` system.
    pub fn dim(&self) -> usize {
        self.lu.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = a.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, NumericsError::SingularMatrix { .. }));
    }

    #[test]
    fn residual_is_small_for_well_conditioned_system() {
        let a = Matrix::from_rows(&[
            &[10.0, -1.0, 2.0, 0.0],
            &[-1.0, 11.0, -1.0, 3.0],
            &[2.0, -1.0, 10.0, -1.0],
            &[0.0, 3.0, -1.0, 8.0],
        ]);
        let b = [6.0, 25.0, -11.0, 15.0];
        let x = a.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn determinant_with_pivots() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::factorize(a).unwrap();
        assert!((lu.det() + 6.0).abs() < 1e-12);
        assert_eq!(lu.dim(), 2);
    }

    #[test]
    fn complex_solve_matches_hand_computation() {
        use crate::complex::Complex64 as C;
        // (1+i)·x = 2  =>  x = 1 - i
        let a = CMatrix::from_rows(&[&[C::new(1.0, 1.0)]]);
        let x = a.solve(&[C::new(2.0, 0.0)]).unwrap();
        assert!((x[0] - C::new(1.0, -1.0)).abs() < 1e-14);
    }

    #[test]
    fn complex_system_residual() {
        use crate::complex::Complex64 as C;
        let a = CMatrix::from_rows(&[
            &[C::new(2.0, 1.0), C::new(-1.0, 0.5)],
            &[C::new(0.0, -1.0), C::new(3.0, 0.0)],
        ]);
        let b = [C::new(1.0, 0.0), C::new(0.0, 2.0)];
        let x = a.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((*ri - *bi).abs() < 1e-13);
        }
    }

    #[test]
    fn add_at_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_at(0, 0, 1.5);
        a.add_at(0, 0, 2.5);
        assert_eq!(a[(0, 0)], 4.0);
        a.clear();
        assert_eq!(a[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn lu_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        let _ = Lu::factorize(a);
    }

    #[test]
    fn mul_vec_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }
}
