//! Rectangular 2-D sampled scalar fields.
//!
//! The graphical SHIL procedure evaluates `T_f(A, φ)` and `∠−I₁(A, φ)` on a
//! rectangular `(φ, A)` grid and extracts level sets. [`Grid2`] owns the axes
//! and samples; [`crate::contour`] walks it with marching squares.

use crate::error::NumericsError;

/// A scalar field `z(x, y)` sampled on a rectangular grid.
///
/// Values are stored row-major with `y` as the row index:
/// `value(ix, iy) = data[iy * nx + ix]`.
///
/// ```
/// use shil_numerics::Grid2;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let g = Grid2::from_fn(0.0, 1.0, 11, 0.0, 2.0, 21, |x, y| x + y)?;
/// assert_eq!(g.value(10, 20), 3.0);
/// assert!((g.bilinear(0.5, 1.0) - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2 {
    xs: Vec<f64>,
    ys: Vec<f64>,
    data: Vec<f64>,
}

impl Grid2 {
    /// Builds a grid by evaluating `f(x, y)` on the tensor product of two
    /// uniform axes with `nx × ny` points (inclusive of both endpoints).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] if either axis has fewer than
    /// two points or a degenerate extent.
    pub fn from_fn<F: FnMut(f64, f64) -> f64>(
        x0: f64,
        x1: f64,
        nx: usize,
        y0: f64,
        y1: f64,
        ny: usize,
        mut f: F,
    ) -> Result<Self, NumericsError> {
        if nx < 2 || ny < 2 {
            return Err(NumericsError::InvalidInput(
                "grid axes need at least two points".into(),
            ));
        }
        // `partial_cmp` keeps the NaN-rejecting behaviour of `!(a > b)`.
        if x1.partial_cmp(&x0) != Some(std::cmp::Ordering::Greater)
            || y1.partial_cmp(&y0) != Some(std::cmp::Ordering::Greater)
        {
            return Err(NumericsError::InvalidInput(
                "grid extents must be positive".into(),
            ));
        }
        let xs: Vec<f64> = (0..nx)
            .map(|i| x0 + (x1 - x0) * i as f64 / (nx - 1) as f64)
            .collect();
        let ys: Vec<f64> = (0..ny)
            .map(|j| y0 + (y1 - y0) * j as f64 / (ny - 1) as f64)
            .collect();
        let mut data = Vec::with_capacity(nx * ny);
        for &y in &ys {
            for &x in &xs {
                data.push(f(x, y));
            }
        }
        Ok(Grid2 { xs, ys, data })
    }

    /// Builds a grid from explicit axes and row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] on size mismatch or
    /// non-increasing axes.
    pub fn from_data(xs: Vec<f64>, ys: Vec<f64>, data: Vec<f64>) -> Result<Self, NumericsError> {
        if xs.len() < 2 || ys.len() < 2 {
            return Err(NumericsError::InvalidInput(
                "grid axes need at least two points".into(),
            ));
        }
        if data.len() != xs.len() * ys.len() {
            return Err(NumericsError::InvalidInput(format!(
                "data length {} != {} x {}",
                data.len(),
                xs.len(),
                ys.len()
            )));
        }
        for axis in [&xs, &ys] {
            for w in axis.windows(2) {
                // NaN-rejecting strict-increase check.
                if w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater) {
                    return Err(NumericsError::InvalidInput(
                        "grid axes must be strictly increasing".into(),
                    ));
                }
            }
        }
        Ok(Grid2 { xs, ys, data })
    }

    /// The x-axis samples.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-axis samples.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Number of points along x.
    pub fn nx(&self) -> usize {
        self.xs.len()
    }

    /// Number of points along y.
    pub fn ny(&self) -> usize {
        self.ys.len()
    }

    /// Sample value at grid indices `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn value(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx() && iy < self.ny(), "grid index out of bounds");
        self.data[iy * self.xs.len() + ix]
    }

    /// Bilinear interpolation at `(x, y)`, clamped to the grid domain.
    pub fn bilinear(&self, x: f64, y: f64) -> f64 {
        let (ix, tx) = locate_uniformish(&self.xs, x);
        let (iy, ty) = locate_uniformish(&self.ys, y);
        let v00 = self.value(ix, iy);
        let v10 = self.value(ix + 1, iy);
        let v01 = self.value(ix, iy + 1);
        let v11 = self.value(ix + 1, iy + 1);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Central-difference gradient `(∂z/∂x, ∂z/∂y)` at grid indices.
    ///
    /// One-sided differences are used at the boundary.
    pub fn gradient_at(&self, ix: usize, iy: usize) -> (f64, f64) {
        let nx = self.nx();
        let ny = self.ny();
        let gx = if ix == 0 {
            (self.value(1, iy) - self.value(0, iy)) / (self.xs[1] - self.xs[0])
        } else if ix == nx - 1 {
            (self.value(nx - 1, iy) - self.value(nx - 2, iy)) / (self.xs[nx - 1] - self.xs[nx - 2])
        } else {
            (self.value(ix + 1, iy) - self.value(ix - 1, iy)) / (self.xs[ix + 1] - self.xs[ix - 1])
        };
        let gy = if iy == 0 {
            (self.value(ix, 1) - self.value(ix, 0)) / (self.ys[1] - self.ys[0])
        } else if iy == ny - 1 {
            (self.value(ix, ny - 1) - self.value(ix, ny - 2)) / (self.ys[ny - 1] - self.ys[ny - 2])
        } else {
            (self.value(ix, iy + 1) - self.value(ix, iy - 1)) / (self.ys[iy + 1] - self.ys[iy - 1])
        };
        (gx, gy)
    }

    /// Minimum and maximum sample values (ignoring NaN samples).
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

/// Locates `x` in the (sorted) axis, returning the interval index and the
/// normalized coordinate within it, clamping out-of-range queries.
fn locate_uniformish(axis: &[f64], x: f64) -> (usize, f64) {
    let n = axis.len();
    if x <= axis[0] {
        return (0, 0.0);
    }
    if x >= axis[n - 1] {
        return (n - 2, 1.0);
    }
    let i = match axis.binary_search_by(|v| v.partial_cmp(&x).expect("NaN in axis")) {
        Ok(i) => i.min(n - 2),
        Err(i) => i - 1,
    };
    let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_samples_correctly() {
        let g = Grid2::from_fn(0.0, 2.0, 3, 10.0, 12.0, 3, |x, y| 100.0 * x + y).unwrap();
        assert_eq!(g.value(0, 0), 10.0);
        assert_eq!(g.value(2, 0), 210.0);
        assert_eq!(g.value(1, 2), 112.0);
        assert_eq!(g.nx(), 3);
        assert_eq!(g.ny(), 3);
    }

    #[test]
    fn bilinear_is_exact_for_bilinear_fields() {
        let g = Grid2::from_fn(0.0, 1.0, 5, 0.0, 1.0, 5, |x, y| {
            2.0 + 3.0 * x - y + 4.0 * x * y
        })
        .unwrap();
        for &(x, y) in &[(0.13, 0.4), (0.77, 0.91), (0.5, 0.5)] {
            let expect = 2.0 + 3.0 * x - y + 4.0 * x * y;
            assert!((g.bilinear(x, y) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_clamps_outside_domain() {
        let g = Grid2::from_fn(0.0, 1.0, 2, 0.0, 1.0, 2, |x, _| x).unwrap();
        assert_eq!(g.bilinear(-5.0, 0.5), 0.0);
        assert_eq!(g.bilinear(5.0, 0.5), 1.0);
    }

    #[test]
    fn gradient_of_linear_field() {
        let g = Grid2::from_fn(0.0, 1.0, 11, 0.0, 1.0, 11, |x, y| 3.0 * x - 2.0 * y).unwrap();
        for (ix, iy) in [(0, 0), (5, 5), (10, 10), (0, 10)] {
            let (gx, gy) = g.gradient_at(ix, iy);
            assert!((gx - 3.0).abs() < 1e-12);
            assert!((gy + 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn range_ignores_nan() {
        let g = Grid2::from_data(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, f64::NAN, -3.0, 2.0],
        )
        .unwrap();
        assert_eq!(g.range(), (-3.0, 2.0));
    }

    #[test]
    fn from_data_validates() {
        assert!(Grid2::from_data(vec![0.0], vec![0.0, 1.0], vec![0.0, 0.0]).is_err());
        assert!(Grid2::from_data(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(
            Grid2::from_data(vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0, 0.0, 0.0]).is_err()
        );
    }
}
