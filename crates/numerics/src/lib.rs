//! Small, dependency-free numerical kernel for the `shil` workspace.
//!
//! The systems that arise in describing-function analysis of LC oscillators
//! and in the companion MNA circuit simulator are all *small and dense*:
//! MNA matrices with a handful of unknowns, 1-D and 2-D Newton solves,
//! Fourier coefficients of uniformly sampled periodic signals, and level-set
//! (contour) extraction on modest 2-D grids. This crate implements exactly
//! those kernels, with tests and property-based invariants, rather than
//! pulling in a general-purpose linear-algebra dependency.
//!
//! # Modules
//!
//! - [`complex`] — a minimal `Complex64` with full arithmetic and polar form.
//! - [`linalg`] — dense row-major matrices and partial-pivot LU over both
//!   `f64` and [`complex::Complex64`].
//! - [`roots`] — bracketing, bisection, Brent and 1-D Newton root finding.
//! - [`newton`] — small damped Newton systems with numerical Jacobians.
//! - [`fallback`] — escalating solve policies (Newton → restarts → bisection).
//! - [`quad`] — trapezoid/Simpson quadrature and periodic trapezoid rules.
//! - [`fft`] — iterative radix-2 FFT and Fourier-series helpers.
//! - [`interp`] — linear and PCHIP (monotone cubic) interpolation.
//! - [`grid`] — rectangular 2-D sampled scalar fields.
//! - [`contour`] — marching-squares level sets and polyline intersection.
//! - [`solver`] — the [`solver::LinearSolver`] abstraction: preallocated
//!   dense LU and a factorization-bypass wrapper with iterative-refinement
//!   certification.
//! - [`sparse`] — CSR matrices with symbolic-analysis reuse
//!   ([`sparse::SparsePattern`]) and a fill-reducing ordering.
//! - [`iterative`] — restarted GMRES(m) with an ILU(0) preconditioner over
//!   the same CSR pattern: the large-N [`solver::LinearSolver`] tier, with
//!   certified solves and exact-LU fallback.
//! - [`batch`] — lane-batched structure-of-arrays refactorization for
//!   lock-step parameter sweeps, bit-identical per lane to the scalar
//!   kernels.
//! - [`parallel`] — deterministic scoped-thread fan-out
//!   ([`parallel::ordered_map`]).
//!
//! # Example
//!
//! ```
//! use shil_numerics::roots::brent;
//!
//! # fn main() -> Result<(), shil_numerics::NumericsError> {
//! // Solve cos(x) = x.
//! let root = brent(|x| x.cos() - x, 0.0, 1.0, 1e-12, 100)?;
//! assert!((root.cos() - root).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod complex;
pub mod contour;
pub mod fallback;
pub mod fft;
pub mod grid;
pub mod interp;
pub mod iterative;
pub mod linalg;
pub mod newton;
pub mod parallel;
pub mod quad;
pub mod roots;
pub mod solver;
pub mod sparse;

mod error;

pub use complex::Complex64;
pub use error::NumericsError;
pub use grid::Grid2;
pub use linalg::{CMatrix, Matrix};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NumericsError>;

/// Wrap an angle into the half-open interval `(-π, π]`.
///
/// Phase comparisons in the SHIL solver are all performed on wrapped angles
/// so that level sets of `∠−I₁` do not suffer branch-cut artifacts.
///
/// ```
/// use shil_numerics::wrap_angle;
/// use std::f64::consts::PI;
///
/// assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_angle(-3.5 * PI) - 0.5 * PI).abs() < 1e-12);
/// ```
pub fn wrap_angle(theta: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut t = theta % two_pi;
    if t <= -std::f64::consts::PI {
        t += two_pi;
    } else if t > std::f64::consts::PI {
        t -= two_pi;
    }
    t
}

/// Signed smallest difference `a − b` between two angles, in `(-π, π]`.
///
/// ```
/// use shil_numerics::angle_diff;
/// use std::f64::consts::PI;
///
/// assert!((angle_diff(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-12);
/// ```
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_angle(a - b)
}

/// Relative-or-absolute closeness check used pervasively in tests.
///
/// Returns `true` when `|a − b| ≤ atol + rtol·max(|a|, |b|)`.
pub fn approx_eq(a: f64, b: f64, rtol: f64, atol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn wrap_angle_identity_in_range() {
        for &t in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            assert!((wrap_angle(t) - t).abs() < 1e-15, "t={t}");
        }
    }

    #[test]
    fn wrap_angle_boundary() {
        // π maps to π, not -π.
        assert!((wrap_angle(PI) - PI).abs() < 1e-12);
        // -π maps to +π under the half-open convention.
        assert!((wrap_angle(-PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn angle_diff_is_antisymmetric_modulo_branch() {
        let d1 = angle_diff(0.3, 1.7);
        let d2 = angle_diff(1.7, 0.3);
        assert!((d1 + d2).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_behaviour() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 0.0));
        assert!(approx_eq(0.0, 1e-14, 0.0, 1e-12));
    }
}
