//! Iterative Krylov tier: restarted GMRES(m) with an ILU(0) preconditioner.
//!
//! Coupled-oscillator networks push MNA systems to ~10²–10³ unknowns, where
//! [`SparseSolver`]'s per-refactorization cost — an `O(n²)` dense working
//! buffer scatter plus elimination — dominates every Newton iteration. This
//! module adds the third [`LinearSolver`] backend: a restarted GMRES whose
//! per-solve cost is `O(nnz)` per Krylov iteration, preconditioned by an
//! incomplete LU factorization with zero fill-in (ILU(0)) computed over the
//! *existing* CSR [`SparsePattern`] — no symbolic analysis beyond what the
//! circuit already owns.
//!
//! # Correctness contract
//!
//! [`LinearSolver::solve_in_place`] cannot return errors, so all failure
//! handling is internal and fail-safe:
//!
//! - systems below [`GmresSolver::DIRECT_BELOW_DIM`] unknowns are served by
//!   an embedded natural-ordering [`SparseSolver`] — **bit-identical** to the
//!   sparse-LU backend (same elimination kernel, same pivot order);
//! - a Krylov solve is served **only** after its true residual passes the
//!   certificate `‖b − A·x‖₂ ≤ rtol·‖b‖₂` against the stored copy of `A`;
//! - ILU breakdown, stagnation, non-finite intermediates, or a failed
//!   certificate all fall back to the embedded exact LU — a NaN-poisoned
//!   preconditioner can therefore never influence a served solution;
//! - if even the fallback LU cannot factorize (the system is singular at
//!   solve time), the output is filled with NaN, which the NaN-propagating
//!   norms of every caller in this workspace treat as a failed step — never
//!   as an answer;
//! - a tripped [`Budget`] stops the Krylov loop cooperatively and poisons
//!   the output the same way, so a deadline aborts work instead of finishing
//!   it; the caller's own budget check converts that into a typed
//!   cancellation.

use std::sync::Arc;

use shil_runtime::Budget;

use crate::error::NumericsError;
use crate::solver::{reject_non_finite, LinearSolver, Stamp};
use crate::sparse::{SparseMatrix, SparsePattern, SparseSolver};

/// Incomplete LU factorization with zero fill-in over a CSR pattern.
///
/// Factors are stored in the pattern's own slot layout: `L` strictly below
/// the diagonal (unit diagonal implied), `U` on and above it. Positions
/// outside the pattern are dropped — that is the ILU(0) approximation.
#[derive(Debug, Clone)]
pub struct Ilu0 {
    pattern: Arc<SparsePattern>,
    values: Vec<f64>,
    /// Slot of each diagonal entry `(i, i)`; MNA patterns always include the
    /// full diagonal ([`sparse_pattern`] forces it).
    ///
    /// [`sparse_pattern`]: https://docs.rs/shil-circuit
    diag_slot: Vec<usize>,
    ready: bool,
}

impl Ilu0 {
    /// Pivot magnitudes at or below this threshold abort the factorization
    /// (same floor as the exact elimination kernel).
    const PIVOT_FLOOR: f64 = 1e-300;

    /// Allocates factor storage over `pattern`.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] if any diagonal position is missing
    /// from the pattern — ILU(0) needs every pivot to be structural.
    pub fn new(pattern: Arc<SparsePattern>) -> Result<Self, NumericsError> {
        let n = pattern.dim();
        let mut diag_slot = Vec::with_capacity(n);
        for i in 0..n {
            match pattern.slot(i, i) {
                Some(s) => diag_slot.push(s),
                None => {
                    return Err(NumericsError::InvalidInput(format!(
                        "ILU(0) requires a structural diagonal; ({i}, {i}) is missing"
                    )))
                }
            }
        }
        Ok(Ilu0 {
            values: vec![0.0; pattern.nnz()],
            pattern,
            diag_slot,
            ready: false,
        })
    }

    /// Recomputes the factors from CSR values (same slot order as the
    /// pattern). Returns `false` on breakdown — a zero, denormal-tiny or
    /// non-finite pivot — leaving the factorization unusable until the next
    /// successful call.
    pub fn compute(&mut self, a_values: &[f64]) -> bool {
        let n = self.pattern.dim();
        assert_eq!(a_values.len(), self.values.len(), "value length mismatch");
        self.ready = false;
        self.values.copy_from_slice(a_values);
        // IKJ Gaussian elimination restricted to the pattern.
        for i in 0..n {
            // Eliminate columns k < i present in row i, in ascending order
            // (CSR rows are sorted, so iteration order is already correct).
            for (k, slot_ik) in self.pattern.row(i) {
                if k >= i {
                    break;
                }
                // `<=` plus the finiteness check rejects NaN pivots too.
                let pivot = self.values[self.diag_slot[k]];
                if pivot.abs() <= Self::PIVOT_FLOOR || !pivot.is_finite() {
                    return false;
                }
                let m = self.values[slot_ik] / pivot;
                self.values[slot_ik] = m;
                if m == 0.0 {
                    continue;
                }
                for (j, slot_kj) in self.pattern.row(k) {
                    if j > k {
                        if let Some(slot_ij) = self.pattern.slot(i, j) {
                            self.values[slot_ij] -= m * self.values[slot_kj];
                        }
                    }
                }
            }
            let d = self.values[self.diag_slot[i]];
            if d.abs() <= Self::PIVOT_FLOOR || !d.is_finite() {
                return false;
            }
        }
        self.ready = true;
        true
    }

    /// Whether a successful factorization is stored.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Applies the preconditioner: overwrites `x` with `(LU)⁻¹·x`.
    ///
    /// # Panics
    ///
    /// Panics if no successful [`compute`](Self::compute) has happened or on
    /// a length mismatch.
    pub fn apply(&self, x: &mut [f64]) {
        assert!(self.ready, "Ilu0::apply before a successful compute");
        let n = self.pattern.dim();
        assert_eq!(x.len(), n, "vector length mismatch");
        // Forward solve with unit-lower L.
        for i in 0..n {
            let mut acc = x[i];
            for (j, s) in self.pattern.row(i) {
                if j >= i {
                    break;
                }
                acc -= self.values[s] * x[j];
            }
            x[i] = acc;
        }
        // Back solve with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, s) in self.pattern.row(i) {
                if j > i {
                    acc -= self.values[s] * x[j];
                }
            }
            x[i] = acc / self.values[self.diag_slot[i]];
        }
    }

    /// Test-only fault injection: overwrites one stored factor entry.
    ///
    /// Exists so the fault-injection suite can prove that a poisoned
    /// preconditioner never influences a served solution; not part of the
    /// supported API.
    #[doc(hidden)]
    pub fn poison_slot_for_tests(&mut self, slot: usize, value: f64) {
        let idx = slot % self.values.len().max(1);
        self.values[idx] = value;
    }
}

/// How a Krylov attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KrylovOutcome {
    /// The certificate passed; the solution buffer holds the answer.
    Converged,
    /// No convergence (stagnation, restart budget spent, breakdown, or a
    /// non-finite intermediate) — fall back to exact LU.
    Stagnated,
    /// The execution budget tripped mid-loop.
    Cancelled,
}

/// Which engine serves solves for the current factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Embedded exact sparse LU (small systems and ILU-breakdown recovery).
    Direct,
    /// Preconditioned restarted GMRES with LU fallback.
    Krylov,
}

/// Restarted GMRES(m) + ILU(0): the iterative [`LinearSolver`] backend.
///
/// ```
/// use std::sync::Arc;
/// use shil_numerics::iterative::GmresSolver;
/// use shil_numerics::solver::{LinearSolver, Stamp};
/// use shil_numerics::sparse::{SparseMatrix, SparsePattern};
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let pattern = Arc::new(SparsePattern::from_entries(
///     2,
///     &[(0, 0), (0, 1), (1, 0), (1, 1)],
/// ));
/// let mut a = SparseMatrix::zeros(pattern.clone());
/// a.add_at(0, 0, 4.0);
/// a.add_at(0, 1, 1.0);
/// a.add_at(1, 0, 1.0);
/// a.add_at(1, 1, 3.0);
/// let mut solver = GmresSolver::new(pattern)?;
/// solver.refactorize(&a)?;
/// let mut x = [9.0, 10.0];
/// solver.solve_in_place(&mut x);
/// assert!((x[0] - 17.0 / 11.0).abs() < 1e-10);
/// assert!((x[1] - 31.0 / 11.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GmresSolver {
    pattern: Arc<SparsePattern>,
    /// Values of the current matrix (Krylov matvecs and the residual
    /// certificate both run against this copy, never a caller borrow).
    a_copy: SparseMatrix,
    ilu: Ilu0,
    fallback: SparseSolver,
    /// Whether `fallback` currently holds factors of `a_copy`.
    fallback_ready: bool,
    mode: Mode,
    factorized: bool,
    direct_below: usize,
    restart: usize,
    max_restarts: usize,
    rtol: f64,
    budget: Budget,
    // Preallocated Krylov workspace.
    basis: Vec<Vec<f64>>,
    /// Upper-triangular `R` from the Givens-rotated Hessenberg, stored
    /// column-major with leading dimension `restart + 1`.
    hess: Vec<f64>,
    givens_c: Vec<f64>,
    givens_s: Vec<f64>,
    g: Vec<f64>,
    y: Vec<f64>,
    w: Vec<f64>,
    z: Vec<f64>,
    xk: Vec<f64>,
    rhs: Vec<f64>,
    // Lifetime stats (also exported as shil_numerics_gmres_* counters).
    iterations: u64,
    restarts: u64,
    stagnations: u64,
    fallback_solves: u64,
}

impl GmresSolver {
    /// Default Krylov subspace dimension before a restart.
    pub const DEFAULT_RESTART: usize = 32;
    /// Default cap on restart cycles before declaring stagnation.
    pub const DEFAULT_MAX_RESTARTS: usize = 40;
    /// Default relative residual tolerance. Tight enough that a certified
    /// Krylov step is indistinguishable from an exact solve as far as the
    /// damped-Newton loops in this workspace are concerned (they converge
    /// the *nonlinear* residual to ~1e-9 absolute).
    pub const DEFAULT_RTOL: f64 = 1e-10;
    /// Systems with fewer unknowns than this are served by the embedded
    /// exact sparse LU (bit-identical to [`SparseSolver`]): below a few
    /// hundred unknowns the `O(n²)` refactorization is cheaper than a
    /// Krylov cycle, and exactness preserves the bit-compatibility contract
    /// of the dense/sparse pair.
    pub const DIRECT_BELOW_DIM: usize = 64;

    /// Allocates a solver over `pattern` with default parameters.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] if the pattern lacks a structural
    /// diagonal (see [`Ilu0::new`]).
    pub fn new(pattern: Arc<SparsePattern>) -> Result<Self, NumericsError> {
        let n = pattern.dim();
        let restart = Self::DEFAULT_RESTART.min(n.max(1));
        let ilu = Ilu0::new(pattern.clone())?;
        Ok(GmresSolver {
            a_copy: SparseMatrix::zeros(pattern.clone()),
            ilu,
            fallback: SparseSolver::new(pattern.clone()),
            fallback_ready: false,
            mode: Mode::Direct,
            factorized: false,
            direct_below: Self::DIRECT_BELOW_DIM,
            restart,
            max_restarts: Self::DEFAULT_MAX_RESTARTS,
            rtol: Self::DEFAULT_RTOL,
            budget: Budget::unlimited(),
            basis: (0..=restart).map(|_| vec![0.0; n]).collect(),
            hess: vec![0.0; (restart + 1) * restart],
            givens_c: vec![0.0; restart],
            givens_s: vec![0.0; restart],
            g: vec![0.0; restart + 1],
            y: vec![0.0; restart],
            w: vec![0.0; n],
            z: vec![0.0; n],
            xk: vec![0.0; n],
            rhs: vec![0.0; n],
            pattern,
            iterations: 0,
            restarts: 0,
            stagnations: 0,
            fallback_solves: 0,
        })
    }

    /// Overrides the Krylov subspace dimension (clamped to `≥ 1`).
    #[must_use]
    pub fn with_restart(mut self, m: usize) -> Self {
        let n = self.pattern.dim();
        let restart = m.clamp(1, n.max(1));
        self.restart = restart;
        self.basis = (0..=restart).map(|_| vec![0.0; n]).collect();
        self.hess = vec![0.0; (restart + 1) * restart];
        self.givens_c = vec![0.0; restart];
        self.givens_s = vec![0.0; restart];
        self.g = vec![0.0; restart + 1];
        self.y = vec![0.0; restart];
        self
    }

    /// Overrides the relative residual tolerance (certificate bound).
    #[must_use]
    pub fn with_tolerance(mut self, rtol: f64) -> Self {
        self.rtol = rtol.max(0.0);
        self
    }

    /// Overrides the size below which solves go straight to the embedded
    /// exact LU. `0` forces the Krylov path at every size (test hook).
    #[must_use]
    pub fn with_direct_below(mut self, dim: usize) -> Self {
        self.direct_below = dim;
        self
    }

    /// Installs a cooperative execution budget, checked once per Krylov
    /// iteration. A tripped budget poisons the output with NaN (see the
    /// module docs) rather than finishing the solve.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Krylov iterations performed over this solver's lifetime.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Restart cycles beyond the first, over this solver's lifetime.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Krylov attempts that ended in stagnation/breakdown and fell back.
    pub fn stagnations(&self) -> u64 {
        self.stagnations
    }

    /// Solves served by the embedded exact LU (direct mode + fallbacks).
    pub fn fallback_solves(&self) -> u64 {
        self.fallback_solves
    }

    /// Whether the current factorization serves solves through the Krylov
    /// path (as opposed to the embedded exact LU).
    pub fn is_krylov(&self) -> bool {
        self.factorized && self.mode == Mode::Krylov
    }

    /// Test-only access to the preconditioner for fault injection.
    #[doc(hidden)]
    pub fn preconditioner_mut_for_tests(&mut self) -> &mut Ilu0 {
        &mut self.ilu
    }

    /// Serves `x` (holding the rhs in `self.rhs`) through the exact LU,
    /// factorizing on demand. On a singular system the output is poisoned
    /// with NaN — callers' NaN-propagating norms treat that as a failed
    /// step, never as an answer.
    fn solve_direct(&mut self, x: &mut [f64]) {
        if !self.fallback_ready {
            match self.fallback.refactorize(&self.a_copy) {
                Ok(()) => self.fallback_ready = true,
                Err(_) => {
                    shil_observe::incr("shil_numerics_gmres_fallback_failures_total");
                    x.fill(f64::NAN);
                    return;
                }
            }
        }
        self.fallback_solves += 1;
        x.copy_from_slice(&self.rhs);
        self.fallback.solve_in_place(x);
    }

    /// One full restarted-GMRES attempt on `A·x = rhs` with `A = a_copy`.
    /// On `Converged` the answer is in `self.xk` and certified against the
    /// true residual.
    fn krylov_solve(&mut self) -> KrylovOutcome {
        let n = self.pattern.dim();
        let ld = self.restart + 1;
        self.xk.fill(0.0);
        let bnorm = norm2(&self.rhs);
        if bnorm == 0.0 {
            // The zero vector is the exact solution.
            return KrylovOutcome::Converged;
        }
        if !bnorm.is_finite() {
            return KrylovOutcome::Stagnated;
        }
        let target = self.rtol * bnorm;
        let mut best = f64::INFINITY;
        let mut iters_this_solve = 0u64;
        for cycle in 0..=self.max_restarts {
            // True residual r = b − A·xk into w (xk = 0 on the first cycle,
            // so r = b exactly).
            if cycle == 0 {
                self.w.copy_from_slice(&self.rhs);
            } else {
                self.a_copy.mul_vec_into(&self.xk, &mut self.w);
                for (wi, &bi) in self.w.iter_mut().zip(&self.rhs) {
                    *wi = bi - *wi;
                }
            }
            let beta = norm2(&self.w);
            if !beta.is_finite() {
                self.flush_iteration_count(&mut iters_this_solve);
                return KrylovOutcome::Stagnated;
            }
            if beta <= target {
                // Certified: the loop-top residual *is* the certificate.
                self.flush_iteration_count(&mut iters_this_solve);
                return KrylovOutcome::Converged;
            }
            if cycle == self.max_restarts || beta >= 0.9 * best {
                // Out of restarts, or the last cycle failed to shrink the
                // true residual meaningfully: stagnation.
                self.flush_iteration_count(&mut iters_this_solve);
                return KrylovOutcome::Stagnated;
            }
            best = beta;
            if cycle > 0 {
                self.restarts += 1;
                shil_observe::incr("shil_numerics_gmres_restarts_total");
            }

            // Arnoldi with modified Gram–Schmidt and Givens rotations.
            for (vi, &wi) in self.basis[0].iter_mut().zip(&self.w) {
                *vi = wi / beta;
            }
            self.g.fill(0.0);
            self.g[0] = beta;
            let mut cols = 0usize;
            let mut poisoned = false;
            for j in 0..self.restart {
                if self.budget.cancelled().is_some() {
                    self.flush_iteration_count(&mut iters_this_solve);
                    return KrylovOutcome::Cancelled;
                }
                iters_this_solve += 1;
                // w = A·M⁻¹·v_j (right preconditioning).
                self.z.copy_from_slice(&self.basis[j]);
                self.ilu.apply(&mut self.z);
                self.a_copy.mul_vec_into(&self.z, &mut self.w);
                // MGS orthogonalization; h column lives in hess[.., j].
                for i in 0..=j {
                    let hij = dot(&self.w, &self.basis[i]);
                    self.hess[j * ld + i] = hij;
                    for (wk, &vk) in self.w.iter_mut().zip(&self.basis[i]) {
                        *wk -= hij * vk;
                    }
                }
                let hj1 = norm2(&self.w);
                if !hj1.is_finite() {
                    poisoned = true;
                    break;
                }
                // Previously accumulated rotations applied to the new column.
                for i in 0..j {
                    let a = self.hess[j * ld + i];
                    let b = self.hess[j * ld + i + 1];
                    self.hess[j * ld + i] = self.givens_c[i] * a + self.givens_s[i] * b;
                    self.hess[j * ld + i + 1] = -self.givens_s[i] * a + self.givens_c[i] * b;
                }
                // New rotation annihilating the subdiagonal.
                let a = self.hess[j * ld + j];
                let r = (a * a + hj1 * hj1).sqrt();
                let (c, s) = if r == 0.0 {
                    (1.0, 0.0)
                } else {
                    (a / r, hj1 / r)
                };
                self.givens_c[j] = c;
                self.givens_s[j] = s;
                self.hess[j * ld + j] = r;
                self.g[j + 1] = -s * self.g[j];
                self.g[j] *= c;
                cols = j + 1;
                if hj1 > 0.0 {
                    for (vk, &wk) in self.basis[j + 1].iter_mut().zip(&self.w) {
                        *vk = wk / hj1;
                    }
                } else {
                    // Happy breakdown: the subspace already contains the
                    // exact solution.
                    break;
                }
                if self.g[j + 1].abs() <= target {
                    break;
                }
            }
            if poisoned || cols == 0 {
                self.flush_iteration_count(&mut iters_this_solve);
                return KrylovOutcome::Stagnated;
            }
            // Back-substitute R·y = g.
            for i in (0..cols).rev() {
                let mut acc = self.g[i];
                for k in (i + 1)..cols {
                    acc -= self.hess[k * ld + i] * self.y[k];
                }
                let d = self.hess[i * ld + i];
                if d == 0.0 || !d.is_finite() {
                    self.flush_iteration_count(&mut iters_this_solve);
                    return KrylovOutcome::Stagnated;
                }
                self.y[i] = acc / d;
            }
            // xk += M⁻¹·(V·y).
            self.z.fill(0.0);
            for (k, yk) in self.y[..cols].iter().enumerate() {
                for (zi, &vi) in self.z.iter_mut().zip(&self.basis[k]) {
                    *zi += yk * vi;
                }
            }
            self.ilu.apply(&mut self.z);
            for (xi, &zi) in self.xk.iter_mut().zip(&self.z) {
                *xi += zi;
            }
            let _ = n;
        }
        self.flush_iteration_count(&mut iters_this_solve);
        KrylovOutcome::Stagnated
    }

    fn flush_iteration_count(&mut self, iters: &mut u64) {
        if *iters > 0 {
            self.iterations += *iters;
            shil_observe::counter_add("shil_numerics_gmres_iterations_total", *iters);
            *iters = 0;
        }
    }
}

impl LinearSolver for GmresSolver {
    type Matrix = SparseMatrix;

    fn dim(&self) -> usize {
        self.pattern.dim()
    }

    fn refactorize(&mut self, a: &SparseMatrix) -> Result<(), NumericsError> {
        let n = self.pattern.dim();
        assert_eq!(a.dim(), n, "matrix dimension mismatch");
        debug_assert!(
            Arc::ptr_eq(&self.pattern, a.pattern()) || *a.pattern().as_ref() == *self.pattern,
            "matrix stamped over a different pattern"
        );
        self.factorized = false;
        self.fallback_ready = false;
        reject_non_finite(a, "iterative jacobian")?;
        self.a_copy.values_mut().copy_from_slice(a.values());
        if n < self.direct_below {
            // Small system: the embedded exact LU *is* the backend, so a
            // singular matrix surfaces here exactly as it would from
            // `SparseSolver`.
            self.fallback.refactorize(&self.a_copy)?;
            self.fallback_ready = true;
            self.mode = Mode::Direct;
        } else {
            shil_observe::incr("shil_numerics_gmres_precond_rebuilds_total");
            if self.ilu.compute(self.a_copy.values()) {
                self.mode = Mode::Krylov;
            } else {
                // ILU breakdown (often a genuinely singular system): recover
                // through the exact LU so singularity is reported from
                // refactorize like every other backend.
                shil_observe::incr("shil_numerics_gmres_precond_breakdowns_total");
                self.fallback.refactorize(&self.a_copy)?;
                self.fallback_ready = true;
                self.mode = Mode::Direct;
            }
        }
        self.factorized = true;
        Ok(())
    }

    fn solve_in_place(&mut self, x: &mut [f64]) {
        assert!(self.factorized, "solve_in_place before refactorize");
        let n = self.pattern.dim();
        assert_eq!(x.len(), n, "rhs length mismatch");
        self.rhs.copy_from_slice(x);
        match self.mode {
            Mode::Direct => self.solve_direct(x),
            Mode::Krylov => match self.krylov_solve() {
                KrylovOutcome::Converged => x.copy_from_slice(&self.xk),
                KrylovOutcome::Stagnated => {
                    self.stagnations += 1;
                    shil_observe::incr("shil_numerics_gmres_stagnations_total");
                    self.solve_direct(x);
                }
                KrylovOutcome::Cancelled => {
                    shil_observe::incr("shil_numerics_gmres_cancellations_total");
                    // Poison, don't answer: finishing the solve after a
                    // deadline would invert cancellation semantics, and the
                    // NaN is guaranteed to be caught by the caller's
                    // NaN-propagating norms before any result is recorded.
                    x.fill(f64::NAN);
                }
            },
        }
    }

    fn is_factorized(&self) -> bool {
        self.factorized
    }
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;
    use crate::solver::DenseSolver;
    use shil_runtime::CancelToken;

    /// An MNA-shaped pattern: tridiagonal block plus a branch row with a
    /// structurally present diagonal (matching `sparse_pattern`'s contract).
    fn banded_pattern(n: usize, bandwidth: usize) -> SparsePattern {
        let mut entries = Vec::new();
        for i in 0..n {
            for j in i.saturating_sub(bandwidth)..(i + bandwidth + 1).min(n) {
                entries.push((i, j));
            }
        }
        SparsePattern::from_entries(n, &entries)
    }

    fn fill_spd_like(pattern: &Arc<SparsePattern>, seed: u64) -> (SparseMatrix, Matrix) {
        let n = pattern.dim();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut sparse = SparseMatrix::zeros(pattern.clone());
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            for (j, _) in pattern.row(i) {
                // Diagonal dominance keeps the draws well-conditioned.
                let v = if i == j { next().abs() + 4.0 } else { next() };
                sparse.add_at(i, j, v);
                dense.add_at(i, j, v);
            }
        }
        (sparse, dense)
    }

    fn rhs_for(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 + 1.0) * 0.37 + seed as f64 * 0.11).sin())
            .collect()
    }

    #[test]
    fn small_systems_are_bit_identical_to_sparse_lu() {
        for n in [2usize, 5, 9, 17, 33] {
            let pattern = Arc::new(banded_pattern(n, 2));
            for seed in 0..5u64 {
                let (a, _) = fill_spd_like(&pattern, seed);
                let b = rhs_for(n, seed);
                let mut gm = GmresSolver::new(pattern.clone()).unwrap();
                let mut lu = SparseSolver::new(pattern.clone());
                gm.refactorize(&a).unwrap();
                lu.refactorize(&a).unwrap();
                assert!(!gm.is_krylov(), "n = {n} should be direct mode");
                let mut xg = b.clone();
                let mut xl = b.clone();
                gm.solve_in_place(&mut xg);
                lu.solve_in_place(&mut xl);
                assert_eq!(xg, xl, "n = {n}, seed = {seed}");
            }
        }
    }

    #[test]
    fn krylov_path_matches_dense_lu_to_certificate_tolerance() {
        let n = 80;
        let pattern = Arc::new(banded_pattern(n, 3));
        for seed in 0..8u64 {
            let (a, dense) = fill_spd_like(&pattern, 100 + seed);
            let b = rhs_for(n, seed);
            let mut gm = GmresSolver::new(pattern.clone())
                .unwrap()
                .with_direct_below(0);
            gm.refactorize(&a).unwrap();
            assert!(gm.is_krylov());
            let mut x = b.clone();
            gm.solve_in_place(&mut x);
            assert!(gm.iterations() > 0, "Krylov loop never ran");
            // Certificate check against the dense reference.
            let mut reference = DenseSolver::new(n);
            reference.refactorize(&dense).unwrap();
            let mut xr = b.clone();
            reference.solve_in_place(&mut xr);
            let bnorm = norm2(&b);
            let mut ax = vec![0.0; n];
            a.mul_vec_into(&x, &mut ax);
            let rnorm = norm2(
                &ax.iter()
                    .zip(&b)
                    .map(|(axi, bi)| bi - axi)
                    .collect::<Vec<_>>(),
            );
            assert!(
                rnorm <= GmresSolver::DEFAULT_RTOL * bnorm * 1.01,
                "certificate violated: {rnorm:.3e} vs {:.3e}",
                GmresSolver::DEFAULT_RTOL * bnorm
            );
            for (xi, ri) in x.iter().zip(&xr) {
                assert!((xi - ri).abs() < 1e-7 * (1.0 + ri.abs()), "{xi} vs {ri}");
            }
        }
    }

    #[test]
    fn singular_small_system_is_rejected_at_refactorize() {
        let pattern = Arc::new(SparsePattern::from_entries(
            2,
            &[(0, 0), (0, 1), (1, 0), (1, 1)],
        ));
        let mut a = SparseMatrix::zeros(pattern.clone());
        a.add_at(0, 0, 1.0);
        a.add_at(0, 1, 2.0);
        a.add_at(1, 0, 2.0);
        a.add_at(1, 1, 4.0);
        let mut gm = GmresSolver::new(pattern).unwrap();
        assert!(matches!(
            gm.refactorize(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(!gm.is_factorized());
    }

    #[test]
    fn non_finite_matrix_is_rejected_before_any_solve() {
        let pattern = Arc::new(banded_pattern(10, 1));
        let (mut a, _) = fill_spd_like(&pattern, 3);
        a.add_at(4, 5, f64::NAN);
        let mut gm = GmresSolver::new(pattern).unwrap().with_direct_below(0);
        assert!(matches!(
            gm.refactorize(&a),
            Err(NumericsError::NonFinite { .. })
        ));
    }

    /// A pattern with scattered off-diagonals: elimination generates fill
    /// *outside* the pattern, so ILU(0) is genuinely approximate (a banded
    /// pattern would make it exact and defeat stagnation tests).
    fn scattered_pattern(n: usize) -> SparsePattern {
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            entries.push((i, (i * 7 + 3) % n));
            entries.push(((i * 5 + 1) % n, i));
            if i + 1 < n {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        SparsePattern::from_entries(n, &entries)
    }

    #[test]
    fn stagnation_falls_back_to_exact_lu() {
        // One restart cycle of a size-1 subspace cannot solve a generic
        // system: the solver must detect stagnation and serve the exact
        // answer through the fallback LU.
        let n = 40;
        let pattern = Arc::new(scattered_pattern(n));
        let (a, _) = fill_spd_like(&pattern, 7);
        let b = rhs_for(n, 7);
        let mut gm = GmresSolver::new(pattern.clone())
            .unwrap()
            .with_direct_below(0)
            .with_restart(1)
            .with_tolerance(1e-14);
        // A single restart gives the stagnation detector no room.
        gm.max_restarts = 1;
        gm.refactorize(&a).unwrap();
        let mut x = b.clone();
        gm.solve_in_place(&mut x);
        assert!(gm.stagnations() > 0, "expected a stagnation fallback");
        assert!(gm.fallback_solves() > 0);
        let mut ax = vec![0.0; n];
        a.mul_vec_into(&x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-9, "fallback answer wrong");
        }
    }

    #[test]
    fn poisoned_preconditioner_never_influences_the_answer() {
        let n = 64;
        let pattern = Arc::new(banded_pattern(n, 2));
        let (a, _) = fill_spd_like(&pattern, 11);
        let b = rhs_for(n, 11);
        let mut gm = GmresSolver::new(pattern.clone())
            .unwrap()
            .with_direct_below(0);
        gm.refactorize(&a).unwrap();
        gm.preconditioner_mut_for_tests()
            .poison_slot_for_tests(17, f64::NAN);
        let mut x = b.clone();
        gm.solve_in_place(&mut x);
        // The poison forces stagnation; the served answer must come from
        // the exact LU and satisfy the residual bound.
        assert!(gm.stagnations() > 0);
        let mut ax = vec![0.0; n];
        a.mul_vec_into(&x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!(
                (axi - bi).abs() < 1e-9,
                "poisoned preconditioner leaked into the answer"
            );
        }
    }

    #[test]
    fn cancelled_budget_poisons_the_output() {
        let n = 70;
        let pattern = Arc::new(banded_pattern(n, 2));
        let (a, _) = fill_spd_like(&pattern, 13);
        let token = CancelToken::new();
        token.cancel();
        let mut gm = GmresSolver::new(pattern)
            .unwrap()
            .with_direct_below(0)
            .with_budget(Budget::unlimited().with_token(token));
        gm.refactorize(&a).unwrap();
        let mut x = rhs_for(n, 13);
        gm.solve_in_place(&mut x);
        assert!(
            x.iter().all(|v| v.is_nan()),
            "a cancelled solve must not serve numbers"
        );
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let n = 70;
        let pattern = Arc::new(banded_pattern(n, 2));
        let (a, _) = fill_spd_like(&pattern, 21);
        let mut gm = GmresSolver::new(pattern).unwrap().with_direct_below(0);
        gm.refactorize(&a).unwrap();
        let mut x = vec![0.0; n];
        gm.solve_in_place(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn missing_diagonal_is_rejected_at_construction() {
        let pattern = Arc::new(SparsePattern::from_entries(2, &[(0, 0), (0, 1), (1, 0)]));
        assert!(matches!(
            GmresSolver::new(pattern),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn refactorize_tracks_matrix_changes() {
        let n = 72;
        let pattern = Arc::new(banded_pattern(n, 2));
        let mut gm = GmresSolver::new(pattern.clone())
            .unwrap()
            .with_direct_below(0);
        for seed in 0..3u64 {
            let (a, dense) = fill_spd_like(&pattern, 40 + seed);
            let b = rhs_for(n, seed);
            gm.refactorize(&a).unwrap();
            let mut x = b.clone();
            gm.solve_in_place(&mut x);
            let mut reference = DenseSolver::new(n);
            reference.refactorize(&dense).unwrap();
            let mut xr = b.clone();
            reference.solve_in_place(&mut xr);
            for (xi, ri) in x.iter().zip(&xr) {
                assert!((xi - ri).abs() < 1e-7 * (1.0 + ri.abs()));
            }
        }
    }

    #[test]
    fn ilu_apply_inverts_its_own_product_on_triangular_cases() {
        // For a lower-triangular matrix ILU(0) is exact, so M⁻¹·(A·x) = x.
        let pattern = Arc::new(SparsePattern::from_entries(
            3,
            &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)],
        ));
        let mut a = SparseMatrix::zeros(pattern.clone());
        a.add_at(0, 0, 2.0);
        a.add_at(1, 0, -1.0);
        a.add_at(1, 1, 3.0);
        a.add_at(2, 1, 0.5);
        a.add_at(2, 2, 4.0);
        let mut ilu = Ilu0::new(pattern).unwrap();
        assert!(ilu.compute(a.values()));
        let x = [1.0, -2.0, 0.25];
        let mut y = [0.0; 3];
        a.mul_vec_into(&x, &mut y);
        ilu.apply(&mut y);
        for (yi, xi) in y.iter().zip(&x) {
            assert!((yi - xi).abs() < 1e-12);
        }
    }
}
