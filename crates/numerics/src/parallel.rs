//! Deterministic scoped-thread fan-out.
//!
//! The workspace parallelizes *embarrassingly independent* work — grid-fill
//! rows in the SHIL pre-characterization, whole transient runs in a
//! validation sweep — and never reduces across threads, so results are
//! **bit-for-bit identical at any thread count**. This module centralizes
//! the two pieces every such fan-out needs: resolving a requested
//! parallelism to a concrete worker count, and an order-preserving parallel
//! map over a slice.
//!
//! `std::thread::scope` is used instead of an external thread-pool crate
//! because the build environment is offline (see the workspace manifest).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a parallelism request to a concrete thread count
/// (`None` → available cores, floor of 1).
pub fn effective_parallelism(requested: Option<usize>) -> usize {
    requested
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Applies `f` to every item of `items` across up to `threads` scoped
/// workers, returning outputs **in input order**.
///
/// Work is handed out through an atomic counter (dynamic load balancing:
/// an expensive item does not stall the queue behind it), but each output
/// is keyed by its input index, so the returned vector is identical to the
/// serial `items.iter().enumerate().map(f).collect()` at any thread count.
///
/// `f` runs exactly once per item; panics in a worker propagate.
pub fn ordered_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    // Reassemble in input order.
    let mut out: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    for bucket in &mut buckets {
        for (i, v) in bucket.drain(..) {
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|v| v.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_parallelism_floors_at_one() {
        assert_eq!(effective_parallelism(Some(0)), 1);
        assert_eq!(effective_parallelism(Some(3)), 3);
        assert!(effective_parallelism(None) >= 1);
    }

    #[test]
    fn ordered_map_preserves_order_at_any_thread_count() {
        let items: Vec<f64> = (0..57).map(|k| k as f64 * 0.37).collect();
        let serial = ordered_map(&items, 1, |i, x| (i, x.sin() * x.cos()));
        for threads in [2, 3, 4, 7, 16] {
            let parallel = ordered_map(&items, threads, |i, x| (i, x.sin() * x.cos()));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn ordered_map_handles_empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        assert!(ordered_map(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(ordered_map(&[42], 4, |_, x| *x), vec![42]);
    }

    #[test]
    fn ordered_map_runs_each_item_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = ordered_map(&items, 5, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }
}
