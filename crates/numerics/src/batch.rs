//! Lane-batched numeric refactorization for parameter sweeps.
//!
//! A sweep advances K parameter variants of one topology in lock-step, and
//! most Newton iterations that miss the factorization-bypass certificate
//! miss it for *several* lanes in the same iteration. This module
//! eliminates those lanes together through one structure-of-arrays buffer:
//! entry `(i, j)` of lane `l` lives at `buf[(i*n + j)*K + l]`, so the
//! innermost update loops run contiguously across lanes and autovectorize
//! on stable Rust — no `std::simd` required.
//!
//! **Bit-identity contract.** For every lane, the arithmetic performed here
//! is operation-for-operation identical to
//! [`factorize_dense_in_place`](crate::solver::factorize_dense_in_place) as
//! driven by [`SparseSolver::refactorize`](crate::sparse::SparseSolver):
//! the same scatter, the same strictly-greater pivot scan, the same row
//! swaps, the same multiplier division, and the same exact-zero multiplier
//! skip (expressed as a select so the loop still vectorizes). Lanes are
//! independent columns of the buffer; a singular or non-finite lane is
//! reported through its own `Result` and masked out of the remaining
//! elimination without perturbing sibling lanes.

use std::sync::Arc;

use crate::error::NumericsError;
use crate::solver::{reject_non_finite, BypassSolver, LinearSolver, Stamp};
use crate::sparse::{SparseMatrix, SparsePattern, SparseSolver};

/// One lane of a batched refactorization: the bypass solver that will
/// receive the factors and the freshly assembled matrix to eliminate.
pub struct BatchLane<'a> {
    /// The lane's solver; on success its factorization state, permutation
    /// and compressed factors are updated exactly as a scalar
    /// `refactorize` would have.
    pub solver: &'a mut BypassSolver<SparseSolver>,
    /// The lane's Jacobian, stamped over a pattern of the shared dimension.
    pub matrix: &'a SparseMatrix,
}

/// Reusable scratch for [`refactorize_lanes`]: the interleaved elimination
/// buffer plus per-lane bookkeeping. Buffers keep their capacity across
/// calls, so steady-state batched refactorization performs no allocation.
#[derive(Debug, Default)]
pub struct BatchLuScratch {
    /// Interleaved `n × n × K` elimination buffer.
    buf: Vec<f64>,
    /// Per-lane row permutations, lane-major (`perms[l*n..(l+1)*n]`).
    perms: Vec<usize>,
    /// Per-lane pivot values for the current column.
    pivot: Vec<f64>,
    /// Per-lane multipliers for the current row update (0.0 for dead lanes).
    mult: Vec<f64>,
    /// Lanes still eliminating (false once failed).
    alive: Vec<bool>,
}

impl BatchLuScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Refactorizes several independent `n × n` sparse systems in lock-step
/// through a shared structure-of-arrays buffer.
///
/// Per lane this is semantically `lane.solver`'s inner
/// [`refactorize`](crate::solver::LinearSolver::refactorize) followed by
/// the bypass bookkeeping of a fresh factorization — with bit-identical
/// factors, permutation and error values. On `Ok`, the lane's solver holds
/// the new factorization and the caller completes the Newton step with
/// [`BypassSolver::solve_with_installed_factors`]. On `Err`, the lane's
/// solver is left unfactorized, exactly like a failed scalar refactorize.
///
/// # Panics
///
/// Panics if lanes disagree on dimension, or a lane's solver is not in
/// natural ordering (the only mode whose pivot sequence the batched kernel
/// reproduces).
pub fn refactorize_lanes(
    scratch: &mut BatchLuScratch,
    lanes: &mut [BatchLane<'_>],
) -> Vec<Result<(), NumericsError>> {
    let k = lanes.len();
    if k == 0 {
        return Vec::new();
    }
    let n = lanes[0].solver.inner().dim();
    let mut results: Vec<Result<(), NumericsError>> = Vec::with_capacity(k);

    scratch.buf.clear();
    scratch.buf.resize(n * n * k, 0.0);
    scratch.perms.clear();
    scratch.perms.resize(n * k, 0);
    scratch.pivot.clear();
    scratch.pivot.resize(k, 1.0);
    scratch.mult.clear();
    scratch.mult.resize(k, 0.0);
    scratch.alive.clear();
    scratch.alive.resize(k, true);

    // Entry protocol per lane: mark stale, reject poisoned stamps, scatter.
    // Mirrors `SparseSolver::refactorize` up to the elimination call.
    for (l, lane) in lanes.iter_mut().enumerate() {
        assert_eq!(lane.solver.inner().dim(), n, "lane dimension mismatch");
        assert!(
            lane.solver.inner().has_natural_ordering(),
            "batched refactorization requires natural ordering"
        );
        assert_eq!(lane.matrix.dim(), n, "lane matrix dimension mismatch");
        lane.solver.inner_mut().begin_external_refactorize();
        results.push(reject_non_finite(lane.matrix, "sparse jacobian"));
        if results[l].is_err() {
            scratch.alive[l] = false;
            continue;
        }
        let pattern: &Arc<SparsePattern> = lane.matrix.pattern();
        let values = lane.matrix.values();
        for i in 0..n {
            for (j, s) in pattern.row(i) {
                scratch.buf[(i * n + j) * k + l] = values[s];
            }
        }
        for (p, idx) in scratch.perms[l * n..(l + 1) * n].iter_mut().zip(0..n) {
            *p = idx;
        }
    }

    // Lock-step partial-pivot elimination. Pivot search and row swaps are
    // per-lane (they follow each lane's own permutation); the O(n³) row
    // updates run across lanes in the contiguous inner loops below.
    for col in 0..n {
        for (l, res) in results.iter_mut().enumerate() {
            if !scratch.alive[l] {
                continue;
            }
            let mut pivot_row = col;
            let mut pivot_mag = scratch.buf[(col * n + col) * k + l].abs();
            for i in (col + 1)..n {
                let mag = scratch.buf[(i * n + col) * k + l].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            // `partial_cmp` keeps the NaN-rejecting behaviour of the scalar
            // kernel's pivot test.
            if pivot_mag.partial_cmp(&1e-300) != Some(std::cmp::Ordering::Greater) {
                *res = Err(NumericsError::SingularMatrix { pivot: col });
                scratch.alive[l] = false;
                continue;
            }
            if pivot_row != col {
                for j in 0..n {
                    scratch
                        .buf
                        .swap((col * n + j) * k + l, (pivot_row * n + j) * k + l);
                }
                scratch.perms[l * n..(l + 1) * n].swap(col, pivot_row);
            }
            scratch.pivot[l] = scratch.buf[(col * n + col) * k + l];
        }

        for i in (col + 1)..n {
            // Multipliers: `m = row_i[col] / pivot`, written back in place
            // like the scalar kernel. Dead lanes get an exact 0.0 so the
            // select below leaves their buffer untouched.
            for l in 0..k {
                let m = scratch.buf[(i * n + col) * k + l] / scratch.pivot[l];
                scratch.mult[l] = if scratch.alive[l] { m } else { 0.0 };
            }
            scratch.buf[(i * n + col) * k..(i * n + col + 1) * k].copy_from_slice(&scratch.mult);
            // The scalar kernel skips the whole row when `m == 0.0`, which
            // is what keeps dense elimination at sparse cost in natural
            // ordering (most sub-diagonal multipliers are structural
            // zeros). When *every* lane's multiplier is zero no lane would
            // write, so skipping the walk outright performs the identical
            // FP sequence while restoring that sparsity economy batched.
            if scratch.mult.iter().all(|&m| m == 0.0) {
                continue;
            }
            // Row update. The select form performs the scalar kernel's
            // per-lane skip (NaN/Inf multipliers compare unequal to zero
            // and update, matching the scalar path) while keeping the lane
            // loop branch free so it vectorizes.
            let (head, tail) = scratch.buf.split_at_mut(i * n * k);
            let row_k = &head[(col * n + col + 1) * k..(col * n + n) * k];
            let row_i = &mut tail[(col + 1) * k..n * k];
            let mult = &scratch.mult[..k];
            for (ri, rk) in row_i.chunks_exact_mut(k).zip(row_k.chunks_exact(k)) {
                for l in 0..k {
                    let cur = ri[l];
                    let upd = cur - mult[l] * rk[l];
                    ri[l] = if mult[l] != 0.0 { upd } else { cur };
                }
            }
        }
    }

    // Harvest: install each surviving lane's factors and count the step as
    // a fresh factorization, mirroring the tail of the scalar refactorize.
    for (l, lane) in lanes.iter_mut().enumerate() {
        if results[l].is_ok() {
            lane.solver.inner_mut().install_external_factors(
                &scratch.buf,
                k,
                l,
                &scratch.perms[l * n..(l + 1) * n],
            );
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{LinearSolver, StepKind};

    /// MNA-shaped pattern: tridiagonal block plus a branch row/column with
    /// a structurally zero diagonal (forces pivoting, like real MNA).
    fn mna_like_pattern(n: usize) -> Arc<SparsePattern> {
        let mut entries = Vec::new();
        for i in 0..n - 1 {
            entries.push((i, i));
            if i + 1 < n - 1 {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        entries.push((n - 1, 0));
        entries.push((0, n - 1));
        Arc::new(SparsePattern::from_entries(n, &entries))
    }

    fn fill(pattern: &Arc<SparsePattern>, seed: u64) -> SparseMatrix {
        let n = pattern.dim();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut m = SparseMatrix::zeros(pattern.clone());
        use crate::solver::Stamp;
        for i in 0..n {
            for (j, _) in pattern.row(i) {
                let v = if i == j && i < n - 1 {
                    next() + 3.0
                } else {
                    next()
                };
                m.add_at(i, j, v);
            }
        }
        m
    }

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 + 1.3) * (seed as f64 + 0.7)).sin())
            .collect()
    }

    #[test]
    fn batched_refactorize_matches_scalar_bitwise() {
        for n in [3usize, 5, 9, 12] {
            let pattern = mna_like_pattern(n);
            for lanes in [1usize, 2, 4, 8] {
                let mats: Vec<SparseMatrix> = (0..lanes)
                    .map(|l| fill(&pattern, (n * 1000 + l) as u64))
                    .collect();
                let b = rhs(n, n as u64);

                // Scalar reference: independent solvers, plain solve_step.
                let mut reference = Vec::new();
                for m in &mats {
                    let mut s = BypassSolver::new(SparseSolver::new(pattern.clone()));
                    let mut dx = vec![0.0; n];
                    let kind = s.solve_step(m, &b, &mut dx).unwrap();
                    assert_eq!(kind, StepKind::Factorized);
                    reference.push((dx, s.factorizations(), s.reuses()));
                }

                // Batched: group refactorization then per-lane solve.
                let mut solvers: Vec<BypassSolver<SparseSolver>> = (0..lanes)
                    .map(|_| BypassSolver::new(SparseSolver::new(pattern.clone())))
                    .collect();
                let mut scratch = BatchLuScratch::new();
                {
                    let mut lane_refs: Vec<BatchLane<'_>> = solvers
                        .iter_mut()
                        .zip(&mats)
                        .map(|(solver, matrix)| BatchLane { solver, matrix })
                        .collect();
                    let results = refactorize_lanes(&mut scratch, &mut lane_refs);
                    assert!(results.iter().all(Result::is_ok));
                }
                for (l, s) in solvers.iter_mut().enumerate() {
                    let mut dx = vec![0.0; n];
                    s.solve_with_installed_factors(&b, &mut dx);
                    assert_eq!(dx, reference[l].0, "n={n} lanes={lanes} lane={l}");
                    assert_eq!(s.factorizations(), reference[l].1);
                    assert_eq!(s.reuses(), reference[l].2);
                }
            }
        }
    }

    #[test]
    fn reuse_after_batched_install_matches_scalar() {
        // A second solve on a slightly perturbed matrix must take the same
        // reuse/refactorize decision (and produce the same bits) whether
        // the first factorization was scalar or batched.
        let n = 7;
        let pattern = mna_like_pattern(n);
        let m0 = fill(&pattern, 1);
        let mut m1 = m0.clone();
        use crate::solver::Stamp;
        m1.add_at(1, 1, 1e-8);
        let b = rhs(n, 5);

        let mut scalar = BypassSolver::new(SparseSolver::new(pattern.clone()));
        let mut dx_s = vec![0.0; n];
        scalar.solve_step(&m0, &b, &mut dx_s).unwrap();
        let kind_s = scalar.solve_step(&m1, &b, &mut dx_s).unwrap();

        let mut batched = BypassSolver::new(SparseSolver::new(pattern.clone()));
        let mut scratch = BatchLuScratch::new();
        {
            let mut lane_refs = vec![BatchLane {
                solver: &mut batched,
                matrix: &m0,
            }];
            refactorize_lanes(&mut scratch, &mut lane_refs)[0]
                .as_ref()
                .unwrap();
        }
        let mut dx_b = vec![0.0; n];
        batched.solve_with_installed_factors(&b, &mut dx_b);
        let kind_b = batched.solve_step(&m1, &b, &mut dx_b).unwrap();

        assert_eq!(kind_s, kind_b);
        assert_eq!(dx_s, dx_b);
        assert_eq!(scalar.factorizations(), batched.factorizations());
        assert_eq!(scalar.reuses(), batched.reuses());
    }

    #[test]
    fn failing_lane_is_isolated_from_siblings() {
        let n = 6;
        let pattern = mna_like_pattern(n);
        let good = fill(&pattern, 11);
        // Numerically singular lane: all structural values zero.
        let singular = SparseMatrix::zeros(pattern.clone());
        // Poisoned lane: NaN stamp.
        let mut poisoned = fill(&pattern, 12);
        use crate::solver::Stamp;
        poisoned.add_at(0, 0, f64::NAN);
        let b = rhs(n, 2);

        let mut ref_solver = BypassSolver::new(SparseSolver::new(pattern.clone()));
        let mut dx_ref = vec![0.0; n];
        ref_solver.solve_step(&good, &b, &mut dx_ref).unwrap();
        let scalar_singular = {
            let mut s = BypassSolver::new(SparseSolver::new(pattern.clone()));
            let mut dx = vec![0.0; n];
            s.solve_step(&singular, &b, &mut dx).unwrap_err()
        };
        let scalar_poisoned = {
            let mut s = SparseSolver::new(pattern.clone());
            s.refactorize(&poisoned).unwrap_err()
        };

        let mut solvers: Vec<BypassSolver<SparseSolver>> = (0..3)
            .map(|_| BypassSolver::new(SparseSolver::new(pattern.clone())))
            .collect();
        let mats = [&good, &singular, &poisoned];
        let mut scratch = BatchLuScratch::new();
        let results = {
            let mut lane_refs: Vec<BatchLane<'_>> = solvers
                .iter_mut()
                .zip(mats)
                .map(|(solver, matrix)| BatchLane { solver, matrix })
                .collect();
            refactorize_lanes(&mut scratch, &mut lane_refs)
        };
        assert!(results[0].is_ok());
        assert_eq!(
            format!("{}", results[1].as_ref().unwrap_err()),
            format!("{scalar_singular}")
        );
        assert_eq!(
            format!("{}", results[2].as_ref().unwrap_err()),
            format!("{scalar_poisoned}")
        );
        assert!(!solvers[1].inner().is_factorized());
        assert!(!solvers[2].inner().is_factorized());

        let mut dx = vec![0.0; n];
        solvers[0].solve_with_installed_factors(&b, &mut dx);
        assert_eq!(dx, dx_ref, "sibling lane corrupted by failing lanes");
    }
}
