//! Sparse MNA matrices with symbolic-analysis reuse.
//!
//! MNA Jacobians are structurally fixed for the lifetime of a circuit: the
//! set of nonzero positions is determined by the netlist, only the *values*
//! change per Newton iteration. This module splits those concerns:
//!
//! - [`SparsePattern`] — the symbolic analysis, computed **once** per
//!   circuit: a CSR position index plus slot lookup. Building it is the
//!   only allocation in the whole sparse pipeline.
//! - [`PatternBuilder`] — a recording [`Stamp`] target: run the ordinary
//!   assembly routine against it once and every stamped position is
//!   captured, so the pattern can never drift from the stamping code.
//! - [`SparseMatrix`] — CSR values over a shared pattern; clearing and
//!   re-stamping touch `O(nnz)` memory instead of `O(n²)`.
//! - [`SparseSolver`] — numeric refactorization into preallocated working
//!   storage. Elimination mirrors the dense partial-pivot kernel exactly
//!   while skipping exact-zero multiplier updates, so in natural ordering
//!   its results agree with the dense path under `==` (pivot order is
//!   identical; see [`factorize_dense_in_place`]). A Markowitz-style
//!   min-degree ordering ([`min_degree_order`]) is available opt-in via
//!   [`SparseSolver::with_min_degree`] for larger systems, at the cost of a
//!   different (but equally valid) pivot sequence.

use std::sync::Arc;

use crate::error::NumericsError;
use crate::solver::{factorize_dense_in_place, reject_non_finite, LinearSolver, Stamp};

/// The symbolic structure of a sparse square matrix: which `(row, col)`
/// positions can ever hold a value. Computed once, shared (via [`Arc`])
/// between every [`SparseMatrix`] stamped for the same circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePattern {
    n: usize,
    /// CSR row pointers, length `n + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row, length `nnz`.
    col_idx: Vec<usize>,
}

impl SparsePattern {
    /// Builds a pattern from explicit positions (duplicates are merged).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any index is out of range.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Self {
        assert!(n > 0, "pattern dimension must be non-zero");
        let mut sorted: Vec<(usize, usize)> = entries.to_vec();
        for &(i, j) in &sorted {
            assert!(i < n && j < n, "entry ({i}, {j}) out of range for n = {n}");
        }
        sorted.sort_unstable();
        sorted.dedup();
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        for &(i, j) in &sorted {
            row_ptr[i + 1] += 1;
            col_idx.push(j);
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        SparsePattern {
            n,
            row_ptr,
            col_idx,
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzero positions.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Structural fill ratio `nnz / n²`.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.n * self.n) as f64
    }

    /// The storage slot of position `(i, j)`, if it is structural.
    #[inline]
    pub fn slot(&self, i: usize, j: usize) -> Option<usize> {
        let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        // MNA rows hold a handful of entries; a linear scan beats binary
        // search there (no branch mispredictions), which matters because
        // every stamp of every Newton iteration lands here.
        if row.len() <= 16 {
            row.iter()
                .position(|&c| c == j)
                .map(|k| self.row_ptr[i] + k)
        } else {
            row.binary_search(&j).ok().map(|k| self.row_ptr[i] + k)
        }
    }

    /// Iterates the structural positions of row `i` as `(col, slot)`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let start = self.row_ptr[i];
        self.col_idx[start..self.row_ptr[i + 1]]
            .iter()
            .enumerate()
            .map(move |(k, &j)| (j, start + k))
    }
}

/// A [`Stamp`] implementation that records positions instead of values.
///
/// Run the normal assembly routine against a `PatternBuilder` once and the
/// resulting [`SparsePattern`] is guaranteed to cover every position that
/// assembly can ever write — the symbolic analysis is derived *from* the
/// stamping code, not duplicated beside it.
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    entries: Vec<(usize, usize)>,
}

impl PatternBuilder {
    /// A recorder for an `n × n` system.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "pattern dimension must be non-zero");
        PatternBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Records a position directly (used e.g. to force the diagonal).
    pub fn insert(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "entry ({i}, {j}) out of range");
        self.entries.push((i, j));
    }

    /// Finalizes the recorded positions into a pattern.
    pub fn build(&self) -> SparsePattern {
        SparsePattern::from_entries(self.n, &self.entries)
    }
}

impl Stamp for PatternBuilder {
    fn dim(&self) -> usize {
        self.n
    }

    fn clear(&mut self) {
        // Recording is cumulative across assembly passes: a transient-mode
        // pass must not erase positions a DC-mode pass discovered.
    }

    fn add_at(&mut self, i: usize, j: usize, _v: f64) {
        self.insert(i, j);
    }

    fn mul_vec_into(&self, _x: &[f64], y: &mut [f64]) {
        // A recorder holds no values; the product of the implied all-zero
        // matrix keeps this total rather than panicking.
        y.fill(0.0);
    }

    fn find_non_finite(&self) -> Option<(usize, usize, f64)> {
        None
    }
}

/// CSR values over a shared [`SparsePattern`].
///
/// ```
/// use std::sync::Arc;
/// use shil_numerics::sparse::{SparseMatrix, SparsePattern};
/// use shil_numerics::solver::Stamp;
///
/// let pattern = Arc::new(SparsePattern::from_entries(
///     2,
///     &[(0, 0), (0, 1), (1, 1)],
/// ));
/// let mut a = SparseMatrix::zeros(pattern);
/// a.add_at(0, 0, 2.0);
/// a.add_at(0, 1, 1.0);
/// a.add_at(1, 1, 3.0);
/// let mut y = [0.0; 2];
/// a.mul_vec_into(&[1.0, 1.0], &mut y);
/// assert_eq!(y, [3.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    pattern: Arc<SparsePattern>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An all-zero matrix over `pattern`.
    pub fn zeros(pattern: Arc<SparsePattern>) -> Self {
        let nnz = pattern.nnz();
        SparseMatrix {
            pattern,
            values: vec![0.0; nnz],
        }
    }

    /// The shared symbolic structure.
    pub fn pattern(&self) -> &Arc<SparsePattern> {
        &self.pattern
    }

    /// The stored value at `(i, j)` (0.0 for non-structural positions).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.pattern.slot(i, j).map_or(0.0, |s| self.values[s])
    }

    /// Raw slot values in CSR order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw slot values in CSR order.
    ///
    /// Callers that know the slot of a position up front (e.g. a recorded
    /// stamp schedule) can accumulate directly, skipping the per-stamp
    /// [`slot`](SparsePattern::slot) scan. Writing through this view is
    /// numerically identical to [`Stamp::add_at`] on the same slots.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }
}

impl Stamp for SparseMatrix {
    #[inline]
    fn dim(&self) -> usize {
        self.pattern.n
    }

    fn clear(&mut self) {
        self.values.fill(0.0);
    }

    #[inline]
    fn add_at(&mut self, i: usize, j: usize, v: f64) {
        match self.pattern.slot(i, j) {
            Some(s) => self.values[s] += v,
            None => panic!("position ({i}, {j}) is not in the sparse pattern"),
        }
    }

    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        let n = self.pattern.n;
        assert_eq!(x.len(), n, "dimension mismatch in mul_vec_into");
        assert_eq!(y.len(), n, "dimension mismatch in mul_vec_into");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.pattern.row_ptr[i]..self.pattern.row_ptr[i + 1] {
                acc += self.values[k] * x[self.pattern.col_idx[k]];
            }
            *yi = acc;
        }
    }

    fn find_non_finite(&self) -> Option<(usize, usize, f64)> {
        for i in 0..self.pattern.n {
            for k in self.pattern.row_ptr[i]..self.pattern.row_ptr[i + 1] {
                let v = self.values[k];
                if !v.is_finite() {
                    return Some((i, self.pattern.col_idx[k], v));
                }
            }
        }
        None
    }
}

/// Greedy minimum-degree elimination ordering (AMD-lite / Markowitz for
/// symmetric structure): repeatedly eliminate the vertex of smallest degree
/// in the symmetrized adjacency graph, adding clique fill between its
/// neighbours. Ties break toward the smallest index, so the ordering is
/// deterministic.
///
/// Returns `order` with `order[k]` = the original index eliminated `k`-th.
pub fn min_degree_order(pattern: &SparsePattern) -> Vec<usize> {
    use std::collections::BTreeSet;
    let n = pattern.dim();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for i in 0..n {
        for (j, _) in pattern.row(i) {
            if i != j {
                adj[i].insert(j);
                adj[j].insert(i);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| (adj[i].len(), i))
            .expect("vertices remain");
        let neighbours: Vec<usize> = adj[v].iter().copied().collect();
        for &a in &neighbours {
            adj[a].remove(&v);
        }
        for (ai, &a) in neighbours.iter().enumerate() {
            for &b in &neighbours[ai + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        eliminated[v] = true;
        adj[v].clear();
        order.push(v);
    }
    order
}

/// Sparse-aware LU with symbolic reuse: the [`LinearSolver`] for MNA-sized
/// systems.
///
/// Numeric refactorization scatters the CSR values into a preallocated
/// working buffer and runs the shared partial-pivot elimination with
/// exact-zero multiplier skipping — zero heap allocation per refactorize.
/// In the default natural ordering the pivot sequence is identical to the
/// dense solver's, so sparse and dense paths agree under `==`; with
/// [`with_min_degree`](Self::with_min_degree) the system is symmetrically
/// permuted to reduce fill before elimination (results then agree to
/// rounding, not bitwise).
#[derive(Debug, Clone)]
pub struct SparseSolver {
    pattern: Arc<SparsePattern>,
    /// Dense row-major working buffer for the factor (fill-in lands here
    /// without any symbolic bookkeeping; at MNA sizes the `O(n²)` storage
    /// is a few kilobytes).
    lu: Vec<f64>,
    perm: Vec<usize>,
    scratch: Vec<f64>,
    /// Optional fill-reducing ordering: `(order, inverse)` with
    /// `inverse[order[k]] = k`.
    ordering: Option<(Vec<usize>, Vec<usize>)>,
    /// Second scratch used only by the ordered solve path.
    scratch2: Vec<f64>,
    /// Nonzero entries of the factored buffer, rebuilt after each
    /// factorization so the hot solves never touch the `O(n²)` buffer.
    compressed: CompressedLu,
    factorized: bool,
}

/// The nonzero L/U entries of a factored dense buffer, in exactly the
/// order the dense substitution kernel visits them.
///
/// [`solve_factored_in_place`] already *arithmetically* skips zero factor
/// entries, but it still streams the whole `n × n` buffer through the
/// cache on every solve — which is the dominant per-iteration cost once
/// the factorization itself is being bypassed. Enumerating just the
/// nonzeros (same entries, same order) makes the triangular solves
/// `O(nnz(LU))` in both arithmetic *and* memory traffic while staying
/// bitwise identical to the dense kernel.
#[derive(Debug, Clone)]
pub(crate) struct CompressedLu {
    /// Row start offsets into `l_idx`/`l_val`; length `n + 1`.
    l_ptr: Vec<usize>,
    l_idx: Vec<u32>,
    l_val: Vec<f64>,
    /// Row start offsets into `u_idx`/`u_val`; length `n + 1`.
    u_ptr: Vec<usize>,
    u_idx: Vec<u32>,
    u_val: Vec<f64>,
    /// `diag[i]` = `U[i][i]`.
    diag: Vec<f64>,
}

impl CompressedLu {
    fn with_dim(n: usize) -> Self {
        CompressedLu {
            l_ptr: vec![0; n + 1],
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: vec![0; n + 1],
            u_idx: Vec::new(),
            u_val: Vec::new(),
            diag: vec![0.0; n],
        }
    }

    /// Harvests the nonzeros of a freshly factored buffer. The index/value
    /// vectors keep their capacity across refactorizations, so this stops
    /// allocating once the fill level stabilizes.
    fn load(&mut self, lu: &[f64], n: usize) {
        self.load_strided(lu, n, 1, 0);
    }

    /// [`load`](Self::load) over a lane-interleaved buffer: logical entry
    /// `(i, j)` of lane `lane` lives at `lu[(i*n + j) * stride + lane]`.
    /// With `stride == 1`, `lane == 0` this is exactly `load`; the batched
    /// elimination kernel uses it to harvest each lane's factors out of the
    /// shared structure-of-arrays buffer with the identical nonzero
    /// selection and ordering.
    pub(crate) fn load_strided(&mut self, lu: &[f64], n: usize, stride: usize, lane: usize) {
        self.l_idx.clear();
        self.l_val.clear();
        self.u_idx.clear();
        self.u_val.clear();
        for i in 0..n {
            self.l_ptr[i] = self.l_idx.len();
            self.u_ptr[i] = self.u_idx.len();
            for j in 0..i {
                let v = lu[(i * n + j) * stride + lane];
                if v != 0.0 {
                    self.l_idx.push(j as u32);
                    self.l_val.push(v);
                }
            }
            self.diag[i] = lu[(i * n + i) * stride + lane];
            for j in (i + 1)..n {
                let v = lu[(i * n + j) * stride + lane];
                if v != 0.0 {
                    self.u_idx.push(j as u32);
                    self.u_val.push(v);
                }
            }
        }
        self.l_ptr[n] = self.l_idx.len();
        self.u_ptr[n] = self.u_idx.len();
    }

    /// Permute-forward-back substitution, mirroring
    /// [`solve_factored_in_place`] operation for operation (the dense
    /// kernel skips its zero entries, so the sums here accumulate the
    /// identical terms in the identical order).
    fn solve(&self, n: usize, perm: &[usize], scratch: &mut [f64], x: &mut [f64]) {
        scratch.copy_from_slice(x);
        for i in 0..n {
            x[i] = scratch[perm[i]];
        }
        for i in 1..n {
            let mut acc = x[i];
            for (idx, v) in self.l_idx[self.l_ptr[i]..self.l_ptr[i + 1]]
                .iter()
                .zip(&self.l_val[self.l_ptr[i]..self.l_ptr[i + 1]])
            {
                acc -= *v * x[*idx as usize];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (idx, v) in self.u_idx[self.u_ptr[i]..self.u_ptr[i + 1]]
                .iter()
                .zip(&self.u_val[self.u_ptr[i]..self.u_ptr[i + 1]])
            {
                acc -= *v * x[*idx as usize];
            }
            x[i] = acc / self.diag[i];
        }
    }
}

impl SparseSolver {
    /// A solver over `pattern` in natural ordering (bit-compatible with the
    /// dense path).
    pub fn new(pattern: Arc<SparsePattern>) -> Self {
        let n = pattern.dim();
        SparseSolver {
            pattern,
            lu: vec![0.0; n * n],
            perm: (0..n).collect(),
            scratch: vec![0.0; n],
            ordering: None,
            scratch2: vec![0.0; n],
            compressed: CompressedLu::with_dim(n),
            factorized: false,
        }
    }

    /// A solver over `pattern` with the [`min_degree_order`] fill-reducing
    /// permutation applied symmetrically before elimination.
    pub fn with_min_degree(pattern: Arc<SparsePattern>) -> Self {
        let order = min_degree_order(&pattern);
        let mut inverse = vec![0usize; order.len()];
        for (k, &v) in order.iter().enumerate() {
            inverse[v] = k;
        }
        let mut solver = Self::new(pattern);
        solver.ordering = Some((order, inverse));
        solver
    }

    /// The fill-reducing ordering in use, if any.
    pub fn ordering(&self) -> Option<&[usize]> {
        self.ordering.as_ref().map(|(o, _)| o.as_slice())
    }

    /// Marks the stored factorization stale, mirroring the first action of
    /// [`refactorize`](LinearSolver::refactorize). The batched kernel calls
    /// this before eliminating, so a lane that fails mid-batch is left
    /// unfactorized exactly as a failed scalar refactorization would be.
    pub(crate) fn begin_external_refactorize(&mut self) {
        self.factorized = false;
    }

    /// Installs factors computed by the batched elimination kernel: copies
    /// the lane's row permutation and harvests the lane's column of the
    /// interleaved buffer into the compressed factor store.
    ///
    /// Only valid for natural-ordering solvers (the batched kernel is
    /// bit-compatible with the dense elimination, which is what natural
    /// ordering guarantees).
    pub(crate) fn install_external_factors(
        &mut self,
        lu: &[f64],
        stride: usize,
        lane: usize,
        perm: &[usize],
    ) {
        let n = self.pattern.dim();
        debug_assert!(
            self.ordering.is_none(),
            "batched install requires natural ordering"
        );
        debug_assert_eq!(perm.len(), n, "permutation length mismatch");
        self.perm.copy_from_slice(perm);
        self.compressed.load_strided(lu, n, stride, lane);
        self.factorized = true;
    }

    /// Whether this solver runs in natural ordering (no fill-reducing
    /// permutation) — the mode the batched kernel supports.
    pub fn has_natural_ordering(&self) -> bool {
        self.ordering.is_none()
    }
}

impl LinearSolver for SparseSolver {
    type Matrix = SparseMatrix;

    fn dim(&self) -> usize {
        self.pattern.dim()
    }

    fn refactorize(&mut self, a: &SparseMatrix) -> Result<(), NumericsError> {
        let n = self.pattern.dim();
        assert_eq!(a.dim(), n, "matrix dimension mismatch");
        debug_assert!(
            Arc::ptr_eq(&self.pattern, a.pattern()) || *a.pattern().as_ref() == *self.pattern,
            "matrix stamped over a different pattern"
        );
        self.factorized = false;
        // O(nnz) scan, not O(n²): the poisoned-stamp contract costs only
        // the structural positions.
        reject_non_finite(a, "sparse jacobian")?;
        self.lu.fill(0.0);
        match &self.ordering {
            None => {
                for i in 0..n {
                    for (j, s) in self.pattern.row(i) {
                        self.lu[i * n + j] = a.values()[s];
                    }
                }
            }
            Some((_, inverse)) => {
                for i in 0..n {
                    for (j, s) in self.pattern.row(i) {
                        self.lu[inverse[i] * n + inverse[j]] = a.values()[s];
                    }
                }
            }
        }
        factorize_dense_in_place(&mut self.lu, n, &mut self.perm)?;
        self.compressed.load(&self.lu, n);
        self.factorized = true;
        Ok(())
    }

    fn solve_in_place(&mut self, x: &mut [f64]) {
        assert!(self.factorized, "solve_in_place before refactorize");
        let n = self.pattern.dim();
        assert_eq!(x.len(), n, "rhs length mismatch");
        match &self.ordering {
            None => {
                self.compressed.solve(n, &self.perm, &mut self.scratch, x);
            }
            Some((order, inverse)) => {
                // Solve (P A Pᵀ)·z = P·b, then x = Pᵀ·z.
                for i in 0..n {
                    self.scratch2[inverse[i]] = x[i];
                }
                self.compressed
                    .solve(n, &self.perm, &mut self.scratch, &mut self.scratch2);
                for (k, &v) in order.iter().enumerate() {
                    x[v] = self.scratch2[k];
                }
            }
        }
    }

    fn is_factorized(&self) -> bool {
        self.factorized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{Lu, Matrix};
    use crate::solver::DenseSolver;

    /// An MNA-shaped test pattern: tridiagonal "conductance" block plus a
    /// voltage-source-like branch row/column with a structurally zero
    /// diagonal (forces pivoting, like real MNA).
    fn mna_like_pattern(n: usize) -> SparsePattern {
        let mut entries = Vec::new();
        for i in 0..n - 1 {
            entries.push((i, i));
            if i + 1 < n - 1 {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        // Branch row couples to node 0.
        entries.push((n - 1, 0));
        entries.push((0, n - 1));
        SparsePattern::from_entries(n, &entries)
    }

    fn fill_pair(pattern: &Arc<SparsePattern>, seed: u64) -> (SparseMatrix, Matrix) {
        let n = pattern.dim();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut sparse = SparseMatrix::zeros(pattern.clone());
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            for (j, _) in pattern.row(i) {
                let v = if i == j && i < n - 1 {
                    next() + 3.0
                } else {
                    next()
                };
                sparse.add_at(i, j, v);
                dense.add_at(i, j, v);
            }
        }
        (sparse, dense)
    }

    #[test]
    fn pattern_slots_are_sorted_and_queryable() {
        let p = SparsePattern::from_entries(3, &[(2, 0), (0, 0), (0, 2), (1, 1), (0, 0)]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.nnz(), 4); // duplicate (0,0) merged
        assert!(p.slot(0, 0).is_some());
        assert!(p.slot(0, 1).is_none());
        let row0: Vec<usize> = p.row(0).map(|(j, _)| j).collect();
        assert_eq!(row0, vec![0, 2]);
        assert!((p.density() - 4.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn stamping_accumulates_and_clears() {
        let p = Arc::new(SparsePattern::from_entries(2, &[(0, 0), (1, 0)]));
        let mut m = SparseMatrix::zeros(p);
        m.add_at(0, 0, 1.5);
        m.add_at(0, 0, 2.5);
        m.add_at(1, 0, -1.0);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not in the sparse pattern")]
    fn stamping_outside_pattern_panics() {
        let p = Arc::new(SparsePattern::from_entries(2, &[(0, 0)]));
        let mut m = SparseMatrix::zeros(p);
        m.add_at(1, 1, 1.0);
    }

    #[test]
    fn sparse_solver_matches_dense_solver_bitwise() {
        for n in [3usize, 5, 8, 12] {
            let pattern = Arc::new(mna_like_pattern(n));
            for seed in 0..10u64 {
                let (sparse, dense) = fill_pair(&pattern, seed * 31 + n as u64);
                let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) as f64 * 0.13).sin()).collect();

                let mut ds = DenseSolver::new(n);
                let mut ss = SparseSolver::new(pattern.clone());
                match (ds.refactorize(&dense), ss.refactorize(&sparse)) {
                    (Ok(()), Ok(())) => {
                        let mut xd = b.clone();
                        let mut xs = b.clone();
                        ds.solve_in_place(&mut xd);
                        ss.solve_in_place(&mut xs);
                        assert_eq!(xd, xs, "n = {n}, seed = {seed}");
                    }
                    (Err(ed), Err(es)) => {
                        assert_eq!(
                            format!("{ed}"),
                            format!("{es}"),
                            "divergent failure, n = {n}, seed = {seed}"
                        );
                    }
                    (d, s) => panic!("one path failed, the other not: {d:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn sparse_solver_matches_legacy_lu_bitwise() {
        let pattern = Arc::new(mna_like_pattern(7));
        let (sparse, dense) = fill_pair(&pattern, 42);
        let b = vec![1.0, -0.5, 0.25, 2.0, -1.5, 0.75, 0.1];
        let reference = Lu::factorize(dense).unwrap().solve(&b);
        let mut ss = SparseSolver::new(pattern);
        ss.refactorize(&sparse).unwrap();
        let mut x = b;
        ss.solve_in_place(&mut x);
        assert_eq!(x, reference);
    }

    #[test]
    fn singular_sparse_matrix_is_rejected_like_dense() {
        // A structurally present but numerically zero row.
        let pattern = Arc::new(SparsePattern::from_entries(
            3,
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)],
        ));
        let mut m = SparseMatrix::zeros(pattern.clone());
        m.add_at(0, 0, 1.0);
        m.add_at(0, 1, 2.0);
        m.add_at(1, 0, 2.0);
        m.add_at(1, 1, 4.0); // row 1 = 2 × row 0
        m.add_at(2, 2, 1.0);
        let mut s = SparseSolver::new(pattern);
        assert!(matches!(
            s.refactorize(&m),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(!s.is_factorized());
    }

    #[test]
    fn non_finite_stamp_is_rejected_with_position() {
        let pattern = Arc::new(mna_like_pattern(4));
        let mut m = SparseMatrix::zeros(pattern.clone());
        m.add_at(1, 2, f64::NAN);
        let mut s = SparseSolver::new(pattern);
        match s.refactorize(&m) {
            Err(NumericsError::NonFinite { context, .. }) => {
                assert!(context.contains("(1, 2)"), "{context}");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn min_degree_order_is_a_permutation() {
        let pattern = mna_like_pattern(9);
        let order = min_degree_order(&pattern);
        let mut seen = [false; 9];
        for &v in &order {
            assert!(!seen[v], "duplicate vertex {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn min_degree_solver_is_accurate() {
        let pattern = Arc::new(mna_like_pattern(10));
        let order_len = min_degree_order(&pattern).len();
        assert_eq!(order_len, 10);
        let (sparse, dense) = fill_pair(&pattern, 77);
        let b: Vec<f64> = (0..10).map(|i| (i as f64 - 4.5) * 0.3).collect();
        let mut s = SparseSolver::with_min_degree(pattern);
        assert!(s.ordering().is_some());
        s.refactorize(&sparse).unwrap();
        let mut x = b.clone();
        s.solve_in_place(&mut x);
        // Different pivot sequence ⇒ compare by residual, not bitwise.
        let r = dense.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10, "{ri} vs {bi}");
        }
    }

    #[test]
    fn pattern_builder_records_assembly_positions() {
        let mut pb = PatternBuilder::new(3);
        pb.add_at(0, 0, 1.0);
        pb.add_at(0, 1, -1.0);
        pb.add_at(2, 2, 0.0); // zero-valued stamps still record structure
        pb.clear(); // must NOT erase recorded positions
        pb.add_at(1, 1, 5.0);
        let p = pb.build();
        assert_eq!(p.nnz(), 4);
        assert!(p.slot(0, 1).is_some());
        assert!(p.slot(2, 2).is_some());
        assert!(p.slot(1, 0).is_none());
    }

    #[test]
    fn sparse_mul_vec_matches_dense() {
        let pattern = Arc::new(mna_like_pattern(6));
        let (sparse, dense) = fill_pair(&pattern, 5);
        let x: Vec<f64> = (0..6).map(|i| 0.5 - 0.2 * i as f64).collect();
        let mut ys = vec![0.0; 6];
        sparse.mul_vec_into(&x, &mut ys);
        let yd = dense.mul_vec(&x);
        assert_eq!(ys, yd);
    }
}
