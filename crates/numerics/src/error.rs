use std::fmt;

/// Errors produced by the numerical kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A matrix factorization encountered a (numerically) singular pivot.
    SingularMatrix {
        /// Index of the pivot column where factorization broke down.
        pivot: usize,
    },
    /// A root-finding bracket `[a, b]` did not actually bracket a sign change.
    InvalidBracket {
        /// Left end of the attempted bracket.
        a: f64,
        /// Right end of the attempted bracket.
        b: f64,
    },
    /// An iterative method exhausted its iteration budget before converging.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm (or interval width) at the point of giving up.
        residual: f64,
    },
    /// Input data violated a structural precondition (documented per function).
    InvalidInput(String),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericsError::InvalidBracket { a, b } => {
                write!(f, "interval [{a}, {b}] does not bracket a root")
            }
            NumericsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericsError::SingularMatrix { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 3");
        let e = NumericsError::InvalidBracket { a: 0.0, b: 1.0 };
        assert!(e.to_string().contains("does not bracket"));
        let e = NumericsError::NoConvergence {
            iterations: 7,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("7 iterations"));
        let e = NumericsError::InvalidInput("empty grid".into());
        assert!(e.to_string().contains("empty grid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
