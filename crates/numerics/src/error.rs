use std::fmt;

/// Errors produced by the numerical kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A matrix factorization encountered a (numerically) singular pivot.
    SingularMatrix {
        /// Index of the pivot column where factorization broke down.
        pivot: usize,
    },
    /// A root-finding bracket `[a, b]` did not actually bracket a sign change.
    InvalidBracket {
        /// Left end of the attempted bracket.
        a: f64,
        /// Right end of the attempted bracket.
        b: f64,
    },
    /// An iterative method exhausted its iteration budget before converging.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm (or interval width) at the point of giving up.
        residual: f64,
    },
    /// Input data violated a structural precondition (documented per function).
    InvalidInput(String),
    /// A residual, Jacobian entry, or sample evaluated to NaN/±Inf.
    ///
    /// Carried diagnostics let callers report *where* the model blew up
    /// instead of silently propagating NaN through downstream grids.
    NonFinite {
        /// Which computation detected the non-finite value
        /// (e.g. `"newton residual"`, `"jacobian column 1"`).
        context: String,
        /// The evaluation point (solver state) at which it was detected.
        at: Vec<f64>,
    },
    /// An iterative method exhausted its budget; unlike [`NoConvergence`]
    /// this variant carries the best iterate seen, so callers can degrade
    /// to a partial answer instead of discarding all the work.
    ///
    /// [`NoConvergence`]: NumericsError::NoConvergence
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Smallest finite residual norm observed.
        residual: f64,
        /// Iterate achieving that residual.
        best_x: Vec<f64>,
    },
    /// The solve was stopped cooperatively — its execution budget tripped
    /// (cancellation requested or wall-clock deadline exceeded) at a loop
    /// boundary. Like [`NotConverged`] it carries the best iterate seen,
    /// so a bounded solve still hands back partial diagnostics instead of
    /// nothing.
    ///
    /// [`NotConverged`]: NumericsError::NotConverged
    Cancelled {
        /// Best iterate reached before the budget tripped (the initial
        /// guess if no iteration completed).
        best_iterate: Vec<f64>,
        /// Wall-clock time spent in the solve when it stopped.
        elapsed: std::time::Duration,
    },
}

impl NumericsError {
    /// The best iterate recovered from a failed solve, when one exists.
    pub fn best_iterate(&self) -> Option<&[f64]> {
        match self {
            NumericsError::NotConverged { best_x, .. } => Some(best_x),
            NumericsError::Cancelled { best_iterate, .. } => Some(best_iterate),
            _ => None,
        }
    }
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericsError::InvalidBracket { a, b } => {
                write!(f, "interval [{a}, {b}] does not bracket a root")
            }
            NumericsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            NumericsError::NonFinite { context, at } => {
                write!(f, "non-finite value in {context} at x = {at:?}")
            }
            NumericsError::NotConverged {
                iterations,
                residual,
                best_x,
            } => write!(
                f,
                "not converged after {iterations} iterations \
                 (best residual {residual:.3e} at x = {best_x:?})"
            ),
            NumericsError::Cancelled {
                best_iterate,
                elapsed,
            } => write!(
                f,
                "cancelled after {:.3} s (best iterate x = {best_iterate:?})",
                elapsed.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericsError::SingularMatrix { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 3");
        let e = NumericsError::InvalidBracket { a: 0.0, b: 1.0 };
        assert!(e.to_string().contains("does not bracket"));
        let e = NumericsError::NoConvergence {
            iterations: 7,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("7 iterations"));
        let e = NumericsError::InvalidInput("empty grid".into());
        assert!(e.to_string().contains("empty grid"));
        let e = NumericsError::NonFinite {
            context: "newton residual".into(),
            at: vec![1.0, 2.0],
        };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("newton residual"));
        let e = NumericsError::NotConverged {
            iterations: 9,
            residual: 2e-4,
            best_x: vec![0.5],
        };
        assert!(e.to_string().contains("9 iterations"));
        assert!(e.to_string().contains("2.000e-4"));
        let e = NumericsError::Cancelled {
            best_iterate: vec![1.25],
            elapsed: std::time::Duration::from_millis(1500),
        };
        assert!(e.to_string().contains("cancelled after 1.500 s"));
        assert!(e.to_string().contains("1.25"));
    }

    #[test]
    fn best_iterate_recovers_partial_answer() {
        let e = NumericsError::NotConverged {
            iterations: 3,
            residual: 0.1,
            best_x: vec![1.5, -0.5],
        };
        assert_eq!(e.best_iterate(), Some(&[1.5, -0.5][..]));
        let e = NumericsError::Cancelled {
            best_iterate: vec![2.0],
            elapsed: std::time::Duration::ZERO,
        };
        assert_eq!(e.best_iterate(), Some(&[2.0][..]));
        let e = NumericsError::InvalidInput("nope".into());
        assert_eq!(e.best_iterate(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
