//! Reusable linear solvers for Newton loops.
//!
//! The MNA Jacobians solved in the circuit simulator's inner loops are
//! re-assembled and re-factorized thousands of times per transient run. The
//! seed implementation cloned the matrix and allocated a fresh LU on every
//! Newton iteration; this module provides the replacement kernel:
//!
//! - [`Stamp`] — the minimal matrix interface MNA assembly writes into,
//!   implemented by the dense [`Matrix`](crate::Matrix) and by
//!   [`SparseMatrix`](crate::sparse::SparseMatrix).
//! - [`LinearSolver`] — numeric *re*-factorization into preallocated
//!   storage plus an in-place triangular solve: zero heap allocation per
//!   solve after construction.
//! - [`DenseSolver`] — the small-N workhorse, bit-compatible with the
//!   historical [`Lu`](crate::linalg::Lu) elimination (identical pivoting
//!   and update order; exact-zero multiplier updates are skipped, which can
//!   only change the sign of a zero).
//! - [`BypassSolver`] — factorization bypass: reuse the last factorization
//!   as long as an iterative-refinement check certifies the step against
//!   the *current* matrix, counting factorizations vs. reuses.

use crate::error::NumericsError;
use crate::linalg::Matrix;

/// Minimal interface the MNA assembly loop needs from a Jacobian container.
///
/// Implementations must treat `add_at` as accumulation (`A[i,j] += v`) and
/// `clear` as resetting every stored entry to zero *without* releasing
/// storage — assembly re-stamps the same structural positions every Newton
/// iteration.
pub trait Stamp {
    /// Dimension `n` of the square `n × n` system.
    fn dim(&self) -> usize;
    /// Resets all stored entries to zero, keeping the allocation.
    fn clear(&mut self);
    /// Accumulates `v` into entry `(i, j)`.
    fn add_at(&mut self, i: usize, j: usize, v: f64);
    /// Dense matrix–vector product `y = A·x` into a caller buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from [`Stamp::dim`].
    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]);
    /// First stored non-finite entry as `(row, col, value)`, if any.
    ///
    /// Used by solvers to refuse poisoned systems with a typed
    /// [`NumericsError::NonFinite`] instead of grinding NaN through an
    /// elimination (or worse, serving a stale factorization for a matrix
    /// that is no longer meaningful).
    fn find_non_finite(&self) -> Option<(usize, usize, f64)>;
}

impl Stamp for Matrix {
    #[inline]
    fn dim(&self) -> usize {
        self.rows()
    }

    fn clear(&mut self) {
        Matrix::clear(self);
    }

    #[inline]
    fn add_at(&mut self, i: usize, j: usize, v: f64) {
        Matrix::add_at(self, i, j, v);
    }

    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        let n = self.rows();
        assert_eq!(x.len(), n, "dimension mismatch in mul_vec_into");
        assert_eq!(y.len(), n, "dimension mismatch in mul_vec_into");
        let data = self.data();
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (a, xv) in data[i * n..(i + 1) * n].iter().zip(x) {
                acc += *a * *xv;
            }
            *yi = acc;
        }
    }

    fn find_non_finite(&self) -> Option<(usize, usize, f64)> {
        let cols = self.cols();
        self.data()
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite())
            .map(|(idx, &v)| (idx / cols, idx % cols, v))
    }
}

/// A factorization that can be *re*-computed into existing storage and then
/// applied in place — the contract every Newton inner loop in the workspace
/// builds on.
///
/// After construction, [`refactorize`](Self::refactorize) and
/// [`solve_in_place`](Self::solve_in_place) perform no heap allocation.
pub trait LinearSolver {
    /// The matrix representation this solver factorizes.
    type Matrix: Stamp;

    /// Dimension of the systems this solver was sized for.
    fn dim(&self) -> usize;

    /// Recomputes the factorization of `a` into preallocated storage.
    ///
    /// # Errors
    ///
    /// - [`NumericsError::NonFinite`] if `a` contains a NaN/±Inf entry.
    /// - [`NumericsError::SingularMatrix`] if elimination breaks down.
    fn refactorize(&mut self, a: &Self::Matrix) -> Result<(), NumericsError>;

    /// Overwrites `x` (holding the right-hand side `b`) with the solution
    /// of `A·x = b` using the last successful factorization.
    ///
    /// # Panics
    ///
    /// Panics if no successful [`refactorize`](Self::refactorize) has
    /// happened yet, or if `x.len() != self.dim()`.
    fn solve_in_place(&mut self, x: &mut [f64]);

    /// Whether a successful factorization is currently stored.
    fn is_factorized(&self) -> bool;
}

/// Partial-pivot LU elimination on a row-major `n × n` buffer, in place.
///
/// Mirrors [`Lu::factorize`](crate::linalg::Lu::factorize) exactly — same
/// pivot selection (strictly-greater magnitude scan), same row-swap and
/// update order — except that a row update with an *exactly zero* multiplier
/// is skipped. Such an update can only flip the sign of a zero entry, so
/// results agree with the historical dense path under `==` comparison while
/// sparse systems skip most of the `O(n³)` work.
///
/// `perm` is overwritten with the row permutation (`perm[i]` = original row
/// now in position `i`).
///
/// # Errors
///
/// [`NumericsError::SingularMatrix`] when the best pivot magnitude in some
/// column is not greater than `1e-300` (NaN pivots are rejected the same
/// way, matching the dense path).
///
/// # Panics
///
/// Panics if `lu.len() != n²` or `perm.len() != n`.
pub fn factorize_dense_in_place(
    lu: &mut [f64],
    n: usize,
    perm: &mut [usize],
) -> Result<(), NumericsError> {
    assert_eq!(lu.len(), n * n, "buffer is not n×n");
    assert_eq!(perm.len(), n, "permutation length mismatch");
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }
    for k in 0..n {
        let mut pivot_row = k;
        let mut pivot_mag = lu[k * n + k].abs();
        for i in (k + 1)..n {
            let mag = lu[i * n + k].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        // `partial_cmp` keeps the NaN-rejecting behaviour of `!(a > b)`.
        if pivot_mag.partial_cmp(&1e-300) != Some(std::cmp::Ordering::Greater) {
            return Err(NumericsError::SingularMatrix { pivot: k });
        }
        if pivot_row != k {
            for j in 0..n {
                lu.swap(k * n + j, pivot_row * n + j);
            }
            perm.swap(k, pivot_row);
        }
        let pivot = lu[k * n + k];
        for i in (k + 1)..n {
            let (head, tail) = lu.split_at_mut(i * n);
            let row_k = &head[k * n..(k + 1) * n];
            let row_i = &mut tail[..n];
            let m = row_i[k] / pivot;
            row_i[k] = m;
            if m != 0.0 {
                for j in (k + 1)..n {
                    row_i[j] -= m * row_k[j];
                }
            }
        }
    }
    Ok(())
}

/// Applies a factorization from [`factorize_dense_in_place`] to solve
/// `A·x = b` in place (`x` holds `b` on entry, the solution on exit).
///
/// `scratch` is caller-provided working storage of length `n`; no heap
/// allocation happens here.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn solve_factored_in_place(
    lu: &[f64],
    n: usize,
    perm: &[usize],
    scratch: &mut [f64],
    x: &mut [f64],
) {
    assert_eq!(lu.len(), n * n, "buffer is not n×n");
    assert_eq!(perm.len(), n, "permutation length mismatch");
    assert_eq!(scratch.len(), n, "scratch length mismatch");
    assert_eq!(x.len(), n, "rhs length mismatch");
    scratch.copy_from_slice(x);
    for i in 0..n {
        x[i] = scratch[perm[i]];
    }
    // Forward substitution with unit-lower-triangular L (zero entries are
    // skipped; they contribute only a zero-signed perturbation).
    for i in 1..n {
        let (solved, rest) = x.split_at_mut(i);
        let mut acc = rest[0];
        for (l, xj) in lu[i * n..i * n + i].iter().zip(solved.iter()) {
            if *l != 0.0 {
                acc -= *l * *xj;
            }
        }
        rest[0] = acc;
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        let (lo, solved) = x.split_at_mut(i + 1);
        let mut acc = lo[i];
        for (u, xj) in lu[i * n + i + 1..(i + 1) * n].iter().zip(solved.iter()) {
            if *u != 0.0 {
                acc -= *u * *xj;
            }
        }
        lo[i] = acc / lu[i * n + i];
    }
}

/// Scans a stamped matrix and converts a non-finite entry into the typed
/// error the resilience layer expects.
pub(crate) fn reject_non_finite<M: Stamp>(a: &M, context: &str) -> Result<(), NumericsError> {
    if let Some((i, j, v)) = a.find_non_finite() {
        return Err(NumericsError::NonFinite {
            context: format!("{context} entry ({i}, {j})"),
            at: vec![v],
        });
    }
    Ok(())
}

/// Dense LU with preallocated storage: the small-N [`LinearSolver`].
///
/// ```
/// use shil_numerics::solver::{DenseSolver, LinearSolver};
/// use shil_numerics::Matrix;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let mut solver = DenseSolver::new(2);
/// solver.refactorize(&a)?;
/// let mut x = [10.0, 12.0];
/// solver.solve_in_place(&mut x);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseSolver {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    scratch: Vec<f64>,
    factorized: bool,
}

impl DenseSolver {
    /// Allocates working storage for `n × n` systems.
    ///
    /// `n = 0` is permitted (a degenerate system factorizes and solves
    /// trivially), mirroring the legacy `Lu` path for circuits with no
    /// unknowns.
    pub fn new(n: usize) -> Self {
        DenseSolver {
            n,
            lu: vec![0.0; n * n],
            perm: (0..n).collect(),
            scratch: vec![0.0; n],
            factorized: false,
        }
    }
}

impl LinearSolver for DenseSolver {
    type Matrix = Matrix;

    fn dim(&self) -> usize {
        self.n
    }

    fn refactorize(&mut self, a: &Matrix) -> Result<(), NumericsError> {
        assert_eq!(a.rows(), self.n, "matrix dimension mismatch");
        assert_eq!(a.cols(), self.n, "matrix dimension mismatch");
        self.factorized = false;
        reject_non_finite(a, "dense jacobian")?;
        self.lu.copy_from_slice(a.data());
        factorize_dense_in_place(&mut self.lu, self.n, &mut self.perm)?;
        self.factorized = true;
        Ok(())
    }

    fn solve_in_place(&mut self, x: &mut [f64]) {
        assert!(self.factorized, "solve_in_place before refactorize");
        solve_factored_in_place(&self.lu, self.n, &self.perm, &mut self.scratch, x);
    }

    fn is_factorized(&self) -> bool {
        self.factorized
    }
}

/// How a [`BypassSolver`] served a Newton step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// A fresh numeric factorization was computed for this step.
    Factorized,
    /// The previous factorization was reused; iterative refinement
    /// certified the step against the current matrix.
    Reused,
}

/// Factorization bypass with an iterative-refinement safety check.
///
/// Newton loops over slowly varying systems (consecutive transient steps,
/// consecutive iterations near convergence) waste most of their
/// factorization work: the matrix barely changed. This wrapper solves each
/// step with the *stale* factorization `S` first and measures the linear
/// residual `s = b − A·x` against the **current** matrix `A`. If
/// `‖s‖∞ ≤ η·‖b‖∞` the step is certified and the factorization cost is
/// bypassed; otherwise up to `refine_max` refinement corrections
/// `x += S⁻¹s` are tried, and only if those fail is `A` refactorized.
///
/// The certificate is computed against the current `A`, so a reused step is
/// never silently wrong — at worst it is refused and a factorization
/// happens, which is exactly the behaviour without bypass. Non-finite
/// matrices are rejected *before* the stale solve, so a NaN stamp can never
/// be served by reuse.
#[derive(Debug, Clone)]
pub struct BypassSolver<S: LinearSolver> {
    inner: S,
    eta: f64,
    refine_max: usize,
    force_refactorize: bool,
    ax: Vec<f64>,
    s: Vec<f64>,
    factorizations: usize,
    reuses: usize,
}

impl<S: LinearSolver> BypassSolver<S> {
    /// Default reuse tolerance `η` (relative linear-residual bound).
    pub const DEFAULT_ETA: f64 = 1e-6;

    /// Wraps `inner` with the default tolerance (`η = 1e-6`, four
    /// refinement passes). The tolerance is deliberately *tight*: a loose
    /// certificate (say 1e-2) would accept Newton directions inexact enough
    /// to inflate the nonlinear iteration count, and each extra Newton
    /// iteration costs a full Jacobian assembly — far more than the
    /// factorization the bypass saves on small MNA systems. Refinement
    /// converges geometrically at the Jacobian's relative drift `δ`
    /// (residual `δ → δ² → δ³ → …`), so even the across-a-time-step drift
    /// (`δ` of a few percent) certifies at 1e-6 within the refinement
    /// budget, refinement corrections are cheap (a triangular solve and a
    /// multiply — no factorization), and a certified reused step is
    /// numerically indistinguishable from a fresh factorization as far as
    /// Newton is concerned. Non-contracting refinement (the factorization
    /// is too stale to help) is detected after one correction and falls
    /// straight through to refactorization.
    pub fn new(inner: S) -> Self {
        let n = inner.dim();
        BypassSolver {
            inner,
            eta: Self::DEFAULT_ETA,
            refine_max: 4,
            force_refactorize: false,
            ax: vec![0.0; n],
            s: vec![0.0; n],
            factorizations: 0,
            reuses: 0,
        }
    }

    /// Overrides the reuse tolerance. `0.0` disables reuse entirely (every
    /// step refactorizes) — useful as a baseline in benchmarks.
    #[must_use]
    pub fn with_tolerance(mut self, eta: f64) -> Self {
        self.eta = eta.max(0.0);
        self
    }

    /// Drops the stored factorization, forcing the next step to refactorize.
    ///
    /// The refinement certificate would catch a stale factorization anyway;
    /// this just skips the doomed attempt when the caller knows the system
    /// changed discontinuously.
    pub fn invalidate(&mut self) {
        self.force_refactorize = true;
    }

    /// Fresh factorizations performed so far.
    pub fn factorizations(&self) -> usize {
        self.factorizations
    }

    /// Steps served by reusing a previous factorization.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// The wrapped solver.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Solves `A·dx = rhs`, reusing the previous factorization when the
    /// refinement certificate allows it.
    ///
    /// # Errors
    ///
    /// - [`NumericsError::NonFinite`] if `a` or `rhs` contains NaN/±Inf
    ///   (checked before any stale solve).
    /// - [`NumericsError::SingularMatrix`] from a required factorization.
    ///
    /// # Panics
    ///
    /// Panics on slice-length mismatches.
    pub fn solve_step(
        &mut self,
        a: &S::Matrix,
        rhs: &[f64],
        dx: &mut [f64],
    ) -> Result<StepKind, NumericsError> {
        if let Some(kind) = self.try_reuse(a, rhs, dx)? {
            return Ok(kind);
        }
        self.refactorize_solve(a, rhs, dx)
    }

    /// The reuse half of [`solve_step`](Self::solve_step): validates the
    /// system and attempts a certified stale-factorization solve.
    ///
    /// Returns `Ok(Some(StepKind::Reused))` when the refinement certificate
    /// accepted the step (`dx` holds the solution), `Ok(None)` when a fresh
    /// factorization is required (`dx` contents are unspecified). Batched
    /// callers use this to collect the lanes that need refactorization and
    /// eliminate them together; `try_reuse` followed by
    /// [`refactorize_solve`](Self::refactorize_solve) is exactly
    /// `solve_step`.
    ///
    /// # Errors
    ///
    /// [`NumericsError::NonFinite`] if `a` or `rhs` contains NaN/±Inf.
    ///
    /// # Panics
    ///
    /// Panics on slice-length mismatches.
    pub fn try_reuse(
        &mut self,
        a: &S::Matrix,
        rhs: &[f64],
        dx: &mut [f64],
    ) -> Result<Option<StepKind>, NumericsError> {
        let n = self.inner.dim();
        assert_eq!(rhs.len(), n, "rhs length mismatch");
        assert_eq!(dx.len(), n, "solution length mismatch");
        // A poisoned matrix must surface as NonFinite, never be served by a
        // stale factorization that happens to pass a NaN-polluted check.
        reject_non_finite(a, "jacobian")?;
        let rhs_norm = nan_propagating_inf_norm(rhs);
        if !rhs_norm.is_finite() {
            return Err(NumericsError::NonFinite {
                context: "linear-solve right-hand side".into(),
                at: rhs.to_vec(),
            });
        }

        if self.inner.is_factorized() && !self.force_refactorize && self.eta > 0.0 {
            let threshold = self.eta * rhs_norm;
            dx.copy_from_slice(rhs);
            self.inner.solve_in_place(dx);
            a.mul_vec_into(dx, &mut self.ax);
            for ((s, &r), &ax) in self.s.iter_mut().zip(rhs).zip(&self.ax) {
                *s = r - ax;
            }
            // NaN residuals fail the `<=` comparison and fall through to a
            // fresh factorization below.
            let mut snorm = nan_propagating_inf_norm(&self.s);
            let mut certified = snorm <= threshold;
            let mut refinements = 0;
            while !certified && refinements < self.refine_max {
                self.inner.solve_in_place(&mut self.s);
                for (d, &s) in dx.iter_mut().zip(&self.s) {
                    *d += s;
                }
                a.mul_vec_into(dx, &mut self.ax);
                for ((s, &r), &ax) in self.s.iter_mut().zip(rhs).zip(&self.ax) {
                    *s = r - ax;
                }
                let next = nan_propagating_inf_norm(&self.s);
                certified = next <= threshold;
                // Refinement contracts at the Jacobian drift; a residual
                // that stopped shrinking (or went NaN) will never certify,
                // so stop wasting corrections and refactorize.
                let contracting =
                    matches!(next.partial_cmp(&snorm), Some(std::cmp::Ordering::Less));
                if !certified && !contracting {
                    break;
                }
                snorm = next;
                refinements += 1;
            }
            if certified {
                self.reuses += 1;
                return Ok(Some(StepKind::Reused));
            }
        }

        Ok(None)
    }

    /// The factorization half of [`solve_step`](Self::solve_step):
    /// refactorizes `a` and solves `A·dx = rhs` with the fresh factors.
    ///
    /// # Errors
    ///
    /// - [`NumericsError::NonFinite`] if `a` contains NaN/±Inf.
    /// - [`NumericsError::SingularMatrix`] if elimination breaks down.
    ///
    /// # Panics
    ///
    /// Panics on slice-length mismatches.
    pub fn refactorize_solve(
        &mut self,
        a: &S::Matrix,
        rhs: &[f64],
        dx: &mut [f64],
    ) -> Result<StepKind, NumericsError> {
        let n = self.inner.dim();
        assert_eq!(rhs.len(), n, "rhs length mismatch");
        assert_eq!(dx.len(), n, "solution length mismatch");
        self.inner.refactorize(a)?;
        self.force_refactorize = false;
        self.factorizations += 1;
        dx.copy_from_slice(rhs);
        self.inner.solve_in_place(dx);
        Ok(StepKind::Factorized)
    }

    /// Solves `A·dx = rhs` with the current factorization, counting it as a
    /// fresh factorization step.
    ///
    /// This is the tail of [`refactorize_solve`](Self::refactorize_solve)
    /// for callers that computed the factors *externally* (the batched
    /// elimination kernel installs factors for several lanes at once and
    /// then completes each lane's step through here).
    ///
    /// # Panics
    ///
    /// Panics if no factorization is stored or on length mismatches.
    pub fn solve_with_installed_factors(&mut self, rhs: &[f64], dx: &mut [f64]) {
        assert!(
            self.inner.is_factorized(),
            "solve_with_installed_factors before a factorization was installed"
        );
        self.force_refactorize = false;
        self.factorizations += 1;
        dx.copy_from_slice(rhs);
        self.inner.solve_in_place(dx);
    }

    /// Mutable access to the wrapped solver (crate-internal: the batched
    /// refactorization kernel installs factors directly into it).
    pub(crate) fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

/// NaN-propagating infinity norm (a NaN entry must poison the norm so the
/// reuse gate cannot accept a poisoned step).
fn nan_propagating_inf_norm(v: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for &x in v {
        if x.is_nan() {
            return f64::NAN;
        }
        m = m.max(x.abs());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Lu;

    fn random_matrix(n: usize, seed: u64) -> Matrix {
        // Deterministic LCG so tests are reproducible without rand.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
            // Diagonal boost keeps the draw comfortably nonsingular.
            m[(i, i)] += 3.0;
        }
        m
    }

    #[test]
    fn dense_solver_matches_lu_bitwise() {
        for seed in 0..20u64 {
            let n = 1 + (seed as usize % 7);
            let a = random_matrix(n, seed);
            let b: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.7 + seed as f64).sin())
                .collect();
            let reference = Lu::factorize(a.clone()).unwrap().solve(&b);
            let mut solver = DenseSolver::new(n);
            solver.refactorize(&a).unwrap();
            let mut x = b.clone();
            solver.solve_in_place(&mut x);
            assert_eq!(x, reference, "seed {seed}");
        }
    }

    #[test]
    fn dense_solver_is_reusable_across_matrices() {
        let mut solver = DenseSolver::new(3);
        for seed in 0..5u64 {
            let a = random_matrix(3, 100 + seed);
            solver.refactorize(&a).unwrap();
            let b = [1.0, -2.0, 0.5];
            let mut x = b;
            solver.solve_in_place(&mut x);
            let r = a.mul_vec(&x);
            for (ri, bi) in r.iter().zip(&b) {
                assert!((ri - bi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dense_solver_rejects_non_finite_matrix() {
        let mut a = Matrix::identity(3);
        a[(1, 2)] = f64::NAN;
        let mut solver = DenseSolver::new(3);
        let err = solver.refactorize(&a).unwrap_err();
        match err {
            NumericsError::NonFinite { context, .. } => {
                assert!(context.contains("(1, 2)"), "{context}");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(!solver.is_factorized());
    }

    #[test]
    fn dense_solver_rejects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut solver = DenseSolver::new(2);
        assert!(matches!(
            solver.refactorize(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "before refactorize")]
    fn solve_before_factorize_panics() {
        let mut solver = DenseSolver::new(2);
        let mut x = [1.0, 2.0];
        solver.solve_in_place(&mut x);
    }

    #[test]
    fn bypass_reuses_on_unchanged_matrix() {
        let a = random_matrix(4, 7);
        let mut solver = BypassSolver::new(DenseSolver::new(4));
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut dx = [0.0; 4];
        assert_eq!(
            solver.solve_step(&a, &b, &mut dx).unwrap(),
            StepKind::Factorized
        );
        assert_eq!(
            solver.solve_step(&a, &b, &mut dx).unwrap(),
            StepKind::Reused
        );
        assert_eq!(solver.factorizations(), 1);
        assert_eq!(solver.reuses(), 1);
        let r = a.mul_vec(&dx);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bypass_reuse_step_is_accurate_for_perturbed_matrix() {
        let a = random_matrix(5, 11);
        let mut solver = BypassSolver::new(DenseSolver::new(5));
        let b = [0.3, -1.0, 2.0, 0.1, -0.4];
        let mut dx = [0.0; 5];
        solver.solve_step(&a, &b, &mut dx).unwrap();
        // Small perturbation: reuse should hold and still satisfy the
        // certificate against the *perturbed* matrix.
        let mut a2 = a.clone();
        for i in 0..5 {
            a2[(i, i)] *= 1.0 + 1e-6;
        }
        let kind = solver.solve_step(&a2, &b, &mut dx).unwrap();
        assert_eq!(kind, StepKind::Reused);
        let r = a2.mul_vec(&dx);
        let bnorm = b.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        for (ri, bi) in r.iter().zip(&b) {
            assert!(
                (ri - bi).abs() <= BypassSolver::<DenseSolver>::DEFAULT_ETA * bnorm,
                "certificate violated: {} vs {}",
                ri,
                bi
            );
        }
    }

    #[test]
    fn bypass_refactorizes_on_large_change() {
        let a = random_matrix(4, 3);
        let mut solver = BypassSolver::new(DenseSolver::new(4));
        let b = [1.0, 0.0, -1.0, 2.0];
        let mut dx = [0.0; 4];
        solver.solve_step(&a, &b, &mut dx).unwrap();
        // A completely different matrix must fail the certificate.
        let a2 = random_matrix(4, 999);
        let kind = solver.solve_step(&a2, &b, &mut dx).unwrap();
        assert_eq!(kind, StepKind::Factorized);
        assert_eq!(solver.factorizations(), 2);
        let r = a2.mul_vec(&dx);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bypass_never_reuses_for_non_finite_matrix() {
        let a = random_matrix(3, 21);
        let mut solver = BypassSolver::new(DenseSolver::new(3));
        let b = [1.0, 1.0, 1.0];
        let mut dx = [0.0; 3];
        solver.solve_step(&a, &b, &mut dx).unwrap();
        let mut poisoned = a.clone();
        poisoned[(0, 1)] = f64::NAN;
        let err = solver.solve_step(&poisoned, &b, &mut dx).unwrap_err();
        assert!(matches!(err, NumericsError::NonFinite { .. }), "{err:?}");
        // The poisoned call must not have been counted as a reuse.
        assert_eq!(solver.reuses(), 0);
    }

    #[test]
    fn bypass_rejects_non_finite_rhs() {
        let a = random_matrix(2, 5);
        let mut solver = BypassSolver::new(DenseSolver::new(2));
        let mut dx = [0.0; 2];
        let err = solver
            .solve_step(&a, &[1.0, f64::INFINITY], &mut dx)
            .unwrap_err();
        assert!(matches!(err, NumericsError::NonFinite { .. }));
    }

    #[test]
    fn zero_tolerance_disables_reuse() {
        let a = random_matrix(3, 13);
        let mut solver = BypassSolver::new(DenseSolver::new(3)).with_tolerance(0.0);
        let b = [1.0, 2.0, 3.0];
        let mut dx = [0.0; 3];
        for _ in 0..4 {
            assert_eq!(
                solver.solve_step(&a, &b, &mut dx).unwrap(),
                StepKind::Factorized
            );
        }
        assert_eq!(solver.factorizations(), 4);
        assert_eq!(solver.reuses(), 0);
    }

    #[test]
    fn invalidate_forces_refactorization() {
        let a = random_matrix(3, 17);
        let mut solver = BypassSolver::new(DenseSolver::new(3));
        let b = [1.0, 0.5, -0.5];
        let mut dx = [0.0; 3];
        solver.solve_step(&a, &b, &mut dx).unwrap();
        solver.invalidate();
        assert_eq!(
            solver.solve_step(&a, &b, &mut dx).unwrap(),
            StepKind::Factorized
        );
        assert_eq!(solver.factorizations(), 2);
    }
}
