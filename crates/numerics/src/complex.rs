//! A minimal double-precision complex number.
//!
//! The standard library has no complex type and the offline dependency set
//! excludes `num-complex`, so this module provides the small subset of
//! complex arithmetic the workspace needs: field operations, conjugation,
//! polar form, `exp`, and scaling by `f64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use shil_numerics::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z * z.conj(), Complex64::new(25.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    ///
    /// ```
    /// use shil_numerics::Complex64;
    /// use std::f64::consts::FRAC_PI_2;
    ///
    /// let z = Complex64::from_polar(2.0, FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`abs`](Self::abs)).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z == 0`, matching IEEE division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w IS z·w⁻¹
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, k: f64) -> Complex64 {
        self.scale(k)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, z: Complex64) -> Complex64 {
        z.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, k: f64) -> Complex64 {
        Complex64::new(self.re / k, self.im / k)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, k: f64) -> Complex64 {
        Complex64::new(self.re + k, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, k: f64) -> Complex64 {
        Complex64::new(self.re - k, self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(3.0, 0.7);
        assert!((z.abs() - 3.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 0.75);
        assert!(close(a + b - b, a, 1e-15));
        assert!(close(a * b / b, a, 1e-14));
        assert!(close(a * a.inv(), Complex64::ONE, 1e-14));
        assert_eq!(-(-a), a);
    }

    #[test]
    fn conjugation_properties() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-14));
        assert_eq!((a * a.conj()).im, 0.0);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-14);
    }

    #[test]
    fn exp_euler_identity() {
        let z = Complex64::new(0.0, PI);
        assert!(close(z.exp(), Complex64::new(-1.0, 0.0), 1e-14));
    }

    #[test]
    fn real_scalar_ops() {
        let z = Complex64::new(2.0, -4.0);
        assert_eq!(z * 0.5, Complex64::new(1.0, -2.0));
        assert_eq!(0.5 * z, Complex64::new(1.0, -2.0));
        assert_eq!(z / 2.0, Complex64::new(1.0, -2.0));
        assert_eq!(z + 1.0, Complex64::new(3.0, -4.0));
        assert_eq!(z - 1.0, Complex64::new(1.0, -4.0));
    }

    #[test]
    fn sum_of_rotations_cancels() {
        // The n-th roots of unity sum to zero: the same identity that makes
        // the n SHIL lock states equally spaced.
        let n = 7;
        let total: Complex64 = (0..n)
            .map(|k| Complex64::from_polar(1.0, 2.0 * PI * k as f64 / n as f64))
            .sum();
        assert!(total.abs() < 1e-13);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex64::new(1.0, 1.0);
        let b = Complex64::new(2.0, -3.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert!(close(c, a, 1e-15));
        c *= b;
        assert!(close(c, a * b, 1e-15));
        c /= b;
        assert!(close(c, a, 1e-15));
    }
}
