//! Quadrature rules.
//!
//! The harmonic pre-characterization of a memoryless nonlinearity integrates
//! `f(A·cosθ + 2V_i·cos(nθ + φ))·e^{−jkθ}` over one period. For smooth
//! periodic integrands the composite trapezoid rule converges *spectrally*
//! (faster than any polynomial order), which is why [`periodic_mean`]
//! is the workhorse of `shil-core::harmonics`.

use crate::complex::Complex64;
use crate::error::NumericsError;

/// Composite trapezoid rule on `[a, b]` with `n` uniform subintervals.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// use shil_numerics::quad::trapezoid;
///
/// let approx = trapezoid(|x: f64| x * x, 0.0, 1.0, 1000);
/// assert!((approx - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn trapezoid<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "at least one subinterval required");
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + h * i as f64);
    }
    acc * h
}

/// Composite Simpson rule on `[a, b]` with `n` (even) subintervals.
///
/// # Panics
///
/// Panics if `n` is zero or odd.
pub fn simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "simpson requires an even n >= 2"
    );
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + h * i as f64);
    }
    acc * h / 3.0
}

/// Mean of a periodic function over one period `[0, 2π)` using `n` samples.
///
/// For `f` smooth and 2π-periodic this is the spectrally accurate periodic
/// trapezoid rule (the endpoint sample is implied by periodicity).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn periodic_mean<F: FnMut(f64) -> f64>(mut f: F, n: usize) -> f64 {
    assert!(n >= 1, "at least one sample required");
    let h = std::f64::consts::TAU / n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        acc += f(h * i as f64);
    }
    acc / n as f64
}

/// Samples a 2π-periodic function at the `n` uniform angles `θ_i = 2πi/n`
/// into `buf` (cleared first).
///
/// This is the sampling half of the periodic trapezoid rule: every Fourier
/// coefficient of `f` up to the Nyquist order can then be extracted from the
/// one buffer with [`TwiddleTable::coefficient`], without re-evaluating `f`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample_periodic<F: FnMut(f64) -> f64>(mut f: F, n: usize, buf: &mut Vec<f64>) {
    assert!(n >= 1, "at least one sample required");
    buf.clear();
    buf.reserve(n);
    let h = std::f64::consts::TAU / n as f64;
    for i in 0..n {
        buf.push(f(h * i as f64));
    }
}

/// Like [`sample_periodic`], but fails fast on the first non-finite sample.
///
/// The plain sampler lets NaN/Inf flow into the buffer (downstream grid
/// consumers mask poisoned cells); this variant is for callers that need a
/// hard guarantee — e.g. the natural-oscillation solve, where one NaN sample
/// would silently corrupt every Fourier coefficient extracted from the
/// buffer.
///
/// # Errors
///
/// - [`NumericsError::InvalidInput`] if `n == 0`.
/// - [`NumericsError::NonFinite`] at the first angle where `f` is NaN/±Inf;
///   the angle is reported in `at`.
pub fn sample_periodic_checked<F: FnMut(f64) -> f64>(
    mut f: F,
    n: usize,
    buf: &mut Vec<f64>,
) -> Result<(), NumericsError> {
    if n == 0 {
        return Err(NumericsError::InvalidInput(
            "at least one sample required".into(),
        ));
    }
    buf.clear();
    buf.reserve(n);
    let h = std::f64::consts::TAU / n as f64;
    for i in 0..n {
        let theta = h * i as f64;
        let v = f(theta);
        if !v.is_finite() {
            return Err(NumericsError::NonFinite {
                context: "periodic sample".into(),
                at: vec![theta],
            });
        }
        buf.push(v);
    }
    Ok(())
}

/// Checked companion to [`periodic_mean`]: same spectral accuracy, but a
/// non-finite sample becomes a typed error instead of a NaN mean.
///
/// # Errors
///
/// Same failure modes as [`sample_periodic_checked`].
pub fn periodic_mean_checked<F: FnMut(f64) -> f64>(
    mut f: F,
    n: usize,
) -> Result<f64, NumericsError> {
    if n == 0 {
        return Err(NumericsError::InvalidInput(
            "at least one sample required".into(),
        ));
    }
    let h = std::f64::consts::TAU / n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        let theta = h * i as f64;
        let v = f(theta);
        if !v.is_finite() {
            return Err(NumericsError::NonFinite {
                context: "periodic sample".into(),
                at: vec![theta],
            });
        }
        acc += v;
    }
    Ok(acc / n as f64)
}

/// Precomputed `cos(kθ_i)` / `sin(kθ_i)` rows for extracting Fourier
/// coefficients `k = 0..=max_k` from a length-`samples` periodic buffer.
///
/// Building the table costs `(max_k+1)·samples` sine/cosine evaluations
/// *once*; afterwards each [`coefficient`](Self::coefficient) call is a pair
/// of dot products with no transcendental functions at all. Re-evaluating
/// the integrand per harmonic (the removed scalar `fourier_coefficient`) pays
/// those transcendentals on every call, which dominated the SHIL grid fill.
///
/// ```
/// use shil_numerics::quad::{sample_periodic, TwiddleTable};
///
/// let table = TwiddleTable::new(256, 3);
/// let mut buf = Vec::new();
/// sample_periodic(|t: f64| 2.0 * (3.0 * t).cos() + t.sin(), 256, &mut buf);
/// let c3 = table.coefficient(&buf, 3); // = 1
/// let c1 = table.coefficient(&buf, 1); // = −j/2
/// assert!((c3.re - 1.0).abs() < 1e-12 && c3.im.abs() < 1e-12);
/// assert!(c1.re.abs() < 1e-12 && (c1.im + 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TwiddleTable {
    samples: usize,
    max_k: usize,
    /// `cos(kθ_i)`, row-major by `k`.
    cos: Vec<f64>,
    /// `sin(kθ_i)`, row-major by `k`.
    sin: Vec<f64>,
}

impl TwiddleTable {
    /// Builds the twiddle rows for `k = 0..=max_k` over `samples` uniform
    /// angles.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize, max_k: usize) -> Self {
        assert!(samples >= 1, "at least one sample required");
        let h = std::f64::consts::TAU / samples as f64;
        let len = (max_k + 1) * samples;
        let mut cos = Vec::with_capacity(len);
        let mut sin = Vec::with_capacity(len);
        for k in 0..=max_k {
            let kf = k as f64;
            for i in 0..samples {
                let (s, c) = (kf * (h * i as f64)).sin_cos();
                cos.push(c);
                sin.push(s);
            }
        }
        TwiddleTable {
            samples,
            max_k,
            cos,
            sin,
        }
    }

    /// Number of angular samples per period.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Highest harmonic order the table can extract.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// `c_k = (1/n) Σ_i f_i e^{−jkθ_i}` from a pre-sampled buffer — the
    /// periodic-trapezoid Fourier coefficient, identical in value to
    /// [`buffer_coefficient`] on the same samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != self.samples()` or `k > self.max_k()`.
    pub fn coefficient(&self, samples: &[f64], k: usize) -> Complex64 {
        assert_eq!(samples.len(), self.samples, "buffer length mismatch");
        assert!(
            k <= self.max_k,
            "harmonic {k} beyond table max {}",
            self.max_k
        );
        let row = k * self.samples..(k + 1) * self.samples;
        let (cos, sin) = (&self.cos[row.clone()], &self.sin[row]);
        let mut re = 0.0;
        let mut im = 0.0;
        for i in 0..self.samples {
            re += samples[i] * cos[i];
            im -= samples[i] * sin[i];
        }
        Complex64::new(re / self.samples as f64, im / self.samples as f64)
    }

    /// All coefficients `c_0..=c_max_k` from one buffer.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != self.samples()`.
    pub fn coefficients(&self, samples: &[f64]) -> Vec<Complex64> {
        (0..=self.max_k)
            .map(|k| self.coefficient(samples, k))
            .collect()
    }

    /// The raw `cos(kθ_i)` row — also usable for *synthesis* (evaluating a
    /// trigonometric series on the sample grid), as harmonic balance does.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.max_k()`.
    pub fn cos_row(&self, k: usize) -> &[f64] {
        assert!(
            k <= self.max_k,
            "harmonic {k} beyond table max {}",
            self.max_k
        );
        &self.cos[k * self.samples..(k + 1) * self.samples]
    }

    /// The raw `sin(kθ_i)` row.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.max_k()`.
    pub fn sin_row(&self, k: usize) -> &[f64] {
        assert!(
            k <= self.max_k,
            "harmonic {k} beyond table max {}",
            self.max_k
        );
        &self.sin[k * self.samples..(k + 1) * self.samples]
    }
}

/// `k`-th Fourier coefficient of an already-sampled periodic buffer
/// (uniform angles `θ_i = 2πi/len` implied): `c_k = (1/n) Σ f_i e^{−jkθ_i}`.
///
/// One-shot companion to [`TwiddleTable::coefficient`] for callers that need
/// a single harmonic from a buffer once — it pays the `sin_cos` per sample
/// that the table would amortize, but skips materializing any rows.
///
/// Negative `k` is allowed (for a real buffer, `c_{−k} = conj(c_k)`).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn buffer_coefficient(samples: &[f64], k: i32) -> Complex64 {
    assert!(!samples.is_empty(), "at least one sample required");
    let n = samples.len();
    let h = std::f64::consts::TAU / n as f64;
    let kf = k as f64;
    let mut re = 0.0;
    let mut im = 0.0;
    for (i, &v) in samples.iter().enumerate() {
        let (s, c) = (kf * (h * i as f64)).sin_cos();
        re += v * c;
        im -= v * s;
    }
    Complex64::new(re / n as f64, im / n as f64)
}

/// Composite trapezoid integral of uniformly sampled data with spacing `dt`.
///
/// # Panics
///
/// Panics if `samples.len() < 2`.
pub fn trapezoid_samples(samples: &[f64], dt: f64) -> f64 {
    assert!(samples.len() >= 2, "need at least two samples");
    let inner: f64 = samples[1..samples.len() - 1].iter().sum();
    dt * (0.5 * (samples[0] + samples[samples.len() - 1]) + inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn twiddle_coefficient_matches_direct_fourier() {
        let f = |t: f64| (t.cos() * 1.7 + 0.3 * (2.0 * t).cos()).tanh();
        let n = 256;
        let table = TwiddleTable::new(n, 4);
        let mut buf = Vec::new();
        sample_periodic(f, n, &mut buf);
        for k in 0..=4usize {
            let batched = table.coefficient(&buf, k);
            let direct = buffer_coefficient(&buf, k as i32);
            assert!(
                (batched - direct).abs() < 1e-15,
                "k={k}: batched {batched:?} vs direct {direct:?}"
            );
        }
    }

    #[test]
    fn twiddle_coefficients_vector_agrees_with_scalar() {
        let n = 64;
        let table = TwiddleTable::new(n, 3);
        let mut buf = Vec::new();
        sample_periodic(|t: f64| (3.0 * t).cos() - 2.0 * t.sin(), n, &mut buf);
        let all = table.coefficients(&buf);
        assert_eq!(all.len(), 4);
        for (k, &c) in all.iter().enumerate() {
            assert_eq!(c, table.coefficient(&buf, k));
        }
        assert!((all[3].re - 0.5).abs() < 1e-12);
        assert!((all[1].im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_periodic_reuses_buffer() {
        let mut buf = vec![999.0; 7];
        sample_periodic(|t| t, 4, &mut buf);
        assert_eq!(buf.len(), 4);
        assert!((buf[1] - TAU / 4.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "beyond table max")]
    fn twiddle_rejects_out_of_range_harmonic() {
        let table = TwiddleTable::new(8, 1);
        let buf = vec![0.0; 8];
        let _ = table.coefficient(&buf, 2);
    }

    #[test]
    fn sample_periodic_checked_matches_unchecked_on_finite_input() {
        let f = |t: f64| (2.0 * t).cos();
        let mut a = Vec::new();
        let mut b = Vec::new();
        sample_periodic(f, 16, &mut a);
        sample_periodic_checked(f, 16, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_periodic_checked_reports_poisoned_angle() {
        let mut buf = Vec::new();
        let e = sample_periodic_checked(
            |t: f64| if t > 3.0 { f64::NAN } else { t.cos() },
            64,
            &mut buf,
        )
        .unwrap_err();
        match e {
            NumericsError::NonFinite { context, at } => {
                assert!(context.contains("periodic sample"));
                assert!(at[0] > 3.0 && at[0] < TAU);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn periodic_mean_checked_agrees_and_guards() {
        let v = periodic_mean_checked(|t: f64| t.cos().exp(), 32).unwrap();
        assert!((v - 1.266_065_877_752_008_4).abs() < 1e-13);
        let e = periodic_mean_checked(|_| f64::INFINITY, 8).unwrap_err();
        assert!(matches!(e, NumericsError::NonFinite { .. }));
        let e = periodic_mean_checked(|t| t, 0).unwrap_err();
        assert!(matches!(e, NumericsError::InvalidInput(_)));
    }

    #[test]
    fn trapezoid_exact_for_linear() {
        let v = trapezoid(|x| 3.0 * x + 1.0, 0.0, 2.0, 1);
        assert!((v - 8.0).abs() < 1e-14);
    }

    #[test]
    fn simpson_exact_for_cubic() {
        let v = simpson(|x| x * x * x, 0.0, 1.0, 2);
        assert!((v - 0.25).abs() < 1e-14);
    }

    #[test]
    fn periodic_trapezoid_is_spectrally_accurate() {
        // ∫ e^{cos θ} dθ / 2π = I₀(1) (modified Bessel) ≈ 1.2660658777520084
        let v = periodic_mean(|t: f64| t.cos().exp(), 32);
        assert!((v - 1.266_065_877_752_008_4).abs() < 1e-13);
    }

    #[test]
    fn fourier_coefficient_of_pure_harmonics() {
        // f = 2cos(3θ) + sin(θ): c₃ = 1, c₁ = −j/2, c₂ = 0.
        let mut buf = Vec::new();
        sample_periodic(|t: f64| 2.0 * (3.0 * t).cos() + t.sin(), 128, &mut buf);
        let c3 = buffer_coefficient(&buf, 3);
        assert!((c3.re - 1.0).abs() < 1e-12 && c3.im.abs() < 1e-12);
        let c1 = buffer_coefficient(&buf, 1);
        assert!(c1.re.abs() < 1e-12 && (c1.im + 0.5).abs() < 1e-12);
        let c2 = buffer_coefficient(&buf, 2);
        assert!(c2.abs() < 1e-12);
    }

    #[test]
    fn fourier_negative_index_is_conjugate_for_real_signal() {
        let mut buf = Vec::new();
        sample_periodic(|t: f64| (t.cos() * 2.0).tanh(), 512, &mut buf);
        let c1 = buffer_coefficient(&buf, 1);
        let cm1 = buffer_coefficient(&buf, -1);
        assert!((c1.conj() - cm1).abs() < 1e-13);
    }

    #[test]
    fn clipped_cosine_fundamental_matches_theory() {
        // Hard limiter sgn(cos θ): fundamental cosine amplitude is 4/π,
        // so c₁ = 2/π. This is the saturated-oscillator describing function.
        let mut buf = Vec::new();
        sample_periodic(|t: f64| t.cos().signum(), 4096, &mut buf);
        let c1 = buffer_coefficient(&buf, 1);
        assert!((c1.re - 2.0 / PI).abs() < 5e-3);
        // The discontinuity sampling leaves O(1/N) asymmetry in the
        // imaginary part.
        assert!(c1.im.abs() < 1e-3);
    }

    #[test]
    fn trapezoid_samples_matches_function_version() {
        let n = 100;
        let dt = TAU / n as f64;
        let samples: Vec<f64> = (0..=n).map(|i| (dt * i as f64).sin().powi(2)).collect();
        let v = trapezoid_samples(&samples, dt);
        assert!((v - PI).abs() < 1e-10);
    }
}
