//! Quadrature rules.
//!
//! The harmonic pre-characterization of a memoryless nonlinearity integrates
//! `f(A·cosθ + 2V_i·cos(nθ + φ))·e^{−jkθ}` over one period. For smooth
//! periodic integrands the composite trapezoid rule converges *spectrally*
//! (faster than any polynomial order), which is why [`periodic_mean`]
//! is the workhorse of `shil-core::harmonics`.

use crate::complex::Complex64;

/// Composite trapezoid rule on `[a, b]` with `n` uniform subintervals.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// use shil_numerics::quad::trapezoid;
///
/// let approx = trapezoid(|x: f64| x * x, 0.0, 1.0, 1000);
/// assert!((approx - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn trapezoid<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "at least one subinterval required");
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + h * i as f64);
    }
    acc * h
}

/// Composite Simpson rule on `[a, b]` with `n` (even) subintervals.
///
/// # Panics
///
/// Panics if `n` is zero or odd.
pub fn simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 2 && n % 2 == 0, "simpson requires an even n >= 2");
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + h * i as f64);
    }
    acc * h / 3.0
}

/// Mean of a periodic function over one period `[0, 2π)` using `n` samples.
///
/// For `f` smooth and 2π-periodic this is the spectrally accurate periodic
/// trapezoid rule (the endpoint sample is implied by periodicity).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn periodic_mean<F: FnMut(f64) -> f64>(mut f: F, n: usize) -> f64 {
    assert!(n >= 1, "at least one sample required");
    let h = std::f64::consts::TAU / n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        acc += f(h * i as f64);
    }
    acc / n as f64
}

/// `k`-th complex Fourier coefficient of a real 2π-periodic function:
/// `c_k = (1/2π) ∫₀^{2π} f(θ) e^{−jkθ} dθ`, by the periodic trapezoid rule.
///
/// This is exactly the `I_k` of eq. (1) in the paper when `f` is the current
/// waveform of the nonlinearity sampled over one period.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// use shil_numerics::quad::fourier_coefficient;
///
/// // f(θ) = cos θ has c₁ = 1/2.
/// let c1 = fourier_coefficient(|t: f64| t.cos(), 1, 256);
/// assert!((c1.re - 0.5).abs() < 1e-12);
/// assert!(c1.im.abs() < 1e-12);
/// ```
pub fn fourier_coefficient<F: FnMut(f64) -> f64>(mut f: F, k: i32, n: usize) -> Complex64 {
    assert!(n >= 1, "at least one sample required");
    let h = std::f64::consts::TAU / n as f64;
    let mut acc = Complex64::ZERO;
    for i in 0..n {
        let theta = h * i as f64;
        let phase = -(k as f64) * theta;
        acc += Complex64::from_polar(f(theta), phase);
    }
    acc / n as f64
}

/// Composite trapezoid integral of uniformly sampled data with spacing `dt`.
///
/// # Panics
///
/// Panics if `samples.len() < 2`.
pub fn trapezoid_samples(samples: &[f64], dt: f64) -> f64 {
    assert!(samples.len() >= 2, "need at least two samples");
    let inner: f64 = samples[1..samples.len() - 1].iter().sum();
    dt * (0.5 * (samples[0] + samples[samples.len() - 1]) + inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn trapezoid_exact_for_linear() {
        let v = trapezoid(|x| 3.0 * x + 1.0, 0.0, 2.0, 1);
        assert!((v - 8.0).abs() < 1e-14);
    }

    #[test]
    fn simpson_exact_for_cubic() {
        let v = simpson(|x| x * x * x, 0.0, 1.0, 2);
        assert!((v - 0.25).abs() < 1e-14);
    }

    #[test]
    fn periodic_trapezoid_is_spectrally_accurate() {
        // ∫ e^{cos θ} dθ / 2π = I₀(1) (modified Bessel) ≈ 1.2660658777520084
        let v = periodic_mean(|t: f64| t.cos().exp(), 32);
        assert!((v - 1.266_065_877_752_008_4).abs() < 1e-13);
    }

    #[test]
    fn fourier_coefficient_of_pure_harmonics() {
        // f = 2cos(3θ) + sin(θ): c₃ = 1, c₁ = −j/2, c₂ = 0.
        let f = |t: f64| 2.0 * (3.0 * t).cos() + t.sin();
        let c3 = fourier_coefficient(f, 3, 128);
        assert!((c3.re - 1.0).abs() < 1e-12 && c3.im.abs() < 1e-12);
        let c1 = fourier_coefficient(f, 1, 128);
        assert!(c1.re.abs() < 1e-12 && (c1.im + 0.5).abs() < 1e-12);
        let c2 = fourier_coefficient(f, 2, 128);
        assert!(c2.abs() < 1e-12);
    }

    #[test]
    fn fourier_negative_index_is_conjugate_for_real_signal() {
        let f = |t: f64| (t.cos() * 2.0).tanh();
        let c1 = fourier_coefficient(f, 1, 512);
        let cm1 = fourier_coefficient(f, -1, 512);
        assert!((c1.conj() - cm1).abs() < 1e-13);
    }

    #[test]
    fn clipped_cosine_fundamental_matches_theory() {
        // Hard limiter sgn(cos θ): fundamental cosine amplitude is 4/π,
        // so c₁ = 2/π. This is the saturated-oscillator describing function.
        let c1 = fourier_coefficient(|t: f64| t.cos().signum(), 1, 4096);
        assert!((c1.re - 2.0 / PI).abs() < 5e-3);
        // The discontinuity sampling leaves O(1/N) asymmetry in the
        // imaginary part.
        assert!(c1.im.abs() < 1e-3);
    }

    #[test]
    fn trapezoid_samples_matches_function_version() {
        let n = 100;
        let dt = TAU / n as f64;
        let samples: Vec<f64> = (0..=n).map(|i| (dt * i as f64).sin().powi(2)).collect();
        let v = trapezoid_samples(&samples, dt);
        assert!((v - PI).abs() < 1e-10);
    }
}
