//! Level-set extraction (marching squares) and polyline geometry.
//!
//! This module is the geometric engine behind the paper's *graphical*
//! procedure: the curves `C_{T_f,1}` (the `T_f = 1` level set) and
//! `C_{∠−I₁, −φ_d}` (phase isolines) are extracted from sampled grids with
//! marching squares, and lock solutions are the intersections of the two
//! polyline families — found "in exactly one pass", as the paper emphasizes.

use crate::error::NumericsError;
use crate::grid::Grid2;

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (φ in the SHIL plane).
    pub x: f64,
    /// Vertical coordinate (A in the SHIL plane).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// An open or closed polyline (a connected piece of a level set).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    /// Ordered vertices.
    pub points: Vec<Point>,
}

impl Polyline {
    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Whether the polyline is (numerically) closed.
    pub fn is_closed(&self) -> bool {
        self.points.len() > 2
            && self.points[0].distance(*self.points.last().expect("non-empty")) < 1e-12
    }

    /// Local tangent slope `dy/dx` nearest to `p`.
    ///
    /// Returns `None` for polylines with fewer than two points or when the
    /// local segment is vertical (infinite slope) — callers compare slope
    /// *magnitudes*, so a vertical tangent is reported as `f64::INFINITY`
    /// via [`Polyline::slope_magnitude_near`].
    pub fn slope_near(&self, p: Point) -> Option<f64> {
        let seg = self.nearest_segment(p)?;
        let (a, b) = seg;
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        if dx == 0.0 {
            None
        } else {
            Some(dy / dx)
        }
    }

    /// Magnitude of the local tangent slope near `p` (`f64::INFINITY` for a
    /// vertical tangent). This is the quantity the paper's stability rule
    /// compares between the two SHIL curves (§VI-B3).
    pub fn slope_magnitude_near(&self, p: Point) -> Option<f64> {
        let (a, b) = self.nearest_segment(p)?;
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        if dx == 0.0 && dy == 0.0 {
            None
        } else if dx == 0.0 {
            Some(f64::INFINITY)
        } else {
            Some((dy / dx).abs())
        }
    }

    fn nearest_segment(&self, p: Point) -> Option<(Point, Point)> {
        if self.points.len() < 2 {
            return None;
        }
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for w in self.points.windows(2) {
            let d = point_segment_distance(p, w[0], w[1]);
            if d < best_d {
                best_d = d;
                best = Some((w[0], w[1]));
            }
        }
        best
    }
}

fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    if len2 == 0.0 {
        return p.distance(a);
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0);
    p.distance(Point::new(a.x + t * abx, a.y + t * aby))
}

/// Extracts the level set `z = level` from a sampled grid as polylines.
///
/// Cells containing non-finite samples (NaN or ±Inf) are skipped, which lets
/// callers mask out invalid regions (e.g. `A → 0` where the describing
/// function is undefined) — an Inf corner would otherwise produce garbage
/// edge-interpolation coordinates. Saddle cells are disambiguated with the
/// cell-center average.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] if `level` is not finite.
///
/// ```
/// use shil_numerics::contour::marching_squares;
/// use shil_numerics::Grid2;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// // The unit circle as the 0-level of x² + y² − 1.
/// let g = Grid2::from_fn(-2.0, 2.0, 81, -2.0, 2.0, 81, |x, y| x * x + y * y - 1.0)?;
/// let curves = marching_squares(&g, 0.0)?;
/// let total: f64 = curves.iter().map(|c| c.length()).sum();
/// assert!((total - std::f64::consts::TAU).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn marching_squares(grid: &Grid2, level: f64) -> Result<Vec<Polyline>, NumericsError> {
    if !level.is_finite() {
        return Err(NumericsError::InvalidInput("level must be finite".into()));
    }
    let mut segments: Vec<(Point, Point)> = Vec::new();
    let xs = grid.xs();
    let ys = grid.ys();
    // Segments far shorter than a cell are artifacts of the zero-corner
    // nudge below; discard them so they cannot disorder the chaining.
    let cell_dx = (xs[grid.nx() - 1] - xs[0]) / (grid.nx() - 1) as f64;
    let cell_dy = (ys[grid.ny() - 1] - ys[0]) / (grid.ny() - 1) as f64;
    let min_len = 1e-8 * cell_dx.hypot(cell_dy);

    for iy in 0..grid.ny() - 1 {
        for ix in 0..grid.nx() - 1 {
            // Corner values, counterclockwise from bottom-left.
            let mut v = [
                grid.value(ix, iy) - level,
                grid.value(ix + 1, iy) - level,
                grid.value(ix + 1, iy + 1) - level,
                grid.value(ix, iy + 1) - level,
            ];
            if v.iter().any(|x| !x.is_finite()) {
                continue;
            }
            // Corners exactly on the level produce degenerate topology
            // (zero-length segments that break chaining). Nudge them onto
            // the positive side by a value far below the extraction
            // accuracy of the grid itself.
            let scale = v.iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1e-300);
            for val in &mut v {
                if *val == 0.0 {
                    *val = 1e-12 * scale;
                }
            }
            let corners = [
                Point::new(xs[ix], ys[iy]),
                Point::new(xs[ix + 1], ys[iy]),
                Point::new(xs[ix + 1], ys[iy + 1]),
                Point::new(xs[ix], ys[iy + 1]),
            ];
            let mut code = 0u8;
            for (k, &val) in v.iter().enumerate() {
                if val > 0.0 {
                    code |= 1 << k;
                }
            }
            if code == 0 || code == 15 {
                continue;
            }
            // Edge crossing points by inverse linear interpolation.
            let edge = |a: usize, b: usize| -> Point {
                let t = v[a] / (v[a] - v[b]);
                Point::new(
                    corners[a].x + t * (corners[b].x - corners[a].x),
                    corners[a].y + t * (corners[b].y - corners[a].y),
                )
            };
            // Edges: 0 = bottom (c0-c1), 1 = right (c1-c2), 2 = top (c2-c3),
            // 3 = left (c3-c0).
            let mut emit = |ea: Point, eb: Point| {
                if ea.distance(eb) > min_len {
                    segments.push((ea, eb));
                }
            };
            match code {
                1 | 14 => emit(edge(0, 1), edge(0, 3)),
                2 | 13 => emit(edge(1, 0), edge(1, 2)),
                4 | 11 => emit(edge(2, 1), edge(2, 3)),
                8 | 7 => emit(edge(3, 0), edge(3, 2)),
                3 | 12 => emit(edge(1, 2), edge(0, 3)),
                6 | 9 => emit(edge(0, 1), edge(2, 3)),
                5 | 10 => {
                    // Saddle: disambiguate with the center average.
                    let center = 0.25 * (v[0] + v[1] + v[2] + v[3]);
                    let flip = (code == 5) == (center > 0.0);
                    if flip {
                        emit(edge(0, 1), edge(1, 2));
                        emit(edge(2, 3), edge(3, 0));
                    } else {
                        emit(edge(0, 1), edge(3, 0));
                        emit(edge(1, 2), edge(2, 3));
                    }
                }
                _ => unreachable!("all 4-bit cases covered"),
            }
        }
    }
    Ok(chain_segments(segments, grid))
}

/// Chains unordered segments into polylines by endpoint matching.
fn chain_segments(segments: Vec<(Point, Point)>, grid: &Grid2) -> Vec<Polyline> {
    // Tolerance scaled to the cell size.
    let dx = (grid.xs()[grid.nx() - 1] - grid.xs()[0]) / (grid.nx() - 1) as f64;
    let dy = (grid.ys()[grid.ny() - 1] - grid.ys()[0]) / (grid.ny() - 1) as f64;
    let tol = 1e-9 * dx.hypot(dy);

    let mut remaining: Vec<(Point, Point)> = segments;
    let mut polylines = Vec::new();

    while let Some((a, b)) = remaining.pop() {
        let mut pts = std::collections::VecDeque::new();
        pts.push_back(a);
        pts.push_back(b);
        let mut grew = true;
        while grew {
            grew = false;
            let head = *pts.front().expect("non-empty");
            let tail = *pts.back().expect("non-empty");
            let mut i = 0;
            while i < remaining.len() {
                let (p, q) = remaining[i];
                if p.distance(tail) < tol {
                    pts.push_back(q);
                    remaining.swap_remove(i);
                    grew = true;
                } else if q.distance(tail) < tol {
                    pts.push_back(p);
                    remaining.swap_remove(i);
                    grew = true;
                } else if p.distance(head) < tol {
                    pts.push_front(q);
                    remaining.swap_remove(i);
                    grew = true;
                } else if q.distance(head) < tol {
                    pts.push_front(p);
                    remaining.swap_remove(i);
                    grew = true;
                } else {
                    i += 1;
                }
            }
        }
        polylines.push(Polyline {
            points: pts.into_iter().collect(),
        });
    }
    polylines
}

/// Intersection of two line segments `a0→a1` and `b0→b1`, if any.
///
/// Returns the intersection point for proper (non-parallel) crossings with
/// parameters inside both segments (inclusive endpoints).
pub fn segment_intersection(a0: Point, a1: Point, b0: Point, b1: Point) -> Option<Point> {
    let d1x = a1.x - a0.x;
    let d1y = a1.y - a0.y;
    let d2x = b1.x - b0.x;
    let d2y = b1.y - b0.y;
    let denom = d1x * d2y - d1y * d2x;
    if denom == 0.0 {
        return None;
    }
    let t = ((b0.x - a0.x) * d2y - (b0.y - a0.y) * d2x) / denom;
    let u = ((b0.x - a0.x) * d1y - (b0.y - a0.y) * d1x) / denom;
    if (-1e-12..=1.0 + 1e-12).contains(&t) && (-1e-12..=1.0 + 1e-12).contains(&u) {
        Some(Point::new(a0.x + t * d1x, a0.y + t * d1y))
    } else {
        None
    }
}

/// All intersection points between two polyline families, with duplicates
/// within `merge_tol` coalesced.
///
/// This is the "read off the crossings" step of the paper's graphical
/// solution procedure.
pub fn polyline_intersections(
    family_a: &[Polyline],
    family_b: &[Polyline],
    merge_tol: f64,
) -> Vec<Point> {
    let mut hits: Vec<Point> = Vec::new();
    for pa in family_a {
        for sa in pa.points.windows(2) {
            for pb in family_b {
                for sb in pb.points.windows(2) {
                    if let Some(p) = segment_intersection(sa[0], sa[1], sb[0], sb[1]) {
                        if !hits.iter().any(|h| h.distance(p) < merge_tol) {
                            hits.push(p);
                        }
                    }
                }
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_level_set_has_correct_length_and_closure() {
        let g = Grid2::from_fn(-2.0, 2.0, 161, -2.0, 2.0, 161, |x, y| x * x + y * y).unwrap();
        let curves = marching_squares(&g, 1.0).unwrap();
        assert_eq!(curves.len(), 1, "unit circle must be a single component");
        let total: f64 = curves.iter().map(|c| c.length()).sum();
        assert!(
            (total - std::f64::consts::TAU).abs() < 5e-3,
            "length {total}"
        );
        assert!(curves[0].is_closed());
    }

    #[test]
    fn line_level_set() {
        // z = y − x: level 0 is the diagonal.
        let g = Grid2::from_fn(0.0, 1.0, 21, 0.0, 1.0, 21, |x, y| y - x).unwrap();
        let curves = marching_squares(&g, 0.0).unwrap();
        let total: f64 = curves.iter().map(|c| c.length()).sum();
        assert!((total - 2f64.sqrt()).abs() < 1e-6, "length {total}");
        // Every point on the extracted curve satisfies y ≈ x.
        for c in &curves {
            for p in &c.points {
                assert!((p.y - p.x).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn two_components_are_separated() {
        // Two circular bumps ⇒ the 0.5-level set has two components.
        let f = |x: f64, y: f64| {
            let d1: f64 = ((x + 1.0).powi(2) + y * y).sqrt();
            let d2: f64 = ((x - 1.0).powi(2) + y * y).sqrt();
            (-d1 * d1 * 4.0).exp() + (-d2 * d2 * 4.0).exp()
        };
        let g = Grid2::from_fn(-2.5, 2.5, 201, -1.5, 1.5, 121, f).unwrap();
        let curves = marching_squares(&g, 0.5).unwrap();
        assert_eq!(curves.len(), 2);
    }

    #[test]
    fn nan_cells_are_masked() {
        let g = Grid2::from_fn(-1.0, 1.0, 41, -1.0, 1.0, 41, |x, y| {
            if x < 0.0 {
                f64::NAN
            } else {
                x * x + y * y - 0.25
            }
        })
        .unwrap();
        let curves = marching_squares(&g, 0.0).unwrap();
        // Only the right half-circle survives.
        for c in &curves {
            for p in &c.points {
                assert!(p.x >= -0.05, "point in masked region: {p:?}");
            }
        }
        let total: f64 = curves.iter().map(|c| c.length()).sum();
        assert!((total - std::f64::consts::PI * 0.5).abs() < 0.05);
    }

    #[test]
    fn infinite_cells_are_masked_like_nan() {
        let g = Grid2::from_fn(-1.0, 1.0, 41, -1.0, 1.0, 41, |x, y| {
            if x < 0.0 {
                f64::INFINITY
            } else {
                x * x + y * y - 0.25
            }
        })
        .unwrap();
        let curves = marching_squares(&g, 0.0).unwrap();
        for c in &curves {
            for p in &c.points {
                assert!(p.x.is_finite() && p.y.is_finite());
                assert!(p.x >= -0.05, "point in masked region: {p:?}");
            }
        }
    }

    #[test]
    fn non_finite_level_is_rejected() {
        let g = Grid2::from_fn(0.0, 1.0, 3, 0.0, 1.0, 3, |x, _| x).unwrap();
        assert!(marching_squares(&g, f64::NAN).is_err());
        assert!(marching_squares(&g, f64::INFINITY).is_err());
    }

    #[test]
    fn segment_intersection_basic() {
        let p = segment_intersection(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 0.0),
        )
        .unwrap();
        assert!((p.x - 0.5).abs() < 1e-15 && (p.y - 0.5).abs() < 1e-15);
    }

    #[test]
    fn segment_intersection_misses_and_parallels() {
        assert!(segment_intersection(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        )
        .is_none());
        assert!(segment_intersection(
            Point::new(0.0, 0.0),
            Point::new(0.4, 0.4),
            Point::new(0.0, 1.0),
            Point::new(1.0, 0.0),
        )
        .is_none());
    }

    #[test]
    fn circle_and_line_intersections() {
        let g1 = Grid2::from_fn(-2.0, 2.0, 121, -2.0, 2.0, 121, |x, y| x * x + y * y).unwrap();
        let circle = marching_squares(&g1, 1.0).unwrap();
        let g2 = Grid2::from_fn(-2.0, 2.0, 121, -2.0, 2.0, 121, |_, y| y).unwrap();
        let axis = marching_squares(&g2, 0.0).unwrap();
        let hits = polyline_intersections(&circle, &axis, 1e-3);
        assert_eq!(hits.len(), 2);
        for h in hits {
            assert!((h.x.abs() - 1.0).abs() < 1e-2);
            assert!(h.y.abs() < 1e-2);
        }
    }

    #[test]
    fn slope_near_diagonal_line() {
        let poly = Polyline {
            points: vec![Point::new(0.0, 0.0), Point::new(1.0, 2.0)],
        };
        let s = poly.slope_near(Point::new(0.5, 1.0)).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
        assert!((poly.slope_magnitude_near(Point::new(0.5, 1.0)).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slope_of_vertical_segment_is_infinite_magnitude() {
        let poly = Polyline {
            points: vec![Point::new(1.0, 0.0), Point::new(1.0, 5.0)],
        };
        assert!(poly.slope_near(Point::new(1.0, 2.0)).is_none());
        assert_eq!(
            poly.slope_magnitude_near(Point::new(1.0, 2.0)).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn polyline_length_and_closed() {
        let open = Polyline {
            points: vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)],
        };
        assert_eq!(open.length(), 5.0);
        assert!(!open.is_closed());
    }
}
