//! Iterative radix-2 FFT and Fourier-series helpers.
//!
//! The harmonic table pre-characterization evaluates *all* harmonics
//! `I_k(A, V_i, φ)` of the nonlinearity output at once; a single FFT over a
//! power-of-two number of samples per period is much cheaper than one
//! quadrature per harmonic. The circuit-waveform analyzer also uses the FFT
//! for spectrum estimates.

use crate::complex::Complex64;
use crate::error::NumericsError;

/// In-place forward FFT (`X_k = Σ_n x_n e^{−j2πkn/N}`) for power-of-two `N`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] if the length is zero or not a
/// power of two.
///
/// ```
/// use shil_numerics::fft::fft_in_place;
/// use shil_numerics::Complex64;
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// let mut x = vec![Complex64::ONE; 4];
/// fft_in_place(&mut x)?;
/// assert!((x[0].re - 4.0).abs() < 1e-12); // DC bin carries the sum
/// assert!(x[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(x: &mut [Complex64]) -> Result<(), NumericsError> {
    let n = x.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(NumericsError::InvalidInput(format!(
            "fft length {n} is not a power of two"
        )));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    // Danielson–Lanczos butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let wlen = Complex64::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place inverse FFT (`x_n = (1/N) Σ_k X_k e^{+j2πkn/N}`).
///
/// # Errors
///
/// Same conditions as [`fft_in_place`].
pub fn ifft_in_place(x: &mut [Complex64]) -> Result<(), NumericsError> {
    for v in x.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(x)?;
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = v.conj() / n;
    }
    Ok(())
}

/// Complex Fourier-series coefficients `c_k = (1/N) Σ x_n e^{−j2πkn/N}` of a
/// real signal uniformly sampled over exactly one period.
///
/// Returns coefficients for `k = 0..=max_k`. For a real signal,
/// `c_{−k} = conj(c_k)`, so the non-negative half suffices. This is the FFT
/// counterpart of [`crate::quad::buffer_coefficient`] and is exact (to
/// rounding) whenever the signal is band-limited below the Nyquist index.
///
/// # Errors
///
/// - [`NumericsError::InvalidInput`] if `samples.len()` is not a power of two
///   or `max_k` is not below `samples.len()/2`.
pub fn fourier_series(samples: &[f64], max_k: usize) -> Result<Vec<Complex64>, NumericsError> {
    let n = samples.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(NumericsError::InvalidInput(format!(
            "sample count {n} is not a power of two"
        )));
    }
    if max_k >= n / 2 {
        return Err(NumericsError::InvalidInput(format!(
            "max_k {max_k} must be below the Nyquist index {}",
            n / 2
        )));
    }
    let mut buf: Vec<Complex64> = samples.iter().map(|&s| Complex64::new(s, 0.0)).collect();
    fft_in_place(&mut buf)?;
    Ok(buf[..=max_k].iter().map(|c| *c / n as f64).collect())
}

/// Single-bin discrete Fourier coefficient `c_k` of an arbitrary-length real
/// sample set covering one period (a direct Goertzel-style sum).
///
/// Useful when the sample count is not a power of two (e.g. resampled
/// transient waveforms).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn dft_bin(samples: &[f64], k: i32) -> Complex64 {
    assert!(!samples.is_empty(), "need at least one sample");
    let n = samples.len() as f64;
    let mut acc = Complex64::ZERO;
    for (i, &s) in samples.iter().enumerate() {
        let phase = -std::f64::consts::TAU * k as f64 * i as f64 / n;
        acc += Complex64::from_polar(s, phase);
    }
    acc / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn fft_of_delta_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x).unwrap();
        for v in x {
            assert!((v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_roundtrip() {
        let orig: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut x = orig.clone();
        fft_in_place(&mut x).unwrap();
        ifft_in_place(&mut x).unwrap();
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 6];
        assert!(fft_in_place(&mut x).is_err());
        let mut e = vec![];
        assert!(fft_in_place(&mut e).is_err());
    }

    #[test]
    fn fourier_series_matches_quadrature() {
        let f = |t: f64| (2.0 * t.cos() + 0.3 * (3.0 * t).cos()).tanh();
        let n = 256;
        let samples: Vec<f64> = (0..n).map(|i| f(TAU * i as f64 / n as f64)).collect();
        let coeffs = fourier_series(&samples, 5).unwrap();
        for (k, &c) in coeffs.iter().enumerate().take(6) {
            let q = crate::quad::buffer_coefficient(&samples, k as i32);
            assert!((c - q).abs() < 1e-12, "k={k}: fft {c:?} vs quad {q:?}");
        }
    }

    #[test]
    fn fourier_series_pure_tone() {
        let n = 128;
        let samples: Vec<f64> = (0..n)
            .map(|i| (TAU * 4.0 * i as f64 / n as f64).cos())
            .collect();
        let coeffs = fourier_series(&samples, 10).unwrap();
        assert!((coeffs[4].re - 0.5).abs() < 1e-12);
        assert!(coeffs[4].im.abs() < 1e-12);
        for (k, c) in coeffs.iter().enumerate() {
            if k != 4 {
                assert!(c.abs() < 1e-12, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn fourier_series_guards_nyquist() {
        let samples = vec![0.0; 16];
        assert!(fourier_series(&samples, 8).is_err());
        assert!(fourier_series(&samples, 7).is_ok());
    }

    #[test]
    fn dft_bin_matches_fft_bin() {
        let n = 64;
        let f = |t: f64| (t.cos() * 1.7).tanh() + 0.2;
        let samples: Vec<f64> = (0..n).map(|i| f(TAU * i as f64 / n as f64)).collect();
        let coeffs = fourier_series(&samples, 3).unwrap();
        for (k, &c) in coeffs.iter().enumerate().take(4) {
            let d = dft_bin(&samples, k as i32);
            assert!((d - c).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let orig: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), 0.0))
            .collect();
        let time_energy: f64 = orig.iter().map(|z| z.norm_sqr()).sum();
        let mut x = orig;
        fft_in_place(&mut x).unwrap();
        let freq_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-10);
    }
}
