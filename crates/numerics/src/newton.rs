//! Damped Newton iteration for small nonlinear systems.
//!
//! Two consumers in the workspace:
//!
//! 1. The SHIL solver refines graphical `(φ, A)` intersections by solving the
//!    2×2 system of eqs. (3)–(4) of the paper.
//! 2. The circuit simulator's operating-point and transient solves, where the
//!    residual is the KCL mismatch and the Jacobian is assembled analytically
//!    (see `shil-circuit`); that path uses [`newton_system_with_jacobian`].
//!
//! The dense Jacobians here are tiny, so finite-difference Jacobians are
//! perfectly adequate for consumer (1).

use shil_runtime::Budget;

use crate::error::NumericsError;
use crate::linalg::Matrix;
use crate::solver::{DenseSolver, LinearSolver};

/// Options controlling [`newton_system`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Residual infinity-norm at which the iteration is declared converged.
    pub tol_residual: f64,
    /// Step infinity-norm at which the iteration is declared converged.
    pub tol_step: f64,
    /// Maximum number of Newton iterations.
    pub max_iter: usize,
    /// Relative perturbation for finite-difference Jacobians.
    pub fd_eps: f64,
    /// Maximum number of step halvings in the damping line search.
    pub max_halvings: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            tol_residual: 1e-10,
            tol_step: 1e-12,
            max_iter: 60,
            fd_eps: 1e-7,
            max_halvings: 12,
        }
    }
}

/// NaN-propagating infinity norm.
///
/// `f64::max` silently discards NaN operands, so a naive fold would report a
/// NaN residual vector as norm 0.0 — i.e. *converged*. Any NaN entry must
/// instead poison the norm so the guards below can detect it.
fn inf_norm(v: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for &x in v {
        if x.is_nan() {
            return f64::NAN;
        }
        m = m.max(x.abs());
    }
    m
}

/// Counts a tripped non-finite guard (free while the global metric
/// registry is disabled).
fn note_nonfinite() {
    shil_observe::incr("shil_numerics_nonfinite_guards_total");
}

/// Builds the typed cancellation error for a tripped budget and counts it.
fn cancelled_err(budget: &Budget, best_iterate: Vec<f64>) -> NumericsError {
    shil_observe::incr("shil_numerics_cancellations_total");
    NumericsError::Cancelled {
        best_iterate,
        elapsed: budget.elapsed(),
    }
}

/// Publishes per-solve Newton telemetry once, on drop — every return path
/// (converged, non-finite bail-out, exhaustion) reports through the same
/// place, and the iteration loop itself carries no extra atomics.
struct NewtonTally {
    iterations: usize,
    converged: bool,
}

impl Drop for NewtonTally {
    fn drop(&mut self) {
        if !shil_observe::is_enabled() {
            return;
        }
        shil_observe::incr("shil_numerics_newton_solves_total");
        shil_observe::counter_add(
            "shil_numerics_newton_iterations_total",
            self.iterations as u64,
        );
        if !self.converged {
            shil_observe::incr("shil_numerics_newton_failures_total");
        }
    }
}

/// Solves `F(x) = 0` by damped Newton with a finite-difference Jacobian.
///
/// The residual function `f` writes its output into the provided buffer so
/// the hot loop performs no allocation. Damping halves the step until the
/// residual norm decreases (or `max_halvings` is reached), which keeps the
/// iteration stable when the initial guess from the graphical pass is crude.
///
/// # Errors
///
/// - [`NumericsError::SingularMatrix`] if the Jacobian becomes singular.
/// - [`NumericsError::NonFinite`] the moment a residual or Jacobian entry
///   evaluates to NaN/±Inf, with the offending evaluation point attached —
///   the iteration does not grind on to `max_iter` through poisoned state.
/// - [`NumericsError::NotConverged`] on iteration exhaustion, carrying the
///   best (lowest finite residual) iterate seen so callers can degrade
///   gracefully instead of discarding all the work.
///
/// ```
/// use shil_numerics::newton::{newton_system, NewtonOptions};
///
/// # fn main() -> Result<(), shil_numerics::NumericsError> {
/// // Intersection of a circle and a line.
/// let sol = newton_system(
///     |x, r| {
///         r[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
///         r[1] = x[1] - x[0];
///     },
///     &[1.0, 0.5],
///     &NewtonOptions::default(),
/// )?;
/// assert!((sol[0] - 2f64.sqrt()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn newton_system<F>(f: F, x0: &[f64], opts: &NewtonOptions) -> Result<Vec<f64>, NumericsError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    newton_system_budgeted(f, x0, opts, &Budget::unlimited())
}

/// [`newton_system`] under an execution [`Budget`].
///
/// The budget is checked before the first residual evaluation and at the
/// top of every iteration, so an already-tripped budget returns without
/// completing (or even starting) an iteration, and a deadline stops the
/// solve within one iteration of expiring.
///
/// # Errors
///
/// [`NumericsError::Cancelled`] with the best iterate seen so far once the
/// budget trips, plus every failure mode of [`newton_system`].
pub fn newton_system_budgeted<F>(
    mut f: F,
    x0: &[f64],
    opts: &NewtonOptions,
    budget: &Budget,
) -> Result<Vec<f64>, NumericsError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let n = x0.len();
    if n == 0 {
        return Err(NumericsError::InvalidInput("empty system".into()));
    }
    if x0.iter().any(|v| !v.is_finite()) {
        note_nonfinite();
        return Err(NumericsError::NonFinite {
            context: "newton initial guess".into(),
            at: x0.to_vec(),
        });
    }
    // Prompt-cancellation guarantee: a budget that is already tripped
    // returns before the model is evaluated even once.
    if budget.cancelled().is_some() {
        return Err(cancelled_err(budget, x0.to_vec()));
    }
    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    let mut r_trial = vec![0.0; n];
    let mut xp = vec![0.0; n];
    let mut jac = Matrix::zeros(n, n);
    let mut dx = vec![0.0; n];
    let mut solver = DenseSolver::new(n);

    f(&x, &mut r);
    let mut rnorm = inf_norm(&r);
    if !rnorm.is_finite() {
        note_nonfinite();
        return Err(NumericsError::NonFinite {
            context: "newton residual at initial guess".into(),
            at: x,
        });
    }
    let mut best_x = x.clone();
    let mut best_rnorm = rnorm;
    let mut tally = NewtonTally {
        iterations: 0,
        converged: false,
    };

    for iter in 0..opts.max_iter {
        if rnorm < opts.tol_residual {
            tally.converged = true;
            return Ok(x);
        }
        // Convergence wins over cancellation (checked above); otherwise stop
        // at the iteration boundary with the best iterate seen so far.
        if budget.cancelled().is_some() {
            return Err(cancelled_err(budget, best_x));
        }
        tally.iterations = iter + 1;
        // Finite-difference Jacobian, column by column, with an immediate
        // bail-out if any entry is non-finite: iterating further would only
        // propagate the poison through LU and the line search.
        for j in 0..n {
            xp.copy_from_slice(&x);
            let h = opts.fd_eps * (1.0 + x[j].abs());
            xp[j] += h;
            f(&xp, &mut r_trial);
            for i in 0..n {
                let d = (r_trial[i] - r[i]) / h;
                if !d.is_finite() {
                    note_nonfinite();
                    return Err(NumericsError::NonFinite {
                        context: format!("finite-difference jacobian column {j}"),
                        at: x,
                    });
                }
                jac[(i, j)] = d;
            }
        }
        solver.refactorize(&jac)?;
        for (d, v) in dx.iter_mut().zip(&r) {
            *d = -v;
        }
        solver.solve_in_place(&mut dx);
        let step_norm = inf_norm(&dx);
        if !step_norm.is_finite() {
            note_nonfinite();
            return Err(NumericsError::NonFinite {
                context: "newton step".into(),
                at: x,
            });
        }
        if step_norm < opts.tol_step {
            tally.converged = true;
            return Ok(x);
        }
        // Damped line search: halve until the residual norm decreases.
        // Non-finite trial residuals are rejected exactly like increases,
        // so the search also backs away from NaN/Inf regions.
        let mut lambda = 1.0;
        let mut accepted = false;
        for _ in 0..=opts.max_halvings {
            for i in 0..n {
                xp[i] = x[i] + lambda * dx[i];
            }
            f(&xp, &mut r_trial);
            let trial_norm = inf_norm(&r_trial);
            if trial_norm.is_finite() && trial_norm < rnorm {
                x.copy_from_slice(&xp);
                r.copy_from_slice(&r_trial);
                rnorm = trial_norm;
                accepted = true;
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            // Accept the smallest step anyway (may help escape flat regions),
            // but if this happens on the last iteration we will error out below.
            for i in 0..n {
                x[i] += lambda * dx[i];
            }
            f(&x, &mut r);
            rnorm = inf_norm(&r);
            if !rnorm.is_finite() {
                // The forced step landed in a non-finite region: stop now and
                // hand back the best iterate instead of looping to max_iter.
                note_nonfinite();
                return Err(NumericsError::NotConverged {
                    iterations: iter + 1,
                    residual: best_rnorm,
                    best_x,
                });
            }
        }
        if rnorm < best_rnorm {
            best_rnorm = rnorm;
            best_x.copy_from_slice(&x);
        }
    }
    if rnorm < opts.tol_residual {
        tally.converged = true;
        Ok(x)
    } else {
        Err(NumericsError::NotConverged {
            iterations: opts.max_iter,
            residual: best_rnorm,
            best_x,
        })
    }
}

/// Solves `F(x) = 0` given a caller-assembled residual *and* Jacobian.
///
/// The closure fills `r` with the residual and `jac` with `∂F/∂x` at `x`.
/// Used by the circuit simulator, whose device stamps produce the Jacobian
/// analytically during assembly.
///
/// # Errors
///
/// Same failure modes as [`newton_system`].
pub fn newton_system_with_jacobian<F>(
    f: F,
    x0: &[f64],
    opts: &NewtonOptions,
) -> Result<Vec<f64>, NumericsError>
where
    F: FnMut(&[f64], &mut [f64], &mut Matrix),
{
    newton_system_with_jacobian_budgeted(f, x0, opts, &Budget::unlimited())
}

/// [`newton_system_with_jacobian`] under an execution [`Budget`].
///
/// Budget placement matches [`newton_system_budgeted`]: one check before the
/// first residual/Jacobian assembly, one at the top of every iteration.
///
/// # Errors
///
/// [`NumericsError::Cancelled`] with the best iterate seen so far once the
/// budget trips, plus every failure mode of [`newton_system_with_jacobian`].
pub fn newton_system_with_jacobian_budgeted<F>(
    mut f: F,
    x0: &[f64],
    opts: &NewtonOptions,
    budget: &Budget,
) -> Result<Vec<f64>, NumericsError>
where
    F: FnMut(&[f64], &mut [f64], &mut Matrix),
{
    let n = x0.len();
    if n == 0 {
        return Err(NumericsError::InvalidInput("empty system".into()));
    }
    if x0.iter().any(|v| !v.is_finite()) {
        note_nonfinite();
        return Err(NumericsError::NonFinite {
            context: "newton initial guess".into(),
            at: x0.to_vec(),
        });
    }
    if budget.cancelled().is_some() {
        return Err(cancelled_err(budget, x0.to_vec()));
    }
    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    let mut r_trial = vec![0.0; n];
    let mut xp = vec![0.0; n];
    let mut jac = Matrix::zeros(n, n);
    let mut jac_trial = Matrix::zeros(n, n);
    let mut dx = vec![0.0; n];
    let mut solver = DenseSolver::new(n);

    f(&x, &mut r, &mut jac);
    let mut rnorm = inf_norm(&r);
    if !rnorm.is_finite() {
        note_nonfinite();
        return Err(NumericsError::NonFinite {
            context: "newton residual at initial guess".into(),
            at: x,
        });
    }
    let mut best_x = x.clone();
    let mut best_rnorm = rnorm;
    let mut tally = NewtonTally {
        iterations: 0,
        converged: false,
    };

    for iter in 0..opts.max_iter {
        if rnorm < opts.tol_residual {
            tally.converged = true;
            return Ok(x);
        }
        if budget.cancelled().is_some() {
            return Err(cancelled_err(budget, best_x));
        }
        tally.iterations = iter + 1;
        if !jac.data().iter().all(|v| v.is_finite()) {
            note_nonfinite();
            return Err(NumericsError::NonFinite {
                context: "assembled jacobian".into(),
                at: x,
            });
        }
        solver.refactorize(&jac)?;
        for (d, v) in dx.iter_mut().zip(&r) {
            *d = -v;
        }
        solver.solve_in_place(&mut dx);
        let step_norm = inf_norm(&dx);
        if !step_norm.is_finite() {
            note_nonfinite();
            return Err(NumericsError::NonFinite {
                context: "newton step".into(),
                at: x,
            });
        }
        if step_norm < opts.tol_step {
            tally.converged = true;
            return Ok(x);
        }
        let mut lambda = 1.0;
        let mut accepted = false;
        for _ in 0..=opts.max_halvings {
            for i in 0..n {
                xp[i] = x[i] + lambda * dx[i];
            }
            f(&xp, &mut r_trial, &mut jac_trial);
            let trial_norm = inf_norm(&r_trial);
            if trial_norm.is_finite() && trial_norm < rnorm {
                x.copy_from_slice(&xp);
                r.copy_from_slice(&r_trial);
                std::mem::swap(&mut jac, &mut jac_trial);
                rnorm = trial_norm;
                accepted = true;
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            for i in 0..n {
                x[i] += lambda * dx[i];
            }
            f(&x, &mut r, &mut jac);
            rnorm = inf_norm(&r);
            if !rnorm.is_finite() {
                note_nonfinite();
                return Err(NumericsError::NotConverged {
                    iterations: iter + 1,
                    residual: best_rnorm,
                    best_x,
                });
            }
        }
        if rnorm < best_rnorm {
            best_rnorm = rnorm;
            best_x.copy_from_slice(&x);
        }
    }
    if rnorm < opts.tol_residual {
        tally.converged = true;
        Ok(x)
    } else {
        Err(NumericsError::NotConverged {
            iterations: opts.max_iter,
            residual: best_rnorm,
            best_x,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_system_matches_brent() {
        let sol = newton_system(
            |x, r| r[0] = x[0] * x[0] - 2.0,
            &[1.0],
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!((sol[0] - 2f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn two_by_two_nonlinear() {
        // Rosenbrock-style stationarity system: x = y², y = x² has the
        // nontrivial solution (1, 1).
        let sol = newton_system(
            |x, r| {
                r[0] = x[0] - x[1] * x[1];
                r[1] = x[1] - x[0] * x[0];
            },
            &[0.8, 1.2],
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-8);
        assert!((sol[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn damping_rescues_bad_initial_guess() {
        // exp(x) - 1 = 0 from a large positive start needs damping.
        let sol = newton_system(
            |x, r| r[0] = x[0].exp() - 1.0,
            &[5.0],
            &NewtonOptions {
                max_iter: 200,
                ..NewtonOptions::default()
            },
        )
        .unwrap();
        assert!(sol[0].abs() < 1e-8);
    }

    #[test]
    fn with_jacobian_variant_agrees() {
        let sol = newton_system_with_jacobian(
            |x, r, j| {
                r[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
                r[1] = x[1] - x[0];
                j[(0, 0)] = 2.0 * x[0];
                j[(0, 1)] = 2.0 * x[1];
                j[(1, 0)] = -1.0;
                j[(1, 1)] = 1.0;
            },
            &[1.0, 0.5],
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!((sol[0] - 2f64.sqrt()).abs() < 1e-8);
        assert!((sol[1] - 2f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn reports_not_converged_with_best_iterate_for_rootless_residual() {
        let e = newton_system(
            |x, r| r[0] = x[0] * x[0] + 1.0,
            &[3.0],
            &NewtonOptions {
                max_iter: 25,
                ..NewtonOptions::default()
            },
        )
        .unwrap_err();
        match e {
            NumericsError::NotConverged {
                iterations,
                residual,
                best_x,
            } => {
                assert_eq!(iterations, 25);
                assert!(residual.is_finite());
                // x² + 1 has its minimum at x = 0; the best iterate should
                // have migrated toward it from the start at 3.0.
                assert_eq!(best_x.len(), 1);
                assert!(best_x[0].abs() < 3.0);
                assert!((best_x[0] * best_x[0] + 1.0 - residual).abs() < 1e-12);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_initial_residual_is_detected_immediately() {
        let e = newton_system(
            |x, r| r[0] = (x[0] - 1.0).ln(), // ln(negative) = NaN at x0 = 0
            &[0.0],
            &NewtonOptions::default(),
        )
        .unwrap_err();
        match e {
            NumericsError::NonFinite { context, at } => {
                assert!(context.contains("residual"));
                assert_eq!(at, vec![0.0]);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_initial_guess_is_rejected() {
        let e =
            newton_system(|x, r| r[0] = x[0], &[f64::NAN], &NewtonOptions::default()).unwrap_err();
        assert!(matches!(e, NumericsError::NonFinite { .. }));
    }

    #[test]
    fn non_finite_jacobian_is_detected_immediately() {
        // Residual is finite at x = 0 but NaN for any x > 0, so the forward
        // FD probe lands in the invalid region and poisons the column.
        let mut evals = 0usize;
        let e = newton_system(
            |x, r| {
                evals += 1;
                r[0] = (-x[0]).sqrt() - 0.5;
            },
            &[0.0],
            &NewtonOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(e, NumericsError::NonFinite { ref context, .. } if context.contains("jacobian")),
            "got {e:?}"
        );
        // Immediate bail-out: initial residual + one FD probe, not max_iter's worth.
        assert!(evals <= 3, "expected early exit, saw {evals} evaluations");
    }

    #[test]
    fn with_jacobian_rejects_non_finite_assembly() {
        let e = newton_system_with_jacobian(
            |x, r, j| {
                r[0] = x[0] - 2.0;
                j[(0, 0)] = f64::NAN;
            },
            &[0.0],
            &NewtonOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            e,
            NumericsError::NonFinite { ref context, .. } if context.contains("jacobian")
        ));
    }

    #[test]
    fn empty_system_is_an_error_not_a_panic() {
        let e = newton_system(|_x, _r| {}, &[], &NewtonOptions::default()).unwrap_err();
        assert!(matches!(e, NumericsError::InvalidInput(_)));
    }

    #[test]
    fn pre_cancelled_budget_returns_without_evaluating_the_model() {
        let token = shil_runtime::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_token(token);
        let mut evals = 0usize;
        let e = newton_system_budgeted(
            |x, r| {
                evals += 1;
                r[0] = x[0] - 1.0;
            },
            &[3.0],
            &NewtonOptions::default(),
            &budget,
        )
        .unwrap_err();
        match e {
            NumericsError::Cancelled { best_iterate, .. } => {
                assert_eq!(best_iterate, vec![3.0]);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(evals, 0, "pre-cancelled solve must not evaluate the model");
    }

    #[test]
    fn zero_deadline_budget_cancels_promptly_with_best_iterate() {
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let e = newton_system_budgeted(
            |x, r| r[0] = x[0] * x[0] - 2.0,
            &[1.0],
            &NewtonOptions::default(),
            &budget,
        )
        .unwrap_err();
        assert!(matches!(e, NumericsError::Cancelled { .. }), "got {e:?}");
        assert!(e.best_iterate().is_some());
    }

    #[test]
    fn cancellation_mid_iteration_returns_best_iterate_so_far() {
        // Cancel after the third residual evaluation; the solver must stop at
        // the next iteration boundary and hand back a finite best iterate.
        let token = shil_runtime::CancelToken::new();
        let budget = Budget::unlimited().with_token(token.clone());
        let mut evals = 0usize;
        let e = newton_system_budgeted(
            |x, r| {
                evals += 1;
                if evals == 3 {
                    token.cancel();
                }
                r[0] = x[0].exp() - 1.0;
            },
            &[5.0],
            &NewtonOptions {
                max_iter: 200,
                ..NewtonOptions::default()
            },
            &budget,
        )
        .unwrap_err();
        match e {
            NumericsError::Cancelled { best_iterate, .. } => {
                assert!(best_iterate[0].is_finite());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(evals < 20, "cancellation must stop the iteration promptly");
    }

    #[test]
    fn converged_solve_ignores_cancellation_raced_at_the_end() {
        // Convergence is checked before the budget: a solve that has already
        // met tolerance returns Ok even if the token trips on the same pass.
        let token = shil_runtime::CancelToken::new();
        let budget = Budget::unlimited().with_token(token.clone());
        let sol = newton_system_budgeted(
            |x, r| {
                r[0] = x[0] - 2.0;
                token.cancel();
            },
            &[2.0],
            &NewtonOptions::default(),
            &budget,
        )
        .unwrap();
        assert_eq!(sol, vec![2.0]);
    }

    #[test]
    fn with_jacobian_pre_cancelled_budget_is_prompt() {
        let token = shil_runtime::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_token(token);
        let mut evals = 0usize;
        let e = newton_system_with_jacobian_budgeted(
            |x, r, j| {
                evals += 1;
                r[0] = x[0];
                j[(0, 0)] = 1.0;
            },
            &[1.0],
            &NewtonOptions::default(),
            &budget,
        )
        .unwrap_err();
        assert!(matches!(e, NumericsError::Cancelled { .. }), "got {e:?}");
        assert_eq!(evals, 0);
    }
}
