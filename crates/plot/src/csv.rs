//! CSV export of figure series.

use std::fmt::Write as _;

use crate::figure::Figure;
use crate::{PlotError, Result};

/// Renders all series of a figure into long-format CSV:
/// `series,x,y` with one row per point.
///
/// Long format keeps series of different lengths (e.g. a contour polyline
/// next to a handful of solution markers) in one self-describing file.
///
/// # Errors
///
/// Returns [`PlotError::EmptyFigure`] when no series contains any points.
pub fn render(fig: &Figure) -> Result<String> {
    if fig.series.iter().all(|s| s.x.is_empty()) {
        return Err(PlotError::EmptyFigure);
    }
    let mut out = String::from("series,x,y\n");
    for s in &fig.series {
        let label = s.label.replace(',', ";");
        for (&x, &y) in s.x.iter().zip(&s.y) {
            let _ = writeln!(out, "{label},{x:.12e},{y:.12e}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::{Figure, Series};

    #[test]
    fn long_format_rows() {
        let fig = Figure::new("t")
            .with_series(Series::line("a,b", vec![1.0, 2.0], vec![3.0, 4.0]))
            .with_series(Series::line("c", vec![5.0], vec![6.0]));
        let csv = render(&fig).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines.len(), 4);
        // Commas in labels are sanitized.
        assert!(lines[1].starts_with("a;b,"));
        assert!(lines[3].starts_with("c,"));
    }

    #[test]
    fn empty_figure_is_an_error() {
        let fig = Figure::new("t").with_series(Series::line("a", vec![], vec![]));
        assert!(matches!(render(&fig), Err(PlotError::EmptyFigure)));
    }

    #[test]
    fn values_roundtrip_through_parse() {
        let fig =
            Figure::new("t").with_series(Series::line("a", vec![1.234567890123e-7], vec![-9.87e3]));
        let csv = render(&fig).unwrap();
        let row = csv.lines().nth(1).unwrap();
        let cols: Vec<&str> = row.split(',').collect();
        let x: f64 = cols[1].parse().unwrap();
        let y: f64 = cols[2].parse().unwrap();
        assert!((x - 1.234567890123e-7).abs() < 1e-18);
        assert!((y + 9.87e3).abs() < 1e-6);
    }
}
