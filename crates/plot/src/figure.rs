//! The backend-independent figure model.

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeriesKind {
    /// Points joined in order.
    #[default]
    Line,
    /// Individual markers (e.g. lock solutions).
    Scatter,
}

/// Marker glyph for scatter series (and ASCII rendering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// A filled circle (`o` in ASCII).
    Circle,
    /// A cross (`x` in ASCII) — used for unstable solutions.
    Cross,
    /// A star (`*` in ASCII).
    Star,
}

impl Marker {
    /// ASCII glyph for this marker.
    pub fn glyph(self) -> char {
        match self {
            Marker::Circle => 'o',
            Marker::Cross => 'x',
            Marker::Star => '*',
        }
    }
}

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X coordinates.
    pub x: Vec<f64>,
    /// Y coordinates.
    pub y: Vec<f64>,
    /// Line or scatter.
    pub kind: SeriesKind,
    /// Marker for scatter series.
    pub marker: Marker,
}

impl Series {
    /// A line series.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    pub fn line(label: &str, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series length mismatch");
        Series {
            label: label.to_string(),
            x,
            y,
            kind: SeriesKind::Line,
            marker: Marker::Circle,
        }
    }

    /// A scatter series with the given marker.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    pub fn scatter(label: &str, x: Vec<f64>, y: Vec<f64>, marker: Marker) -> Self {
        assert_eq!(x.len(), y.len(), "series length mismatch");
        Series {
            label: label.to_string(),
            x,
            y,
            kind: SeriesKind::Scatter,
            marker,
        }
    }

    /// Finite-sample bounding box `(x_min, x_max, y_min, y_max)`, if any
    /// finite points exist.
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut b: Option<(f64, f64, f64, f64)> = None;
        for (&x, &y) in self.x.iter().zip(&self.y) {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            b = Some(match b {
                None => (x, x, y, y),
                Some((x0, x1, y0, y1)) => (x0.min(x), x1.max(x), y0.min(y), y1.max(y)),
            });
        }
        b
    }
}

/// A titled collection of series with axis labels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, in draw order.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: &str) -> Self {
        Figure {
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Sets the axis labels.
    #[must_use]
    pub fn with_axis_labels(mut self, x: &str, y: &str) -> Self {
        self.x_label = x.to_string();
        self.y_label = y.to_string();
        self
    }

    /// Appends a series.
    #[must_use]
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Appends a series in place.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Joint bounding box of all series (None when nothing is drawable).
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut acc: Option<(f64, f64, f64, f64)> = None;
        for s in &self.series {
            if let Some((x0, x1, y0, y1)) = s.bounds() {
                acc = Some(match acc {
                    None => (x0, x1, y0, y1),
                    Some((a0, a1, b0, b1)) => (a0.min(x0), a1.max(x1), b0.min(y0), b1.max(y1)),
                });
            }
        }
        // Degenerate ranges get padded so the mapping stays invertible.
        acc.map(|(x0, x1, y0, y1)| {
            let (x0, x1) = pad_if_flat(x0, x1);
            let (y0, y1) = pad_if_flat(y0, y1);
            (x0, x1, y0, y1)
        })
    }

    /// Renders to an ASCII canvas (see [`crate::ascii`]).
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        crate::ascii::render(self, width, height)
    }

    /// Renders to an SVG document string (see [`crate::svg`]).
    pub fn render_svg(&self, width: usize, height: usize) -> String {
        crate::svg::render(self, width, height)
    }

    /// Writes the SVG rendering to a file.
    ///
    /// # Errors
    ///
    /// Returns I/O failures from writing the file.
    pub fn save_svg(
        &self,
        path: impl AsRef<std::path::Path>,
        width: usize,
        height: usize,
    ) -> crate::Result<()> {
        std::fs::write(path, self.render_svg(width, height))?;
        Ok(())
    }

    /// Writes all series to a CSV file (see [`crate::csv`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::PlotError::EmptyFigure`] when there is nothing to
    /// write, or I/O failures.
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> crate::Result<()> {
        std::fs::write(path, crate::csv::render(self)?)?;
        Ok(())
    }
}

fn pad_if_flat(lo: f64, hi: f64) -> (f64, f64) {
    if hi > lo {
        (lo, hi)
    } else {
        let pad = if lo == 0.0 { 1.0 } else { lo.abs() * 0.1 };
        (lo - pad, hi + pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_bounds_skip_non_finite() {
        let s = Series::line(
            "a",
            vec![0.0, 1.0, f64::NAN, 2.0],
            vec![5.0, f64::INFINITY, 1.0, -1.0],
        );
        assert_eq!(s.bounds(), Some((0.0, 2.0, -1.0, 5.0)));
    }

    #[test]
    fn empty_series_has_no_bounds() {
        let s = Series::line("a", vec![], vec![]);
        assert_eq!(s.bounds(), None);
        let f = Figure::new("t").with_series(s);
        assert_eq!(f.bounds(), None);
    }

    #[test]
    fn figure_bounds_union() {
        let f = Figure::new("t")
            .with_series(Series::line("a", vec![0.0, 1.0], vec![0.0, 1.0]))
            .with_series(Series::scatter("b", vec![-2.0], vec![5.0], Marker::Cross));
        assert_eq!(f.bounds(), Some((-2.0, 1.0, 0.0, 5.0)));
    }

    #[test]
    fn flat_ranges_are_padded() {
        let f = Figure::new("t").with_series(Series::line("a", vec![1.0, 1.0], vec![2.0, 2.0]));
        let (x0, x1, y0, y1) = f.bounds().unwrap();
        assert!(x1 > x0);
        assert!(y1 > y0);
    }

    #[test]
    fn marker_glyphs() {
        assert_eq!(Marker::Circle.glyph(), 'o');
        assert_eq!(Marker::Cross.glyph(), 'x');
        assert_eq!(Marker::Star.glyph(), '*');
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        let _ = Series::line("a", vec![0.0], vec![]);
    }
}
