//! Plot rendering for the graphical SHIL procedure.
//!
//! The paper's method is deliberately *graphical* — curves whose
//! intersections are the answers. This crate renders those curves three
//! ways, with no external dependencies:
//!
//! - [`ascii`] — quick terminal previews from the experiment binaries;
//! - [`svg`] — publication-style SVG files regenerating the paper figures;
//! - [`csv`] — raw series export for any external plotting tool.
//!
//! The shared [`Figure`] model holds titled line/scatter series in data
//! coordinates; each backend consumes it unchanged.
//!
//! # Example
//!
//! ```
//! use shil_plot::{Figure, Series};
//!
//! let xs: Vec<f64> = (0..100).map(|k| k as f64 * 0.1).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
//! let fig = Figure::new("sine")
//!     .with_axis_labels("t", "v")
//!     .with_series(Series::line("sin(t)", xs, ys));
//! let art = fig.render_ascii(60, 16);
//! assert!(art.contains("sine"));
//! let svg = fig.render_svg(640, 480);
//! assert!(svg.starts_with("<svg"));
//! ```

pub mod ascii;
pub mod csv;
pub mod svg;

mod figure;

pub use figure::{Figure, Marker, Series, SeriesKind};

/// Errors produced when writing plot files.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlotError {
    /// Figure contained no drawable data.
    EmptyFigure,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for PlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlotError::EmptyFigure => write!(f, "figure contains no data"),
            PlotError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for PlotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlotError::Io(e) => Some(e),
            PlotError::EmptyFigure => None,
        }
    }
}

impl From<std::io::Error> for PlotError {
    fn from(e: std::io::Error) -> Self {
        PlotError::Io(e)
    }
}

/// Result alias for plot operations.
pub type Result<T> = std::result::Result<T, PlotError>;
