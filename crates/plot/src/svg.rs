//! Minimal SVG backend.

use std::fmt::Write as _;

use crate::figure::{Figure, Marker, SeriesKind};

/// Color cycle (hex) for series strokes.
const COLORS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

const MARGIN_LEFT: f64 = 72.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 56.0;

/// Renders the figure as a standalone SVG document.
///
/// Data coordinates are mapped linearly into the plot area; each series
/// becomes a `<polyline>` (line kind) or a set of marker glyphs (scatter
/// kind); five ticks per axis and a legend are emitted.
pub fn render(fig: &Figure, width: usize, height: usize) -> String {
    let width = width.max(160) as f64;
    let height = height.max(120) as f64;
    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = write!(
        s,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = write!(
        s,
        r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
        width / 2.0,
        escape(&fig.title)
    );

    let Some((x0, x1, y0, y1)) = fig.bounds() else {
        let _ = write!(
            s,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="14" text-anchor="middle">(no data)</text></svg>"#,
            width / 2.0,
            height / 2.0
        );
        return s;
    };

    let plot_w = width - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = height - MARGIN_TOP - MARGIN_BOTTOM;
    let px = |x: f64| MARGIN_LEFT + (x - x0) / (x1 - x0) * plot_w;
    let py = |y: f64| MARGIN_TOP + (1.0 - (y - y0) / (y1 - y0)) * plot_h;

    // Axes frame.
    let _ = write!(
        s,
        r#"<rect x="{}" y="{}" width="{}" height="{}" fill="none" stroke="black"/>"#,
        MARGIN_LEFT, MARGIN_TOP, plot_w, plot_h
    );
    // Ticks and grid.
    for k in 0..=4 {
        let t = k as f64 / 4.0;
        let xv = x0 + t * (x1 - x0);
        let yv = y0 + t * (y1 - y0);
        let xs = px(xv);
        let ys = py(yv);
        let _ = write!(
            s,
            r##"<line x1="{xs}" y1="{}" x2="{xs}" y2="{}" stroke="#dddddd"/>"##,
            MARGIN_TOP,
            MARGIN_TOP + plot_h
        );
        let _ = write!(
            s,
            r##"<line x1="{}" y1="{ys}" x2="{}" y2="{ys}" stroke="#dddddd"/>"##,
            MARGIN_LEFT,
            MARGIN_LEFT + plot_w
        );
        let _ = write!(
            s,
            r#"<text x="{xs}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h + 16.0,
            format_tick(xv)
        );
        let _ = write!(
            s,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{}</text>"#,
            MARGIN_LEFT - 6.0,
            ys + 4.0,
            format_tick(yv)
        );
    }
    // Axis labels.
    let _ = write!(
        s,
        r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        height - 12.0,
        escape(&fig.x_label)
    );
    let _ = write!(
        s,
        r#"<text x="16" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        escape(&fig.y_label)
    );

    // Series.
    for (si, series) in fig.series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        match series.kind {
            SeriesKind::Line => {
                // Break the polyline at non-finite samples.
                let mut run: Vec<(f64, f64)> = Vec::new();
                let flush = |run: &mut Vec<(f64, f64)>, s: &mut String| {
                    if run.len() >= 2 {
                        let pts: Vec<String> = run
                            .iter()
                            .map(|(x, y)| format!("{:.2},{:.2}", px(*x), py(*y)))
                            .collect();
                        let _ = write!(
                            s,
                            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"#,
                            pts.join(" ")
                        );
                    }
                    run.clear();
                };
                for (&x, &y) in series.x.iter().zip(&series.y) {
                    if x.is_finite() && y.is_finite() {
                        run.push((x, y));
                    } else {
                        flush(&mut run, &mut s);
                    }
                }
                flush(&mut run, &mut s);
            }
            SeriesKind::Scatter => {
                for (&x, &y) in series.x.iter().zip(&series.y) {
                    if !(x.is_finite() && y.is_finite()) {
                        continue;
                    }
                    let (cx, cy) = (px(x), py(y));
                    match series.marker {
                        Marker::Circle => {
                            let _ = write!(
                                s,
                                r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="4" fill="{color}"/>"#
                            );
                        }
                        Marker::Cross => {
                            let _ = write!(
                                s,
                                r#"<path d="M {x0:.2} {y0:.2} L {x1:.2} {y1:.2} M {x0:.2} {y1:.2} L {x1:.2} {y0:.2}" stroke="{color}" stroke-width="2" fill="none"/>"#,
                                x0 = cx - 4.0,
                                x1 = cx + 4.0,
                                y0 = cy - 4.0,
                                y1 = cy + 4.0
                            );
                        }
                        Marker::Star => {
                            let _ = write!(
                                s,
                                r#"<path d="M {cx:.2} {:.2} L {cx:.2} {:.2} M {:.2} {cy:.2} L {:.2} {cy:.2} M {:.2} {:.2} L {:.2} {:.2} M {:.2} {:.2} L {:.2} {:.2}" stroke="{color}" stroke-width="1.5" fill="none"/>"#,
                                cy - 5.0,
                                cy + 5.0,
                                cx - 5.0,
                                cx + 5.0,
                                cx - 3.5,
                                cy - 3.5,
                                cx + 3.5,
                                cy + 3.5,
                                cx - 3.5,
                                cy + 3.5,
                                cx + 3.5,
                                cy - 3.5
                            );
                        }
                    }
                }
            }
        }
    }

    // Legend.
    for (si, series) in fig.series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let ly = MARGIN_TOP + 14.0 + 16.0 * si as f64;
        let lx = MARGIN_LEFT + plot_w - 150.0;
        let _ = write!(
            s,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = write!(
            s,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            escape(&series.label)
        );
    }

    s.push_str("</svg>");
    s
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-2 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use crate::figure::{Figure, Marker, Series};

    #[test]
    fn svg_structure() {
        let fig = Figure::new("lock range")
            .with_axis_labels("phi", "A")
            .with_series(Series::line("Tf=1", vec![0.0, 1.0], vec![1.0, 2.0]))
            .with_series(Series::scatter(
                "stable",
                vec![0.5],
                vec![1.5],
                Marker::Circle,
            ))
            .with_series(Series::scatter(
                "unstable",
                vec![0.7],
                vec![1.7],
                Marker::Cross,
            ))
            .with_series(Series::scatter("peak", vec![0.2], vec![1.2], Marker::Star));
        let svg = fig.render_svg(640, 480);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("lock range"));
        assert!(svg.contains("stable"));
        // Balanced document heuristic: no stray unclosed text nodes.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn non_finite_points_break_polylines() {
        let fig = Figure::new("t").with_series(Series::line(
            "broken",
            vec![0.0, 1.0, f64::NAN, 2.0, 3.0],
            vec![0.0, 1.0, 1.0, 2.0, 3.0],
        ));
        let svg = fig.render_svg(640, 480);
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn empty_figure_renders_placeholder() {
        let svg = Figure::new("nothing").render_svg(640, 480);
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn title_is_escaped() {
        let fig =
            Figure::new("a < b & c").with_series(Series::line("s", vec![0.0, 1.0], vec![0.0, 1.0]));
        let svg = fig.render_svg(640, 480);
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
