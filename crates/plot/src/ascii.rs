//! ASCII rendering for terminal previews.

use crate::figure::{Figure, SeriesKind};

/// Glyph cycle for line series (scatter series use their own markers).
const LINE_GLYPHS: [char; 6] = ['#', '+', '.', '%', '@', '='];

/// Renders the figure onto a `width × height` character canvas with a
/// simple frame, axis ranges and a legend.
///
/// Series are drawn in order, later series overwriting earlier ones where
/// they collide (markers always win over lines).
pub fn render(fig: &Figure, width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(6);
    let mut out = String::new();
    out.push_str(&fig.title);
    out.push('\n');

    let Some((x0, x1, y0, y1)) = fig.bounds() else {
        out.push_str("(no data)\n");
        return out;
    };

    let mut canvas = vec![vec![' '; width]; height];
    let to_col = |x: f64| -> Option<usize> {
        let t = (x - x0) / (x1 - x0);
        if !(0.0..=1.0).contains(&t) {
            return None;
        }
        Some(((t * (width - 1) as f64).round() as usize).min(width - 1))
    };
    let to_row = |y: f64| -> Option<usize> {
        let t = (y - y0) / (y1 - y0);
        if !(0.0..=1.0).contains(&t) {
            return None;
        }
        Some(height - 1 - ((t * (height - 1) as f64).round() as usize).min(height - 1))
    };

    // Lines first, markers on top.
    for (si, s) in fig.series.iter().enumerate() {
        if s.kind != SeriesKind::Line {
            continue;
        }
        let glyph = LINE_GLYPHS[si % LINE_GLYPHS.len()];
        for w in s.x.windows(2).zip(s.y.windows(2)) {
            let ((xa, xb), (ya, yb)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            if ![xa, xb, ya, yb].iter().all(|v| v.is_finite()) {
                continue;
            }
            // Sample along the segment at sub-cell resolution.
            let steps = 2 * width.max(height);
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let x = xa + t * (xb - xa);
                let y = ya + t * (yb - ya);
                if let (Some(c), Some(r)) = (to_col(x), to_row(y)) {
                    canvas[r][c] = glyph;
                }
            }
        }
    }
    for s in &fig.series {
        if s.kind != SeriesKind::Scatter {
            continue;
        }
        for (&x, &y) in s.x.iter().zip(&s.y) {
            if let (Some(c), Some(r)) = (to_col(x), to_row(y)) {
                canvas[r][c] = s.marker.glyph();
            }
        }
    }

    // Frame + canvas.
    let hline: String = "-".repeat(width);
    out.push_str(&format!("{y1:>12.5e} +{hline}+\n", y1 = y1));
    for (r, row) in canvas.iter().enumerate() {
        let label = if r == height - 1 {
            format!("{y0:>12.5e}")
        } else {
            " ".repeat(12)
        };
        out.push_str(&format!("{label} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{:>13}+{hline}+\n", " "));
    out.push_str(&format!(
        "{:>14}{x0:<.5e}{:>pad$}{x1:.5e}   ({x_label})\n",
        "",
        "",
        pad = width.saturating_sub(24),
        x0 = x0,
        x1 = x1,
        x_label = fig.x_label,
    ));
    // Legend.
    for (si, s) in fig.series.iter().enumerate() {
        let glyph = match s.kind {
            SeriesKind::Line => LINE_GLYPHS[si % LINE_GLYPHS.len()],
            SeriesKind::Scatter => s.marker.glyph(),
        };
        out.push_str(&format!("  {glyph} {}\n", s.label));
    }
    if !fig.y_label.is_empty() {
        out.push_str(&format!("  (y: {})\n", fig.y_label));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::figure::{Figure, Marker, Series};

    #[test]
    fn renders_title_legend_and_frame() {
        let fig = Figure::new("demo figure")
            .with_axis_labels("x", "y")
            .with_series(Series::line(
                "ramp",
                vec![0.0, 1.0, 2.0],
                vec![0.0, 1.0, 2.0],
            ));
        let art = fig.render_ascii(40, 10);
        assert!(art.contains("demo figure"));
        assert!(art.contains("ramp"));
        assert!(art.contains('#'));
        assert!(art.contains("(y: y)"));
    }

    #[test]
    fn empty_figure_says_no_data() {
        let fig = Figure::new("empty");
        assert!(fig.render_ascii(40, 10).contains("(no data)"));
    }

    #[test]
    fn scatter_markers_overwrite_lines() {
        let fig = Figure::new("t")
            .with_series(Series::line("l", vec![0.0, 1.0], vec![0.0, 0.0]))
            .with_series(Series::scatter("s", vec![0.5], vec![0.0], Marker::Star));
        let art = fig.render_ascii(30, 8);
        assert!(art.contains('*'));
    }

    #[test]
    fn diagonal_line_occupies_both_corners() {
        let fig = Figure::new("t").with_series(Series::line("d", vec![0.0, 1.0], vec![0.0, 1.0]));
        let art = fig.render_ascii(30, 10);
        let rows: Vec<&str> = art.lines().filter(|l| l.contains('|')).collect();
        // First canvas row holds the top-right end, last the bottom-left.
        assert!(rows.first().expect("rows").trim_end().ends_with("#|"));
        assert!(rows.last().expect("rows").contains("|#"));
    }

    #[test]
    fn minimum_canvas_is_enforced() {
        let fig = Figure::new("t").with_series(Series::line("l", vec![0.0, 1.0], vec![0.0, 1.0]));
        // Tiny requested sizes are clamped rather than panicking.
        let art = fig.render_ascii(1, 1);
        assert!(art.contains('#'));
    }
}
