//! Property-based invariants for the waveform measurements.

use proptest::prelude::*;
use shil_waveform::lock::{lock_analysis, LockOptions};
use shil_waveform::measure::{estimate_frequency, peak_amplitude, phasor_at, rms};
use shil_waveform::Sampled;
use std::f64::consts::TAU;

fn sine(f: f64, amp: f64, phase: f64, offset: f64, dt: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| offset + amp * (TAU * f * k as f64 * dt + phase).cos())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Amplitude, RMS and frequency estimators recover a random sinusoid.
    #[test]
    fn estimators_recover_random_sinusoids(
        amp in 0.01f64..10.0,
        phase in 0.0f64..TAU,
        offset in -5.0f64..5.0,
        cycles_per_sample in 0.002f64..0.02,
    ) {
        let f = 1e6;
        let dt = cycles_per_sample / f;
        let n = (40.0 / cycles_per_sample) as usize; // ~40 periods
        let vals = sine(f, amp, phase, offset, dt, n);
        let s = Sampled::new(0.0, dt, &vals).expect("sampled");

        prop_assert!((peak_amplitude(&s) - amp).abs() < 0.01 * amp + 1e-9);
        prop_assert!((rms(&s) - amp / 2f64.sqrt()).abs() < 0.02 * amp + 1e-9);
        let fe = estimate_frequency(&s).expect("frequency");
        prop_assert!(((fe - f) / f).abs() < 1e-3, "f = {fe}");
        let p = phasor_at(&s, f).expect("phasor");
        prop_assert!((p.abs() - amp).abs() < 0.01 * amp + 1e-9);
        prop_assert!(
            shil_numerics::angle_diff(p.arg(), phase).abs() < 0.02,
            "phase {} vs {phase}",
            p.arg()
        );
    }

    /// The lock verdict is scale invariant: multiplying the waveform by a
    /// positive constant never changes it.
    #[test]
    fn lock_verdict_is_scale_invariant(
        scale in 0.001f64..1000.0,
        detune_ppm in 0.0f64..3000.0,
    ) {
        let f = 1e6;
        let dt = 1.0 / (f * 40.0);
        let f_real = f * (1.0 + detune_ppm * 1e-6);
        let n = 200_000;
        let base = sine(f_real, 1.0, 0.3, 0.0, dt, n);
        let scaled: Vec<f64> = base.iter().map(|v| v * scale).collect();
        let sa = Sampled::new(0.0, dt, &base).expect("sampled");
        let sb = Sampled::new(0.0, dt, &scaled).expect("sampled");
        let opts = LockOptions::default();
        let ra = lock_analysis(&sa, f, &opts).expect("a");
        let rb = lock_analysis(&sb, f, &opts).expect("b");
        prop_assert_eq!(ra.locked, rb.locked);
        prop_assert!((ra.max_phase_step - rb.max_phase_step).abs() < 1e-9);
    }

    /// Windowing a trace never invents samples outside the parent range.
    #[test]
    fn window_is_contained(
        t0 in -1.0f64..1.0,
        dt in 1e-6f64..1e-3,
        from_frac in 0.0f64..0.9,
        span_frac in 0.05f64..0.5,
    ) {
        let vals: Vec<f64> = (0..5000).map(|k| (k as f64).sin()).collect();
        let s = Sampled::new(t0, dt, &vals).expect("sampled");
        let dur = s.duration();
        let t_from = t0 + from_frac * dur;
        let t_to = (t_from + span_frac * dur).min(t0 + dur);
        if let Ok(w) = s.window(t_from, t_to) {
            prop_assert!(w.t0 >= t_from - 1e-12);
            prop_assert!(w.time_at(w.len() - 1) <= t_to + dt);
            prop_assert!(w.len() >= 2);
        }
    }
}
