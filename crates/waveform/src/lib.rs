//! Post-processing of transient waveforms.
//!
//! The "Simulation" rows of the paper's validation tables come from
//! inspecting NGSPICE output: did the oscillator settle, at what amplitude,
//! at what frequency, is it locked to the injection, and (for Figs. 15/19)
//! which of the `n` sub-harmonic states is it in? This crate implements
//! those measurements over uniformly sampled traces:
//!
//! - [`measure`] — amplitude, frequency (interpolated zero crossings),
//!   single-bin fundamental phasors, settling detection.
//! - [`spectrum`] — DFT magnitude spectra and dominant-tone estimation.
//! - [`lock`] — injection-lock detection by phase-drift analysis.
//! - [`states`] — SHIL state classification against a reference signal
//!   (the paper's "signal at 1/n-th of the injection frequency and phase
//!   locked with the injection signal").

pub mod lock;
pub mod measure;
pub mod spectrum;
pub mod states;

mod error;

pub use error::WaveformError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WaveformError>;

/// A borrowed view of a uniformly sampled signal.
///
/// All analyses in this crate operate on uniform sampling; transient
/// results from `shil-circuit` with a fixed step satisfy this directly.
#[derive(Debug, Clone, Copy)]
pub struct Sampled<'a> {
    /// Start time of the first sample.
    pub t0: f64,
    /// Sample spacing (must be positive).
    pub dt: f64,
    /// The samples.
    pub values: &'a [f64],
}

impl<'a> Sampled<'a> {
    /// Creates a sampled view.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidInput`] if `dt ≤ 0` or fewer than two
    /// samples are provided.
    pub fn new(t0: f64, dt: f64, values: &'a [f64]) -> Result<Self> {
        // NaN-rejecting positivity check.
        if dt.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(WaveformError::InvalidInput(format!(
                "sample spacing must be positive, got {dt}"
            )));
        }
        if values.len() < 2 {
            return Err(WaveformError::InvalidInput(
                "need at least two samples".into(),
            ));
        }
        Ok(Sampled { t0, dt, values })
    }

    /// Builds a view from parallel time/value slices, checking uniformity.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidInput`] if the time axis is not
    /// uniform to within 1 ppm of the mean step.
    pub fn from_time_series(time: &[f64], values: &'a [f64]) -> Result<Self> {
        if time.len() != values.len() {
            return Err(WaveformError::InvalidInput(
                "time and value lengths differ".into(),
            ));
        }
        if time.len() < 2 {
            return Err(WaveformError::InvalidInput(
                "need at least two samples".into(),
            ));
        }
        let dt = (time[time.len() - 1] - time[0]) / (time.len() - 1) as f64;
        // NaN-rejecting positivity check.
        if dt.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(WaveformError::InvalidInput(
                "time axis must be increasing".into(),
            ));
        }
        for (k, w) in time.windows(2).enumerate() {
            let step = w[1] - w[0];
            if (step - dt).abs() > 1e-6 * dt.abs() {
                return Err(WaveformError::InvalidInput(format!(
                    "non-uniform sampling at index {k}: step {step} vs mean {dt}"
                )));
            }
        }
        Sampled::new(time[0], dt, values)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the view is empty (never true for a constructed view).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Time of sample `k`.
    pub fn time_at(&self, k: usize) -> f64 {
        self.t0 + self.dt * k as f64
    }

    /// Total duration covered.
    pub fn duration(&self) -> f64 {
        self.dt * (self.values.len() - 1) as f64
    }

    /// Sub-view covering `t ∈ [t_from, t_to]` (clamped to the data).
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidInput`] if the window contains fewer
    /// than two samples.
    pub fn window(&self, t_from: f64, t_to: f64) -> Result<Sampled<'a>> {
        let i0 = (((t_from - self.t0) / self.dt).ceil().max(0.0)) as usize;
        let i1 = ((((t_to - self.t0) / self.dt).floor()) as usize).min(self.values.len() - 1);
        if i1 <= i0 + 1 {
            return Err(WaveformError::InvalidInput(format!(
                "window [{t_from}, {t_to}] contains too few samples"
            )));
        }
        Sampled::new(self.time_at(i0), self.dt, &self.values[i0..=i1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_view_basics() {
        let vals = [0.0, 1.0, 2.0, 3.0];
        let s = Sampled::new(1.0, 0.5, &vals).unwrap();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.time_at(2), 2.0);
        assert_eq!(s.duration(), 1.5);
    }

    #[test]
    fn rejects_bad_spacing() {
        let vals = [0.0, 1.0];
        assert!(Sampled::new(0.0, 0.0, &vals).is_err());
        assert!(Sampled::new(0.0, -1.0, &vals).is_err());
        let one = [0.0];
        assert!(Sampled::new(0.0, 1.0, &one).is_err());
    }

    #[test]
    fn from_time_series_checks_uniformity() {
        let t = [0.0, 0.1, 0.2, 0.3];
        let v = [1.0, 2.0, 3.0, 4.0];
        let s = Sampled::from_time_series(&t, &v).unwrap();
        assert!((s.dt - 0.1).abs() < 1e-12);
        let t_bad = [0.0, 0.1, 0.25, 0.3];
        assert!(Sampled::from_time_series(&t_bad, &v).is_err());
        let t_short = [0.0];
        let v_short = [0.0];
        assert!(Sampled::from_time_series(&t_short, &v_short).is_err());
    }

    #[test]
    fn window_extraction() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Sampled::new(0.0, 0.1, &vals).unwrap();
        let w = s.window(2.0, 5.0).unwrap();
        assert!((w.t0 - 2.0).abs() < 1e-12);
        assert_eq!(w.len(), 31);
        assert!(s.window(9.89, 9.9).is_err());
    }
}
