use std::fmt;

/// Errors produced by waveform analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WaveformError {
    /// Input data violated a precondition (documented per function).
    InvalidInput(String),
    /// The signal did not contain the requested feature (e.g. no zero
    /// crossings when estimating a frequency).
    FeatureNotFound(String),
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            WaveformError::FeatureNotFound(msg) => write!(f, "feature not found: {msg}"),
        }
    }
}

impl std::error::Error for WaveformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(WaveformError::InvalidInput("x".into())
            .to_string()
            .contains("invalid input"));
        assert!(WaveformError::FeatureNotFound("no crossings".into())
            .to_string()
            .contains("no crossings"));
    }
}
