//! DFT spectra and dominant-tone estimation.

use shil_numerics::fft::fft_in_place;
use shil_numerics::Complex64;

use crate::{Result, Sampled, WaveformError};

/// One-sided magnitude spectrum of a sampled signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Bin frequencies in hertz.
    pub freq_hz: Vec<f64>,
    /// Normalized magnitudes (a full-scale sinusoid → 1.0 at its bin).
    pub magnitude: Vec<f64>,
}

impl Spectrum {
    /// Index and frequency of the largest non-DC bin.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::FeatureNotFound`] on an all-zero spectrum.
    pub fn dominant(&self) -> Result<(usize, f64)> {
        let mut best = None;
        let mut best_mag = 0.0;
        for (k, &m) in self.magnitude.iter().enumerate().skip(1) {
            if m > best_mag {
                best_mag = m;
                best = Some(k);
            }
        }
        match best {
            Some(k) if best_mag > 0.0 => Ok((k, self.freq_hz[k])),
            _ => Err(WaveformError::FeatureNotFound(
                "no non-zero spectral bin".into(),
            )),
        }
    }
}

/// Computes a one-sided magnitude spectrum with a Hann window.
///
/// The signal is truncated to the largest power-of-two length. The Hann
/// window trades main-lobe width for sidelobe suppression, which matters
/// when hunting the oscillator fundamental next to injection spurs.
///
/// # Errors
///
/// Returns [`WaveformError::InvalidInput`] if fewer than 8 samples remain.
pub fn spectrum(s: &Sampled<'_>) -> Result<Spectrum> {
    let n = s.values.len();
    let pow2 = 1usize << (usize::BITS - 1 - n.leading_zeros());
    if pow2 < 8 {
        return Err(WaveformError::InvalidInput(
            "need at least 8 samples for a spectrum".into(),
        ));
    }
    let mean: f64 = s.values[..pow2].iter().sum::<f64>() / pow2 as f64;
    let mut buf: Vec<Complex64> = (0..pow2)
        .map(|k| {
            let w = 0.5 - 0.5 * (std::f64::consts::TAU * k as f64 / pow2 as f64).cos();
            Complex64::new((s.values[k] - mean) * w, 0.0)
        })
        .collect();
    fft_in_place(&mut buf).map_err(|e| WaveformError::InvalidInput(e.to_string()))?;
    // Hann coherent gain is 0.5; one-sided doubling restores amplitude.
    let scale = 2.0 / (0.5 * pow2 as f64) / 2.0 * 2.0;
    let half = pow2 / 2;
    let df = 1.0 / (pow2 as f64 * s.dt);
    Ok(Spectrum {
        freq_hz: (0..half).map(|k| k as f64 * df).collect(),
        magnitude: buf[..half].iter().map(|c| c.abs() * scale).collect(),
    })
}

/// Estimates the dominant tone frequency with parabolic interpolation of the
/// log-magnitude around the spectral peak.
///
/// # Errors
///
/// Propagates spectrum construction failures and
/// [`WaveformError::FeatureNotFound`] for silent signals.
pub fn dominant_frequency(s: &Sampled<'_>) -> Result<f64> {
    let sp = spectrum(s)?;
    let (k, f) = sp.dominant()?;
    if k == 0 || k + 1 >= sp.magnitude.len() {
        return Ok(f);
    }
    let (a, b, c) = (
        sp.magnitude[k - 1].max(1e-300).ln(),
        sp.magnitude[k].max(1e-300).ln(),
        sp.magnitude[k + 1].max(1e-300).ln(),
    );
    let denom = a - 2.0 * b + c;
    let delta = if denom.abs() > 1e-12 {
        (0.5 * (a - c) / denom).clamp(-0.5, 0.5)
    } else {
        0.0
    };
    let df = sp.freq_hz[1] - sp.freq_hz[0];
    Ok(f + delta * df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn spectrum_peaks_at_tone() {
        let f = 1000.0;
        let dt = 1.0 / 32768.0;
        let vals: Vec<f64> = (0..4096).map(|k| (TAU * f * k as f64 * dt).sin()).collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let sp = spectrum(&s).unwrap();
        let (_, fpk) = sp.dominant().unwrap();
        assert!((fpk - f).abs() <= 8.0 + 1e-9); // within one bin
    }

    #[test]
    fn dominant_frequency_interpolates_between_bins() {
        // Tone deliberately placed off-bin.
        let dt = 1.0 / 10000.0;
        let f = 1234.567;
        let vals: Vec<f64> = (0..8192).map(|k| (TAU * f * k as f64 * dt).sin()).collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let fe = dominant_frequency(&s).unwrap();
        let bin = 10000.0 / 8192.0;
        assert!((fe - f).abs() < 0.2 * bin, "fe = {fe}");
    }

    #[test]
    fn spectrum_amplitude_calibration() {
        let dt = 1.0 / 8192.0;
        // Tone exactly on a bin: Hann-windowed amplitude is recovered.
        let f = 512.0;
        let amp = 0.505;
        let vals: Vec<f64> = (0..8192)
            .map(|k| amp * (TAU * f * k as f64 * dt).cos())
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let sp = spectrum(&s).unwrap();
        let (k, _) = sp.dominant().unwrap();
        assert!(
            (sp.magnitude[k] - amp).abs() < 0.01 * amp,
            "peak magnitude {}",
            sp.magnitude[k]
        );
    }

    #[test]
    fn silent_signal_has_no_dominant_tone() {
        let vals = vec![0.0; 1024];
        let s = Sampled::new(0.0, 1e-3, &vals).unwrap();
        let sp = spectrum(&s).unwrap();
        assert!(sp.dominant().is_err());
    }

    #[test]
    fn too_short_signal_is_rejected() {
        let vals = vec![0.0; 7];
        let s = Sampled::new(0.0, 1e-3, &vals).unwrap();
        assert!(spectrum(&s).is_err());
    }

    #[test]
    fn subharmonic_content_visible_next_to_injection() {
        // Oscillator at f0 with a weak 3f0 injection spur — the dominant
        // tone must still be f0.
        let dt = 1.0 / 65536.0;
        let f0 = 1024.0;
        let vals: Vec<f64> = (0..16384)
            .map(|k| {
                let t = k as f64 * dt;
                (TAU * f0 * t).cos() + 0.06 * (TAU * 3.0 * f0 * t).cos()
            })
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let fe = dominant_frequency(&s).unwrap();
        assert!((fe - f0).abs() < 4.0, "fe = {fe}");
        // And the spur is visible at 3f0.
        let sp = spectrum(&s).unwrap();
        let bin3 = (3.0 * f0 * (16384.0 * dt)).round() as usize;
        assert!(sp.magnitude[bin3] > 0.03);
    }
}
