//! Injection-lock detection.
//!
//! An oscillator is locked to `f_lock` when its fundamental maintains a
//! constant phase relative to `e^{j2πf_lock t}`. Under injection *pulling*
//! (outside the lock range) the relative phase rotates continuously (a beat
//! note), so the robust discriminator is the phase drift across successive
//! measurement windows.

use shil_numerics::angle_diff;

use crate::measure::phasor_at;
use crate::{Result, Sampled, WaveformError};

/// Options for [`lock_analysis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockOptions {
    /// Number of analysis windows across the view.
    pub windows: usize,
    /// Periods of the lock frequency per window.
    pub periods_per_window: usize,
    /// Maximum tolerated phase drift per window (radians) for a lock
    /// verdict.
    pub max_drift: f64,
    /// Minimum amplitude (relative to the largest window amplitude) below
    /// which the oscillation is considered dead rather than locked.
    pub min_relative_amplitude: f64,
}

impl Default for LockOptions {
    fn default() -> Self {
        LockOptions {
            windows: 8,
            periods_per_window: 20,
            max_drift: 0.05,
            min_relative_amplitude: 0.05,
        }
    }
}

/// Outcome of a lock test.
#[derive(Debug, Clone, PartialEq)]
pub struct LockAnalysis {
    /// Whether the oscillator is phase-locked at the probe frequency.
    pub locked: bool,
    /// Phase of the fundamental in each window (radians).
    pub window_phases: Vec<f64>,
    /// Amplitude of the fundamental in each window.
    pub window_amplitudes: Vec<f64>,
    /// Largest |phase step| between consecutive windows (radians).
    pub max_phase_step: f64,
    /// Mean amplitude across windows.
    pub mean_amplitude: f64,
}

/// Tests whether the signal is phase-locked at `f_lock`.
///
/// The view is split into `opts.windows` windows of
/// `opts.periods_per_window` periods each (taken from the *end* of the view
/// so start-up transients are ignored). The fundamental phasor at `f_lock`
/// is measured in each; the signal is locked iff every window-to-window
/// phase step stays below `opts.max_drift` and the amplitude stays alive.
///
/// # Errors
///
/// Returns [`WaveformError::InvalidInput`] if the view is too short for the
/// requested windows.
pub fn lock_analysis(s: &Sampled<'_>, f_lock: f64, opts: &LockOptions) -> Result<LockAnalysis> {
    // NaN-rejecting positivity check.
    if f_lock.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WaveformError::InvalidInput(format!(
            "lock frequency must be positive, got {f_lock}"
        )));
    }
    let period = 1.0 / f_lock;
    let window_dur = period * opts.periods_per_window as f64;
    let need = window_dur * opts.windows as f64;
    if s.duration() < need {
        return Err(WaveformError::InvalidInput(format!(
            "view of {:.3e}s too short for {} windows of {:.3e}s",
            s.duration(),
            opts.windows,
            window_dur
        )));
    }
    let t_end = s.time_at(s.len() - 1);
    let mut phases = Vec::with_capacity(opts.windows);
    let mut amps = Vec::with_capacity(opts.windows);
    for w in 0..opts.windows {
        let t1 = t_end - window_dur * (opts.windows - 1 - w) as f64;
        let t0 = t1 - window_dur;
        let view = s.window(t0, t1)?;
        let p = phasor_at(&view, f_lock)?;
        phases.push(p.arg());
        amps.push(p.abs());
    }
    let max_amp = amps.iter().cloned().fold(0.0f64, f64::max);
    let mean_amplitude = amps.iter().sum::<f64>() / amps.len() as f64;
    let mut max_phase_step = 0.0f64;
    for w in phases.windows(2) {
        max_phase_step = max_phase_step.max(angle_diff(w[1], w[0]).abs());
    }
    let alive = amps
        .iter()
        .all(|&a| a >= opts.min_relative_amplitude * max_amp);
    let locked = alive && max_amp > 0.0 && max_phase_step <= opts.max_drift;
    Ok(LockAnalysis {
        locked,
        window_phases: phases,
        window_amplitudes: amps,
        max_phase_step,
        mean_amplitude,
    })
}

/// Estimates the beat (phase-slip) frequency of a *pulled* oscillator.
///
/// The fundamental's phase relative to `f_probe` is measured in
/// consecutive windows, unwrapped, and fitted with a least-squares line;
/// the slope (radians/second) over 2π is the slip frequency. Under lock
/// this returns ≈ 0; under pulling it returns the sideband spacing
/// predicted by `shil-core::pulling`.
///
/// The window must be short enough that the phase moves less than π per
/// window (`|f_beat| < f_probe/(2·periods_per_window)`), or unwrapping
/// aliases.
///
/// # Errors
///
/// Same conditions as [`lock_analysis`].
pub fn beat_frequency_estimate(s: &Sampled<'_>, f_probe: f64, opts: &LockOptions) -> Result<f64> {
    let r = lock_analysis(s, f_probe, opts)?;
    // Unwrap the window phases.
    let mut unwrapped = Vec::with_capacity(r.window_phases.len());
    let mut acc = r.window_phases[0];
    unwrapped.push(acc);
    for w in r.window_phases.windows(2) {
        acc += angle_diff(w[1], w[0]);
        unwrapped.push(acc);
    }
    // Least-squares slope against window index, then convert to time.
    let n = unwrapped.len() as f64;
    let window_dur = opts.periods_per_window as f64 / f_probe;
    let mean_i = (n - 1.0) / 2.0;
    let mean_p: f64 = unwrapped.iter().sum::<f64>() / n;
    let (mut num, mut den) = (0.0, 0.0);
    for (i, &p) in unwrapped.iter().enumerate() {
        let di = i as f64 - mean_i;
        num += di * (p - mean_p);
        den += di * di;
    }
    let slope = num / den; // radians per window
    Ok(slope / (std::f64::consts::TAU * window_dur))
}

/// Convenience wrapper: is the oscillator locked to the `n`-th sub-harmonic
/// of an injection at `f_injection` (i.e. oscillating at `f_injection/n`)?
///
/// # Errors
///
/// Same as [`lock_analysis`].
pub fn is_subharmonic_locked(
    s: &Sampled<'_>,
    f_injection: f64,
    n: u32,
    opts: &LockOptions,
) -> Result<bool> {
    if n == 0 {
        return Err(WaveformError::InvalidInput("n must be ≥ 1".into()));
    }
    Ok(lock_analysis(s, f_injection / n as f64, opts)?.locked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn lock_opts() -> LockOptions {
        LockOptions::default()
    }

    #[test]
    fn pure_tone_is_locked_at_its_own_frequency() {
        let f = 1e6;
        let dt = 1.0 / (f * 50.0);
        let vals: Vec<f64> = (0..120_000)
            .map(|k| 0.4 * (TAU * f * k as f64 * dt + 0.3).cos())
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let r = lock_analysis(&s, f, &lock_opts()).unwrap();
        assert!(r.locked, "max step {}", r.max_phase_step);
        assert!((r.mean_amplitude - 0.4).abs() < 1e-3);
    }

    #[test]
    fn detuned_tone_is_not_locked() {
        // 0.3 % detuning: relative phase rotates ≈ 2π·0.003·20 ≈ 0.38 rad
        // per 20-period window — far above the drift gate.
        let f = 1e6;
        let dt = 1.0 / (f * 50.0);
        let vals: Vec<f64> = (0..120_000)
            .map(|k| (TAU * f * 1.003 * k as f64 * dt).cos())
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let r = lock_analysis(&s, f, &lock_opts()).unwrap();
        assert!(!r.locked, "max step {}", r.max_phase_step);
    }

    #[test]
    fn dead_signal_is_not_locked() {
        let f = 1e6;
        let dt = 1.0 / (f * 50.0);
        // Exponentially dying oscillation.
        let vals: Vec<f64> = (0..120_000)
            .map(|k| {
                let t = k as f64 * dt;
                (-t * 8e5).exp() * (TAU * f * t).cos()
            })
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let r = lock_analysis(&s, f, &lock_opts()).unwrap();
        assert!(!r.locked);
    }

    #[test]
    fn subharmonic_lock_wrapper() {
        let f_inj = 1.5e6;
        let f_osc = f_inj / 3.0;
        let dt = 1.0 / (f_osc * 60.0);
        let vals: Vec<f64> = (0..150_000)
            .map(|k| {
                let t = k as f64 * dt;
                // Locked oscillator with a small injection-frequency ripple.
                (TAU * f_osc * t + 0.5).cos() + 0.05 * (TAU * f_inj * t).cos()
            })
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        assert!(is_subharmonic_locked(&s, f_inj, 3, &lock_opts()).unwrap());
        assert!(is_subharmonic_locked(&s, 0.97 * f_inj, 3, &lock_opts()).is_ok());
        assert!(!is_subharmonic_locked(&s, 0.97 * f_inj, 3, &lock_opts()).unwrap());
        assert!(is_subharmonic_locked(&s, f_inj, 0, &lock_opts()).is_err());
    }

    #[test]
    fn beat_estimate_recovers_known_offset() {
        // A tone 800 Hz above the probe frequency slips 800 cycles/s.
        let f_probe = 1e6;
        let f_real = f_probe + 800.0;
        let dt = 1.0 / (f_probe * 50.0);
        let vals: Vec<f64> = (0..400_000)
            .map(|k| (std::f64::consts::TAU * f_real * k as f64 * dt).cos())
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let opts = LockOptions {
            windows: 16,
            periods_per_window: 20,
            ..LockOptions::default()
        };
        let beat = beat_frequency_estimate(&s, f_probe, &opts).unwrap();
        assert!((beat - 800.0).abs() < 10.0, "beat = {beat}");
    }

    #[test]
    fn beat_estimate_is_zero_under_lock() {
        let f = 1e6;
        let dt = 1.0 / (f * 50.0);
        let vals: Vec<f64> = (0..200_000)
            .map(|k| (std::f64::consts::TAU * f * k as f64 * dt + 0.4).cos())
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let beat = beat_frequency_estimate(&s, f, &LockOptions::default()).unwrap();
        assert!(beat.abs() < 1.0, "beat = {beat}");
    }

    #[test]
    fn too_short_view_is_rejected() {
        let f = 1e6;
        let dt = 1.0 / (f * 50.0);
        let vals: Vec<f64> = (0..1000).map(|k| (TAU * f * k as f64 * dt).cos()).collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        assert!(lock_analysis(&s, f, &lock_opts()).is_err());
        assert!(lock_analysis(&s, -1.0, &lock_opts()).is_err());
    }

    #[test]
    fn beat_note_from_pulling_is_rejected() {
        // Injection pulling produces a quasi-periodic waveform: model as a
        // tone whose phase advances then slips (sawtooth phase).
        let f = 1e6;
        let dt = 1.0 / (f * 50.0);
        let f_beat = 2.5e3;
        let vals: Vec<f64> = (0..200_000)
            .map(|k| {
                let t = k as f64 * dt;
                let slip = TAU * f_beat * t; // continuous phase rotation
                (TAU * f * t + slip).cos()
            })
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let r = lock_analysis(&s, f, &lock_opts()).unwrap();
        assert!(!r.locked);
    }
}
