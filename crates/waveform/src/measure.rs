//! Scalar measurements on sampled waveforms: amplitude, frequency, phasors,
//! settling detection.

use shil_numerics::Complex64;

use crate::{Result, Sampled, WaveformError};

/// Peak amplitude `(max − min)/2` over the view.
///
/// For a settled sinusoid this is the oscillation amplitude `A` of the
/// paper's describing-function analysis.
pub fn peak_amplitude(s: &Sampled<'_>) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in s.values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    0.5 * (hi - lo)
}

/// RMS value over the view (after removing the mean).
pub fn rms(s: &Sampled<'_>) -> f64 {
    let n = s.values.len() as f64;
    let mean: f64 = s.values.iter().sum::<f64>() / n;
    let ss: f64 = s.values.iter().map(|v| (v - mean) * (v - mean)).sum();
    (ss / n).sqrt()
}

/// Mean value over the view.
pub fn mean(s: &Sampled<'_>) -> f64 {
    s.values.iter().sum::<f64>() / s.values.len() as f64
}

/// Times of rising zero crossings of `v(t) − level`, each located by linear
/// interpolation between the bracketing samples.
pub fn rising_crossings(s: &Sampled<'_>, level: f64) -> Vec<f64> {
    let mut out = Vec::new();
    for (k, w) in s.values.windows(2).enumerate() {
        let (a, b) = (w[0] - level, w[1] - level);
        if a < 0.0 && b >= 0.0 {
            let frac = a / (a - b);
            out.push(s.time_at(k) + frac * s.dt);
        }
    }
    out
}

/// Estimates the fundamental frequency from interpolated rising zero
/// crossings of the mean-removed signal.
///
/// Averaging over all full cycles in the view gives sub-sample resolution
/// (the estimator error scales as `dt²/T·1/cycles` for smooth signals).
///
/// # Errors
///
/// Returns [`WaveformError::FeatureNotFound`] if the view contains fewer
/// than two rising crossings.
pub fn estimate_frequency(s: &Sampled<'_>) -> Result<f64> {
    let m = mean(s);
    let crossings = rising_crossings(s, m);
    if crossings.len() < 2 {
        return Err(WaveformError::FeatureNotFound(
            "fewer than two rising crossings".into(),
        ));
    }
    let cycles = (crossings.len() - 1) as f64;
    let span = crossings[crossings.len() - 1] - crossings[0];
    Ok(cycles / span)
}

/// Complex fundamental phasor of the signal at a known frequency:
/// `P = (2/N)·Σ v(tₖ)·e^{−j2πf·tₖ}`, so that `v(t) ≈ Re(P) cos(2πft) −
/// Im(P) sin(2πft) = |P|·cos(2πft + arg P)`.
///
/// The correlation window is truncated to an integer number of periods to
/// suppress spectral leakage; at least one full period must fit.
///
/// # Errors
///
/// Returns [`WaveformError::InvalidInput`] if less than one period of `f`
/// fits in the view.
pub fn phasor_at(s: &Sampled<'_>, freq_hz: f64) -> Result<Complex64> {
    // NaN-rejecting positivity check.
    if freq_hz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WaveformError::InvalidInput(format!(
            "frequency must be positive, got {freq_hz}"
        )));
    }
    let period = 1.0 / freq_hz;
    let samples_per_period = period / s.dt;
    let full_periods = (s.duration() / period).floor();
    if full_periods < 1.0 {
        return Err(WaveformError::InvalidInput(
            "view shorter than one period".into(),
        ));
    }
    let n_used = (full_periods * samples_per_period).round() as usize;
    let n_used = n_used.min(s.values.len());
    let m: f64 = s.values[..n_used].iter().sum::<f64>() / n_used as f64;
    let mut acc = Complex64::ZERO;
    for (k, &v) in s.values[..n_used].iter().enumerate() {
        let t = s.time_at(k);
        acc += Complex64::from_polar(v - m, -std::f64::consts::TAU * freq_hz * t);
    }
    Ok(acc * (2.0 / n_used as f64))
}

/// Detects whether the envelope has settled: the peak amplitude of the last
/// `tail_fraction` of the view differs from the preceding window of the same
/// length by less than `rel_tol`.
pub fn is_settled(s: &Sampled<'_>, tail_fraction: f64, rel_tol: f64) -> bool {
    let n = s.values.len();
    let tail = ((n as f64 * tail_fraction) as usize).clamp(2, n / 2);
    let last = Sampled {
        t0: 0.0,
        dt: s.dt,
        values: &s.values[n - tail..],
    };
    let prev = Sampled {
        t0: 0.0,
        dt: s.dt,
        values: &s.values[n - 2 * tail..n - tail],
    };
    let a1 = peak_amplitude(&last);
    let a0 = peak_amplitude(&prev);
    (a1 - a0).abs() <= rel_tol * a1.abs().max(1e-30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn sine(f: f64, amp: f64, phase: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| amp * (TAU * f * (k as f64 * dt) + phase).cos())
            .collect()
    }

    #[test]
    fn peak_amplitude_of_offset_sine() {
        let vals: Vec<f64> = sine(50.0, 2.0, 0.3, 1e-4, 2000)
            .iter()
            .map(|v| v + 5.0)
            .collect();
        let s = Sampled::new(0.0, 1e-4, &vals).unwrap();
        assert!((peak_amplitude(&s) - 2.0).abs() < 1e-3);
        assert!((mean(&s) - 5.0).abs() < 2e-2);
        assert!((rms(&s) - 2.0 / 2f64.sqrt()).abs() < 2e-3);
    }

    #[test]
    fn frequency_estimate_is_accurate() {
        let f = 503.3e3;
        let dt = 1.0 / (f * 187.3); // deliberately incommensurate sampling
        let vals = sine(f, 1.0, 0.7, dt, 50_000);
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let fe = estimate_frequency(&s).unwrap();
        assert!(((fe - f) / f).abs() < 1e-6, "estimated {fe}, expected {f}");
    }

    #[test]
    fn frequency_estimate_needs_crossings() {
        let vals = vec![1.0; 100];
        let s = Sampled::new(0.0, 1.0, &vals).unwrap();
        assert!(estimate_frequency(&s).is_err());
    }

    #[test]
    fn phasor_recovers_amplitude_and_phase() {
        let f = 1e6;
        let dt = 1.0 / (f * 64.0);
        for &phase in &[0.0, 0.4, -1.2, 2.9] {
            let vals = sine(f, 0.505, phase, dt, 64 * 25);
            let s = Sampled::new(0.0, dt, &vals).unwrap();
            let p = phasor_at(&s, f).unwrap();
            assert!((p.abs() - 0.505).abs() < 1e-6, "amp {}", p.abs());
            assert!(
                shil_numerics::angle_diff(p.arg(), phase).abs() < 1e-6,
                "phase {} vs {phase}",
                p.arg()
            );
        }
    }

    #[test]
    fn phasor_rejects_too_short_view() {
        let vals = sine(10.0, 1.0, 0.0, 1e-3, 50); // 0.05 s < one period
        let s = Sampled::new(0.0, 1e-3, &vals).unwrap();
        assert!(phasor_at(&s, 10.0).is_err());
        assert!(phasor_at(&s, 0.0).is_err());
    }

    #[test]
    fn phasor_with_dc_offset_is_unaffected() {
        let f = 1e3;
        let dt = 1.0 / (f * 40.0);
        let vals: Vec<f64> = sine(f, 1.5, 0.9, dt, 4000)
            .iter()
            .map(|v| v + 3.0)
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let p = phasor_at(&s, f).unwrap();
        assert!((p.abs() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn settling_detection() {
        // Exponentially growing then saturated envelope.
        let f = 100.0;
        let dt = 1e-4;
        let vals: Vec<f64> = (0..20_000)
            .map(|k| {
                let t = k as f64 * dt;
                let env = (1.0 - (-t * 8.0).exp()).min(1.0);
                env * (TAU * f * t).sin()
            })
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        assert!(is_settled(&s, 0.1, 0.01));
        // First quarter only: still growing.
        let head = Sampled::new(0.0, dt, &vals[..5000]).unwrap();
        assert!(!is_settled(&head, 0.25, 0.01));
    }

    #[test]
    fn rising_crossings_locations() {
        let f = 10.0;
        let dt = 1e-3;
        let vals: Vec<f64> = (0..1000)
            .map(|k| (TAU * f * (k as f64 * dt)).sin())
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let c = rising_crossings(&s, 0.0);
        // sin crosses upward at t = 0.1, 0.2, ... (excluding t = 0 itself).
        assert!(!c.is_empty());
        for (k, t) in c.iter().enumerate() {
            assert!((t - 0.1 * (k + 1) as f64).abs() < 1e-4, "t = {t}");
        }
    }
}
