//! SHIL state classification.
//!
//! For `n`-th sub-harmonic locking the paper shows (§VI-B4) that every lock
//! comes in `n` copies spaced by `2π/n` in phase. Figs. 15 and 19
//! demonstrate all three `n = 3` states by kicking the oscillator with
//! pulses and watching its phase relative to a *reference signal* at
//! `f_inj/n` that is phase-locked to the injection. This module reproduces
//! that measurement: window the waveform, extract the phase at the
//! sub-harmonic frequency, and quantize the phase difference into `n` bins.

use shil_numerics::wrap_angle;

use crate::measure::phasor_at;
use crate::{Result, Sampled, WaveformError};

/// One classified time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateWindow {
    /// Window center time (seconds).
    pub t_center: f64,
    /// Phase relative to the reference, radians in `(−π, π]`.
    pub relative_phase: f64,
    /// The state index `k ∈ 0..n`, i.e. the nearest `φ₀ + 2πk/n`.
    pub state: u32,
    /// Distance (radians) from the exact state phase — small when locked.
    pub phase_error: f64,
}

/// Result of a state-classification run.
#[derive(Debug, Clone, PartialEq)]
pub struct StateTrajectory {
    /// Sub-harmonic order `n`.
    pub n: u32,
    /// The base phase `φ₀` (state 0's relative phase, radians).
    pub base_phase: f64,
    /// Classified windows in time order.
    pub windows: Vec<StateWindow>,
}

impl StateTrajectory {
    /// Distinct states visited, in order of first appearance.
    pub fn visited_states(&self) -> Vec<u32> {
        let mut seen = Vec::new();
        for w in &self.windows {
            if !seen.contains(&w.state) {
                seen.push(w.state);
            }
        }
        seen
    }

    /// Times at which the classified state changes.
    pub fn transition_times(&self) -> Vec<f64> {
        self.windows
            .windows(2)
            .filter(|w| w[0].state != w[1].state)
            .map(|w| 0.5 * (w[0].t_center + w[1].t_center))
            .collect()
    }
}

/// Classifies the SHIL state over time.
///
/// The waveform is split into consecutive windows of `periods_per_window`
/// sub-harmonic periods. In each, the phase of the fundamental at
/// `f_injection/n` is measured and referenced to an ideal reference signal
/// `cos(2π(f_inj/n)·t)` (the paper's reference is any signal at `f_inj/n`
/// phase-locked to the injection — a pure cosine at that frequency is the
/// canonical choice). The first window defines state 0 (`base_phase`);
/// subsequent windows are assigned to the nearest of the `n` phases
/// `base_phase + 2πk/n`.
///
/// # Errors
///
/// - [`WaveformError::InvalidInput`] for `n = 0`, non-positive frequency, or
///   a view shorter than two windows.
pub fn classify_states(
    s: &Sampled<'_>,
    f_injection: f64,
    n: u32,
    periods_per_window: usize,
) -> Result<StateTrajectory> {
    if n == 0 {
        return Err(WaveformError::InvalidInput("n must be ≥ 1".into()));
    }
    // NaN-rejecting positivity check.
    if f_injection.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(WaveformError::InvalidInput(
            "injection frequency must be positive".into(),
        ));
    }
    let f_sub = f_injection / n as f64;
    let window_dur = periods_per_window as f64 / f_sub;
    let total = s.duration();
    let count = (total / window_dur).floor() as usize;
    if count < 2 {
        return Err(WaveformError::InvalidInput(format!(
            "view of {total:.3e}s holds fewer than two {window_dur:.3e}s windows"
        )));
    }

    let mut raw = Vec::with_capacity(count);
    for w in 0..count {
        let t0 = s.t0 + w as f64 * window_dur;
        let t1 = t0 + window_dur;
        let view = s.window(t0, t1)?;
        let p = phasor_at(&view, f_sub)?;
        // phasor_at measures phase relative to cos(2πf t) with t the
        // absolute sample times, which *is* the reference-signal phase.
        raw.push((0.5 * (t0 + t1), p.arg()));
    }

    let base_phase = raw[0].1;
    let sector = std::f64::consts::TAU / n as f64;
    let windows = raw
        .into_iter()
        .map(|(t_center, phi)| {
            let rel = wrap_angle(phi - base_phase);
            // Nearest multiple of 2π/n.
            let k_signed = (rel / sector).round() as i64;
            let state = k_signed.rem_euclid(n as i64) as u32;
            let phase_error = wrap_angle(rel - k_signed as f64 * sector);
            StateWindow {
                t_center,
                relative_phase: wrap_angle(phi),
                state,
                phase_error,
            }
        })
        .collect();
    Ok(StateTrajectory {
        n,
        base_phase,
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    /// Builds a locked sub-harmonic waveform whose phase jumps by
    /// `2π/3`-steps at the given times, imitating the pulse kicks of
    /// Fig. 15/19.
    fn three_state_waveform(f_inj: f64, dt: f64, t_stop: f64, jumps: &[(f64, f64)]) -> Vec<f64> {
        let f_sub = f_inj / 3.0;
        let n = (t_stop / dt) as usize;
        (0..n)
            .map(|k| {
                let t = k as f64 * dt;
                let mut phase = 0.4; // arbitrary lock phase
                for &(tj, dphi) in jumps {
                    if t >= tj {
                        phase += dphi;
                    }
                }
                (TAU * f_sub * t + phase).cos()
            })
            .collect()
    }

    #[test]
    fn all_three_states_are_observed() {
        let f_inj = 1.5e6;
        let dt = 1.0 / (f_inj / 3.0) / 64.0;
        let t_stop = 6e-3;
        let jumps = [(2e-3, TAU / 3.0), (4e-3, TAU / 3.0)];
        let vals = three_state_waveform(f_inj, dt, t_stop, &jumps);
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let traj = classify_states(&s, f_inj, 3, 40).unwrap();
        assert_eq!(traj.n, 3);
        assert_eq!(traj.visited_states(), vec![0, 1, 2]);
        let transitions = traj.transition_times();
        assert_eq!(transitions.len(), 2);
        assert!((transitions[0] - 2e-3).abs() < 3e-4);
        assert!((transitions[1] - 4e-3).abs() < 3e-4);
        // Away from transitions the phase error must be tiny (locked).
        for w in &traj.windows {
            if (w.t_center - 2e-3).abs() > 3e-4 && (w.t_center - 4e-3).abs() > 3e-4 {
                assert!(
                    w.phase_error.abs() < 0.05,
                    "error {} at {}",
                    w.phase_error,
                    w.t_center
                );
            }
        }
    }

    #[test]
    fn constant_phase_stays_in_state_zero() {
        let f_inj = 9e5;
        let dt = 1.0 / (f_inj / 3.0) / 50.0;
        let vals = three_state_waveform(f_inj, dt, 3e-3, &[]);
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let traj = classify_states(&s, f_inj, 3, 30).unwrap();
        assert_eq!(traj.visited_states(), vec![0]);
        assert!(traj.transition_times().is_empty());
    }

    #[test]
    fn backward_jump_wraps_to_last_state() {
        let f_inj = 1.5e6;
        let dt = 1.0 / (f_inj / 3.0) / 64.0;
        let jumps = [(2e-3, -TAU / 3.0)];
        let vals = three_state_waveform(f_inj, dt, 4e-3, &jumps);
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let traj = classify_states(&s, f_inj, 3, 40).unwrap();
        assert_eq!(traj.visited_states(), vec![0, 2]);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let vals = vec![0.0; 64];
        let s = Sampled::new(0.0, 1e-6, &vals).unwrap();
        assert!(classify_states(&s, 1e6, 0, 10).is_err());
        assert!(classify_states(&s, -1.0, 3, 10).is_err());
        assert!(classify_states(&s, 1e2, 3, 10).is_err()); // too short
    }

    #[test]
    fn n_equals_one_has_single_state() {
        let f = 1e6;
        let dt = 1.0 / (f * 40.0);
        let vals: Vec<f64> = (0..80_000)
            .map(|k| (TAU * f * k as f64 * dt + 1.0).cos())
            .collect();
        let s = Sampled::new(0.0, dt, &vals).unwrap();
        let traj = classify_states(&s, f, 1, 20).unwrap();
        assert_eq!(traj.visited_states(), vec![0]);
    }
}
