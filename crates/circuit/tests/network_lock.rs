//! Solver-tier identity for coupled-oscillator network lock analysis: the
//! GMRES + ILU(0) iterative tier must produce the same lock verdicts as
//! the sparse-LU reference on the same network — the CI-fast version of
//! the metronome example's acceptance gate.
//!
//! Two regimes are pinned. Below the iterative tier's direct-solve floor
//! the embedded LU makes the *waveforms* bit-identical, so everything
//! downstream agrees trivially; above the floor real restarted-GMRES
//! iterations decide every Newton step and only the certificate
//! (`‖b − A·x‖ ≤ rtol·‖b‖`) bounds the difference — the lock verdicts
//! still may not move.

use shil_circuit::analysis::{SolverKind, TranOptions};
use shil_circuit::mna::MnaStructure;
use shil_circuit::network::{
    CoupledNetwork, Coupling, NetworkLockOptions, NetworkLockReport, NetworkSpec, Topology,
};
use shil_numerics::iterative::GmresSolver;
use shil_waveform::lock::LockOptions;

/// Windows sized for the short CI transients (6 × 7 periods inside a
/// 48-period recorded tail, leaving margin for consensus detuning).
fn short_lock_options() -> NetworkLockOptions {
    NetworkLockOptions {
        lock: LockOptions {
            windows: 6,
            periods_per_window: 7,
            ..LockOptions::default()
        },
        ..NetworkLockOptions::default()
    }
}

fn detuned_ring(n: usize, spread: f64, ohms: f64) -> NetworkSpec {
    let detuning: Vec<f64> = (0..n)
        .map(|i| -spread + 2.0 * spread * i as f64 / (n - 1) as f64)
        .collect();
    NetworkSpec::new(n, Topology::Ring, Coupling::Resistive { ohms }).with_detuning(detuning)
}

fn run(net: &CoupledNetwork, solver: SolverKind) -> (TranOptions, NetworkLockReport) {
    let mut opts = net.transient_options(120.0, 48.0, 48);
    opts.solver = solver;
    let result = net.simulate(&opts).expect("transient");
    let report = net
        .probe_lock(&result, &short_lock_options())
        .expect("lock analysis");
    (opts, report)
}

fn assert_verdicts_identical(tag: &str, a: &NetworkLockReport, b: &NetworkLockReport) {
    assert_eq!(a.mutual_lock, b.mutual_lock, "{tag}: mutual verdict");
    assert_eq!(
        a.locked_fraction, b.locked_fraction,
        "{tag}: locked fraction"
    );
    for (oa, ob) in a.oscillators.iter().zip(&b.oscillators) {
        assert_eq!(oa.locked, ob.locked, "{tag}: oscillator {}", oa.index);
    }
    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!(
            (pa.a, pa.b, pa.locked),
            (pb.a, pb.b, pb.locked),
            "{tag}: pair ({}, {})",
            pa.a,
            pa.b
        );
    }
}

/// Below the direct-solve floor the iterative tier routes through its
/// embedded exact LU: waveforms — and therefore verdicts — bit-identical.
#[test]
fn network_small_ring_iterative_is_bit_identical_to_sparse() {
    let net = detuned_ring(6, 0.005, 2e3).build().expect("build");
    let unknowns = MnaStructure::new(&net.circuit).size();
    assert!(
        unknowns < GmresSolver::DIRECT_BELOW_DIM,
        "{unknowns} unknowns should sit below the direct floor"
    );
    let mut sp_opts = net.transient_options(120.0, 48.0, 48);
    sp_opts.solver = SolverKind::Sparse;
    let mut it_opts = sp_opts.clone();
    it_opts.solver = SolverKind::Iterative;
    let sp = net.simulate(&sp_opts).expect("sparse transient");
    let it = net.simulate(&it_opts).expect("iterative transient");
    for &probe in &net.probes {
        assert_eq!(
            sp.node_voltage(probe).unwrap(),
            it.node_voltage(probe).unwrap(),
            "waveform at node {probe} must be bit-identical below the direct floor"
        );
    }
    assert_verdicts_identical(
        "6-ring",
        &net.probe_lock(&sp, &short_lock_options()).unwrap(),
        &net.probe_lock(&it, &short_lock_options()).unwrap(),
    );
}

/// Above the floor real GMRES iterations serve the Newton steps; the lock
/// verdicts must not move, on either side of the synchronization
/// transition.
#[test]
fn network_large_ring_verdicts_match_across_solver_tiers() {
    for (ohms, expect_lock) in [(2e2, true), (3e5, false)] {
        let net = detuned_ring(33, 0.003, ohms).build().expect("build");
        let unknowns = MnaStructure::new(&net.circuit).size();
        assert!(
            unknowns >= GmresSolver::DIRECT_BELOW_DIM,
            "{unknowns} unknowns should exercise real GMRES"
        );
        let (_, sp) = run(&net, SolverKind::Sparse);
        let (_, it) = run(&net, SolverKind::Iterative);
        assert_eq!(
            sp.mutual_lock,
            expect_lock,
            "sparse reference at R_c = {ohms} should {} lock",
            if expect_lock { "" } else { "not" }
        );
        assert_verdicts_identical(&format!("33-ring at R_c = {ohms}"), &sp, &it);
    }
}
