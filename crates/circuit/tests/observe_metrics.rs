//! Cross-thread metric determinism for the sweep engine (loom-free: real
//! threads, exact assertions).
//!
//! The claim under test: every counter and every integer-valued histogram
//! published while `SweepEngine` fans a sweep across worker threads is
//! **identical** to the serial run's totals — same runs, same reports,
//! same exported numbers, regardless of interleaving. Wall-time
//! histograms are deterministic in sample count only.
//!
//! This file is its own test process, so enabling the process-wide
//! registry here cannot leak into other tests; the `#[test]`s still
//! serialize on a mutex because they share that one registry.

use std::sync::Mutex;

use shil_circuit::analysis::{SweepEngine, TranOptions};
use shil_circuit::{Circuit, IvCurve};
use shil_observe::Snapshot;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn oscillator_setup(freq_scale: &f64) -> (Circuit, TranOptions) {
    let (r, l, c) = (1000.0, 10e-6, 10e-9);
    let mut ckt = Circuit::new();
    let top = ckt.node("top");
    ckt.resistor(top, 0, r);
    ckt.inductor(top, 0, l * freq_scale);
    ckt.capacitor(top, 0, c);
    ckt.nonlinear(top, 0, IvCurve::tanh(-1e-3, 2.0 / (r * 1e-3)));
    let f0 = 1.0 / (std::f64::consts::TAU * (l * freq_scale * c).sqrt());
    let period = 1.0 / f0;
    let opts = TranOptions::new(period / 100.0, 4.0 * period)
        .use_ic()
        .with_ic(top, 1e-3);
    (ckt, opts)
}

/// Runs the reference sweep with `threads` workers against a clean global
/// registry; returns the metric snapshot and the sweep aggregate.
fn sweep_snapshot(threads: usize) -> (Snapshot, shil_circuit::SolveReport) {
    let scales: Vec<f64> = (0..6).map(|k| 0.8 + 0.08 * k as f64).collect();
    shil_observe::reset();
    let sweep =
        SweepEngine::new(Some(threads)).transient_sweep(&scales, |_, s| oscillator_setup(s));
    assert_eq!(sweep.ok_count(), scales.len());
    (shil_observe::snapshot(), sweep.aggregate)
}

#[test]
fn parallel_sweep_metrics_equal_serial_totals() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    shil_observe::set_enabled(true);
    let (serial, serial_agg) = sweep_snapshot(1);
    for threads in [2usize, 4, 8] {
        let (parallel, parallel_agg) = sweep_snapshot(threads);

        // Every counter, bit for bit: per-run transient reports are
        // deterministic, and counter addition commutes.
        assert_eq!(
            serial.counters, parallel.counters,
            "counters diverged at {threads} threads"
        );

        // Integer-valued histograms are fully deterministic: f64 sums of
        // integers below 2^53 are exact, so CAS ordering cannot matter.
        assert_eq!(
            serial.histogram("shil_sweep_run_attempts"),
            parallel.histogram("shil_sweep_run_attempts"),
            "run-attempts histogram diverged at {threads} threads"
        );

        // Wall-time histograms: deterministic in count, not in sum.
        for name in [
            "shil_sweep_item_seconds",
            "shil_circuit_tran_solve_seconds",
            "shil_sweep_seconds",
        ] {
            assert_eq!(
                serial.histogram(name).map(|h| h.count),
                parallel.histogram(name).map(|h| h.count),
                "{name} sample count diverged at {threads} threads"
            );
        }

        // The sweep aggregate is the same report either way…
        assert_eq!(serial_agg.attempts, parallel_agg.attempts);
        assert_eq!(serial_agg.factorizations, parallel_agg.factorizations);
        assert_eq!(serial_agg.reuses, parallel_agg.reuses);

        // …and the exported totals are exactly the aggregate's numbers
        // (the satellite invariant: report and metrics cannot disagree).
        assert_eq!(
            parallel.counter("shil_circuit_tran_attempts_total"),
            parallel_agg.attempts as u64
        );
        assert_eq!(
            parallel.counter("shil_circuit_tran_factorizations_total"),
            parallel_agg.factorizations as u64
        );
        assert_eq!(
            parallel.counter("shil_circuit_tran_reuses_total"),
            parallel_agg.reuses as u64
        );
        assert_eq!(parallel.gauge("shil_sweep_threads"), Some(threads as f64));
    }
    shil_observe::reset();
    shil_observe::set_enabled(false);
}

#[test]
fn disabled_registry_stays_empty_through_a_sweep() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    shil_observe::set_enabled(false);
    shil_observe::reset();
    let scales = [1.0f64, 1.1];
    let sweep = SweepEngine::new(Some(2)).transient_sweep(&scales, |_, s| oscillator_setup(s));
    assert_eq!(sweep.ok_count(), 2);
    let s = shil_observe::snapshot();
    assert!(
        s.counters.is_empty() && s.histograms.is_empty() && s.gauges.is_empty(),
        "disabled registry collected metrics: {s:?}"
    );
}

#[test]
fn sweep_failures_are_counted_without_poisoning_totals() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    shil_observe::set_enabled(true);
    shil_observe::reset();
    let items = [1.0f64, f64::NAN, 2.0];
    let sweep = SweepEngine::new(Some(2)).transient_sweep(&items, |_, &v| {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.vsource(n1, 0, shil_circuit::SourceWave::Dc(1.0));
        ckt.resistor(n1, 0, 1e3);
        let mut opts = TranOptions::new(1e-6, 1e-4);
        opts.dt *= v; // NaN for item 1
        (ckt, opts)
    });
    assert_eq!(sweep.ok_count(), 2);
    let s = shil_observe::snapshot();
    assert_eq!(s.counter("shil_sweep_items_total"), 3);
    assert_eq!(s.counter("shil_sweep_failures_total"), 1);
    assert_eq!(s.histogram("shil_sweep_run_attempts").unwrap().count, 2);
    assert_eq!(
        s.counter("shil_circuit_tran_attempts_total"),
        sweep.aggregate.attempts as u64
    );
    shil_observe::reset();
    shil_observe::set_enabled(false);
}
