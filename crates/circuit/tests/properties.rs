//! Property-based invariants for the circuit simulator.

use proptest::prelude::*;

use shil_circuit::analysis::{
    ac_impedance, operating_point, transient, AcOptions, OpOptions, TranOptions,
};
use shil_circuit::{Circuit, SourceWave};
use shil_numerics::Complex64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A random series resistor ladder solves to the analytic divider.
    #[test]
    fn resistor_ladder_matches_ohms_law(
        rs in prop::collection::vec(10.0f64..100e3, 2..6),
        vin in -20.0f64..20.0,
    ) {
        let mut ckt = Circuit::new();
        let top = ckt.node("n0");
        ckt.vsource(top, Circuit::GROUND, SourceWave::Dc(vin));
        let mut prev = top;
        let mut nodes = vec![top];
        for (k, &r) in rs.iter().enumerate() {
            let n = ckt.node(&format!("n{}", k + 1));
            ckt.resistor(prev, n, r);
            prev = n;
            nodes.push(n);
        }
        // Ground the far end through the last resistor's node.
        ckt.resistor(prev, Circuit::GROUND, 1e3);
        let total: f64 = rs.iter().sum::<f64>() + 1e3;
        let op = operating_point(&ckt, &OpOptions::default()).expect("linear network");
        // Voltage at each tap matches the analytic divider.
        let mut acc = 0.0;
        for (k, &r) in rs.iter().enumerate() {
            acc += r;
            let expect = vin * (1.0 - acc / total);
            let got = op.node_voltage(nodes[k + 1]);
            prop_assert!((got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "tap {k}: {got} vs {expect}");
        }
    }

    /// AC reciprocity: for a passive RLC two-port, the transfer impedance
    /// is symmetric (Z_ab measured from port a equals from port b).
    #[test]
    fn passive_network_ac_reciprocity(
        r1 in 10.0f64..10e3,
        r2 in 10.0f64..10e3,
        c in 1e-12f64..1e-6,
        l in 1e-9f64..1e-3,
        f in 1e3f64..1e8,
    ) {
        // Port a = node x, port b = node y, coupled through r2 ∥ l.
        let build = || {
            let mut ckt = Circuit::new();
            let x = ckt.node("x");
            let y = ckt.node("y");
            ckt.resistor(x, Circuit::GROUND, r1);
            ckt.capacitor(x, y, c);
            ckt.resistor(x, y, r2);
            ckt.inductor(y, Circuit::GROUND, l);
            (ckt, x, y)
        };
        // Transfer: inject at x, read v(y); then inject at y, read v(x).
        let (ckt, x, y) = build();
        let z_ax = ac_impedance(&ckt, x, Circuit::GROUND, &[f], &AcOptions::default())
            .expect("ac");
        let _ = z_ax;
        // Reciprocity check via superposition: Z_xy == Z_yx for the same
        // network. Compute both transfer impedances directly from two
        // single-injection solves.
        let transfer = |inject: usize, read: usize| -> Complex64 {
            let (ckt, _, _) = build();
            // Use ac_impedance with ports (inject, ground) but read a
            // different node: emulate by two-terminal measurements and
            // superposition: Z_t = (Z_(i+r) − Z_i − Z_r) / 2 ... instead,
            // use the direct identity with a dedicated helper below.
            direct_transfer(&ckt, inject, read, f)
        };
        let z_xy = transfer(x, y);
        let z_yx = transfer(y, x);
        prop_assert!((z_xy - z_yx).abs() < 1e-6 * (1.0 + z_xy.abs()),
            "Z_xy = {z_xy:?}, Z_yx = {z_yx:?}");
    }

    /// Trapezoidal transient of a driven RC matches the analytic charge
    /// curve for random time constants.
    #[test]
    fn rc_charge_curve_matches_analytic(
        r in 100.0f64..100e3,
        c in 1e-9f64..1e-6,
        vstep in 0.5f64..10.0,
    ) {
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, SourceWave::Dc(vstep));
        ckt.resistor(a, b, r);
        ckt.capacitor(b, Circuit::GROUND, c);
        let opts = TranOptions::new(tau / 200.0, 3.0 * tau).use_ic();
        let res = transient(&ckt, &opts).expect("transient");
        let v = res.node_voltage(b).expect("trace");
        for (k, &t) in res.time.iter().enumerate().step_by(50) {
            let expect = vstep * (1.0 - (-t / tau).exp());
            prop_assert!((v[k] - expect).abs() < 2e-3 * vstep,
                "t/tau = {}: {} vs {expect}", t / tau, v[k]);
        }
    }

    /// Energy bookkeeping: an undriven lossy tank only ever loses energy.
    #[test]
    fn lossy_tank_energy_decays_monotonically(
        r in 100.0f64..50e3,
        v0 in 0.1f64..5.0,
    ) {
        let (l, c) = (10e-6, 10e-9);
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.resistor(top, Circuit::GROUND, r);
        let l_id = ckt.inductor(top, Circuit::GROUND, l);
        ckt.capacitor(top, Circuit::GROUND, c);
        let f0 = 1.0 / (std::f64::consts::TAU * (l * c).sqrt());
        let opts = TranOptions::new(1.0 / f0 / 256.0, 10.0 / f0)
            .use_ic()
            .with_ic(top, v0);
        let res = transient(&ckt, &opts).expect("transient");
        let v = res.node_voltage(top).expect("v");
        let i = res.branch_current(&ckt, l_id).expect("i");
        // E = C v²/2 + L i²/2, sampled once per period.
        let per = 256;
        let mut last = f64::INFINITY;
        for k in (0..v.len()).step_by(per) {
            let e = 0.5 * c * v[k] * v[k] + 0.5 * l * i[k] * i[k];
            prop_assert!(e <= last * (1.0 + 1e-9), "energy grew: {e} > {last}");
            last = e;
        }
    }
}

/// Transfer impedance `v(read)/1A(inject)` at frequency `f`.
fn direct_transfer(ckt: &Circuit, inject: usize, read: usize, f: f64) -> Complex64 {
    // ac_impedance reads the same port it injects; emulate a transfer
    // measurement with the bilinear identity
    // Z_t = (Z(i∪r) − Z(i) − Z(r))/2 + cross terms — instead, simply use
    // three driving-point measurements: for a reciprocal network,
    // Z_t = (Z_joint − Z_i − Z_r)/−2 where Z_joint is measured between the
    // two ports.
    let z_ii =
        ac_impedance(ckt, inject, Circuit::GROUND, &[f], &AcOptions::default()).expect("ac")[0];
    let z_rr =
        ac_impedance(ckt, read, Circuit::GROUND, &[f], &AcOptions::default()).expect("ac")[0];
    let z_ir = ac_impedance(ckt, inject, read, &[f], &AcOptions::default()).expect("ac")[0];
    // Z_between = Z_ii + Z_rr − 2 Z_t  ⇒  Z_t = (Z_ii + Z_rr − Z_between)/2.
    (z_ii + z_rr - z_ir) * 0.5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The early-exit lock detector never confirms a lock on a
    /// deterministic quasi-periodic signal: a dominant tone offset from
    /// the sub-harmonic reference by more than the coprime-window aliasing
    /// bound (`tol/(2π·13)` of the reference, here ≈ 2.5e-4 — every drawn
    /// offset is ≥ 8× that), mixed with an incommensurate secondary tone.
    /// The full-horizon tail classifier must agree. This is the safety
    /// property the atlas engine's early-exit acceleration leans on.
    #[test]
    fn detector_never_false_locks_on_quasi_periodic_signals(
        delta_mag in 2e-3f64..0.45,
        sign in -1.0f64..1.0,
        amp in 0.1f64..2.0,
        ratio in 0.0f64..0.5,
        gamma in 2.0f64..7.3,
        phi1 in 0.0f64..std::f64::consts::TAU,
        phi2 in 0.0f64..std::f64::consts::TAU,
    ) {
        use shil_circuit::analysis::{
            classify_tail, LockVerdict, SteadyDetector, SteadyOptions,
        };
        let delta = delta_mag * sign.signum();
        let (f_ref, spp, periods) = (1.0f64, 24usize, 110usize);
        let tau = std::f64::consts::TAU;
        let dt = 1.0 / (f_ref * spp as f64);
        let n = periods * spp;
        let time: Vec<f64> = (0..=n).map(|k| k as f64 * dt).collect();
        let values: Vec<f64> = time
            .iter()
            .map(|&t| {
                amp * ((tau * f_ref * (1.0 + delta) * t + phi1).cos()
                    + ratio * (tau * f_ref * gamma * t + phi2).cos())
            })
            .collect();
        let sopts = SteadyOptions::for_subharmonic(f_ref);
        let mut det = SteadyDetector::new(sopts.clone()).unwrap();
        // Feed period by period, exactly as the chunked transient driver
        // does; an early `Unlocked` exit is fine, `Locked` never is.
        for p in 1..=periods {
            let end = (p * spp + 1).min(time.len());
            let v = det.evaluate(&time[..end], &values[..end]);
            prop_assert!(
                v != Some(LockVerdict::Locked),
                "false lock at Δ = {delta} after {p} periods"
            );
            if v.is_some() {
                break;
            }
        }
        prop_assert_eq!(classify_tail(&time, &values, &sopts), LockVerdict::Unlocked);
    }
}
