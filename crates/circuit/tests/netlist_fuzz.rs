//! Property tests: `netlist::parse` is total — it returns `Ok` or a
//! positioned `Err` for *any* input, and never panics. The serve layer
//! (and any tool ingesting user-supplied netlists) depends on this: a
//! malformed upload must become a 400 with line/column context, not a
//! worker crash.

use proptest::prelude::*;
use shil_circuit::netlist;

/// Characters weighted toward netlist syntax, so generated inputs exercise
/// the card parsers instead of dying at `unknown element type`. Includes
/// `K`, `X`, `.` and the letters of `.subckt`/`.ends` so mutual-inductance
/// cards and subcircuit blocks get fuzzed too.
const SYNTAX: &[u8] = b"RCLVIDQMGXK0123456789abkmnustcd().=-+* \t_eE";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..255, 0..256)) {
        // Raw bytes → lossy UTF-8: exercises control characters, invalid
        // sequences (as U+FFFD) and embedded newlines.
        let text = String::from_utf8_lossy(&bytes);
        let _ = netlist::parse(&text);
    }

    #[test]
    fn parse_never_panics_on_netlist_shaped_text(picks in prop::collection::vec(0usize..SYNTAX.len(), 0..200)) {
        let text: String = picks.iter().map(|&i| {
            let b = SYNTAX[i % SYNTAX.len()];
            if b == b'_' { '\n' } else { b as char }
        }).collect();
        let _ = netlist::parse(&text);
    }

    #[test]
    fn parse_errors_are_positioned(picks in prop::collection::vec(0usize..SYNTAX.len(), 1..120)) {
        let text: String = picks.iter().map(|&i| {
            let b = SYNTAX[i % SYNTAX.len()];
            if b == b'_' { '\n' } else { b as char }
        }).collect();
        if let Err(e) = netlist::parse(&text) {
            let msg = e.to_string();
            // Every parse diagnostic carries line/column context.
            prop_assert!(msg.contains("line ") && msg.contains(", col "), "unpositioned error: {msg}");
        }
    }

    #[test]
    fn parse_value_never_panics(bytes in prop::collection::vec(0u8..255, 0..24)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = netlist::parse_value(&text);
    }
}
