//! Solver effort and fallback diagnostics.
//!
//! Every analysis that can escalate — the operating point through its
//! gmin/source-stepping homotopies, the transient through recursive step
//! halving — records *how hard it had to work* in a [`SolveReport`]
//! attached to the result. A clean run reports one attempt and no
//! fallbacks; a report with entries in [`SolveReport::fallbacks`] tells the
//! caller the circuit is near the edge of what the solver handles, which
//! usually deserves a second look (tighter tolerances, better initial
//! conditions, smaller steps) even though the numbers returned are valid.

use std::fmt;
use std::time::Duration;

use shil_observe::Registry;

/// A fallback strategy an analysis resorted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FallbackKind {
    /// DC operating point: gmin stepping (shunt-conductance homotopy).
    GminStepping,
    /// DC operating point: source stepping (excitation ramp homotopy).
    SourceStepping,
    /// Transient: a step was rejected and retried at half the size.
    StepHalving,
}

impl fmt::Display for FallbackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackKind::GminStepping => write!(f, "gmin stepping"),
            FallbackKind::SourceStepping => write!(f, "source stepping"),
            FallbackKind::StepHalving => write!(f, "step halving"),
        }
    }
}

impl FallbackKind {
    /// Canonical counter name for this fallback strategy.
    fn metric_name(self) -> &'static str {
        match self {
            FallbackKind::GminStepping => "shil_circuit_fallback_gmin_total",
            FallbackKind::SourceStepping => "shil_circuit_fallback_source_total",
            FallbackKind::StepHalving => "shil_circuit_fallback_step_halving_total",
        }
    }
}

/// Which analysis a [`SolveReport`] describes — selects the canonical
/// metric names the report publishes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analysis {
    /// DC operating point.
    Op,
    /// Transient (which may absorb the effort of its initial OP solve).
    Tran,
}

/// One analysis' metric-name set; each variant of [`Analysis`] owns a
/// static instance so the publish path never allocates.
struct ReportMetricNames {
    solves: &'static str,
    attempts: &'static str,
    halvings: &'static str,
    factorizations: &'static str,
    reuses: &'static str,
    escalated: &'static str,
    solve_seconds: &'static str,
}

static OP_METRICS: ReportMetricNames = ReportMetricNames {
    solves: "shil_circuit_op_solves_total",
    attempts: "shil_circuit_op_attempts_total",
    halvings: "shil_circuit_op_halvings_total",
    factorizations: "shil_circuit_op_factorizations_total",
    reuses: "shil_circuit_op_reuses_total",
    escalated: "shil_circuit_op_escalated_total",
    solve_seconds: "shil_circuit_op_solve_seconds",
};

static TRAN_METRICS: ReportMetricNames = ReportMetricNames {
    solves: "shil_circuit_tran_solves_total",
    attempts: "shil_circuit_tran_attempts_total",
    halvings: "shil_circuit_tran_halvings_total",
    factorizations: "shil_circuit_tran_factorizations_total",
    reuses: "shil_circuit_tran_reuses_total",
    escalated: "shil_circuit_tran_escalated_total",
    solve_seconds: "shil_circuit_tran_solve_seconds",
};

impl Analysis {
    fn names(self) -> &'static ReportMetricNames {
        match self {
            Analysis::Op => &OP_METRICS,
            Analysis::Tran => &TRAN_METRICS,
        }
    }
}

/// How a solve went: attempts spent, fallbacks taken, wall time.
///
/// Returned attached to results (`OpSolution::report`,
/// `TranResult::report`) so that diagnostics travel with the numbers they
/// describe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveReport {
    /// Newton solves attempted, including failed ones (for the transient,
    /// one per time-step attempt, so retried steps count repeatedly).
    pub attempts: usize,
    /// Total step halvings performed (transient only; 0 for DC).
    pub halvings: usize,
    /// Each distinct fallback strategy that was engaged, in order.
    pub fallbacks: Vec<FallbackKind>,
    /// Newton iterations that paid a full LU refactorization (transient
    /// only; 0 for DC).
    pub factorizations: usize,
    /// Newton iterations served by reusing a previous factorization, with
    /// the iterative-refinement certificate passing (transient only).
    pub reuses: usize,
    /// Wall-clock time of the whole analysis.
    pub wall_time: Duration,
}

impl SolveReport {
    /// A fresh report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any fallback strategy was needed (the plain solver did not
    /// succeed on its own).
    pub fn escalated(&self) -> bool {
        !self.fallbacks.is_empty()
    }

    /// Records a fallback, deduplicating repeats: `fallbacks` lists each
    /// *strategy* once, while [`SolveReport::halvings`] and
    /// [`SolveReport::attempts`] carry the repeat counts.
    pub(crate) fn note_fallback(&mut self, kind: FallbackKind) {
        if !self.fallbacks.contains(&kind) {
            self.fallbacks.push(kind);
        }
    }

    /// Fraction of linear solves served by factorization reuse, in `[0, 1]`
    /// (0.0 when no solves were counted).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.factorizations + self.reuses;
        if total == 0 {
            0.0
        } else {
            self.reuses as f64 / total as f64
        }
    }

    /// Publishes this report onto `registry` under the canonical
    /// `shil_circuit_<analysis>_*` metric names (no-op while `registry`
    /// is disabled).
    ///
    /// This is the **only** bridge between reports and exported metrics:
    /// each analysis publishes its own report exactly once on success, so
    /// the exported totals are sums of precisely the numbers the per-run
    /// reports carry — the two can never disagree.
    pub fn publish_to(&self, registry: &Registry, analysis: Analysis) {
        if !registry.is_enabled() {
            return;
        }
        let n = analysis.names();
        registry.incr(n.solves);
        registry.counter_add(n.attempts, self.attempts as u64);
        registry.counter_add(n.halvings, self.halvings as u64);
        registry.counter_add(n.factorizations, self.factorizations as u64);
        registry.counter_add(n.reuses, self.reuses as u64);
        if self.escalated() {
            registry.incr(n.escalated);
        }
        for &k in &self.fallbacks {
            registry.incr(k.metric_name());
        }
        if analysis == Analysis::Tran {
            // The transient performs exactly one linear solve per Newton
            // iteration, so the factorization/reuse split *is* the
            // iteration count.
            registry.counter_add(
                "shil_circuit_tran_newton_iterations_total",
                (self.factorizations + self.reuses) as u64,
            );
        }
        registry.observe(n.solve_seconds, self.wall_time.as_secs_f64());
    }

    /// Publishes to the process-wide registry; see
    /// [`SolveReport::publish_to`].
    pub fn publish(&self, analysis: Analysis) {
        self.publish_to(shil_observe::global(), analysis);
    }

    /// Folds another report into this one: counters add, fallback
    /// strategies union (preserving first-seen order), wall times sum.
    ///
    /// Used by sweep drivers to aggregate per-run reports into one
    /// whole-sweep view.
    pub fn absorb(&mut self, other: &SolveReport) {
        self.attempts += other.attempts;
        self.halvings += other.halvings;
        self.factorizations += other.factorizations;
        self.reuses += other.reuses;
        self.wall_time += other.wall_time;
        for &k in &other.fallbacks {
            if !self.fallbacks.contains(&k) {
                self.fallbacks.push(k);
            }
        }
    }
}

impl fmt::Display for SolveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempt{} in {:.3?}",
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.wall_time
        )?;
        if self.halvings > 0 {
            write!(
                f,
                ", {} halving{}",
                self.halvings,
                if self.halvings == 1 { "" } else { "s" }
            )?;
        }
        if self.factorizations + self.reuses > 0 {
            write!(
                f,
                ", {} factorization{} / {} reuse{}",
                self.factorizations,
                if self.factorizations == 1 { "" } else { "s" },
                self.reuses,
                if self.reuses == 1 { "" } else { "s" }
            )?;
        }
        if self.fallbacks.is_empty() {
            write!(f, ", no fallbacks")
        } else {
            write!(f, ", fallbacks: ")?;
            for (i, k) in self.fallbacks.iter().enumerate() {
                if i > 0 {
                    write!(f, " → ")?;
                }
                write!(f, "{k}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_is_not_escalated() {
        let r = SolveReport {
            attempts: 1,
            ..Default::default()
        };
        assert!(!r.escalated());
        let s = r.to_string();
        assert!(s.contains("1 attempt"), "{s}");
        assert!(s.contains("no fallbacks"), "{s}");
    }

    #[test]
    fn absorb_sums_counters_and_unions_fallbacks() {
        let mut total = SolveReport {
            attempts: 3,
            halvings: 1,
            fallbacks: vec![FallbackKind::StepHalving],
            factorizations: 10,
            reuses: 5,
            wall_time: Duration::from_millis(20),
        };
        let other = SolveReport {
            attempts: 2,
            halvings: 0,
            fallbacks: vec![FallbackKind::StepHalving, FallbackKind::GminStepping],
            factorizations: 4,
            reuses: 12,
            wall_time: Duration::from_millis(5),
        };
        total.absorb(&other);
        assert_eq!(total.attempts, 5);
        assert_eq!(total.halvings, 1);
        assert_eq!(total.factorizations, 14);
        assert_eq!(total.reuses, 17);
        assert_eq!(total.wall_time, Duration::from_millis(25));
        assert_eq!(
            total.fallbacks,
            vec![FallbackKind::StepHalving, FallbackKind::GminStepping]
        );
        assert!((total.reuse_rate() - 17.0 / 31.0).abs() < 1e-15);
    }

    #[test]
    fn reuse_rate_handles_zero_counts() {
        assert_eq!(SolveReport::new().reuse_rate(), 0.0);
        let s = SolveReport {
            factorizations: 1,
            reuses: 3,
            ..Default::default()
        }
        .to_string();
        assert!(s.contains("1 factorization / 3 reuses"), "{s}");
    }

    #[test]
    fn published_metrics_equal_report_fields_exactly() {
        let registry = Registry::new(true);
        let r = SolveReport {
            attempts: 7,
            halvings: 2,
            fallbacks: vec![FallbackKind::StepHalving, FallbackKind::GminStepping],
            factorizations: 11,
            reuses: 30,
            wall_time: Duration::from_millis(125),
        };
        r.publish_to(&registry, Analysis::Tran);
        let s = registry.snapshot();
        assert_eq!(s.counter("shil_circuit_tran_solves_total"), 1);
        assert_eq!(
            s.counter("shil_circuit_tran_attempts_total"),
            r.attempts as u64
        );
        assert_eq!(
            s.counter("shil_circuit_tran_halvings_total"),
            r.halvings as u64
        );
        assert_eq!(
            s.counter("shil_circuit_tran_factorizations_total"),
            r.factorizations as u64
        );
        assert_eq!(s.counter("shil_circuit_tran_reuses_total"), r.reuses as u64);
        assert_eq!(
            s.counter("shil_circuit_tran_newton_iterations_total"),
            (r.factorizations + r.reuses) as u64
        );
        assert_eq!(s.counter("shil_circuit_tran_escalated_total"), 1);
        assert_eq!(s.counter("shil_circuit_fallback_step_halving_total"), 1);
        assert_eq!(s.counter("shil_circuit_fallback_gmin_total"), 1);
        let h = s.histogram("shil_circuit_tran_solve_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, r.wall_time.as_secs_f64());
    }

    #[test]
    fn publishing_repeatedly_sums_like_absorb() {
        // The exported totals of N individual publishes must equal one
        // publish of the absorbed aggregate — the invariant that keeps
        // sweep aggregates and exported metrics in agreement.
        let per_run = Registry::new(true);
        let absorbed = Registry::new(true);
        let reports = [
            SolveReport {
                attempts: 3,
                factorizations: 5,
                reuses: 9,
                ..Default::default()
            },
            SolveReport {
                attempts: 4,
                halvings: 1,
                fallbacks: vec![FallbackKind::StepHalving],
                factorizations: 2,
                reuses: 20,
                ..Default::default()
            },
        ];
        let mut total = SolveReport::new();
        for r in &reports {
            r.publish_to(&per_run, Analysis::Tran);
            total.absorb(r);
        }
        total.publish_to(&absorbed, Analysis::Tran);
        let (a, b) = (per_run.snapshot(), absorbed.snapshot());
        for name in [
            "shil_circuit_tran_attempts_total",
            "shil_circuit_tran_halvings_total",
            "shil_circuit_tran_factorizations_total",
            "shil_circuit_tran_reuses_total",
            "shil_circuit_tran_newton_iterations_total",
            "shil_circuit_fallback_step_halving_total",
        ] {
            assert_eq!(a.counter(name), b.counter(name), "{name}");
        }
    }

    #[test]
    fn disabled_registry_receives_nothing_from_publish() {
        let registry = Registry::new(false);
        SolveReport {
            attempts: 5,
            ..Default::default()
        }
        .publish_to(&registry, Analysis::Op);
        assert!(registry.snapshot().counters.is_empty());
    }

    #[test]
    fn op_and_tran_publish_under_distinct_names() {
        let registry = Registry::new(true);
        let r = SolveReport {
            attempts: 2,
            ..Default::default()
        };
        r.publish_to(&registry, Analysis::Op);
        r.publish_to(&registry, Analysis::Tran);
        let s = registry.snapshot();
        assert_eq!(s.counter("shil_circuit_op_attempts_total"), 2);
        assert_eq!(s.counter("shil_circuit_tran_attempts_total"), 2);
    }

    #[test]
    fn fallbacks_deduplicate_but_counters_accumulate() {
        let mut r = SolveReport::new();
        r.note_fallback(FallbackKind::StepHalving);
        r.note_fallback(FallbackKind::StepHalving);
        r.note_fallback(FallbackKind::GminStepping);
        r.halvings = 5;
        assert_eq!(
            r.fallbacks,
            vec![FallbackKind::StepHalving, FallbackKind::GminStepping]
        );
        assert!(r.escalated());
        let s = r.to_string();
        assert!(s.contains("5 halvings"), "{s}");
        assert!(s.contains("step halving"), "{s}");
        assert!(s.contains("gmin stepping"), "{s}");
    }
}
