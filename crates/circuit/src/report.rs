//! Solver effort and fallback diagnostics.
//!
//! Every analysis that can escalate — the operating point through its
//! gmin/source-stepping homotopies, the transient through recursive step
//! halving — records *how hard it had to work* in a [`SolveReport`]
//! attached to the result. A clean run reports one attempt and no
//! fallbacks; a report with entries in [`SolveReport::fallbacks`] tells the
//! caller the circuit is near the edge of what the solver handles, which
//! usually deserves a second look (tighter tolerances, better initial
//! conditions, smaller steps) even though the numbers returned are valid.

use std::fmt;
use std::time::Duration;

/// A fallback strategy an analysis resorted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FallbackKind {
    /// DC operating point: gmin stepping (shunt-conductance homotopy).
    GminStepping,
    /// DC operating point: source stepping (excitation ramp homotopy).
    SourceStepping,
    /// Transient: a step was rejected and retried at half the size.
    StepHalving,
}

impl fmt::Display for FallbackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackKind::GminStepping => write!(f, "gmin stepping"),
            FallbackKind::SourceStepping => write!(f, "source stepping"),
            FallbackKind::StepHalving => write!(f, "step halving"),
        }
    }
}

/// How a solve went: attempts spent, fallbacks taken, wall time.
///
/// Returned attached to results (`OpSolution::report`,
/// `TranResult::report`) so that diagnostics travel with the numbers they
/// describe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveReport {
    /// Newton solves attempted, including failed ones (for the transient,
    /// one per time-step attempt, so retried steps count repeatedly).
    pub attempts: usize,
    /// Total step halvings performed (transient only; 0 for DC).
    pub halvings: usize,
    /// Each distinct fallback strategy that was engaged, in order.
    pub fallbacks: Vec<FallbackKind>,
    /// Newton iterations that paid a full LU refactorization (transient
    /// only; 0 for DC).
    pub factorizations: usize,
    /// Newton iterations served by reusing a previous factorization, with
    /// the iterative-refinement certificate passing (transient only).
    pub reuses: usize,
    /// Wall-clock time of the whole analysis.
    pub wall_time: Duration,
}

impl SolveReport {
    /// A fresh report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any fallback strategy was needed (the plain solver did not
    /// succeed on its own).
    pub fn escalated(&self) -> bool {
        !self.fallbacks.is_empty()
    }

    /// Records a fallback, deduplicating repeats: `fallbacks` lists each
    /// *strategy* once, while [`SolveReport::halvings`] and
    /// [`SolveReport::attempts`] carry the repeat counts.
    pub(crate) fn note_fallback(&mut self, kind: FallbackKind) {
        if !self.fallbacks.contains(&kind) {
            self.fallbacks.push(kind);
        }
    }

    /// Fraction of linear solves served by factorization reuse, in `[0, 1]`
    /// (0.0 when no solves were counted).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.factorizations + self.reuses;
        if total == 0 {
            0.0
        } else {
            self.reuses as f64 / total as f64
        }
    }

    /// Folds another report into this one: counters add, fallback
    /// strategies union (preserving first-seen order), wall times sum.
    ///
    /// Used by sweep drivers to aggregate per-run reports into one
    /// whole-sweep view.
    pub fn absorb(&mut self, other: &SolveReport) {
        self.attempts += other.attempts;
        self.halvings += other.halvings;
        self.factorizations += other.factorizations;
        self.reuses += other.reuses;
        self.wall_time += other.wall_time;
        for &k in &other.fallbacks {
            if !self.fallbacks.contains(&k) {
                self.fallbacks.push(k);
            }
        }
    }
}

impl fmt::Display for SolveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempt{} in {:.3?}",
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.wall_time
        )?;
        if self.halvings > 0 {
            write!(
                f,
                ", {} halving{}",
                self.halvings,
                if self.halvings == 1 { "" } else { "s" }
            )?;
        }
        if self.factorizations + self.reuses > 0 {
            write!(
                f,
                ", {} factorization{} / {} reuse{}",
                self.factorizations,
                if self.factorizations == 1 { "" } else { "s" },
                self.reuses,
                if self.reuses == 1 { "" } else { "s" }
            )?;
        }
        if self.fallbacks.is_empty() {
            write!(f, ", no fallbacks")
        } else {
            write!(f, ", fallbacks: ")?;
            for (i, k) in self.fallbacks.iter().enumerate() {
                if i > 0 {
                    write!(f, " → ")?;
                }
                write!(f, "{k}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_is_not_escalated() {
        let r = SolveReport {
            attempts: 1,
            ..Default::default()
        };
        assert!(!r.escalated());
        let s = r.to_string();
        assert!(s.contains("1 attempt"), "{s}");
        assert!(s.contains("no fallbacks"), "{s}");
    }

    #[test]
    fn absorb_sums_counters_and_unions_fallbacks() {
        let mut total = SolveReport {
            attempts: 3,
            halvings: 1,
            fallbacks: vec![FallbackKind::StepHalving],
            factorizations: 10,
            reuses: 5,
            wall_time: Duration::from_millis(20),
        };
        let other = SolveReport {
            attempts: 2,
            halvings: 0,
            fallbacks: vec![FallbackKind::StepHalving, FallbackKind::GminStepping],
            factorizations: 4,
            reuses: 12,
            wall_time: Duration::from_millis(5),
        };
        total.absorb(&other);
        assert_eq!(total.attempts, 5);
        assert_eq!(total.halvings, 1);
        assert_eq!(total.factorizations, 14);
        assert_eq!(total.reuses, 17);
        assert_eq!(total.wall_time, Duration::from_millis(25));
        assert_eq!(
            total.fallbacks,
            vec![FallbackKind::StepHalving, FallbackKind::GminStepping]
        );
        assert!((total.reuse_rate() - 17.0 / 31.0).abs() < 1e-15);
    }

    #[test]
    fn reuse_rate_handles_zero_counts() {
        assert_eq!(SolveReport::new().reuse_rate(), 0.0);
        let s = SolveReport {
            factorizations: 1,
            reuses: 3,
            ..Default::default()
        }
        .to_string();
        assert!(s.contains("1 factorization / 3 reuses"), "{s}");
    }

    #[test]
    fn fallbacks_deduplicate_but_counters_accumulate() {
        let mut r = SolveReport::new();
        r.note_fallback(FallbackKind::StepHalving);
        r.note_fallback(FallbackKind::StepHalving);
        r.note_fallback(FallbackKind::GminStepping);
        r.halvings = 5;
        assert_eq!(
            r.fallbacks,
            vec![FallbackKind::StepHalving, FallbackKind::GminStepping]
        );
        assert!(r.escalated());
        let s = r.to_string();
        assert!(s.contains("5 halvings"), "{s}");
        assert!(s.contains("step halving"), "{s}");
        assert!(s.contains("gmin stepping"), "{s}");
    }
}
