//! Netlist construction.

use std::collections::HashMap;

use crate::device::{BjtModel, BjtPolarity, Device, MosPolarity, MosfetModel};
use crate::error::CircuitError;
use crate::iv::IvCurve;
use crate::wave::SourceWave;

/// Index of a circuit node. Node `0` is always ground.
pub type NodeId = usize;

/// Handle to a device within a [`Circuit`], returned by the `add_*` methods.
///
/// Device ids are needed to read branch currents from analysis results and
/// to designate sweep variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// The raw index of this device in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A circuit under construction: named nodes plus a device list.
///
/// ```
/// use shil_circuit::{Circuit, SourceWave};
///
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node("vdd");
/// ckt.vsource(vdd, Circuit::GROUND, SourceWave::Dc(5.0));
/// ckt.resistor(vdd, Circuit::GROUND, 1e3);
/// assert_eq!(ckt.num_nodes(), 2); // ground + vdd
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    devices: Vec<Device>,
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
}

impl Circuit {
    /// The ground node (always node 0).
    pub const GROUND: NodeId = 0;

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            devices: Vec::new(),
            node_names: Vec::new(),
            name_to_node: HashMap::new(),
        };
        c.node_names.push("0".to_string());
        c.name_to_node.insert("0".to_string(), 0);
        c
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = self.node_names.len();
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Looks up a node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(name).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id]
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// The devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The device behind a [`DeviceId`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownDevice`] for stale ids.
    pub fn device(&self, id: DeviceId) -> Result<&Device, CircuitError> {
        self.devices
            .get(id.0)
            .ok_or(CircuitError::UnknownDevice { device: id.0 })
    }

    /// Replaces the waveform of a voltage or current source.
    ///
    /// Used by the DC sweep and by experiment drivers that re-run a circuit
    /// with different injection amplitudes/frequencies.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidRequest`] if the device is not an
    /// independent source, or [`CircuitError::UnknownDevice`].
    pub fn set_source_wave(&mut self, id: DeviceId, wave: SourceWave) -> Result<(), CircuitError> {
        match self.devices.get_mut(id.0) {
            Some(Device::Vsource { wave: w, .. }) | Some(Device::Isource { wave: w, .. }) => {
                *w = wave;
                Ok(())
            }
            Some(_) => Err(CircuitError::InvalidRequest(
                "set_source_wave target is not an independent source".into(),
            )),
            None => Err(CircuitError::UnknownDevice { device: id.0 }),
        }
    }

    /// Replaces the injection waveform of an [`Device::InjectedNonlinear`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidRequest`] for other device kinds or
    /// [`CircuitError::UnknownDevice`].
    pub fn set_injection_wave(
        &mut self,
        id: DeviceId,
        wave: SourceWave,
    ) -> Result<(), CircuitError> {
        match self.devices.get_mut(id.0) {
            Some(Device::InjectedNonlinear { injection, .. }) => {
                *injection = wave;
                Ok(())
            }
            Some(_) => Err(CircuitError::InvalidRequest(
                "set_injection_wave target is not an injected nonlinearity".into(),
            )),
            None => Err(CircuitError::UnknownDevice { device: id.0 }),
        }
    }

    /// Returns a copy of the circuit with every independent source waveform
    /// (voltage and current sources, plus series-injection waveforms of
    /// [`Device::InjectedNonlinear`]) multiplied by `factor`.
    ///
    /// This is the sweep-variable transform used by `shil-cli sweep` and the
    /// perf harnesses: one netlist, many drive strengths. Passive devices and
    /// nonlinearity curves are untouched.
    #[must_use]
    pub fn scale_sources(&self, factor: f64) -> Circuit {
        let mut scaled = self.clone();
        for d in &mut scaled.devices {
            match d {
                Device::Vsource { wave, .. } | Device::Isource { wave, .. } => {
                    *wave = wave.scaled(factor);
                }
                Device::InjectedNonlinear { injection, .. } => {
                    *injection = injection.scaled(factor);
                }
                _ => {}
            }
        }
        scaled
    }

    fn push(&mut self, d: Device) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.devices.push(d);
        id
    }

    fn check_node(&self, n: NodeId) -> Result<(), CircuitError> {
        if n < self.num_nodes() {
            Ok(())
        } else {
            Err(CircuitError::UnknownNode { node: n })
        }
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive or the nodes are unknown —
    /// netlist construction errors are programming errors.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> DeviceId {
        assert!(ohms > 0.0, "resistance must be positive, got {ohms}");
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive or the nodes are unknown.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> DeviceId {
        assert!(farads > 0.0, "capacitance must be positive, got {farads}");
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::Capacitor { a, b, farads })
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not strictly positive or the nodes are unknown.
    pub fn inductor(&mut self, a: NodeId, b: NodeId, henries: f64) -> DeviceId {
        assert!(henries > 0.0, "inductance must be positive, got {henries}");
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::Inductor { a, b, henries })
    }

    /// Adds an independent voltage source (`a` is the positive terminal).
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn vsource(&mut self, a: NodeId, b: NodeId, wave: SourceWave) -> DeviceId {
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::Vsource { a, b, wave })
    }

    /// Adds an independent current source driving current from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn isource(&mut self, a: NodeId, b: NodeId, wave: SourceWave) -> DeviceId {
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::Isource { a, b, wave })
    }

    /// Adds a junction diode (anode `a`, cathode `b`).
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive or the nodes are unknown.
    pub fn diode(
        &mut self,
        a: NodeId,
        b: NodeId,
        saturation_current: f64,
        ideality: f64,
    ) -> DeviceId {
        assert!(saturation_current > 0.0, "Is must be positive");
        assert!(ideality > 0.0, "ideality must be positive");
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::Diode {
            a,
            b,
            saturation_current,
            ideality,
        })
    }

    /// Adds an NPN bipolar transistor (collector, base, emitter).
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn npn(&mut self, c: NodeId, b: NodeId, e: NodeId, model: BjtModel) -> DeviceId {
        for n in [c, b, e] {
            self.check_node(n).expect("known node");
        }
        self.push(Device::Bjt {
            c,
            b,
            e,
            model,
            polarity: BjtPolarity::Npn,
        })
    }

    /// Adds a PNP bipolar transistor (collector, base, emitter).
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn pnp(&mut self, c: NodeId, b: NodeId, e: NodeId, model: BjtModel) -> DeviceId {
        for n in [c, b, e] {
            self.check_node(n).expect("known node");
        }
        self.push(Device::Bjt {
            c,
            b,
            e,
            model,
            polarity: BjtPolarity::Pnp,
        })
    }

    /// Adds an N-channel MOSFET (drain, gate, source; bulk at source).
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn nmos(&mut self, d: NodeId, g: NodeId, s: NodeId, model: MosfetModel) -> DeviceId {
        for n in [d, g, s] {
            self.check_node(n).expect("known node");
        }
        self.push(Device::Mosfet {
            d,
            g,
            s,
            model,
            polarity: MosPolarity::Nmos,
        })
    }

    /// Adds a P-channel MOSFET (drain, gate, source; bulk at source).
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn pmos(&mut self, d: NodeId, g: NodeId, s: NodeId, model: MosfetModel) -> DeviceId {
        for n in [d, g, s] {
            self.check_node(n).expect("known node");
        }
        self.push(Device::Mosfet {
            d,
            g,
            s,
            model,
            polarity: MosPolarity::Pmos,
        })
    }

    /// Adds a memoryless nonlinear resistor `i = f(v_a − v_b)`.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn nonlinear(&mut self, a: NodeId, b: NodeId, curve: IvCurve) -> DeviceId {
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::Nonlinear { a, b, curve })
    }

    /// Couples two existing inductors with mutual inductance
    /// `M = k·√(L1·L2)`.
    ///
    /// # Panics
    ///
    /// Panics if either id is not an [`Device::Inductor`], if the two ids
    /// coincide, or if `k` is outside `0 < |k| < 1` — a passivity
    /// requirement (`|k| = 1` makes the inductance matrix singular).
    pub fn mutual(&mut self, l1: DeviceId, l2: DeviceId, k: f64) -> DeviceId {
        assert!(
            matches!(self.devices.get(l1.0), Some(Device::Inductor { .. })),
            "mutual coupling target {} is not an inductor",
            l1.0
        );
        assert!(
            matches!(self.devices.get(l2.0), Some(Device::Inductor { .. })),
            "mutual coupling target {} is not an inductor",
            l2.0
        );
        assert!(l1 != l2, "cannot couple an inductor to itself");
        assert!(
            k.abs() > 0.0 && k.abs() < 1.0,
            "coupling coefficient must satisfy 0 < |k| < 1, got {k}"
        );
        self.push(Device::MutualInductance {
            l1: l1.0,
            l2: l2.0,
            k,
        })
    }

    /// Adds a series-injection nonlinear element
    /// `i = f(v_a − v_b + v_inj(t))` — the paper's SHIL topology.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unknown.
    pub fn injected_nonlinear(
        &mut self,
        a: NodeId,
        b: NodeId,
        curve: IvCurve,
        injection: SourceWave,
    ) -> DeviceId {
        self.check_node(a).expect("known node");
        self.check_node(b).expect("known node");
        self.push(Device::InjectedNonlinear {
            a,
            b,
            curve,
            injection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("missing"), None);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node_name(Circuit::GROUND), "0");
    }

    #[test]
    fn device_ids_are_sequential() {
        let mut c = Circuit::new();
        let n = c.node("n");
        let r = c.resistor(n, 0, 50.0);
        let v = c.vsource(n, 0, SourceWave::Dc(1.0));
        assert_eq!(r.index(), 0);
        assert_eq!(v.index(), 1);
        assert!(c.device(r).is_ok());
        assert!(c.device(DeviceId(99)).is_err());
    }

    #[test]
    fn set_source_wave_guards_kind() {
        let mut c = Circuit::new();
        let n = c.node("n");
        let r = c.resistor(n, 0, 50.0);
        let v = c.vsource(n, 0, SourceWave::Dc(1.0));
        assert!(c.set_source_wave(v, SourceWave::Dc(2.0)).is_ok());
        assert!(c.set_source_wave(r, SourceWave::Dc(2.0)).is_err());
    }

    #[test]
    fn set_injection_wave_guards_kind() {
        let mut c = Circuit::new();
        let n = c.node("n");
        let inj = c.injected_nonlinear(n, 0, IvCurve::tanh(-1e-3, 20.0), SourceWave::Dc(0.0));
        let r = c.resistor(n, 0, 50.0);
        assert!(c
            .set_injection_wave(inj, SourceWave::sine(0.03, 1e6, 0.0))
            .is_ok());
        assert!(c.set_injection_wave(r, SourceWave::Dc(0.0)).is_err());
    }

    #[test]
    fn scale_sources_touches_only_sources() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, 0, 50.0);
        let v = c.vsource(n, 0, SourceWave::Dc(1.0));
        let i = c.isource(n, 0, SourceWave::sine(2e-3, 1e6, 0.0));
        let inj = c.injected_nonlinear(n, 0, IvCurve::tanh(-1e-3, 20.0), SourceWave::Dc(0.5));
        let s = c.scale_sources(3.0);
        assert!(matches!(
            s.device(v).unwrap(),
            Device::Vsource { wave: SourceWave::Dc(x), .. } if *x == 3.0
        ));
        assert!(matches!(
            s.device(i).unwrap(),
            Device::Isource { wave: SourceWave::Sin { amplitude, .. }, .. } if *amplitude == 6e-3
        ));
        assert!(matches!(
            s.device(inj).unwrap(),
            Device::InjectedNonlinear { injection: SourceWave::Dc(x), .. } if *x == 1.5
        ));
        assert!(matches!(
            s.devices()[0],
            Device::Resistor { ohms, .. } if ohms == 50.0
        ));
        // The original is untouched.
        assert!(matches!(
            c.device(v).unwrap(),
            Device::Vsource { wave: SourceWave::Dc(x), .. } if *x == 1.0
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resistor_rejects_zero_ohms() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, 0, 0.0);
    }
}
