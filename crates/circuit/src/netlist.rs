//! SPICE-flavoured text netlists.
//!
//! A compact, line-oriented format so circuits can live in files and test
//! vectors instead of Rust code. The first letter of each element name
//! selects the device, as in SPICE:
//!
//! ```text
//! * cross-coupled pair with a tank (comment lines start with '*')
//! V1 vdd 0 DC 5
//! Q1 ncl ncr ne IS=1e-12 BF=100 BR=1
//! Q2 ncr ncl ne IS=1e-12 BF=100 BR=1
//! I1 ne 0 DC 1m
//! L1 ncl vdd 5u
//! L2 tb  vdd 5u
//! R1 ncl tb 1.2k
//! C1 ncl tb 10n
//! V2 tb ncr SIN(0 0.06 1.5meg 0 0)
//! .end
//! ```
//!
//! Supported cards:
//!
//! | card | device |
//! |---|---|
//! | `Rxxx a b value` | resistor |
//! | `Cxxx a b value` | capacitor |
//! | `Lxxx a b value` | inductor |
//! | `Vxxx a b DC v` / `SIN(off amp freq delay phase)` / `PULSE(v1 v2 delay rise fall width period)` | voltage source |
//! | `Ixxx a b …` (same waveforms) | current source |
//! | `Dxxx a k [IS=…] [N=…]` | junction diode |
//! | `Qxxx c b e [IS=…] [BF=…] [BR=…] [PNP]` | Ebers–Moll BJT |
//! | `Mxxx d g s [VTH=…] [KP=…] [WL=…] [LAMBDA=…] [PMOS]` | level-1 MOSFET |
//! | `Gxxx a b TANH(i_sat gain)` / `POLY(c0 c1 …)` / `TD()` | nonlinear resistor |
//! | `Kxxx Lyyy Lzzz k` | mutual inductance between two inductor cards |
//! | `.subckt name p1 [p2 …]` … `.ends` | subcircuit definition |
//! | `Xinst n1 [n2 …] name` | subcircuit instantiation |
//!
//! Values accept engineering suffixes `f p n u m k meg g t` (case
//! insensitive). Node `0` is ground; all other node names are arbitrary
//! identifiers. Subcircuit-local nodes and element names are scoped by
//! prefixing the instance name (`X1.tank`); element names referenced by
//! `K` cards are matched case-insensitively within the enclosing scope.

use std::collections::HashMap;

use crate::circuit::{Circuit, DeviceId, NodeId};
use crate::device::{BjtModel, MosfetModel};
use crate::error::CircuitError;
use crate::iv::{IvCurve, TunnelDiodeModel};
use crate::wave::SourceWave;

/// Parses an engineering-notation value like `10n`, `1.5meg` or `4.7k`.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidParameter`] for malformed numbers.
pub fn parse_value(token: &str) -> Result<f64, CircuitError> {
    let t = token.trim().to_ascii_lowercase();
    let (num, mult) = if let Some(stripped) = t.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = t.strip_suffix('f') {
        (stripped, 1e-15)
    } else if let Some(stripped) = t.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = t.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = t.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = t.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = t.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = t.strip_suffix('g') {
        (stripped, 1e9)
    } else if let Some(stripped) = t.strip_suffix('t') {
        (stripped, 1e12)
    } else {
        (t.as_str(), 1.0)
    };
    num.parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| CircuitError::InvalidParameter(format!("cannot parse value `{token}`")))
}

/// Splits `NAME(a b c)` argument lists that may span whitespace.
fn call_args<'a>(joined: &'a str, keyword: &str) -> Option<Vec<&'a str>> {
    let upper = joined.to_ascii_uppercase();
    let start = upper.find(&format!("{keyword}("))?;
    let open = start + keyword.len();
    let close = joined[open..].find(')')? + open;
    Some(
        joined[open + 1..close]
            .split_whitespace()
            .collect::<Vec<_>>(),
    )
}

/// Prefixes an [`CircuitError::InvalidParameter`] with `line L, col C:`
/// source context; other error kinds pass through untouched.
fn at(line_no: usize, col: usize, e: CircuitError) -> CircuitError {
    match e {
        CircuitError::InvalidParameter(msg) => {
            CircuitError::InvalidParameter(format!("line {line_no}, col {col}: {msg}"))
        }
        other => other,
    }
}

/// Splits a line into whitespace-separated fields tagged with their byte
/// offset, so errors can point at the offending token's column.
fn field_spans(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, &line[s..]));
    }
    out
}

fn parse_wave(fields: &[&str], line_no: usize, col: usize) -> Result<SourceWave, CircuitError> {
    let joined = fields.join(" ");
    let upper = joined.to_ascii_uppercase();
    let bad =
        |msg: String| CircuitError::InvalidParameter(format!("line {line_no}, col {col}: {msg}"));
    let val = |t: &str| parse_value(t).map_err(|e| at(line_no, col, e));
    if upper.starts_with("DC") {
        let v = fields
            .get(1)
            .ok_or_else(|| bad("DC needs a value".into()))?;
        return Ok(SourceWave::Dc(val(v)?));
    }
    if upper.starts_with("SIN") {
        let args = call_args(&joined, "SIN")
            .ok_or_else(|| bad("SIN needs (offset amp freq delay phase)".into()))?;
        if args.len() < 3 {
            return Err(bad("SIN needs at least (offset amp freq)".into()));
        }
        let get =
            |k: usize| -> Result<f64, CircuitError> { args.get(k).map_or(Ok(0.0), |t| val(t)) };
        return Ok(SourceWave::Sin {
            offset: get(0)?,
            amplitude: get(1)?,
            freq_hz: get(2)?,
            delay: get(3)?,
            phase: get(4)?,
        });
    }
    if upper.starts_with("PULSE") {
        let args = call_args(&joined, "PULSE")
            .ok_or_else(|| bad("PULSE needs (v1 v2 delay rise fall width period)".into()))?;
        if args.len() < 7 {
            return Err(bad("PULSE needs 7 arguments".into()));
        }
        let g = |k: usize| val(args[k]);
        return Ok(SourceWave::Pulse {
            v1: g(0)?,
            v2: g(1)?,
            delay: g(2)?,
            rise: g(3)?,
            fall: g(4)?,
            width: g(5)?,
            period: g(6)?,
        });
    }
    // Bare value = DC.
    if fields.len() == 1 {
        return Ok(SourceWave::Dc(val(fields[0])?));
    }
    Err(bad(format!("unrecognized source specification `{joined}`")))
}

/// Reads `KEY=value` parameters from the tail of a card. A malformed value
/// is reported with the index of the offending field so the caller can
/// attach its column.
fn params(fields: &[&str]) -> Result<Vec<(String, f64)>, (usize, CircuitError)> {
    let mut out = Vec::new();
    for (i, f) in fields.iter().enumerate() {
        if let Some((k, v)) = f.split_once('=') {
            let v = parse_value(v).map_err(|e| (i, e))?;
            out.push((k.to_ascii_uppercase(), v));
        }
    }
    Ok(out)
}

fn has_flag(fields: &[&str], flag: &str) -> bool {
    fields.iter().any(|f| f.eq_ignore_ascii_case(flag))
}

/// One `.subckt` definition: port names plus body cards carrying their
/// original line numbers, so diagnostics point at the definition text.
struct SubcktDef {
    ports: Vec<String>,
    body: Vec<(usize, String)>,
}

/// Maximum `X` instantiation depth — a recursive subcircuit otherwise
/// expands forever.
const MAX_SUBCKT_DEPTH: usize = 8;

/// Parses a netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::InvalidParameter`] describing the offending line
/// *and column* (`line L, col C: …`, both 1-based, column in characters)
/// for any malformed card. `parse` never panics, whatever the input bytes —
/// a property enforced by the `netlist_fuzz` test suite.
pub fn parse(netlist: &str) -> Result<Circuit, CircuitError> {
    // Pass 1: lift `.subckt` … `.ends` blocks out of the card stream.
    let mut subckts: HashMap<String, SubcktDef> = HashMap::new();
    let mut main_body: Vec<(usize, String)> = Vec::new();
    let mut open: Option<(String, SubcktDef)> = None;
    let mut last_line = 0;
    for (idx, raw) in netlist.lines().enumerate() {
        let line_no = idx + 1;
        last_line = line_no;
        let content = raw.split('*').next().unwrap_or("");
        let line = content.trim();
        let first = line.split_whitespace().next().unwrap_or("");
        let bad =
            |msg: String| CircuitError::InvalidParameter(format!("line {line_no}, col 1: {msg}"));
        if first.eq_ignore_ascii_case(".subckt") {
            if open.is_some() {
                return Err(bad("nested .subckt definitions are not supported".into()));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 3 {
                return Err(bad(".subckt needs `name port [port ...]`".into()));
            }
            let name = fields[1].to_ascii_uppercase();
            if subckts.contains_key(&name) {
                return Err(bad(format!("duplicate .subckt `{}`", fields[1])));
            }
            let ports: Vec<String> = fields[2..].iter().map(|p| p.to_string()).collect();
            open = Some((
                name,
                SubcktDef {
                    ports,
                    body: Vec::new(),
                },
            ));
            continue;
        }
        if first.eq_ignore_ascii_case(".ends") {
            match open.take() {
                Some((name, def)) => {
                    subckts.insert(name, def);
                }
                None => return Err(bad(".ends without a matching .subckt".into())),
            }
            continue;
        }
        match open.as_mut() {
            Some((_, def)) => def.body.push((line_no, raw.to_string())),
            None => main_body.push((line_no, raw.to_string())),
        }
    }
    if let Some((name, _)) = open {
        return Err(CircuitError::InvalidParameter(format!(
            "line {last_line}, col 1: unterminated .subckt `{name}`"
        )));
    }

    let mut ckt = Circuit::new();
    let mut inductors: HashMap<String, DeviceId> = HashMap::new();
    expand_body(
        &mut ckt,
        &mut inductors,
        &subckts,
        "",
        &HashMap::new(),
        &main_body,
        0,
    )?;
    Ok(ckt)
}

/// Processes a sequence of cards within one subcircuit scope.
fn expand_body(
    ckt: &mut Circuit,
    inductors: &mut HashMap<String, DeviceId>,
    subckts: &HashMap<String, SubcktDef>,
    prefix: &str,
    port_map: &HashMap<String, NodeId>,
    body: &[(usize, String)],
    depth: usize,
) -> Result<(), CircuitError> {
    for (line_no, raw) in body {
        parse_card(
            ckt, inductors, subckts, prefix, port_map, *line_no, raw, depth,
        )?;
    }
    Ok(())
}

/// Parses one element card in the scope described by `prefix`/`port_map`.
#[allow(clippy::too_many_arguments)]
fn parse_card(
    ckt: &mut Circuit,
    inductors: &mut HashMap<String, DeviceId>,
    subckts: &HashMap<String, SubcktDef>,
    prefix: &str,
    port_map: &HashMap<String, NodeId>,
    line_no: usize,
    raw: &str,
    depth: usize,
) -> Result<(), CircuitError> {
    let content = raw.split('*').next().unwrap_or("");
    let trim_start = content.len() - content.trim_start().len();
    let line = content.trim();
    if line.is_empty() {
        return Ok(());
    }
    let lower = line.to_ascii_lowercase();
    if lower == ".end" || lower.starts_with(".title") {
        return Ok(());
    }
    {
        let spans = field_spans(line);
        let fields: Vec<&str> = spans.iter().map(|&(_, t)| t).collect();
        let name = fields[0];
        // 1-based character column of field `k` in the original line (the
        // card-name column when the card has fewer fields than `k`).
        let col = |k: usize| -> usize {
            let byte = trim_start
                + spans
                    .get(k)
                    .or_else(|| spans.first())
                    .map_or(0, |&(o, _)| o);
            raw[..byte].chars().count() + 1
        };
        let bad_at = |k: usize, msg: String| {
            CircuitError::InvalidParameter(format!("line {line_no}, col {}: {msg}", col(k)))
        };
        let bad = |msg: String| bad_at(0, msg);
        let kind = name
            .chars()
            .next()
            .expect("non-empty field")
            .to_ascii_uppercase();
        let mut node = |tok: &str| -> usize {
            if tok == "0" {
                Circuit::GROUND
            } else if let Some(&mapped) = port_map.get(tok) {
                mapped
            } else if prefix.is_empty() {
                ckt.node(tok)
            } else {
                ckt.node(&format!("{prefix}{tok}"))
            }
        };
        match kind {
            'R' | 'C' | 'L' => {
                if fields.len() < 4 {
                    return Err(bad(format!("{name} needs `a b value`")));
                }
                let a = node(fields[1]);
                let b = node(fields[2]);
                let v = parse_value(fields[3]).map_err(|e| at(line_no, col(3), e))?;
                // NaN-rejecting positivity check.
                if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(bad_at(3, format!("{name}: value must be positive")));
                }
                match kind {
                    'R' => {
                        ckt.resistor(a, b, v);
                    }
                    'C' => {
                        ckt.capacitor(a, b, v);
                    }
                    _ => {
                        let id = ckt.inductor(a, b, v);
                        inductors.insert(format!("{prefix}{name}").to_ascii_uppercase(), id);
                    }
                }
            }
            'K' => {
                if fields.len() < 4 {
                    return Err(bad(format!("{name} needs `L1 L2 k`")));
                }
                let lookup = |k: usize| -> Result<DeviceId, CircuitError> {
                    let key = format!("{prefix}{}", fields[k]).to_ascii_uppercase();
                    inductors.get(&key).copied().ok_or_else(|| {
                        bad_at(k, format!("{name}: unknown inductor `{}`", fields[k]))
                    })
                };
                let l1 = lookup(1)?;
                let l2 = lookup(2)?;
                if l1 == l2 {
                    return Err(bad_at(
                        2,
                        format!("{name}: cannot couple `{}` to itself", fields[2]),
                    ));
                }
                let kval = parse_value(fields[3]).map_err(|e| at(line_no, col(3), e))?;
                // NaN-rejecting passivity check.
                if !(kval.abs() > 0.0 && kval.abs() < 1.0) {
                    return Err(bad_at(
                        3,
                        format!("{name}: coupling must satisfy 0 < |k| < 1"),
                    ));
                }
                ckt.mutual(l1, l2, kval);
            }
            'X' => {
                if fields.len() < 2 {
                    return Err(bad(format!("{name} needs `[node ...] subckt`")));
                }
                let sub_tok = fields[fields.len() - 1];
                let def = subckts.get(&sub_tok.to_ascii_uppercase()).ok_or_else(|| {
                    bad_at(fields.len() - 1, format!("unknown subcircuit `{sub_tok}`"))
                })?;
                let given = &fields[1..fields.len() - 1];
                if given.len() != def.ports.len() {
                    return Err(bad(format!(
                        "{name}: subcircuit `{sub_tok}` has {} ports but {} nodes were given",
                        def.ports.len(),
                        given.len()
                    )));
                }
                if depth >= MAX_SUBCKT_DEPTH {
                    return Err(bad(
                        "subcircuit nesting too deep (recursive instantiation?)".into(),
                    ));
                }
                let resolved: Vec<NodeId> = given.iter().map(|tok| node(tok)).collect();
                let child_ports: HashMap<String, NodeId> =
                    def.ports.iter().cloned().zip(resolved).collect();
                let child_prefix = format!("{prefix}{name}.");
                expand_body(
                    ckt,
                    inductors,
                    subckts,
                    &child_prefix,
                    &child_ports,
                    &def.body,
                    depth + 1,
                )?;
            }
            'V' | 'I' => {
                if fields.len() < 4 {
                    return Err(bad(format!("{name} needs `a b <source>`")));
                }
                let a = node(fields[1]);
                let b = node(fields[2]);
                let wave = parse_wave(&fields[3..], line_no, col(3))?;
                if kind == 'V' {
                    ckt.vsource(a, b, wave);
                } else {
                    ckt.isource(a, b, wave);
                }
            }
            'D' => {
                if fields.len() < 3 {
                    return Err(bad(format!("{name} needs `anode cathode`")));
                }
                let a = node(fields[1]);
                let b = node(fields[2]);
                let mut is = 1e-12;
                let mut n = 1.0;
                for (k, v) in params(&fields[3..]).map_err(|(i, e)| at(line_no, col(3 + i), e))? {
                    match k.as_str() {
                        "IS" => is = v,
                        "N" => n = v,
                        other => return Err(bad(format!("unknown diode parameter {other}"))),
                    }
                }
                ckt.diode(a, b, is, n);
            }
            'Q' => {
                if fields.len() < 4 {
                    return Err(bad(format!("{name} needs `c b e`")));
                }
                let c = node(fields[1]);
                let b = node(fields[2]);
                let e = node(fields[3]);
                let mut model = BjtModel::default();
                for (k, v) in params(&fields[4..]).map_err(|(i, e)| at(line_no, col(4 + i), e))? {
                    match k.as_str() {
                        "IS" => model.saturation_current = v,
                        "BF" => model.beta_f = v,
                        "BR" => model.beta_r = v,
                        "VT" => model.vt = v,
                        other => return Err(bad(format!("unknown BJT parameter {other}"))),
                    }
                }
                if has_flag(&fields[4..], "PNP") {
                    ckt.pnp(c, b, e, model);
                } else {
                    ckt.npn(c, b, e, model);
                }
            }
            'M' => {
                if fields.len() < 4 {
                    return Err(bad(format!("{name} needs `d g s`")));
                }
                let d = node(fields[1]);
                let g = node(fields[2]);
                let s = node(fields[3]);
                let mut model = MosfetModel::default();
                for (k, v) in params(&fields[4..]).map_err(|(i, e)| at(line_no, col(4 + i), e))? {
                    match k.as_str() {
                        "VTH" => model.vth = v,
                        "KP" => model.kp = v,
                        "WL" => model.w_over_l = v,
                        "LAMBDA" => model.lambda = v,
                        other => return Err(bad(format!("unknown MOSFET parameter {other}"))),
                    }
                }
                if has_flag(&fields[4..], "PMOS") {
                    ckt.pmos(d, g, s, model);
                } else {
                    ckt.nmos(d, g, s, model);
                }
            }
            'G' => {
                if fields.len() < 4 {
                    return Err(bad(format!("{name} needs `a b CURVE(...)`")));
                }
                let a = node(fields[1]);
                let b = node(fields[2]);
                let joined = fields[3..].join(" ");
                let upper = joined.to_ascii_uppercase();
                let curve = if upper.starts_with("TANH") {
                    let args = call_args(&joined, "TANH")
                        .ok_or_else(|| bad("TANH needs (i_sat gain)".into()))?;
                    if args.len() != 2 {
                        return Err(bad("TANH needs exactly (i_sat gain)".into()));
                    }
                    IvCurve::tanh(
                        parse_value(args[0]).map_err(|e| at(line_no, col(3), e))?,
                        parse_value(args[1]).map_err(|e| at(line_no, col(3), e))?,
                    )
                } else if upper.starts_with("POLY") {
                    let args = call_args(&joined, "POLY")
                        .ok_or_else(|| bad("POLY needs (c0 c1 ...)".into()))?;
                    let coeffs = args
                        .iter()
                        .map(|t| parse_value(t).map_err(|e| at(line_no, col(3), e)))
                        .collect::<Result<Vec<_>, _>>()?;
                    if coeffs.is_empty() {
                        return Err(bad("POLY needs at least one coefficient".into()));
                    }
                    IvCurve::Polynomial(coeffs)
                } else if upper.starts_with("TD") {
                    IvCurve::TunnelDiode(TunnelDiodeModel::default())
                } else {
                    return Err(bad(format!("unknown nonlinear curve `{joined}`")));
                };
                ckt.nonlinear(a, b, curve);
            }
            other => {
                return Err(bad(format!("unknown element type `{other}`")));
            }
        }
    }
    Ok(())
}

/// Serializes a circuit back into netlist text (an inverse of [`parse`] for
/// the supported cards; waveforms beyond DC/SIN/PULSE are rejected).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidRequest`] for devices the text format
/// cannot represent (tabulated curves, PWL/Sum sources, injected
/// nonlinearities).
pub fn write(ckt: &Circuit) -> Result<String, CircuitError> {
    use crate::device::{BjtPolarity, Device, MosPolarity};
    use std::fmt::Write as _;

    let mut out = String::from("* generated by shil-circuit\n");
    let unsupported =
        |what: &str| CircuitError::InvalidRequest(format!("{what} has no netlist form"));
    let wave_str = |w: &SourceWave| -> Result<String, CircuitError> {
        Ok(match w {
            SourceWave::Dc(v) => format!("DC {v:e}"),
            SourceWave::Sin {
                offset,
                amplitude,
                freq_hz,
                delay,
                phase,
            } => format!("SIN({offset:e} {amplitude:e} {freq_hz:e} {delay:e} {phase:e})"),
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => format!("PULSE({v1:e} {v2:e} {delay:e} {rise:e} {fall:e} {width:e} {period:e})"),
            _ => return Err(unsupported("PWL/Sum source")),
        })
    };
    for (k, dev) in ckt.devices().iter().enumerate() {
        let n = |id: usize| ckt.node_name(id).to_string();
        match dev {
            Device::Resistor { a, b, ohms } => {
                let _ = writeln!(out, "R{k} {} {} {ohms:e}", n(*a), n(*b));
            }
            Device::Capacitor { a, b, farads } => {
                let _ = writeln!(out, "C{k} {} {} {farads:e}", n(*a), n(*b));
            }
            Device::Inductor { a, b, henries } => {
                let _ = writeln!(out, "L{k} {} {} {henries:e}", n(*a), n(*b));
            }
            Device::Vsource { a, b, wave } => {
                let _ = writeln!(out, "V{k} {} {} {}", n(*a), n(*b), wave_str(wave)?);
            }
            Device::Isource { a, b, wave } => {
                let _ = writeln!(out, "I{k} {} {} {}", n(*a), n(*b), wave_str(wave)?);
            }
            Device::Diode {
                a,
                b,
                saturation_current,
                ideality,
            } => {
                let _ = writeln!(
                    out,
                    "D{k} {} {} IS={saturation_current:e} N={ideality:e}",
                    n(*a),
                    n(*b)
                );
            }
            Device::Bjt {
                c,
                b,
                e,
                model,
                polarity,
            } => {
                let flag = match polarity {
                    BjtPolarity::Npn => "",
                    BjtPolarity::Pnp => " PNP",
                };
                let _ = writeln!(
                    out,
                    "Q{k} {} {} {} IS={:e} BF={:e} BR={:e} VT={:e}{flag}",
                    n(*c),
                    n(*b),
                    n(*e),
                    model.saturation_current,
                    model.beta_f,
                    model.beta_r,
                    model.vt
                );
            }
            Device::Mosfet {
                d,
                g,
                s,
                model,
                polarity,
            } => {
                let flag = match polarity {
                    MosPolarity::Nmos => "",
                    MosPolarity::Pmos => " PMOS",
                };
                let _ = writeln!(
                    out,
                    "M{k} {} {} {} VTH={:e} KP={:e} WL={:e} LAMBDA={:e}{flag}",
                    n(*d),
                    n(*g),
                    n(*s),
                    model.vth,
                    model.kp,
                    model.w_over_l,
                    model.lambda
                );
            }
            Device::Nonlinear { a, b, curve } => match curve {
                IvCurve::Tanh { i_sat, gain } => {
                    let _ = writeln!(out, "G{k} {} {} TANH({i_sat:e} {gain:e})", n(*a), n(*b));
                }
                IvCurve::Polynomial(coeffs) => {
                    let list = coeffs
                        .iter()
                        .map(|c| format!("{c:e}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let _ = writeln!(out, "G{k} {} {} POLY({list})", n(*a), n(*b));
                }
                IvCurve::TunnelDiode(_) => {
                    let _ = writeln!(out, "G{k} {} {} TD()", n(*a), n(*b));
                }
                _ => return Err(unsupported("tabulated/shifted nonlinearity")),
            },
            Device::MutualInductance { l1, l2, k: kc } => {
                // References the coupled inductors by their emitted names.
                let _ = writeln!(out, "K{k} L{l1} L{l2} {kc:e}");
            }
            _ => return Err(unsupported("injected nonlinearity")),
        }
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{operating_point, OpOptions};

    #[test]
    fn engineering_values() {
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("10n").unwrap(), 1e-8);
        assert_eq!(parse_value("1.5meg").unwrap(), 1.5e6);
        assert_eq!(parse_value("4.7u").unwrap(), 4.7e-6);
        assert_eq!(parse_value("2m").unwrap(), 2e-3);
        assert_eq!(parse_value("3p").unwrap(), 3e-12);
        assert_eq!(parse_value("1.2G").unwrap(), 1.2e9);
        assert_eq!(parse_value("5").unwrap(), 5.0);
        assert_eq!(parse_value("-0.5").unwrap(), -0.5);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn parses_and_solves_a_divider() {
        let ckt = parse(
            "* divider\n\
             V1 in 0 DC 10\n\
             R1 in out 3k\n\
             R2 out 0 1k\n\
             .end\n",
        )
        .unwrap();
        let out = ckt.find_node("out").unwrap();
        let op = operating_point(&ckt, &OpOptions::default()).unwrap();
        assert!((op.node_voltage(out) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn parses_the_diff_pair_oscillator() {
        let ckt = parse(
            "V1 vdd 0 DC 5\n\
             Q1 ncl ncr ne IS=1e-12 BF=100 BR=1\n\
             Q2 ncr ncl ne IS=1e-12 BF=100 BR=1\n\
             I1 ne 0 DC 1m\n\
             L1 ncl vdd 5u\n\
             L2 tb vdd 5u\n\
             R1 ncl tb 1.2k\n\
             C1 ncl tb 10n\n\
             V2 tb ncr SIN(0 0.06 1.5meg 0 0)\n",
        )
        .unwrap();
        assert_eq!(ckt.devices().len(), 9);
        assert!(operating_point(&ckt, &OpOptions::default()).is_ok());
    }

    #[test]
    fn parses_sources_and_flags() {
        let ckt = parse(
            "I1 0 a PULSE(0 40m 2m 100n 100n 1.5u 2m)\n\
             R1 a 0 1k\n\
             Q1 a b 0 PNP\n\
             R2 b 0 1k\n\
             M1 a b 0 VTH=0.6 PMOS\n\
             G1 a 0 TANH(-1m 20)\n\
             G2 a 0 POLY(0 -1m 0 1m)\n\
             G3 a 0 TD()\n\
             D1 a 0 IS=1e-14 N=1.5\n",
        )
        .unwrap();
        assert_eq!(ckt.devices().len(), 9);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = parse("R1 a 0 1k\nX9 a 0 1\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = parse("R1 a 0\n").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = parse("R1 a 0 -5\n").unwrap_err();
        assert!(e.to_string().contains("positive"), "{e}");
        let e = parse("V1 a 0 TRI(1 2)\n").unwrap_err();
        assert!(e.to_string().contains("unrecognized source"), "{e}");
    }

    #[test]
    fn error_messages_carry_columns() {
        // The unknown card name sits at column 1 of line 2.
        let e = parse("R1 a 0 1k\nY9 a 0 1\n").unwrap_err();
        assert!(e.to_string().contains("line 2, col 1"), "{e}");
        // An X card referencing a missing subcircuit points at its name.
        let e = parse("R1 a 0 1k\nX9 a 0 osc\n").unwrap_err();
        assert!(e.to_string().contains("line 2, col 8"), "{e}");
        // The malformed value is the 4th field, column 8.
        let e = parse("R1 a 0 abc\n").unwrap_err();
        assert!(e.to_string().contains("line 1, col 8"), "{e}");
        // Leading whitespace shifts the reported column.
        let e = parse("  R1 a 0 abc\n").unwrap_err();
        assert!(e.to_string().contains("line 1, col 10"), "{e}");
        // KEY=value parse errors point at the offending parameter field.
        let e = parse("D1 a 0 IS=1e-14 N=bogus\n").unwrap_err();
        assert!(e.to_string().contains("line 1, col 17"), "{e}");
        // Waveform errors point at the start of the source specification.
        let e = parse("V1 a 0 DC zap\n").unwrap_err();
        assert!(e.to_string().contains("line 1, col 8"), "{e}");
    }

    #[test]
    fn roundtrip_through_write_and_parse() {
        let text = "V1 vdd 0 DC 5\n\
                    R1 vdd out 1k\n\
                    C1 out 0 10n\n\
                    L1 out 0 10u\n\
                    D1 out 0 IS=1e-12 N=1\n\
                    Q1 vdd out 0 IS=1e-12 BF=100 BR=1\n\
                    M1 vdd out 0 VTH=0.5 KP=200u WL=50 LAMBDA=0.02\n\
                    G1 out 0 TANH(-1m 20)\n\
                    I1 0 out SIN(0 1m 1meg 0 0)\n";
        let ckt = parse(text).unwrap();
        let rendered = write(&ckt).unwrap();
        let again = parse(&rendered).unwrap();
        assert_eq!(ckt.devices().len(), again.devices().len());
        // The reparsed circuit must solve to the same operating point.
        let op1 = operating_point(&ckt, &OpOptions::default()).unwrap();
        let op2 = operating_point(&again, &OpOptions::default()).unwrap();
        let out1 = ckt.find_node("out").unwrap();
        let out2 = again.find_node("out").unwrap();
        assert!((op1.node_voltage(out1) - op2.node_voltage(out2)).abs() < 1e-12);
    }

    #[test]
    fn write_rejects_unrepresentable_devices() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.injected_nonlinear(a, 0, IvCurve::tanh(-1e-3, 20.0), SourceWave::Dc(0.0));
        assert!(write(&ckt).is_err());
    }

    #[test]
    fn parses_mutual_inductance() {
        use crate::device::Device;
        let ckt = parse(
            "L1 a 0 10u\n\
             L2 b 0 40u\n\
             K1 L1 L2 0.3\n\
             R1 a 0 1k\n\
             R2 b 0 1k\n",
        )
        .unwrap();
        assert!(matches!(
            ckt.devices()[2],
            Device::MutualInductance { l1: 0, l2: 1, k } if k == 0.3
        ));
    }

    #[test]
    fn mutual_inductance_errors_are_positioned() {
        let base = "L1 a 0 10u\nL2 b 0 10u\n";
        let e = parse(&format!("{base}K1 L1 L9 0.5\n")).unwrap_err();
        assert!(e.to_string().contains("line 3, col 7"), "{e}");
        assert!(e.to_string().contains("unknown inductor"), "{e}");
        let e = parse(&format!("{base}K1 L1 L1 0.5\n")).unwrap_err();
        assert!(e.to_string().contains("couple"), "{e}");
        let e = parse(&format!("{base}K1 L1 L2 1.5\n")).unwrap_err();
        assert!(e.to_string().contains("0 < |k| < 1"), "{e}");
        let e = parse(&format!("{base}K1 L1 L2 0\n")).unwrap_err();
        assert!(e.to_string().contains("0 < |k| < 1"), "{e}");
        // A K card naming a non-inductor element never reaches the builder:
        // the registry only holds inductors.
        let e = parse("R1 a 0 1k\nL1 a 0 1u\nK1 R1 L1 0.5\n").unwrap_err();
        assert!(e.to_string().contains("unknown inductor"), "{e}");
    }

    #[test]
    fn subckt_expansion_scopes_nodes_and_elements() {
        use crate::device::Device;
        // The coupled-tank idiom: each instance carries its own pair of
        // inductors and its own K card.
        let ckt = parse(
            ".subckt ctank p1 p2\n\
             L1 p1 0 10u\n\
             L2 p2 0 10u\n\
             K1 L1 L2 0.6\n\
             .ends\n\
             X1 a b ctank\n\
             X2 c d ctank\n\
             R1 a 0 1k\n",
        )
        .unwrap();
        assert_eq!(ckt.devices().len(), 7);
        assert!(matches!(
            ckt.devices()[2],
            Device::MutualInductance { l1: 0, l2: 1, k } if k == 0.6
        ));
        assert!(matches!(
            ckt.devices()[5],
            Device::MutualInductance { l1: 3, l2: 4, k } if k == 0.6
        ));
        // Ports bind to caller nodes; no phantom local nodes appear.
        assert!(ckt.find_node("a").is_some());
        assert!(ckt.find_node("X1.p1").is_none());
    }

    #[test]
    fn subckt_local_nodes_are_instance_scoped() {
        let ckt = parse(
            ".subckt rdiv top\n\
             R1 top mid 1k\n\
             R2 mid 0 1k\n\
             .ends\n\
             X1 a rdiv\n\
             X2 a rdiv\n",
        )
        .unwrap();
        // Each instance gets its own `mid` node.
        assert!(ckt.find_node("X1.mid").is_some());
        assert!(ckt.find_node("X2.mid").is_some());
        assert_eq!(ckt.devices().len(), 4);
    }

    #[test]
    fn subckt_structural_errors_are_positioned() {
        let e = parse(".subckt t a\nR1 a 0 1k\n").unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
        assert!(e.to_string().contains("line 2, col 1"), "{e}");
        let e = parse(".ends\n").unwrap_err();
        assert!(e.to_string().contains("without a matching"), "{e}");
        let e = parse(".subckt t a\n.subckt u b\n.ends\n.ends\n").unwrap_err();
        assert!(e.to_string().contains("nested"), "{e}");
        let e = parse(".subckt t\n.ends\n").unwrap_err();
        assert!(e.to_string().contains("needs"), "{e}");
        let e = parse(".subckt t a\n.ends\nX1 a b t\n").unwrap_err();
        assert!(e.to_string().contains("1 ports but 2"), "{e}");
        // Self-instantiation terminates with a depth error, not a hang.
        let e = parse(".subckt t a\nX1 a t\n.ends\nX0 n t\n").unwrap_err();
        assert!(e.to_string().contains("too deep"), "{e}");
    }

    #[test]
    fn mutual_roundtrips_through_write_and_parse() {
        use crate::device::Device;
        let ckt = parse(
            "L1 a 0 10u\n\
             L2 b 0 10u\n\
             K1 L1 L2 0.45\n\
             R1 a 0 1k\n\
             R2 b 0 1k\n\
             C1 a 0 10n\n\
             C2 b 0 10n\n",
        )
        .unwrap();
        let rendered = write(&ckt).unwrap();
        assert!(rendered.contains("K2 L0 L1"), "{rendered}");
        let again = parse(&rendered).unwrap();
        assert_eq!(ckt.devices().len(), again.devices().len());
        assert!(matches!(
            again.devices()[2],
            Device::MutualInductance { l1: 0, l2: 1, k } if k == 0.45
        ));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let ckt = parse(
            "* header comment\n\
             \n\
             R1 a 0 1k * trailing comment\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(ckt.devices().len(), 1);
    }
}
