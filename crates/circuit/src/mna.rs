//! Modified nodal analysis: unknown layout and residual/Jacobian assembly.
//!
//! The unknown vector is `x = [v₁ … v_{N−1}, i_b₁ … i_bM]`: one voltage per
//! non-ground node followed by one branch current per voltage source and
//! inductor. Analyses drive Newton iterations on the residual
//!
//! ```text
//! F_node(x)   = Σ currents leaving the node through devices  (KCL)
//! F_branch(x) = device branch equation (V source, inductor)
//! ```
//!
//! with the Jacobian assembled analytically from device derivatives.

use shil_numerics::solver::Stamp;
use shil_numerics::sparse::{PatternBuilder, SparsePattern};

use crate::circuit::Circuit;
use crate::device::{BjtPolarity, Device, MosPolarity};
use crate::iv::{limexp, limexp_deriv};

/// Integration method for dynamic (C, L) companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Trapezoidal rule (2nd order, A-stable; SPICE default).
    #[default]
    Trapezoidal,
    /// Backward Euler (1st order, L-stable; used for the first step and as
    /// a damping fallback).
    BackwardEuler,
}

/// Maps devices and nodes to unknown-vector indices.
#[derive(Debug, Clone)]
pub struct MnaStructure {
    num_nodes: usize,
    branch_of_device: Vec<Option<usize>>,
    size: usize,
}

impl MnaStructure {
    /// Builds the unknown layout for a circuit.
    pub fn new(ckt: &Circuit) -> Self {
        let num_nodes = ckt.num_nodes();
        let mut branch_of_device = Vec::with_capacity(ckt.devices().len());
        let mut next_branch = 0usize;
        for d in ckt.devices() {
            if d.has_branch_current() {
                branch_of_device.push(Some(next_branch));
                next_branch += 1;
            } else {
                branch_of_device.push(None);
            }
        }
        MnaStructure {
            num_nodes,
            branch_of_device,
            size: (num_nodes - 1) + next_branch,
        }
    }

    /// Total number of unknowns.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Row/column of a node voltage, or `None` for ground.
    #[inline]
    pub fn node_index(&self, node: usize) -> Option<usize> {
        if node == 0 {
            None
        } else {
            Some(node - 1)
        }
    }

    /// Row/column of a device's branch current, if it has one.
    #[inline]
    pub fn branch_index(&self, device_idx: usize) -> Option<usize> {
        self.branch_of_device
            .get(device_idx)
            .copied()
            .flatten()
            .map(|b| (self.num_nodes - 1) + b)
    }

    /// Node voltage from an unknown vector (0.0 for ground).
    #[inline]
    pub fn voltage(&self, x: &[f64], node: usize) -> f64 {
        match self.node_index(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }
}

/// History carried between transient steps for dynamic elements, indexed by
/// device position in the netlist.
#[derive(Debug, Clone, Default)]
pub struct DynamicState {
    /// Capacitor terminal voltage at the previous accepted time point.
    pub cap_v: Vec<f64>,
    /// Capacitor current at the previous accepted time point.
    pub cap_i: Vec<f64>,
    /// Inductor terminal voltage at the previous accepted time point.
    pub ind_v: Vec<f64>,
    /// Inductor current at the previous accepted time point.
    pub ind_i: Vec<f64>,
}

impl DynamicState {
    /// Zero-initialized state sized for a circuit.
    pub fn for_circuit(ckt: &Circuit) -> Self {
        let n = ckt.devices().len();
        DynamicState {
            cap_v: vec![0.0; n],
            cap_i: vec![0.0; n],
            ind_v: vec![0.0; n],
            ind_i: vec![0.0; n],
        }
    }
}

/// How sources and dynamic elements are treated during assembly.
#[derive(Debug, Clone, Copy)]
pub enum StampMode<'a> {
    /// DC: sources at `dc_value()·scale`, capacitors open, inductors short.
    Dc {
        /// Homotopy scale factor applied to all independent sources.
        source_scale: f64,
    },
    /// Transient step ending at time `t` with step `dt` from the state in
    /// `prev`.
    Transient {
        /// Time at the *end* of the step (where the residual is enforced).
        t: f64,
        /// Step size.
        dt: f64,
        /// Integration method for companion models.
        method: Integrator,
        /// Dynamic-element history at the start of the step.
        prev: &'a DynamicState,
    },
}

/// Assembles the MNA residual and Jacobian at the point `x`.
///
/// `gmin` adds a conductance from every non-ground node to ground — the
/// classic convergence aid (0.0 disables it).
///
/// Generic over the Jacobian target: a dense [`shil_numerics::Matrix`], a
/// [`shil_numerics::sparse::SparseMatrix`] stamped over the pattern from
/// [`sparse_pattern`], or a recording
/// [`shil_numerics::sparse::PatternBuilder`].
///
/// # Panics
///
/// Panics if buffer sizes disagree with `structure.size()`.
pub fn assemble<J: Stamp>(
    ckt: &Circuit,
    structure: &MnaStructure,
    x: &[f64],
    mode: StampMode<'_>,
    gmin: f64,
    residual: &mut [f64],
    jac: &mut J,
) {
    let n = structure.size();
    assert_eq!(x.len(), n, "state size mismatch");
    assert_eq!(residual.len(), n, "residual size mismatch");
    assert_eq!(jac.dim(), n, "jacobian size mismatch");

    residual.fill(0.0);
    jac.clear();

    // KCL helper: current `i` leaves `node` through a device.
    macro_rules! kcl {
        ($node:expr, $i:expr) => {
            if let Some(r) = structure.node_index($node) {
                residual[r] += $i;
            }
        };
    }
    // Jacobian helper: ∂F_row(node)/∂x_col += g.
    macro_rules! jkcl {
        ($node:expr, $col:expr, $g:expr) => {
            if let Some(r) = structure.node_index($node) {
                jac.add_at(r, $col, $g);
            }
        };
    }

    for (di, dev) in ckt.devices().iter().enumerate() {
        match dev {
            Device::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                let v = structure.voltage(x, *a) - structure.voltage(x, *b);
                let i = g * v;
                kcl!(*a, i);
                kcl!(*b, -i);
                stamp_conductance(structure, jac, *a, *b, g);
            }
            Device::Capacitor { a, b, farads } => {
                if let StampMode::Transient {
                    dt, method, prev, ..
                } = mode
                {
                    let (geq, ieq) = match method {
                        Integrator::Trapezoidal => {
                            let geq = 2.0 * farads / dt;
                            (geq, geq * prev.cap_v[di] + prev.cap_i[di])
                        }
                        Integrator::BackwardEuler => {
                            let geq = farads / dt;
                            (geq, geq * prev.cap_v[di])
                        }
                    };
                    let v = structure.voltage(x, *a) - structure.voltage(x, *b);
                    let i = geq * v - ieq;
                    kcl!(*a, i);
                    kcl!(*b, -i);
                    stamp_conductance(structure, jac, *a, *b, geq);
                }
                // DC: an ideal capacitor is an open circuit — no stamp.
            }
            Device::Inductor { a, b, henries } => {
                let bi = structure.branch_index(di).expect("inductor has branch");
                let i = x[bi];
                kcl!(*a, i);
                kcl!(*b, -i);
                jkcl!(*a, bi, 1.0);
                jkcl!(*b, bi, -1.0);
                let v = structure.voltage(x, *a) - structure.voltage(x, *b);
                match mode {
                    StampMode::Dc { .. } => {
                        // Short circuit: v = 0.
                        residual[bi] += v;
                        stamp_branch_voltage(structure, jac, bi, *a, *b);
                    }
                    StampMode::Transient {
                        dt, method, prev, ..
                    } => match method {
                        Integrator::Trapezoidal => {
                            // v_n + v_{n−1} = (2L/dt)(i_n − i_{n−1})
                            let k = 2.0 * henries / dt;
                            residual[bi] += v + prev.ind_v[di] - k * (i - prev.ind_i[di]);
                            stamp_branch_voltage(structure, jac, bi, *a, *b);
                            jac.add_at(bi, bi, -k);
                        }
                        Integrator::BackwardEuler => {
                            let k = henries / dt;
                            residual[bi] += v - k * (i - prev.ind_i[di]);
                            stamp_branch_voltage(structure, jac, bi, *a, *b);
                            jac.add_at(bi, bi, -k);
                        }
                    },
                }
            }
            Device::Vsource { a, b, wave } => {
                let bi = structure.branch_index(di).expect("vsource has branch");
                let i = x[bi];
                kcl!(*a, i);
                kcl!(*b, -i);
                jkcl!(*a, bi, 1.0);
                jkcl!(*b, bi, -1.0);
                let v_src = match mode {
                    StampMode::Dc { source_scale } => wave.dc_value() * source_scale,
                    StampMode::Transient { t, .. } => wave.value(t),
                };
                let v = structure.voltage(x, *a) - structure.voltage(x, *b);
                residual[bi] += v - v_src;
                stamp_branch_voltage(structure, jac, bi, *a, *b);
            }
            Device::Isource { a, b, wave } => {
                let i_src = match mode {
                    StampMode::Dc { source_scale } => wave.dc_value() * source_scale,
                    StampMode::Transient { t, .. } => wave.value(t),
                };
                kcl!(*a, i_src);
                kcl!(*b, -i_src);
            }
            Device::Diode {
                a,
                b,
                saturation_current,
                ideality,
            } => {
                let nvt = ideality * crate::THERMAL_VOLTAGE;
                let v = structure.voltage(x, *a) - structure.voltage(x, *b);
                let i = saturation_current * (limexp(v / nvt) - 1.0);
                let g = saturation_current * limexp_deriv(v / nvt) / nvt;
                kcl!(*a, i);
                kcl!(*b, -i);
                stamp_conductance(structure, jac, *a, *b, g);
            }
            Device::Bjt {
                c,
                b,
                e,
                model,
                polarity,
            } => {
                let s = match polarity {
                    BjtPolarity::Npn => 1.0,
                    BjtPolarity::Pnp => -1.0,
                };
                let vt = model.vt;
                let is = model.saturation_current;
                let vbe = s * (structure.voltage(x, *b) - structure.voltage(x, *e));
                let vbc = s * (structure.voltage(x, *b) - structure.voltage(x, *c));
                let ee = limexp(vbe / vt);
                let ec = limexp(vbc / vt);
                let dee = limexp_deriv(vbe / vt) / vt;
                let dec = limexp_deriv(vbc / vt) / vt;
                // Transport model: Icc = Is(e^{vbe/Vt} − e^{vbc/Vt}).
                let ic = is * (ee - ec) - is / model.beta_r * (ec - 1.0);
                let ib = is / model.beta_f * (ee - 1.0) + is / model.beta_r * (ec - 1.0);
                // Currents entering the device terminals (NPN orientation),
                // then flipped by polarity.
                kcl!(*c, s * ic);
                kcl!(*b, s * ib);
                kcl!(*e, -s * (ic + ib));
                // Partials w.r.t. (vbe, vbc); the polarity factors cancel in
                // the node-voltage chain rule (s·∂/∂v = s²·∂/∂V' = ∂/∂V').
                let dic_dvbe = is * dee;
                let dic_dvbc = -is * dec - is / model.beta_r * dec;
                let dib_dvbe = is / model.beta_f * dee;
                let dib_dvbc = is / model.beta_r * dec;
                // vbe = s(vb − ve), vbc = s(vb − vc)
                let mut stamp3 = |node: usize, d_dvbe: f64, d_dvbc: f64| {
                    // ∂(s·I)/∂vb, ∂vc, ∂ve:
                    if let Some(rb) = structure.node_index(*b) {
                        jkcl!(node, rb, d_dvbe + d_dvbc);
                    }
                    if let Some(re) = structure.node_index(*e) {
                        jkcl!(node, re, -d_dvbe);
                    }
                    if let Some(rc) = structure.node_index(*c) {
                        jkcl!(node, rc, -d_dvbc);
                    }
                };
                stamp3(*c, dic_dvbe, dic_dvbc);
                stamp3(*b, dib_dvbe, dib_dvbc);
                stamp3(*e, -(dic_dvbe + dib_dvbe), -(dic_dvbc + dib_dvbc));
            }
            Device::Mosfet {
                d,
                g,
                s: src,
                model,
                polarity,
            } => {
                let sgn = match polarity {
                    MosPolarity::Nmos => 1.0,
                    MosPolarity::Pmos => -1.0,
                };
                let vd = structure.voltage(x, *d);
                let vg = structure.voltage(x, *g);
                let vs = structure.voltage(x, *src);
                // Orient the symmetric channel so the model sees v_ds ≥ 0.
                let (deff, seff) = if sgn * (vd - vs) >= 0.0 {
                    (*d, *src)
                } else {
                    (*src, *d)
                };
                let vde = structure.voltage(x, deff);
                let vse = structure.voltage(x, seff);
                let vgs = sgn * (vg - vse);
                let vds = sgn * (vde - vse);
                let (id, gm, gds) = model.evaluate(vgs, vds);
                // Physical drain current flows deff → seff inside the
                // device (sign handled by polarity).
                kcl!(deff, sgn * id);
                kcl!(seff, -(sgn * id));
                // ∂(sgn·id)/∂v: the polarity factors cancel (sgn² = 1).
                let mut stamp_row = |node: usize, sign_row: f64| {
                    if let Some(cg) = structure.node_index(*g) {
                        jkcl!(node, cg, sign_row * gm);
                    }
                    if let Some(cd) = structure.node_index(deff) {
                        jkcl!(node, cd, sign_row * gds);
                    }
                    if let Some(cs) = structure.node_index(seff) {
                        jkcl!(node, cs, -sign_row * (gm + gds));
                    }
                };
                stamp_row(deff, 1.0);
                stamp_row(seff, -1.0);
            }
            Device::Nonlinear { a, b, curve } => {
                let v = structure.voltage(x, *a) - structure.voltage(x, *b);
                let i = curve.current(v);
                let g = curve.conductance(v);
                kcl!(*a, i);
                kcl!(*b, -i);
                stamp_conductance(structure, jac, *a, *b, g);
            }
            Device::InjectedNonlinear {
                a,
                b,
                curve,
                injection,
            } => {
                let v_inj = match mode {
                    StampMode::Dc { source_scale } => injection.dc_value() * source_scale,
                    StampMode::Transient { t, .. } => injection.value(t),
                };
                let v = structure.voltage(x, *a) - structure.voltage(x, *b) + v_inj;
                let i = curve.current(v);
                let g = curve.conductance(v);
                kcl!(*a, i);
                kcl!(*b, -i);
                stamp_conductance(structure, jac, *a, *b, g);
            }
            Device::MutualInductance { l1, l2, k } => {
                // Trapezoidal/BE discretization of the coupled branch pair
                //   v₁ = L₁·di₁/dt + M·di₂/dt,  v₂ = L₂·di₂/dt + M·di₁/dt:
                // the self terms are already on the inductors' branch rows,
                // so this element only adds the M cross-terms. DC: inductors
                // are shorts and the coupling contributes nothing.
                if let StampMode::Transient {
                    dt, method, prev, ..
                } = mode
                {
                    let henries = |d: usize| match ckt.devices()[d] {
                        Device::Inductor { henries, .. } => henries,
                        _ => unreachable!("mutual() guarantees inductor targets"),
                    };
                    let m = k * (henries(*l1) * henries(*l2)).sqrt();
                    let km = match method {
                        Integrator::Trapezoidal => 2.0 * m / dt,
                        Integrator::BackwardEuler => m / dt,
                    };
                    let b1 = structure.branch_index(*l1).expect("inductor has branch");
                    let b2 = structure.branch_index(*l2).expect("inductor has branch");
                    residual[b1] -= km * (x[b2] - prev.ind_i[*l2]);
                    residual[b2] -= km * (x[b1] - prev.ind_i[*l1]);
                    jac.add_at(b1, b2, -km);
                    jac.add_at(b2, b1, -km);
                }
            }
        }
    }

    // gmin shunts on every non-ground node.
    if gmin > 0.0 {
        for node in 1..ckt.num_nodes() {
            let r = structure.node_index(node).expect("non-ground");
            residual[r] += gmin * x[r];
            jac.add_at(r, r, gmin);
        }
    }
}

/// Stamps a conductance `g` between nodes `a` and `b` into the Jacobian.
fn stamp_conductance<J: Stamp>(structure: &MnaStructure, jac: &mut J, a: usize, b: usize, g: f64) {
    let ia = structure.node_index(a);
    let ib = structure.node_index(b);
    if let Some(ra) = ia {
        jac.add_at(ra, ra, g);
        if let Some(rb) = ib {
            jac.add_at(ra, rb, -g);
        }
    }
    if let Some(rb) = ib {
        jac.add_at(rb, rb, g);
        if let Some(ra) = ia {
            jac.add_at(rb, ra, -g);
        }
    }
}

/// Stamps `∂(v_a − v_b)/∂x` into branch row `bi`.
fn stamp_branch_voltage<J: Stamp>(
    structure: &MnaStructure,
    jac: &mut J,
    bi: usize,
    a: usize,
    b: usize,
) {
    if let Some(ra) = structure.node_index(a) {
        jac.add_at(bi, ra, 1.0);
    }
    if let Some(rb) = structure.node_index(b) {
        jac.add_at(bi, rb, -1.0);
    }
}

/// Updates the dynamic-element history after an accepted step at solution
/// `x` (must match the `mode` used to assemble that step).
pub fn update_dynamic_state(
    ckt: &Circuit,
    structure: &MnaStructure,
    x: &[f64],
    dt: f64,
    method: Integrator,
    prev: &DynamicState,
    next: &mut DynamicState,
) {
    for (di, dev) in ckt.devices().iter().enumerate() {
        match dev {
            Device::Capacitor { a, b, farads } => {
                let v = structure.voltage(x, *a) - structure.voltage(x, *b);
                let i = match method {
                    Integrator::Trapezoidal => {
                        let geq = 2.0 * farads / dt;
                        geq * (v - prev.cap_v[di]) - prev.cap_i[di]
                    }
                    Integrator::BackwardEuler => farads / dt * (v - prev.cap_v[di]),
                };
                next.cap_v[di] = v;
                next.cap_i[di] = i;
            }
            Device::Inductor { a, b, .. } => {
                let bi = structure.branch_index(di).expect("inductor has branch");
                next.ind_v[di] = structure.voltage(x, *a) - structure.voltage(x, *b);
                next.ind_i[di] = x[bi];
            }
            _ => {}
        }
    }
}

/// Computes the symbolic sparsity pattern of a circuit's MNA Jacobian.
///
/// The pattern is recorded by running the real [`assemble`] routine against a
/// [`PatternBuilder`] in both DC and transient modes (their stamp sets
/// differ: capacitors only stamp in transient, inductor branch rows gain a
/// diagonal there), so it can never drift from the stamping code. The full
/// diagonal is always included — gmin shunts and the LU pivot search touch
/// it — which costs a handful of structurally-zero slots on voltage-source
/// branch rows.
///
/// Compute this **once** per circuit and share it (via `Arc`) across every
/// stamped matrix and solver.
///
/// # Panics
///
/// Panics if the circuit has no unknowns.
pub fn sparse_pattern(ckt: &Circuit, structure: &MnaStructure) -> SparsePattern {
    let n = structure.size();
    assert!(n > 0, "circuit has no unknowns");
    let mut builder = PatternBuilder::new(n);
    let mut residual = vec![0.0; n];
    // An off-origin probe point only steers value-dependent *orientation*
    // choices (e.g. the MOSFET source/drain swap); the recorded position set
    // is identical for any probe because every stamp position is symmetric
    // under those choices.
    let x = vec![0.01; n];
    assemble(
        ckt,
        structure,
        &x,
        StampMode::Dc { source_scale: 1.0 },
        1.0,
        &mut residual,
        &mut builder,
    );
    let prev = DynamicState::for_circuit(ckt);
    assemble(
        ckt,
        structure,
        &x,
        StampMode::Transient {
            t: 0.0,
            dt: 1.0,
            method: Integrator::Trapezoidal,
            prev: &prev,
        },
        1.0,
        &mut residual,
        &mut builder,
    );
    for i in 0..n {
        builder.insert(i, i);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wave::SourceWave;
    use shil_numerics::Matrix;

    /// Finite-difference check of the assembled Jacobian on a nonlinear
    /// circuit exercising most device kinds.
    #[test]
    fn jacobian_matches_finite_differences() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        let n3 = ckt.node("n3");
        ckt.vsource(n1, 0, SourceWave::Dc(2.0));
        ckt.resistor(n1, n2, 1e3);
        ckt.diode(n2, 0, 1e-12, 1.0);
        ckt.npn(n2, n3, 0, Default::default());
        ckt.nmos(n3, n2, 0, Default::default());
        ckt.pmos(n3, n2, n1, Default::default());
        ckt.resistor(n3, n1, 5e3);
        ckt.nonlinear(n2, n3, crate::IvCurve::tanh(-1e-3, 10.0));
        ckt.isource(n1, n3, SourceWave::Dc(1e-4));

        let structure = MnaStructure::new(&ckt);
        let n = structure.size();
        let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * i as f64).collect();
        let mode = StampMode::Dc { source_scale: 1.0 };

        let mut r0 = vec![0.0; n];
        let mut jac = Matrix::zeros(n, n);
        assemble(&ckt, &structure, &x, mode, 1e-9, &mut r0, &mut jac);

        let mut r1 = vec![0.0; n];
        let mut jac_scratch = Matrix::zeros(n, n);
        let h = 1e-7;
        for j in 0..n {
            let mut xp = x.clone();
            xp[j] += h;
            assemble(&ckt, &structure, &xp, mode, 1e-9, &mut r1, &mut jac_scratch);
            for i in 0..n {
                let fd = (r1[i] - r0[i]) / h;
                assert!(
                    (jac[(i, j)] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "J[{i},{j}] = {} but fd = {}",
                    jac[(i, j)],
                    fd
                );
            }
        }
    }

    #[test]
    fn transient_jacobian_matches_finite_differences() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.vsource(n1, 0, SourceWave::sine(1.0, 1e3, 0.0));
        ckt.resistor(n1, n2, 1e3);
        ckt.capacitor(n2, 0, 1e-6);
        ckt.inductor(n2, 0, 1e-3);
        ckt.injected_nonlinear(
            n2,
            0,
            crate::IvCurve::tanh(-2e-3, 5.0),
            SourceWave::sine(0.1, 3e3, 0.0),
        );

        let structure = MnaStructure::new(&ckt);
        let n = structure.size();
        let mut prev = DynamicState::for_circuit(&ckt);
        prev.cap_v.fill(0.2);
        prev.cap_i.fill(1e-4);
        prev.ind_v.fill(0.1);
        prev.ind_i.fill(2e-3);
        let mode = StampMode::Transient {
            t: 1e-4,
            dt: 1e-6,
            method: Integrator::Trapezoidal,
            prev: &prev,
        };

        let x: Vec<f64> = (0..n).map(|i| 0.05 * (i as f64 + 1.0)).collect();
        let mut r0 = vec![0.0; n];
        let mut jac = Matrix::zeros(n, n);
        assemble(&ckt, &structure, &x, mode, 0.0, &mut r0, &mut jac);

        let mut r1 = vec![0.0; n];
        let mut scratch = Matrix::zeros(n, n);
        let h = 1e-8;
        for j in 0..n {
            let mut xp = x.clone();
            xp[j] += h;
            assemble(&ckt, &structure, &xp, mode, 0.0, &mut r1, &mut scratch);
            for i in 0..n {
                let fd = (r1[i] - r0[i]) / h;
                assert!(
                    (jac[(i, j)] - fd).abs() < 1e-2 * (1.0 + fd.abs()),
                    "J[{i},{j}] = {} but fd = {}",
                    jac[(i, j)],
                    fd
                );
            }
        }
    }

    #[test]
    fn mutual_inductance_jacobian_matches_finite_differences() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.capacitor(n1, 0, 10e-9);
        ckt.capacitor(n2, 0, 10e-9);
        let l1 = ckt.inductor(n1, 0, 10e-6);
        let l2 = ckt.inductor(n2, 0, 40e-6);
        ckt.mutual(l1, l2, 0.7);
        ckt.resistor(n1, n2, 1e3);

        let structure = MnaStructure::new(&ckt);
        let n = structure.size();
        let mut prev = DynamicState::for_circuit(&ckt);
        prev.ind_v.fill(0.05);
        prev.ind_i.fill(1e-3);
        for method in [Integrator::Trapezoidal, Integrator::BackwardEuler] {
            let mode = StampMode::Transient {
                t: 1e-6,
                dt: 2e-8,
                method,
                prev: &prev,
            };
            let x: Vec<f64> = (0..n).map(|i| 0.02 * (i as f64 + 1.0)).collect();
            let mut r0 = vec![0.0; n];
            let mut jac = Matrix::zeros(n, n);
            assemble(&ckt, &structure, &x, mode, 0.0, &mut r0, &mut jac);
            let mut r1 = vec![0.0; n];
            let mut scratch = Matrix::zeros(n, n);
            let h = 1e-8;
            for j in 0..n {
                let mut xp = x.clone();
                xp[j] += h;
                assemble(&ckt, &structure, &xp, mode, 0.0, &mut r1, &mut scratch);
                for i in 0..n {
                    let fd = (r1[i] - r0[i]) / h;
                    assert!(
                        (jac[(i, j)] - fd).abs() < 1e-2 * (1.0 + fd.abs()),
                        "{method:?} J[{i},{j}] = {} but fd = {}",
                        jac[(i, j)],
                        fd
                    );
                }
            }
        }
    }

    #[test]
    fn mutual_inductance_couples_the_branch_rows() {
        // With i₂ ≠ i₂(prev), the cross-term must show up in branch row 1
        // and symmetrically, with magnitude 2M/dt under trapezoidal.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        let l1 = ckt.inductor(n1, 0, 10e-6);
        let l2 = ckt.inductor(n2, 0, 40e-6);
        ckt.mutual(l1, l2, 0.5);
        ckt.resistor(n1, 0, 1e3);
        ckt.resistor(n2, 0, 1e3);
        let structure = MnaStructure::new(&ckt);
        let n = structure.size();
        let b1 = structure.branch_index(l1.index()).unwrap();
        let b2 = structure.branch_index(l2.index()).unwrap();
        let prev = DynamicState::for_circuit(&ckt);
        let dt = 1e-8;
        let mode = StampMode::Transient {
            t: 1e-6,
            dt,
            method: Integrator::Trapezoidal,
            prev: &prev,
        };
        let mut x = vec![0.0; n];
        x[b2] = 1e-3;
        let mut r = vec![0.0; n];
        let mut jac = Matrix::zeros(n, n);
        assemble(&ckt, &structure, &x, mode, 0.0, &mut r, &mut jac);
        let m = 0.5 * (10e-6f64 * 40e-6).sqrt();
        let km = 2.0 * m / dt;
        assert!((r[b1] - (-km * 1e-3)).abs() < 1e-12 * km);
        assert_eq!(jac[(b1, b2)], -km);
        assert_eq!(jac[(b2, b1)], -km);
    }

    #[test]
    fn structure_layout() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 1.0);
        let v = ckt.vsource(a, 0, SourceWave::Dc(1.0));
        let l = ckt.inductor(b, 0, 1e-6);
        let structure = MnaStructure::new(&ckt);
        // 2 node voltages + 2 branch currents.
        assert_eq!(structure.size(), 4);
        assert_eq!(structure.node_index(0), None);
        assert_eq!(structure.node_index(a), Some(0));
        assert_eq!(structure.branch_index(v.index()), Some(2));
        assert_eq!(structure.branch_index(l.index()), Some(3));
        assert_eq!(structure.branch_index(0), None); // the resistor
    }

    #[test]
    fn sparse_pattern_covers_dense_assembly() {
        use shil_numerics::sparse::SparseMatrix;
        use std::sync::Arc;

        // Every device kind, both modes: sparse assembly must reproduce the
        // dense Jacobian entry-for-entry (and never panic on a missing slot).
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        let n3 = ckt.node("n3");
        ckt.vsource(n1, 0, SourceWave::sine(2.0, 1e3, 0.0));
        ckt.resistor(n1, n2, 1e3);
        ckt.capacitor(n2, 0, 1e-6);
        let la = ckt.inductor(n2, n3, 1e-3);
        let lb = ckt.inductor(n3, 0, 2e-3);
        ckt.mutual(la, lb, 0.4);
        ckt.diode(n2, 0, 1e-12, 1.0);
        ckt.npn(n2, n3, 0, Default::default());
        ckt.nmos(n3, n2, 0, Default::default());
        ckt.nonlinear(n2, n3, crate::IvCurve::tanh(-1e-3, 10.0));
        ckt.isource(n1, n3, SourceWave::Dc(1e-4));

        let structure = MnaStructure::new(&ckt);
        let n = structure.size();
        let pattern = Arc::new(sparse_pattern(&ckt, &structure));
        let x: Vec<f64> = (0..n).map(|i| 0.2 - 0.07 * i as f64).collect();
        let mut prev = DynamicState::for_circuit(&ckt);
        prev.cap_v.fill(0.1);
        prev.ind_i.fill(1e-3);

        let modes = [
            StampMode::Dc { source_scale: 0.7 },
            StampMode::Transient {
                t: 2e-4,
                dt: 1e-6,
                method: Integrator::Trapezoidal,
                prev: &prev,
            },
            StampMode::Transient {
                t: 2e-4,
                dt: 1e-6,
                method: Integrator::BackwardEuler,
                prev: &prev,
            },
        ];
        for mode in modes {
            let mut rd = vec![0.0; n];
            let mut rs = vec![0.0; n];
            let mut dense = Matrix::zeros(n, n);
            let mut sparse = SparseMatrix::zeros(pattern.clone());
            assemble(&ckt, &structure, &x, mode, 1e-9, &mut rd, &mut dense);
            assemble(&ckt, &structure, &x, mode, 1e-9, &mut rs, &mut sparse);
            assert_eq!(rd, rs);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(dense[(i, j)], sparse.get(i, j), "entry ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn voltage_of_ground_is_zero() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, 0, 1.0);
        let structure = MnaStructure::new(&ckt);
        let x = vec![3.3];
        assert_eq!(structure.voltage(&x, 0), 0.0);
        assert_eq!(structure.voltage(&x, a), 3.3);
    }
}
