//! Time-dependent source waveforms.
//!
//! The SHIL experiments need three source shapes beyond DC: the sinusoidal
//! injection signal (`SIN` in SPICE, including the delay semantics — the
//! source holds its offset until the delay elapses, which lets an oscillator
//! settle into natural oscillation before injection begins), the state-kick
//! pulse train of Figs. 15/19, and piecewise-linear test stimuli.

/// An independent-source waveform `v(t)` (or `i(t)` for current sources).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// `offset + amplitude·sin(2πf(t − delay) + phase)` for `t ≥ delay`,
    /// and `offset` before. SPICE `SIN` semantics with phase in radians.
    Sin {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq_hz: f64,
        /// Turn-on delay in seconds.
        delay: f64,
        /// Phase at turn-on, radians.
        phase: f64,
    },
    /// SPICE-style trapezoidal pulse train.
    Pulse {
        /// Initial (resting) value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Time of the first rising edge.
        delay: f64,
        /// Rise time (clamped to ≥ 1 ps to avoid discontinuities).
        rise: f64,
        /// Fall time (clamped likewise).
        fall: f64,
        /// Width of the flat top.
        width: f64,
        /// Repetition period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piecewise-linear waveform through `(t, v)` points; clamps outside.
    Pwl(Vec<(f64, f64)>),
    /// Sum of two waveforms (e.g. injection sine plus kick pulses).
    Sum(Box<SourceWave>, Box<SourceWave>),
}

impl SourceWave {
    /// Convenience constructor for a turn-on-delayed sine.
    pub fn sine(amplitude: f64, freq_hz: f64, delay: f64) -> Self {
        SourceWave::Sin {
            offset: 0.0,
            amplitude,
            freq_hz,
            delay,
            phase: 0.0,
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Sin {
                offset,
                amplitude,
                freq_hz,
                delay,
                phase,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset
                        + amplitude * (std::f64::consts::TAU * freq_hz * (t - delay) + phase).sin()
                }
            }
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                let tau = if period.is_finite() && *period > 0.0 {
                    (t - delay) % period
                } else {
                    t - delay
                };
                if tau < rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points[points.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                last.1
            }
            SourceWave::Sum(a, b) => a.value(t) + b.value(t),
        }
    }

    /// Returns the waveform with every output value multiplied by `k`.
    ///
    /// Scales offsets and amplitudes alike, so `scaled(k).value(t)` equals
    /// `k * value(t)` at every `t`. Used by sweep drivers that re-run a
    /// circuit at different drive strengths without rebuilding it.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        match self {
            SourceWave::Dc(v) => SourceWave::Dc(v * k),
            SourceWave::Sin {
                offset,
                amplitude,
                freq_hz,
                delay,
                phase,
            } => SourceWave::Sin {
                offset: offset * k,
                amplitude: amplitude * k,
                freq_hz: *freq_hz,
                delay: *delay,
                phase: *phase,
            },
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => SourceWave::Pulse {
                v1: v1 * k,
                v2: v2 * k,
                delay: *delay,
                rise: *rise,
                fall: *fall,
                width: *width,
                period: *period,
            },
            SourceWave::Pwl(points) => {
                SourceWave::Pwl(points.iter().map(|&(t, v)| (t, v * k)).collect())
            }
            SourceWave::Sum(a, b) => SourceWave::Sum(Box::new(a.scaled(k)), Box::new(b.scaled(k))),
        }
    }

    /// The DC (t → −∞ resting) value used by operating-point analysis.
    pub fn dc_value(&self) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Sin { offset, .. } => *offset,
            SourceWave::Pulse { v1, .. } => *v1,
            SourceWave::Pwl(points) => points.first().map_or(0.0, |p| p.1),
            SourceWave::Sum(a, b) => a.dc_value() + b.dc_value(),
        }
    }
}

impl From<f64> for SourceWave {
    fn from(v: f64) -> Self {
        SourceWave::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = SourceWave::Dc(2.5);
        assert_eq!(w.value(0.0), 2.5);
        assert_eq!(w.value(1e9), 2.5);
        assert_eq!(w.dc_value(), 2.5);
    }

    #[test]
    fn sin_holds_offset_until_delay() {
        let w = SourceWave::Sin {
            offset: 1.0,
            amplitude: 2.0,
            freq_hz: 10.0,
            delay: 0.5,
            phase: 0.0,
        };
        assert_eq!(w.value(0.0), 1.0);
        assert_eq!(w.value(0.49), 1.0);
        // Quarter period after the delay: peak.
        assert!((w.value(0.5 + 0.025) - 3.0).abs() < 1e-12);
        assert_eq!(w.dc_value(), 1.0);
    }

    #[test]
    fn sine_helper_produces_zero_offset() {
        let w = SourceWave::sine(0.03, 1.5e6, 1e-3);
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn pulse_shape() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.5,
            period: f64::INFINITY,
        };
        assert_eq!(w.value(0.5), 0.0);
        assert!((w.value(1.05) - 0.5).abs() < 1e-12); // mid rise
        assert_eq!(w.value(1.3), 1.0); // flat top
        assert!((w.value(1.65) - 0.5).abs() < 1e-12); // mid fall
        assert_eq!(w.value(2.0), 0.0);
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-6,
            fall: 1e-6,
            width: 0.1,
            period: 1.0,
        };
        assert_eq!(w.value(0.05), 1.0);
        assert_eq!(w.value(0.5), 0.0);
        assert_eq!(w.value(1.05), 1.0);
        assert_eq!(w.value(7.05), 1.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, -2.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert_eq!(w.value(0.5), 1.0);
        assert_eq!(w.value(1.5), 0.0);
        assert_eq!(w.value(5.0), -2.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn sum_composes() {
        let w = SourceWave::Sum(
            Box::new(SourceWave::Dc(1.0)),
            Box::new(SourceWave::sine(2.0, 1.0, 0.0)),
        );
        assert!((w.value(0.25) - 3.0).abs() < 1e-12);
        assert_eq!(w.dc_value(), 1.0);
    }

    #[test]
    fn scaled_multiplies_every_value() {
        let base = SourceWave::Sum(
            Box::new(SourceWave::Sin {
                offset: 0.5,
                amplitude: 2.0,
                freq_hz: 3.0,
                delay: 0.1,
                phase: 0.2,
            }),
            Box::new(SourceWave::Pwl(vec![(0.0, 1.0), (1.0, -1.0)])),
        );
        let scaled = base.scaled(2.5);
        for &t in &[0.0, 0.05, 0.1, 0.37, 1.0, 2.0] {
            assert!((scaled.value(t) - 2.5 * base.value(t)).abs() < 1e-12);
        }
        assert!((scaled.dc_value() - 2.5 * base.dc_value()).abs() < 1e-12);
        let pulse = SourceWave::Pulse {
            v1: 0.25,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-6,
            fall: 1e-6,
            width: 0.1,
            period: 1.0,
        };
        assert_eq!(pulse.scaled(4.0).value(0.05), 4.0);
        assert_eq!(pulse.scaled(4.0).value(0.5), 1.0);
    }

    #[test]
    fn from_f64_is_dc() {
        let w: SourceWave = 3.0.into();
        assert_eq!(w, SourceWave::Dc(3.0));
    }
}
